// Hot-path microbenchmark over a pinned dataset: the distance-ordered
// pull loop (R-tree incremental browse) that sits under every Algorithm-1
// access, the Engine TopK loop built on it, and the sharded scatter
// layer. Emits BENCH_hotpath.json (cwd-relative; run from the repo root
// to refresh the tracked datapoint) so the perf trajectory of the R-tree
// microarchitecture work is tracked in-repo, not just in CI gates.
//
// Sections:
//   * pull      -- raw distance-ordered pulls/sec through NearestBrowse
//                  over a pinned synthetic relation, dims 2 and 8;
//                  checksum folds every (id, distance-bits) pulled, so a
//                  traversal-order or arithmetic regression cannot hide.
//   * engine    -- TopK queries/sec on a reusable Engine (R-tree backend,
//                  TBPA), the end-to-end path the pulls feed; gated
//                  bit-identical against the presorted backend, which
//                  shares no R-tree code.
//   * scatter   -- ShardedEngine sweep (STR tiles, sequential vs pooled
//                  scatter), gated bit-identical against the unsharded
//                  engine; reports pruning rate and the scatter mode the
//                  adaptive policy actually chose.
//
// Gates (exit 1, failing the Release CI step):
//   * pull checksums must agree between the two query batches (the same
//     pinned workload run twice -- any nondeterminism fails);
//   * engine results bit-identical across the R-tree and presorted
//     backends (the kernels only reorder work, never results);
//   * scatter results bit-identical to the unsharded engine;
//   * the dispatched MBR kernels must agree exactly with the scalar
//     reference on sampled inputs (scalar-vs-SIMD parity, in-binary).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "core/scoring.h"
#include "index/mbr_kernels.h"
#include "index/rtree.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

uint64_t FoldU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

struct PullResult {
  double pulls_per_sec = 0.0;
  uint64_t checksum = 0;
  uint64_t pulls = 0;
};

// Raw distance-ordered pulls: Q browses of depth D over a pinned
// relation. Runs the batch twice and demands identical checksums.
bool RunPullSection(int dim, int count, int queries, int depth,
                    PullResult* out) {
  SyntheticSpec spec;
  spec.dim = dim;
  spec.count = count;
  spec.seed = 1212 + static_cast<uint64_t>(dim);
  const Relation rel = GenerateUniformRelation(spec, "pull");
  const auto index = IndexedRelation::Build(rel);

  Rng rng(77);
  std::vector<Vec> pool;
  pool.reserve(static_cast<size_t>(queries));
  const double half = CubeSide(spec) / 2.0;
  for (int i = 0; i < queries; ++i) {
    pool.push_back(rng.UniformInCube(dim, -half, half));
  }

  uint64_t checksum_first = 0;
  Arena arena;  // reused across queries: the frontier's steady state
  for (int round = 0; round < 2; ++round) {
    uint64_t checksum = 0;
    uint64_t pulls = 0;
    const WallTimer timer;
    for (const Vec& q : pool) {
      arena.Reset();
      auto browse = index->tree().NearestBrowse(q, &arena);
      for (int d = 0; d < depth; ++d) {
        const RTree::Item* item = browse.NextRef();
        if (item == nullptr) break;
        checksum = FoldU64(checksum, static_cast<uint64_t>(item->id));
        checksum = FoldU64(checksum, DoubleBits(item->point.SquaredDistance(q)));
        ++pulls;
      }
    }
    const double seconds = timer.ElapsedSeconds();
    if (round == 0) {
      checksum_first = checksum;
      out->pulls = pulls;
      out->checksum = checksum;
      out->pulls_per_sec = static_cast<double>(pulls) / seconds;
    } else if (checksum != checksum_first) {
      std::fprintf(stderr,
                   "FAIL: pull checksum diverged between rounds (dim=%d): "
                   "%016" PRIx64 " vs %016" PRIx64 "\n",
                   dim, checksum_first, checksum);
      return false;
    } else {
      // Report the faster (warm) round: the arena-reuse steady state.
      out->pulls_per_sec = std::max(out->pulls_per_sec,
                                    static_cast<double>(pulls) / seconds);
    }
  }
  return true;
}

uint64_t ChecksumResults(const std::vector<ResultCombination>& results) {
  uint64_t h = 0;
  for (const ResultCombination& combo : results) {
    h = FoldU64(h, DoubleBits(combo.score));
    for (const Tuple& t : combo.tuples) {
      h = FoldU64(h, static_cast<uint64_t>(t.id));
    }
  }
  return h;
}

struct EngineResult {
  double queries_per_sec = 0.0;
  uint64_t checksum = 0;
};

// Engine TopK loop over the pinned 2-relation instance; the R-tree
// backend (whose pulls the kernels serve) must match the presorted
// backend bit for bit.
bool RunEngineSection(const std::vector<Relation>& relations,
                      const std::vector<Vec>& pool, int k,
                      EngineResult* out) {
  SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  EngineOptions rtree_options;
  rtree_options.backend = SourceBackend::kRTree;
  auto rtree_engine =
      Engine::Create(relations, AccessKind::kDistance, &scoring, rtree_options);
  EngineOptions presorted_options;
  presorted_options.backend = SourceBackend::kPresorted;
  auto presorted_engine = Engine::Create(relations, AccessKind::kDistance,
                                         &scoring, presorted_options);
  if (!rtree_engine.ok() || !presorted_engine.ok()) {
    std::fprintf(stderr, "FAIL: Engine::Create failed\n");
    return false;
  }
  ProxRJOptions options;
  options.k = k;
  options.Apply(kTBPA);

  uint64_t checksum = 0;
  // Warm-up round, then the timed round: steady-state throughput.
  for (int round = 0; round < 2; ++round) {
    checksum = 0;
    const WallTimer timer;
    for (const Vec& q : pool) {
      auto result = rtree_engine->TopK(q, options);
      if (!result.ok()) {
        std::fprintf(stderr, "FAIL: TopK: %s\n",
                     result.status().ToString().c_str());
        return false;
      }
      checksum = FoldU64(checksum, ChecksumResults(*result));
    }
    out->queries_per_sec =
        static_cast<double>(pool.size()) / timer.ElapsedSeconds();
  }
  out->checksum = checksum;

  uint64_t presorted_checksum = 0;
  for (const Vec& q : pool) {
    auto result = presorted_engine->TopK(q, options);
    if (!result.ok()) return false;
    presorted_checksum = FoldU64(presorted_checksum, ChecksumResults(*result));
  }
  if (presorted_checksum != checksum) {
    std::fprintf(stderr,
                 "FAIL: R-tree and presorted backends disagree: %016" PRIx64
                 " vs %016" PRIx64 "\n",
                 checksum, presorted_checksum);
    return false;
  }
  return true;
}

struct ScatterRow {
  uint32_t scatter_threads_requested = 0;
  uint32_t scatter_threads_used = 0;
  double queries_per_sec = 0.0;
  double pruned_rate = 0.0;
};

bool RunScatterSection(const std::vector<Relation>& relations,
                       const std::vector<Vec>& pool, int k,
                       uint64_t want_checksum, uint32_t parts,
                       uint32_t scatter_threads, ScatterRow* out) {
  SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  ShardedEngineOptions options;
  options.partitions_per_relation = parts;
  options.scheme = PartitionScheme::kStrTile;
  options.scatter_threads = scatter_threads;
  auto sharded =
      ShardedEngine::Create(relations, AccessKind::kDistance, &scoring, options);
  if (!sharded.ok()) {
    std::fprintf(stderr, "FAIL: ShardedEngine::Create: %s\n",
                 sharded.status().ToString().c_str());
    return false;
  }
  ProxRJOptions q_options;
  q_options.k = k;
  q_options.Apply(kTBPA);

  uint64_t checksum = 0;
  uint64_t pruned = 0;
  uint32_t threads_used = 0;
  const WallTimer timer;
  for (const Vec& q : pool) {
    ExecStats stats;
    auto result = sharded->TopK(q, q_options, &stats);
    if (!result.ok()) {
      std::fprintf(stderr, "FAIL: sharded TopK: %s\n",
                   result.status().ToString().c_str());
      return false;
    }
    checksum = FoldU64(checksum, ChecksumResults(*result));
    pruned += stats.shards_pruned;
    threads_used = std::max(threads_used, stats.scatter_threads);
  }
  const double seconds = timer.ElapsedSeconds();
  if (checksum != want_checksum) {
    std::fprintf(stderr,
                 "FAIL: sharded results diverge from the unsharded engine "
                 "(parts=%u threads=%u): %016" PRIx64 " vs %016" PRIx64 "\n",
                 parts, scatter_threads, checksum, want_checksum);
    return false;
  }
  out->scatter_threads_requested = scatter_threads;
  out->scatter_threads_used = threads_used;
  out->queries_per_sec = static_cast<double>(pool.size()) / seconds;
  out->pruned_rate = static_cast<double>(pruned) /
                     (static_cast<double>(pool.size()) *
                      static_cast<double>(sharded->num_shards()));
  return true;
}

// In-binary scalar-vs-dispatched kernel parity over adversarial inputs:
// random boxes, degenerate (point) boxes, exact ties, huge and tiny
// magnitudes. The dispatched kernel must agree bit for bit.
bool KernelParitySweep() {
  Rng rng(4242);
  std::vector<double> lo, hi, q, got, want;
  for (int trial = 0; trial < 200; ++trial) {
    const int dim = 1 + static_cast<int>(rng.NextBounded(kMaxDim));
    const size_t count = 1 + rng.NextBounded(40);
    const double scale = (trial % 3 == 0) ? 1e-12 : (trial % 3 == 1 ? 1.0 : 1e12);
    lo.assign(static_cast<size_t>(dim) * count, 0.0);
    hi.assign(static_cast<size_t>(dim) * count, 0.0);
    q.assign(static_cast<size_t>(dim), 0.0);
    for (int d = 0; d < dim; ++d) {
      q[static_cast<size_t>(d)] = scale * (rng.NextDouble() * 2.0 - 1.0);
      for (size_t i = 0; i < count; ++i) {
        double a = scale * (rng.NextDouble() * 2.0 - 1.0);
        double b = scale * (rng.NextDouble() * 2.0 - 1.0);
        if (trial % 5 == 0) b = a;          // degenerate point boxes
        if (trial % 7 == 0) a = b = q[static_cast<size_t>(d)];  // exact ties
        lo[static_cast<size_t>(d) * count + i] = std::min(a, b);
        hi[static_cast<size_t>(d) * count + i] = std::max(a, b);
      }
    }
    got.assign(count, -1.0);
    want.assign(count, -1.0);
    MinSquaredDistanceBatch(q.data(), dim, count, lo.data(), hi.data(),
                            got.data());
    MinSquaredDistanceBatchScalar(q.data(), dim, count, lo.data(), hi.data(),
                                  want.data());
    for (size_t i = 0; i < count; ++i) {
      if (DoubleBits(got[i]) != DoubleBits(want[i])) {
        std::fprintf(stderr,
                     "FAIL: %s kernel diverges from scalar (trial=%d i=%zu): "
                     "%.17g vs %.17g\n",
                     MbrKernelIsa(), trial, i, got[i], want[i]);
        return false;
      }
    }
    PointSquaredDistanceBatch(q.data(), dim, count, lo.data(), got.data());
    PointSquaredDistanceBatchScalar(q.data(), dim, count, lo.data(),
                                    want.data());
    for (size_t i = 0; i < count; ++i) {
      if (DoubleBits(got[i]) != DoubleBits(want[i])) {
        std::fprintf(stderr,
                     "FAIL: %s point kernel diverges from scalar "
                     "(trial=%d i=%zu): %.17g vs %.17g\n",
                     MbrKernelIsa(), trial, i, got[i], want[i]);
        return false;
      }
    }
  }
  return true;
}

void WriteJson(const PullResult& pull2, const PullResult& pull8,
               const EngineResult& engine, const std::vector<ScatterRow>& rows,
               bool smoke) {
  std::FILE* f = std::fopen("BENCH_hotpath.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_hotpath.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"smoke\": %s,\n  \"kernel_isa\": \"%s\",\n",
               smoke ? "true" : "false", MbrKernelIsa());
  auto pull = [&](const char* name, const PullResult& r) {
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"pulls_per_sec\": %.0f,\n"
                 "    \"pulls\": %" PRIu64 ",\n"
                 "    \"checksum\": \"%016" PRIx64 "\"\n  },\n",
                 name, r.pulls_per_sec, r.pulls, r.checksum);
  };
  pull("pull_dim2", pull2);
  pull("pull_dim8", pull8);
  std::fprintf(f,
               "  \"engine\": {\n"
               "    \"queries_per_sec\": %.2f,\n"
               "    \"checksum\": \"%016" PRIx64 "\"\n  },\n",
               engine.queries_per_sec, engine.checksum);
  std::fprintf(f, "  \"scatter\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"scatter_threads\": %u, \"threads_used\": %u, "
                 "\"queries_per_sec\": %.2f, \"pruned_rate\": %.4f}%s\n",
                 rows[i].scatter_threads_requested, rows[i].scatter_threads_used,
                 rows[i].queries_per_sec, rows[i].pruned_rate,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_hotpath.json\n");
}

int Main() {
  const bool smoke = bench::SmokeMode();
  const int pull_count = smoke ? 4000 : 200000;
  const int pull_queries = smoke ? 8 : 64;
  const int pull_depth = smoke ? 500 : 20000;
  const int engine_count = smoke ? 500 : 20000;
  const int engine_queries = smoke ? 8 : 64;
  const int k = 10;

  std::printf("hot-path microbench (kernel ISA: %s)\n", MbrKernelIsa());

  if (!KernelParitySweep()) return 1;
  std::printf("kernel parity: %s == scalar on 200 adversarial trials\n",
              MbrKernelIsa());

  PullResult pull2, pull8;
  if (!RunPullSection(2, pull_count, pull_queries, pull_depth, &pull2)) return 1;
  if (!RunPullSection(8, pull_count / 4, pull_queries, pull_depth / 4, &pull8)) {
    return 1;
  }
  std::printf("pull  dim=2: %12.0f pulls/s  (checksum %016" PRIx64 ")\n",
              pull2.pulls_per_sec, pull2.checksum);
  std::printf("pull  dim=8: %12.0f pulls/s  (checksum %016" PRIx64 ")\n",
              pull8.pulls_per_sec, pull8.checksum);

  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = engine_count;
  spec.seed = 3434;
  const std::vector<Relation> relations = GenerateProblem(2, spec);
  Rng rng(99);
  std::vector<Vec> pool;
  const double half = CubeSide(spec) / 2.0;
  for (int i = 0; i < engine_queries; ++i) {
    pool.push_back(rng.UniformInCube(2, -half, half));
  }

  EngineResult engine;
  if (!RunEngineSection(relations, pool, k, &engine)) return 1;
  std::printf("engine (TBPA, k=%d): %10.2f queries/s\n", k,
              engine.queries_per_sec);

  std::vector<ScatterRow> rows;
  for (uint32_t threads : {0u, 4u}) {
    ScatterRow row;
    if (!RunScatterSection(relations, pool, k, engine.checksum, /*parts=*/4,
                           threads, &row)) {
      return 1;
    }
    std::printf(
        "scatter parts=4 threads=%u: %10.2f queries/s  pruned %.1f%%  "
        "(threads used: %u)\n",
        threads, row.queries_per_sec, 100.0 * row.pruned_rate,
        row.scatter_threads_used);
    rows.push_back(row);
  }

  WriteJson(pull2, pull8, engine, rows, smoke);
  return 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Main(); }
