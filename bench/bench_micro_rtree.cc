// Microbenchmarks (google-benchmark) for the R-tree substrate: insertion,
// STR bulk loading, k-NN queries, and incremental distance browsing (the
// engine behind distance-based access sources).
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "index/rtree.h"

namespace prj {
namespace {

std::vector<RTree::Item> MakeItems(int dim, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<RTree::Item> items;
  items.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    items.push_back(RTree::Item{rng.UniformInCube(dim, -10, 10), i});
  }
  return items;
}

void BM_RTreeInsert(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const auto items = MakeItems(2, count, 1);
  for (auto _ : state) {
    RTree tree(2);
    for (const auto& it : items) tree.Insert(it.point, it.id);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_RTreeInsert)->Arg(1000)->Arg(10000);

void BM_RTreeBulkLoad(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const auto items = MakeItems(2, count, 2);
  for (auto _ : state) {
    auto copy = items;
    RTree tree = RTree::BulkLoad(2, std::move(copy));
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_RTreeBulkLoad)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RTreeNearestK(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  const int dim = static_cast<int>(state.range(1));
  RTree tree = RTree::BulkLoad(dim, MakeItems(dim, count, 3));
  Rng rng(4);
  for (auto _ : state) {
    const Vec q = rng.UniformInCube(dim, -10, 10);
    benchmark::DoNotOptimize(tree.NearestK(q, 10));
  }
}
BENCHMARK(BM_RTreeNearestK)->Args({10000, 2})->Args({100000, 2})->Args({10000, 8});

void BM_RTreeBrowseDepth100(benchmark::State& state) {
  // The operator's typical access pattern: stream the first ~100 tuples.
  const int count = static_cast<int>(state.range(0));
  RTree tree = RTree::BulkLoad(2, MakeItems(2, count, 5));
  Rng rng(6);
  for (auto _ : state) {
    const Vec q = rng.UniformInCube(2, -5, 5);
    auto browse = tree.NearestBrowse(q);
    for (int i = 0; i < 100; ++i) benchmark::DoNotOptimize(browse.Next());
  }
}
BENCHMARK(BM_RTreeBrowseDepth100)->Arg(10000)->Arg(100000);

void BM_RTreeRangeQuery(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  RTree tree = RTree::BulkLoad(2, MakeItems(2, count, 7));
  Rng rng(8);
  for (auto _ : state) {
    Vec lo = rng.UniformInCube(2, -10, 8);
    Vec hi = lo;
    hi[0] += 2.0;
    hi[1] += 2.0;
    benchmark::DoNotOptimize(tree.RangeQuery(Rect(lo, hi)));
  }
}
BENCHMARK(BM_RTreeRangeQuery)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace prj

BENCHMARK_MAIN();
