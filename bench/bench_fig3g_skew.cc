// Figure 3(g) + 3(j): sumDepths and CPU vs. the skewness rho_1/rho_2 of
// the two relations' densities, skew in {1, 2, 4, 8}; defaults otherwise.
// Skewed inputs are where the adaptive pulling strategy shines (§4.2).
#include "bench_util.h"

int main() {
  using namespace prj::bench;
  std::vector<std::string> labels;
  std::vector<CellConfig> configs;
  for (int skew : {1, 2, 4, 8}) {
    CellConfig c;
    c.skew = skew;
    labels.push_back("s=" + std::to_string(skew));
    configs.push_back(c);
  }
  RunSweep("Figure 3(g): sumDepths vs skewness",
           "Figure 3(j): CPU vs skewness", "rho1/rho2", labels, configs);
  return 0;
}
