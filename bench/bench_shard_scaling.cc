// Shard-count, scatter-thread and pruning sweeps of the scatter-gather
// ShardedEngine, checksum-gated against the unsharded Engine.
//
// Three sections, all bit-identity-gated (exit 1, failing the Release CI
// step, on any divergence -- same scores exactly, same member ids, same
// order):
//
//   1. partition sweep: for each partitions-per-relation value P build a
//      ShardedEngine (fan-out P^n over shared per-partition indexes), run
//      the same Q-query workload, and report build time, batch wall time,
//      queries/second, the aggregate sumDepths ratio vs the unsharded
//      engine and the fraction of shards the corner bound pruned;
//   2. scatter-thread sweep: fixed P, Options::scatter_threads swept over
//      {sequential, 2, 4, 8}; reports the parallel speedup over the
//      sequential scatter. Gate: >= 2x at 8 scatter threads on >= 8-core
//      hosts (full mode only -- smoke shards are too small to amortize
//      the fan-out);
//   3. pruning: STR tiles with a query workload localized in one corner
//      of the data -- the regime the corner bound is built for. Reports
//      prune rate and sequential latency with pruning off vs on. Gate:
//      the localized workload must actually prune (rate > 0).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

uint64_t SumDepths(const std::vector<QueryResult>& results) {
  uint64_t total = 0;
  for (const QueryResult& qr : results) total += qr.stats.sum_depths;
  return total;
}

uint64_t SumPruned(const std::vector<QueryResult>& results) {
  uint64_t total = 0;
  for (const QueryResult& qr : results) total += qr.stats.shards_pruned;
  return total;
}

double PruneRate(const std::vector<QueryResult>& results, size_t fan_out) {
  if (results.empty() || fan_out == 0) return 0.0;
  return static_cast<double>(SumPruned(results)) /
         (static_cast<double>(results.size()) * static_cast<double>(fan_out));
}

int Run() {
  const bool smoke = bench::SmokeMode();
  const unsigned hw = std::thread::hardware_concurrency();
  const int n = 2;
  const int count = smoke ? 1500 : 8000;
  const int q_count = smoke ? 24 : 96;
  const std::vector<uint32_t> partition_counts =
      smoke ? std::vector<uint32_t>{1, 2, 3}
            : std::vector<uint32_t>{1, 2, 4, 6};

  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = 17;
  const auto rels = GenerateProblem(n, spec);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);

  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  if (!engine.ok()) {
    std::fprintf(stderr, "Engine::Create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  Rng rng(4242);
  std::vector<QueryRequest> workload;
  workload.reserve(static_cast<size_t>(q_count));
  for (int i = 0; i < q_count; ++i) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.0, 1.0);
    req.options.k = 10;
    req.options.Apply(kTBPA);
    workload.push_back(std::move(req));
  }

  WallTimer base_timer;
  const auto baseline = engine->RunBatch(workload);
  const double base_seconds = base_timer.ElapsedSeconds();
  const uint64_t base_depths = SumDepths(baseline);
  for (const QueryResult& qr : baseline) {
    if (!qr.ok()) {
      std::fprintf(stderr, "baseline query failed: %s\n",
                   qr.status.ToString().c_str());
      return 1;
    }
  }

  std::printf(
      "shard_scaling: ShardedEngine vs unsharded Engine (distance access, "
      "R-tree backend, n=%d, %d tuples/relation, Q=%d, K=10, TBPA)\n",
      n, count, q_count);
  std::printf("unsharded: %.2f ms (%.0f q/s), sumDepths=%llu\n\n",
              base_seconds * 1e3, q_count / base_seconds,
              static_cast<unsigned long long>(base_depths));

  // ----------------------- 1. partition sweep -------------------------- //
  std::printf("%9s %6s %8s %11s %11s %10s %12s %11s\n", "scheme", "parts",
              "fan_out", "build_ms", "batch_ms", "q/s", "depth_ratio",
              "prune_rate");
  for (const PartitionScheme scheme :
       {PartitionScheme::kHash, PartitionScheme::kStrTile}) {
    const char* scheme_name =
        scheme == PartitionScheme::kHash ? "hash" : "str-tile";
    for (const uint32_t parts : partition_counts) {
      ShardedEngineOptions opts;
      opts.partitions_per_relation = parts;
      opts.scheme = scheme;
      WallTimer build_timer;
      auto sharded = ShardedEngine::Create(rels, AccessKind::kDistance,
                                           &scoring, opts);
      const double build_seconds = build_timer.ElapsedSeconds();
      if (!sharded.ok()) {
        std::fprintf(stderr, "ShardedEngine::Create(%s, %u) failed: %s\n",
                     scheme_name, parts, sharded.status().ToString().c_str());
        return 1;
      }
      const QueryEngine& iface = *sharded;  // benches drive the interface

      WallTimer timer;
      const auto results = iface.RunBatch(workload);
      const double seconds = timer.ElapsedSeconds();
      const std::string label =
          std::string(scheme_name) + "/p" + std::to_string(parts);
      if (!bench::BitIdentical(results, baseline, label.c_str())) return 1;

      std::printf("%9s %6u %8zu %11.2f %11.2f %10.0f %12.3f %11.3f\n",
                  scheme_name, parts, iface.fan_out(), build_seconds * 1e3,
                  seconds * 1e3, q_count / seconds,
                  static_cast<double>(SumDepths(results)) /
                      static_cast<double>(base_depths),
                  PruneRate(results, iface.fan_out()));
    }
  }

  // -------------------- 2. scatter-thread sweep ------------------------ //
  // Hash partitioning spreads every query's work across all shards, so
  // this isolates the parallel-scatter win from the pruning win.
  const uint32_t sweep_parts = smoke ? 3 : 4;
  std::printf(
      "\nscatter-thread sweep (hash, parts=%u, fan-out %u, %u hardware "
      "threads):\n",
      sweep_parts, sweep_parts * sweep_parts, hw);
  std::printf("%8s %11s %10s %9s %11s\n", "threads", "batch_ms", "q/s",
              "speedup", "prune_rate");
  double sequential_seconds = 0.0;
  double eight_thread_speedup = 0.0;
  for (const uint32_t threads : {0u, 2u, 4u, 8u}) {
    if (threads > std::max(1u, hw)) continue;
    ShardedEngineOptions opts;
    opts.partitions_per_relation = sweep_parts;
    opts.scheme = PartitionScheme::kHash;
    opts.scatter_threads = threads;
    auto sharded =
        ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
    if (!sharded.ok()) {
      std::fprintf(stderr, "ShardedEngine::Create(threads=%u) failed: %s\n",
                   threads, sharded.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    const auto results = sharded->RunBatch(workload);
    const double seconds = timer.ElapsedSeconds();
    const std::string label = "threads=" + std::to_string(threads);
    if (!bench::BitIdentical(results, baseline, label.c_str())) return 1;
    if (threads == 0) sequential_seconds = seconds;
    const double speedup =
        seconds > 0 && sequential_seconds > 0 ? sequential_seconds / seconds
                                              : 0.0;
    if (threads == 8) eight_thread_speedup = speedup;
    std::printf("%8u %11.2f %10.0f %9.2f %11.3f\n", threads, seconds * 1e3,
                q_count / seconds, speedup,
                PruneRate(results, sharded->fan_out()));
  }

  // --------------------------- 3. pruning ------------------------------ //
  // STR tiles + corner-localized queries: the regime where the corner
  // bound over the partition MBRs retires whole shards.
  std::vector<QueryRequest> localized = workload;
  {
    Rng corner_rng(99);
    const double side = CubeSide(spec);
    for (QueryRequest& req : localized) {
      // Deep inside one corner tile of the [-side/2, side/2]^2 domain.
      req.query =
          corner_rng.UniformInCube(2, 0.30 * side, 0.45 * side);
    }
  }
  const auto localized_baseline = engine->RunBatch(localized);

  std::printf("\npruning (str-tile, parts=%u, corner-localized queries):\n",
              sweep_parts);
  std::printf("%9s %8s %11s %10s %12s %11s\n", "prune", "fan_out", "batch_ms",
              "q/s", "depth_ratio", "prune_rate");
  double localized_prune_rate = -1.0;
  const uint64_t localized_base_depths = SumDepths(localized_baseline);
  for (const bool prune : {false, true}) {
    ShardedEngineOptions opts;
    opts.partitions_per_relation = sweep_parts;
    opts.scheme = PartitionScheme::kStrTile;
    opts.prune = prune;
    auto sharded =
        ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
    if (!sharded.ok()) {
      std::fprintf(stderr, "ShardedEngine::Create(prune=%d) failed: %s\n",
                   prune, sharded.status().ToString().c_str());
      return 1;
    }
    WallTimer timer;
    const auto results = sharded->RunBatch(localized);
    const double seconds = timer.ElapsedSeconds();
    const std::string label = std::string("prune=") + (prune ? "on" : "off");
    if (!bench::BitIdentical(results, localized_baseline, label.c_str())) {
      return 1;
    }
    const double rate = PruneRate(results, sharded->fan_out());
    if (prune) localized_prune_rate = rate;
    std::printf("%9s %8zu %11.2f %10.0f %12.3f %11.3f\n",
                prune ? "on" : "off", sharded->fan_out(), seconds * 1e3,
                q_count / seconds,
                static_cast<double>(SumDepths(results)) /
                    static_cast<double>(localized_base_depths),
                rate);
  }

  std::printf(
      "\nevery row is bit-identical to the unsharded engine (exact scores, "
      "ids and order); depth_ratio counts pulls vs unsharded, prune_rate "
      "the fraction of shards the corner bound skipped.\n");

  if (localized_prune_rate <= 0.0) {
    std::fprintf(stderr,
                 "\nFAIL: corner-localized STR-tile workload pruned no "
                 "shards (rate %.3f)\n",
                 localized_prune_rate);
    return 1;
  }
  if (!smoke && hw >= 8 && eight_thread_speedup < 2.0) {
    std::fprintf(stderr,
                 "\nFAIL: parallel scatter speedup %.2fx at 8 threads on a "
                 "%u-thread host (need >= 2x)\n",
                 eight_thread_speedup, hw);
    return 1;
  }
  if (hw < 8) {
    std::printf(
        "note: only %u hardware threads; the >= 2x @ 8 scatter threads "
        "gate needs >= 8.\n",
        hw);
  }
  return 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Run(); }
