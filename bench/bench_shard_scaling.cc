// Shard-count sweep of the scatter-gather ShardedEngine, checksum-gated
// against the unsharded Engine.
//
// For each partitions-per-relation value P we build a ShardedEngine
// (fan-out P^n per-shard engines over shared per-partition indexes), run
// the same Q-query workload through the QueryEngine interface, and report
// build time, batch wall time, queries/second, the aggregate sumDepths
// ratio vs the unsharded engine (the scatter's extra shallow pulls), and
// the per-query wall-clock makespan (the aggregate's max-across-shards
// total_seconds, i.e. an idealized parallel fan-out).
//
// Gate (exit 1, failing the Release CI step): every row's results must be
// bit-identical to the unsharded engine -- same scores (exact), same
// member ids, same order -- for both partitioners.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

uint64_t SumDepths(const std::vector<QueryResult>& results) {
  uint64_t total = 0;
  for (const QueryResult& qr : results) total += qr.stats.sum_depths;
  return total;
}

int Run() {
  const bool smoke = bench::SmokeMode();
  const int n = 2;
  const int count = smoke ? 1500 : 8000;
  const int q_count = smoke ? 24 : 96;
  const std::vector<uint32_t> partition_counts =
      smoke ? std::vector<uint32_t>{1, 2, 3}
            : std::vector<uint32_t>{1, 2, 4, 6};

  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = 17;
  const auto rels = GenerateProblem(n, spec);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);

  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  if (!engine.ok()) {
    std::fprintf(stderr, "Engine::Create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  Rng rng(4242);
  std::vector<QueryRequest> workload;
  workload.reserve(static_cast<size_t>(q_count));
  for (int i = 0; i < q_count; ++i) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.0, 1.0);
    req.options.k = 10;
    req.options.Apply(kTBPA);
    workload.push_back(std::move(req));
  }

  WallTimer base_timer;
  const auto baseline = engine->RunBatch(workload);
  const double base_seconds = base_timer.ElapsedSeconds();
  const uint64_t base_depths = SumDepths(baseline);
  for (const QueryResult& qr : baseline) {
    if (!qr.ok()) {
      std::fprintf(stderr, "baseline query failed: %s\n",
                   qr.status.ToString().c_str());
      return 1;
    }
  }

  std::printf(
      "shard_scaling: ShardedEngine vs unsharded Engine (distance access, "
      "R-tree backend, n=%d, %d tuples/relation, Q=%d, K=10, TBPA)\n",
      n, count, q_count);
  std::printf("unsharded: %.2f ms (%.0f q/s), sumDepths=%llu\n\n",
              base_seconds * 1e3, q_count / base_seconds,
              static_cast<unsigned long long>(base_depths));
  std::printf("%9s %6s %8s %11s %11s %10s %12s %13s\n", "scheme", "parts",
              "fan_out", "build_ms", "batch_ms", "q/s", "depth_ratio",
              "makespan_us");

  for (const PartitionScheme scheme :
       {PartitionScheme::kHash, PartitionScheme::kStrTile}) {
    const char* scheme_name =
        scheme == PartitionScheme::kHash ? "hash" : "str-tile";
    for (const uint32_t parts : partition_counts) {
      ShardedEngineOptions opts;
      opts.partitions_per_relation = parts;
      opts.scheme = scheme;
      WallTimer build_timer;
      auto sharded = ShardedEngine::Create(rels, AccessKind::kDistance,
                                           &scoring, opts);
      const double build_seconds = build_timer.ElapsedSeconds();
      if (!sharded.ok()) {
        std::fprintf(stderr, "ShardedEngine::Create(%s, %u) failed: %s\n",
                     scheme_name, parts, sharded.status().ToString().c_str());
        return 1;
      }
      const QueryEngine& iface = *sharded;  // benches drive the interface

      WallTimer timer;
      const auto results = iface.RunBatch(workload);
      const double seconds = timer.ElapsedSeconds();
      const std::string label =
          std::string(scheme_name) + "/p" + std::to_string(parts);
      if (!bench::BitIdentical(results, baseline, label.c_str())) return 1;

      // Average per-query makespan: the aggregate total_seconds is the max
      // across shards, i.e. the wall time of an idealized parallel fan-out.
      double makespan = 0.0;
      for (const QueryResult& qr : results) makespan += qr.stats.total_seconds;
      makespan /= results.empty() ? 1 : static_cast<double>(results.size());

      std::printf("%9s %6u %8zu %11.2f %11.2f %10.0f %12.3f %13.1f\n",
                  scheme_name, parts, iface.fan_out(), build_seconds * 1e3,
                  seconds * 1e3, q_count / seconds,
                  static_cast<double>(SumDepths(results)) /
                      static_cast<double>(base_depths),
                  makespan * 1e6);
    }
  }

  std::printf(
      "\nevery row is bit-identical to the unsharded engine (exact scores, "
      "ids and order); depth_ratio > 1 is the scatter's extra shallow "
      "pulls, makespan_us the max-across-shards per-query wall time.\n");
  return 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Run(); }
