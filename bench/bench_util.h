// Shared harness for the paper-figure benchmarks: runs one algorithm over
// `seeds` synthetic instances (or a fixed city data set), averages the
// sumDepths and CPU metrics like §4.1 ("we compute both metrics over ten
// different data sets and report the average"), and prints aligned
// paper-style tables.
#ifndef PRJ_BENCH_BENCH_UTIL_H_
#define PRJ_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace bench {

/// One experimental cell: a full parameter setting for a synthetic run.
struct CellConfig {
  int n = 2;            ///< number of relations
  int dim = 2;          ///< feature-space dimensionality d
  double density = 50;  ///< rho
  double skew = 1.0;    ///< rho_1 / rho_2
  int k = 10;           ///< number of results K
  /// Tuples per relation. The strict Appendix D.1 reading (0 = unit-volume
  /// auto mode) leaves only rho tuples per relation, which input-exhausts
  /// the d = 16 and K = 50 cells and masks the bound quality differences
  /// the figures are about; we default to 400 with identical density
  /// semantics instead (see EXPERIMENTS.md, "Deviations").
  int count = 400;
  int seeds = 10;       ///< data sets averaged per cell
  uint64_t seed_base = 1;
  AccessKind kind = AccessKind::kDistance;
  double ws = 1.0, wq = 1.0, wmu = 1.0;
  double time_budget_seconds = 10.0;  ///< per run; DNF when exceeded
  int dominance_period = 0;
  int bound_update_period = 1;
  bool use_generic_qp = false;
};

/// Averages over the seeds of a cell. `dnf` counts runs that tripped the
/// time budget (their partial metrics are excluded from the averages,
/// mirroring how the paper reports CBPA's failure at n = 4).
struct CellResult {
  double sum_depths = 0.0;
  double total_seconds = 0.0;
  double bound_seconds = 0.0;
  double dominance_seconds = 0.0;
  double combinations = 0.0;
  int dnf = 0;
  int runs = 0;
};

/// True when the PRJ_BENCH_SMOKE environment variable is set (non-empty,
/// not "0"). In smoke mode RunSyntheticCell and RunFixedInstance both shrink
/// their cell to smoke-test scale — one seed, count <= 40, K <= 5, time
/// budget <= 2 s — so CTest's bench_smoke targets finish in seconds.
/// Benchmarks that bypass bench_util should consult this flag themselves.
bool SmokeMode();

/// Runs `preset` over every seed of the cell on synthetic data (shrunk first
/// when SmokeMode() is true; see above).
CellResult RunSyntheticCell(const CellConfig& config,
                            const AlgorithmPreset& preset);

/// Runs `preset` once over a fixed problem instance (used by the city
/// benchmark, where the data set itself is the varied parameter). Also
/// subject to the SmokeMode() shrink (K and time budget; the fixed
/// relations themselves are left untouched).
CellResult RunFixedInstance(const std::vector<Relation>& relations,
                            const Vec& query, const CellConfig& config,
                            const AlgorithmPreset& preset);

/// The four algorithms in the paper's plotting order.
const std::vector<AlgorithmPreset>& AllPresets();

/// Exact result-list comparison shared by the checksum-gated benches
/// (shard scaling, cache hit rate): true iff both lists have the same
/// statuses and sizes and every combination matches on exact score and
/// member ids. Prints the first divergence to stderr, prefixed `label`.
bool BitIdentical(const std::vector<QueryResult>& got,
                  const std::vector<QueryResult>& want, const char* label);

/// Formats "12.3" / "0.45(38%)" / "DNF" cells.
std::string FormatDepths(const CellResult& r);
std::string FormatCpu(const CellResult& r);      // total(bound%)
std::string FormatCpuDom(const CellResult& r);   // total(bound%/dom%)

/// Prints one table: header row `param  <algo...>`, then one line per
/// parameter value with pre-formatted cells.
void PrintTable(const std::string& title, const std::string& param_name,
                const std::vector<std::string>& param_values,
                const std::vector<std::string>& algo_names,
                const std::vector<std::vector<std::string>>& cells);

/// Complete figure-pair driver: runs all four algorithms on every cell and
/// prints the sumDepths table (figure `fig_depths`) and the CPU table
/// (figure `fig_cpu`), exactly one row per entry of `values`.
void RunSweep(const std::string& fig_depths, const std::string& fig_cpu,
              const std::string& param_name,
              const std::vector<std::string>& values,
              const std::vector<CellConfig>& configs);

}  // namespace bench
}  // namespace prj

#endif  // PRJ_BENCH_BENCH_UTIL_H_
