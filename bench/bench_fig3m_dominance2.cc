// Figure 3(m): total CPU time of TBRR/TBPA for n = 2 as a function of the
// dominance period in {1, 2, 4, 8, 12, 16, inf}; inf disables the
// dominance test. Cells show total seconds with the shares spent in
// updateBound (b) and in the dominance LPs (d) -- the paper's stacked bars.
#include "bench_util.h"

int main() {
  using namespace prj::bench;
  const std::vector<int> periods = {1, 2, 4, 8, 12, 16, 0};  // 0 == inf
  const std::vector<prj::AlgorithmPreset> algos = {prj::kTBRR, prj::kTBPA};
  // Two solver regimes: the paper's off-the-shelf QP (where skipping
  // dominated partials saves real work) and our closed-form water-filling
  // (so cheap that the dominance LPs rarely pay off; see EXPERIMENTS.md).
  for (bool generic_qp : {true, false}) {
    std::vector<std::string> labels;
    std::vector<std::vector<std::string>> cells;
    std::vector<std::string> algo_names = {"TBRR", "TBPA"};
    for (int period : periods) {
      CellConfig c;
      c.n = 2;
      c.dominance_period = period;
      c.use_generic_qp = generic_qp;
      labels.push_back(period == 0 ? "inf" : std::to_string(period));
      std::vector<std::string> row;
      for (const auto& preset : algos) {
        row.push_back(FormatCpuDom(RunSyntheticCell(c, preset)));
      }
      cells.push_back(std::move(row));
    }
    PrintTable(
        std::string("Figure 3(m): CPU vs dominance period, n=2, ") +
            (generic_qp ? "generic QP solver (paper's regime)"
                        : "water-filling solver") +
            "  [total seconds (updateBound share / dominance share)]",
        "period", labels, algo_names, cells);
  }
  return 0;
}
