// Figure 3(a) + 3(d): sumDepths and total CPU time vs. the number of top
// results K in {1, 10, 50}, other parameters at the paper's defaults
// (d=2, rho=50, skew=1, n=2), averaged over ten synthetic data sets.
#include "bench_util.h"

int main() {
  using namespace prj::bench;
  const std::vector<int> ks = {1, 10, 50};
  std::vector<std::string> labels;
  std::vector<CellConfig> configs;
  for (int k : ks) {
    CellConfig c;
    c.k = k;
    labels.push_back("K=" + std::to_string(k));
    configs.push_back(c);
  }
  RunSweep("Figure 3(a): sumDepths vs K", "Figure 3(d): CPU vs K", "K",
           labels, configs);
  return 0;
}
