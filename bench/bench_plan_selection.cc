// Adaptive plan selection win on a mixed workload, end to end through
// PlannedEngine.
//
// The workload is the planner's raison d'etre: half the queries are
// localized (near a data point -- shard pruning and the R-tree frontier
// win), half uniform over the domain (pruning overhead loses; flat pulls
// win). No single fixed plan is best everywhere, so an engine pinned to
// one plan leaves latency on the table somewhere. The bench runs every
// fixed plan (PlannedEngine::TopKWithPlan) and the planner (TopK) over
// the same query set and compares total wall time.
//
// Gates (exit 1, failing the Release CI step):
//   * exactness -- every plan's answer and the planner's answer are
//     bit-identical to an unplanned reference Engine, per query;
//   * planned total time >= 0.95x the best fixed plan's (0.80x under
//     PRJ_BENCH_SMOKE: tiny queries make the per-query planning cost
//     proportionally larger and the timings noisier);
//   * planned total time strictly below the worst fixed plan's.
//
// Emits BENCH_plan_selection.json (cwd-relative; run from the repo root
// to land it there, which is where CI uploads from).
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "plan/planned_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

uint64_t Checksum(uint64_t seed, const std::vector<ResultCombination>& rows) {
  uint64_t h = seed ? seed : 1469598103934665603ull;
  for (const ResultCombination& row : rows) {
    h = (h ^ DoubleBits(row.score)) * 1099511628211ull;
    for (const Tuple& t : row.tuples) {
      h = (h ^ static_cast<uint64_t>(t.id)) * 1099511628211ull;
    }
  }
  return h;
}

int Run() {
  const bool smoke = bench::SmokeMode();
  const int count = smoke ? 1500 : 8000;
  const int q_count = smoke ? 24 : 120;
  const int reps = smoke ? 2 : 3;
  const int k = 10;
  const double gate_ratio = smoke ? 0.80 : 0.95;

  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = 41;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);

  auto reference = Engine::Create(rels, AccessKind::kDistance, &scoring);
  if (!reference.ok()) {
    std::fprintf(stderr, "Engine::Create failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }

  PlannedEngineOptions options;
  options.sharded.partitions_per_relation = 2;
  options.sharded.scatter_threads = 4;
  std::string coefficients_source = "defaults";
  auto coefficients = PlanCoefficients::LoadFile("plan_coefficients.json");
  if (coefficients.ok()) {
    options.coefficients = *coefficients;
    coefficients_source = "plan_coefficients.json";
  }
  auto planned =
      PlannedEngine::Create(rels, AccessKind::kDistance, &scoring, options);
  if (!planned.ok()) {
    std::fprintf(stderr, "PlannedEngine::Create failed: %s\n",
                 planned.status().ToString().c_str());
    return 1;
  }
  const size_t num_plans = planned->num_plans();

  // Mixed workload: even queries localized near a data tuple, odd ones
  // uniform over the whole domain.
  const double side = CubeSide(spec);
  Rng rng(97);
  std::vector<Vec> queries;
  queries.reserve(static_cast<size_t>(q_count));
  for (int qi = 0; qi < q_count; ++qi) {
    if (qi % 2 == 0) {
      const auto& tuples = rels[0].tuples();
      Vec q = tuples[rng.NextBounded(tuples.size())].x;
      for (int d = 0; d < q.dim(); ++d) q[d] += rng.Uniform(-0.02, 0.02) * side;
      queries.push_back(std::move(q));
    } else {
      queries.push_back(rng.UniformInCube(2, -0.5 * side, 0.5 * side));
    }
  }

  ProxRJOptions topk_options;
  topk_options.k = k;
  topk_options.Apply(kTBPA);

  std::printf(
      "plan_selection: n=2, %d tuples/relation, %d queries "
      "(localized/uniform mix), K=%d, %zu fixed plans + planner, "
      "coefficients: %s\n\n",
      count, q_count, k, num_plans, coefficients_source.c_str());

  // Warmup + exactness pass: every plan and the planner against the
  // unplanned reference, per query, bit for bit.
  uint64_t checksum = 0;
  std::map<std::string, int> picks;
  int mispredicted = 0;
  std::vector<double> query_plan_seconds(num_plans, 0.0);
  for (int qi = 0; qi < q_count; ++qi) {
    auto want = reference->TopK(queries[static_cast<size_t>(qi)], topk_options);
    if (!want.ok()) return 1;
    size_t fastest_plan = 0;
    double fastest_seconds = 0.0;
    for (size_t p = 0; p < num_plans; ++p) {
      WallTimer timer;
      auto got = planned->TopKWithPlan(p, queries[static_cast<size_t>(qi)],
                                       topk_options);
      const double seconds = timer.ElapsedSeconds();
      std::string why;
      if (!got.ok() || !BitIdenticalResults(*got, *want, &why)) {
        std::fprintf(stderr, "FAIL: plan %s diverges on query %d: %s\n",
                     planned->plan(p).name().c_str(), qi, why.c_str());
        return 1;
      }
      query_plan_seconds[p] += seconds;
      if (p == 0 || seconds < fastest_seconds) {
        fastest_seconds = seconds;
        fastest_plan = p;
      }
    }
    ExecStats stats;
    auto got =
        planned->TopK(queries[static_cast<size_t>(qi)], topk_options, &stats);
    std::string why;
    if (!got.ok() || !BitIdenticalResults(*got, *want, &why)) {
      std::fprintf(stderr, "FAIL: planner diverges on query %d: %s\n", qi,
                   why.c_str());
      return 1;
    }
    if (stats.planned_backend.empty() || stats.plan_cost_estimate <= 0.0 ||
        stats.plan_alternatives_considered != num_plans) {
      std::fprintf(stderr,
                   "FAIL: planner accounting missing on query %d "
                   "(backend '%s', estimate %g, alternatives %u)\n",
                   qi, stats.planned_backend.c_str(), stats.plan_cost_estimate,
                   stats.plan_alternatives_considered);
      return 1;
    }
    ++picks[stats.planned_backend];
    if (stats.planned_backend != planned->plan(fastest_plan).name()) {
      ++mispredicted;
    }
    checksum = Checksum(checksum, *got);
  }
  std::printf("exactness: all %zu plans + planner == unplanned Engine on "
              "all %d queries\n\n",
              num_plans, q_count);

  // Timed passes: total wall seconds per variant over the whole query
  // set, best of `reps`.
  std::vector<double> fixed_seconds(num_plans, 0.0);
  double planned_seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t p = 0; p < num_plans; ++p) {
      WallTimer timer;
      for (const Vec& query : queries) {
        auto got = planned->TopKWithPlan(p, query, topk_options);
        if (!got.ok()) return 1;
      }
      const double total = timer.ElapsedSeconds();
      if (rep == 0 || total < fixed_seconds[p]) fixed_seconds[p] = total;
    }
    WallTimer timer;
    for (const Vec& query : queries) {
      auto got = planned->TopK(query, topk_options);
      if (!got.ok()) return 1;
    }
    const double total = timer.ElapsedSeconds();
    if (rep == 0 || total < planned_seconds) planned_seconds = total;
  }

  size_t best_plan = 0, worst_plan = 0;
  for (size_t p = 1; p < num_plans; ++p) {
    if (fixed_seconds[p] < fixed_seconds[best_plan]) best_plan = p;
    if (fixed_seconds[p] > fixed_seconds[worst_plan]) worst_plan = p;
  }

  std::printf("%26s %12s\n", "variant", "total ms");
  for (size_t p = 0; p < num_plans; ++p) {
    std::printf("%26s %12.2f%s\n", planned->plan(p).name().c_str(),
                1e3 * fixed_seconds[p],
                p == best_plan ? "  <- best fixed"
                               : (p == worst_plan ? "  <- worst fixed" : ""));
  }
  std::printf("%26s %12.2f\n\n", "planned (adaptive)", 1e3 * planned_seconds);
  std::printf("planner picks:");
  for (const auto& [name, n] : picks) std::printf("  %s x%d", name.c_str(), n);
  std::printf("\nmispredicted fastest plan on %d of %d queries\n", mispredicted,
              q_count);
  std::printf("checksum %016" PRIx64 "\n\n", checksum);

  bool failed = false;
  if (planned_seconds * gate_ratio > fixed_seconds[best_plan]) {
    std::fprintf(stderr,
                 "FAIL: planned %.2fms is not within %.0f%% of the best "
                 "fixed plan %s (%.2fms)\n",
                 1e3 * planned_seconds, 100.0 * gate_ratio,
                 planned->plan(best_plan).name().c_str(),
                 1e3 * fixed_seconds[best_plan]);
    failed = true;
  }
  if (planned_seconds >= fixed_seconds[worst_plan]) {
    std::fprintf(stderr,
                 "FAIL: planned %.2fms is not faster than the worst fixed "
                 "plan %s (%.2fms)\n",
                 1e3 * planned_seconds,
                 planned->plan(worst_plan).name().c_str(),
                 1e3 * fixed_seconds[worst_plan]);
    failed = true;
  }
  if (!failed) {
    std::printf("gates: planned within %.0f%% of best fixed plan (%s) and "
                "%.1fx faster than worst (%s)\n",
                100.0 * gate_ratio, planned->plan(best_plan).name().c_str(),
                fixed_seconds[worst_plan] / planned_seconds,
                planned->plan(worst_plan).name().c_str());
  }

  std::FILE* f = std::fopen("BENCH_plan_selection.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_plan_selection.json\n");
  } else {
    std::fprintf(f,
                 "{\n"
                 "  \"smoke\": %s,\n"
                 "  \"queries\": %d,\n"
                 "  \"k\": %d,\n"
                 "  \"coefficients\": \"%s\",\n"
                 "  \"plans\": [",
                 smoke ? "true" : "false", q_count, k,
                 coefficients_source.c_str());
    for (size_t p = 0; p < num_plans; ++p) {
      std::fprintf(f, "%s\n    {\"name\": \"%s\", \"total_ms\": %.3f}",
                   p ? "," : "", planned->plan(p).name().c_str(),
                   1e3 * fixed_seconds[p]);
    }
    std::fprintf(f,
                 "\n  ],\n"
                 "  \"planned_ms\": %.3f,\n"
                 "  \"best_fixed_ms\": %.3f,\n"
                 "  \"worst_fixed_ms\": %.3f,\n"
                 "  \"planned_over_best\": %.4f,\n"
                 "  \"mispredicted\": %d,\n"
                 "  \"checksum\": \"%016" PRIx64 "\"\n"
                 "}\n",
                 1e3 * planned_seconds, 1e3 * fixed_seconds[best_plan],
                 1e3 * fixed_seconds[worst_plan],
                 planned_seconds / fixed_seconds[best_plan], mispredicted,
                 checksum);
    std::fclose(f);
    std::printf("wrote BENCH_plan_selection.json\n");
  }
  return failed ? 1 : 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Run(); }
