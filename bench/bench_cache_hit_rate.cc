// Cache hit rate and hit-path speedup of the CachedEngine decorator under
// a skewed (repeat-heavy) workload, served through the Server front end.
//
// A pool of D distinct requests is sampled Q times with a bias toward low
// pool indices (min of two uniform draws), modelling the head-heavy query
// distribution a public service sees. The workload runs twice through a
// Server over a CachedEngine: the first pass mixes misses and hits, the
// second is fully warm. Reported per pass: wall time, q/s, hit rate from
// ServerStats (the engine's counters surfaced through the QueryEngine
// interface), and the warm-over-cold speedup.
//
// Gates (exit 1, failing the Release CI step):
//   * every cached result must be bit-identical to the undecorated
//     engine's answer for the same request (hit path exactness);
//   * the measured hit rate must be > 0 after pass 1 and equal to 1 in
//     pass 2 (every warm query hits).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cache/cached_engine.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "server/server.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

int Run() {
  const bool smoke = bench::SmokeMode();
  const int n = 2;
  const int count = smoke ? 1500 : 8000;
  const int pool_size = smoke ? 12 : 48;
  const int q_count = smoke ? 64 : 512;

  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = 23;
  const auto rels = GenerateProblem(n, spec);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);

  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  if (!engine.ok()) {
    std::fprintf(stderr, "Engine::Create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  Rng rng(7);
  std::vector<QueryRequest> pool;
  pool.reserve(static_cast<size_t>(pool_size));
  for (int i = 0; i < pool_size; ++i) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.0, 1.0);
    req.options.k = 10;
    req.options.Apply(kTBPA);
    pool.push_back(std::move(req));
  }
  std::vector<QueryRequest> workload;
  workload.reserve(static_cast<size_t>(q_count));
  for (int i = 0; i < q_count; ++i) {
    // Head-heavy: min of two uniform draws biases toward low indices.
    const uint64_t a = rng.NextBounded(static_cast<uint64_t>(pool_size));
    const uint64_t b = rng.NextBounded(static_cast<uint64_t>(pool_size));
    workload.push_back(pool[static_cast<size_t>(std::min(a, b))]);
  }

  // Per-pool-entry baseline from the undecorated engine, expanded to one
  // expected result per workload entry: the exactness reference for every
  // cached answer.
  const auto baseline = engine->RunBatch(pool);
  std::vector<QueryResult> expected;
  expected.reserve(workload.size());
  for (const QueryRequest& req : workload) {
    for (size_t p = 0; p < pool.size(); ++p) {
      if (CanonicalRequestEqual(pool[p], req)) {
        expected.push_back(baseline[p]);
        break;
      }
    }
  }

  CachedEngine cached(&*engine);
  ServerOptions server_opts;
  server_opts.num_workers = 4;
  server_opts.queue_capacity = static_cast<size_t>(q_count);
  Server server(&cached, server_opts);

  std::printf(
      "cache_hit_rate: Server(4 workers) over CachedEngine over Engine "
      "(n=%d, %d tuples/relation, pool=%d distinct, Q=%d, K=10, TBPA)\n\n",
      n, count, pool_size, q_count);
  std::printf("%6s %10s %10s %10s %10s %10s\n", "pass", "total_ms", "q/s",
              "hits", "misses", "hit_rate");

  double cold_seconds = 0.0, warm_seconds = 0.0;
  uint64_t prev_hits = 0, prev_misses = 0;
  for (int pass = 1; pass <= 2; ++pass) {
    WallTimer timer;
    const auto results = server.SubmitBatch(workload);
    const double seconds = timer.ElapsedSeconds();
    if (pass == 1) cold_seconds = seconds;
    if (pass == 2) warm_seconds = seconds;

    // Exactness gate: every answer equals the undecorated baseline.
    const std::string label = "pass " + std::to_string(pass);
    if (!bench::BitIdentical(results, expected, label.c_str())) return 1;

    const ServerStats stats = server.Stats();
    const uint64_t pass_hits = stats.cache_hits - prev_hits;
    const uint64_t pass_misses = stats.cache_misses - prev_misses;
    prev_hits = stats.cache_hits;
    prev_misses = stats.cache_misses;
    const double hit_rate =
        static_cast<double>(pass_hits) /
        static_cast<double>(pass_hits + pass_misses);
    std::printf("%6d %10.2f %10.0f %10llu %10llu %9.1f%%\n", pass,
                seconds * 1e3, q_count / seconds,
                static_cast<unsigned long long>(pass_hits),
                static_cast<unsigned long long>(pass_misses),
                hit_rate * 100.0);

    if (pass == 1 && pass_hits == 0) {
      std::fprintf(stderr,
                   "FAIL: zero cache hits on a workload with %d distinct "
                   "requests over %d queries\n",
                   pool_size, q_count);
      return 1;
    }
    if (pass == 2 && pass_misses != 0) {
      std::fprintf(stderr,
                   "FAIL: %llu misses on the fully warm pass (expected 0)\n",
                   static_cast<unsigned long long>(pass_misses));
      return 1;
    }
  }

  std::printf(
      "\nwarm/cold speedup: %.2fx; every answer bit-identical to the "
      "undecorated engine.\n",
      cold_seconds / warm_seconds);
  return 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Run(); }
