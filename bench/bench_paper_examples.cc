// Regenerates the paper's worked examples: Table 1 (combination scores),
// Table 3 (partial-combination bounds t(tau) and t_M), Example 3.1 (corner
// vs tight bound), Example 3.2 / Figure 1(b) (optimal unseen locations),
// and Figure 2 / Example 3.3 (dominance regions of PC({2,3})).
#include <cmath>
#include <cstdio>

#include "core/brute_force.h"
#include "core/dominance.h"
#include "core/tight_bound.h"

namespace prj {
namespace {

std::vector<Relation> Table1Relations() {
  Relation r1("R1", 2), r2("R2", 2), r3("R3", 2);
  r1.Add(0, 0.5, Vec{0.0, -0.5});
  r1.Add(1, 1.0, Vec{0.0, 1.0});
  r2.Add(0, 1.0, Vec{1.0, 1.0});
  r2.Add(1, 0.8, Vec{-2.0, 2.0});
  r3.Add(0, 1.0, Vec{-1.0, 1.0});
  r3.Add(1, 0.4, Vec{-2.0, -2.0});
  return {r1, r2, r3};
}

void PrintTable1(const std::vector<Relation>& rels,
                 const SumLogEuclideanScoring& scoring, const Vec& q) {
  std::printf("== Table 1: the 8 combinations sorted by aggregate score ==\n");
  const auto all = BruteForceTopK(rels, scoring, q, 8);
  for (const auto& rc : all) {
    std::printf("  tau_1^(%lld) x tau_2^(%lld) x tau_3^(%lld)   S = %6.1f\n",
                static_cast<long long>(rc.tuples[0].id + 1),
                static_cast<long long>(rc.tuples[1].id + 1),
                static_cast<long long>(rc.tuples[2].id + 1), rc.score);
  }
}

void PrintTable3(const std::vector<Relation>& rels,
                 const SumLogEuclideanScoring& scoring, const Vec& q) {
  std::printf("\n== Table 3: t(tau) and t_M for every partial combination ==\n");
  const std::vector<double> sigma_max = {1.0, 1.0, 1.0};
  const std::vector<double> deltas = {1.0, 2.0 * std::sqrt(2.0),
                                      2.0 * std::sqrt(2.0)};
  double t_final = -1e300;
  for (uint32_t mask = 0; mask < 7; ++mask) {
    double t_m = -1e300;
    std::vector<int> members;
    for (int j = 0; j < 3; ++j) {
      if (mask & (1u << j)) members.push_back(j);
    }
    std::printf("  M = {");
    for (size_t a = 0; a < members.size(); ++a) {
      std::printf("%s%d", a ? "," : "", members[a] + 1);
    }
    std::printf("}\n");
    std::vector<uint32_t> idx(members.size(), 0);
    for (;;) {
      std::vector<const Tuple*> tuples;
      std::printf("    tau = ");
      if (members.empty()) std::printf("<>");
      for (size_t a = 0; a < members.size(); ++a) {
        tuples.push_back(&rels[static_cast<size_t>(members[a])].tuple(idx[a]));
        std::printf("%stau_%d^(%u)", a ? " x " : "", members[a] + 1,
                    idx[a] + 1);
      }
      const double t = TightPartialBoundDistance(scoring, q, 3, mask, tuples,
                                                 sigma_max, deltas);
      t_m = std::max(t_m, t);
      std::printf("   t(tau) = %6.1f\n", t);
      size_t a = 0;
      for (; a < members.size(); ++a) {
        if (++idx[a] < 2) break;
        idx[a] = 0;
      }
      if (a == members.size()) break;
      if (members.empty()) break;
    }
    std::printf("    t_M = %6.1f\n", t_m);
    t_final = std::max(t_final, t_m);
  }
  std::printf("  tight bound t = %.1f  (corner bound t_c = -5.0, Example "
              "3.1: only the tight bound certifies the top-1)\n",
              t_final);
}

void PrintExample32(const std::vector<Relation>& rels,
                    const SumLogEuclideanScoring& scoring, const Vec& q) {
  std::printf("\n== Example 3.2 / Figure 1(b): optimal unseen locations ==\n");
  const std::vector<double> sigma_max = {1.0, 1.0, 1.0};
  const std::vector<double> deltas = {1.0, 2.0 * std::sqrt(2.0),
                                      2.0 * std::sqrt(2.0)};
  {
    std::vector<Vec> y;
    const double t = TightPartialBoundDistance(
        scoring, q, 3, 0b010, {&rels[1].tuple(0)}, sigma_max, deltas, nullptr,
        &y);
    std::printf("  partial tau_2^(1):        y_1* = %s, y_3* = %s, t = %.1f\n",
                y[0].ToString().c_str(), y[2].ToString().c_str(), t);
  }
  {
    std::vector<Vec> y;
    const double t = TightPartialBoundDistance(
        scoring, q, 3, 0b101, {&rels[0].tuple(0), &rels[2].tuple(0)},
        sigma_max, deltas, nullptr, &y);
    std::printf("  partial tau_1^(1)xtau_3^(1): y_2* = %s, t = %.1f\n",
                y[1].ToString().c_str(), t);
  }
}

void PrintFigure2(const std::vector<Relation>& rels,
                  const SumLogEuclideanScoring& /*scoring*/, const Vec& q) {
  std::printf("\n== Figure 2 / Example 3.3: dominance of PC({2,3}) ==\n");
  std::vector<DominanceEntry> entries;
  std::vector<std::string> names;
  for (uint32_t i2 = 0; i2 < 2; ++i2) {
    for (uint32_t i3 = 0; i3 < 2; ++i3) {
      const Tuple& t2 = rels[1].tuple(i2);
      const Tuple& t3 = rels[2].tuple(i3);
      DominanceEntry e;
      Vec nu = (t2.x + t3.x) / 2.0 - q;
      e.nu_centered = nu;
      const double base =
          std::log(t2.score) + std::log(t3.score) -
          2.0 * (t2.x.SquaredDistance(q) + t3.x.SquaredDistance(q));
      e.c = base + (1.0 * 4.0 / 3.0) * nu.SquaredNorm();
      entries.push_back(e);
      names.push_back("tau_2^(" + std::to_string(i2 + 1) + ")xtau_3^(" +
                      std::to_string(i3 + 1) + ")");
    }
  }
  const double b_scale = -1.0 * (3 - 2) * 2.0 / 3.0;
  std::vector<bool> active(entries.size(), true);
  uint64_t lp = 0;
  for (size_t a = 0; a < entries.size(); ++a) {
    const bool dominated =
        PartialIsDominated(a, entries, active, b_scale, &lp);
    std::printf("  %-18s  region normal b = %s  %s\n", names[a].c_str(),
                (entries[a].nu_centered * b_scale).ToString().c_str(),
                dominated ? "DOMINATED" : "non-dominated (region non-empty)");
  }
  std::printf("  (the paper: 'Here, no partial combination is dominated.')\n");
}

}  // namespace
}  // namespace prj

int main() {
  using namespace prj;
  const auto rels = Table1Relations();
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  const Vec q{0.0, 0.0};
  PrintTable1(rels, scoring, q);
  PrintTable3(rels, scoring, q);
  PrintExample32(rels, scoring, q);
  PrintFigure2(rels, scoring, q);
  return 0;
}
