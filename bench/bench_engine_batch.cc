// Cold-start vs amortized execution over repeated queries: the point of
// the reusable Engine. For each batch size Q we run the same Q random
// queries twice on the R-tree distance backend:
//
//   cold -- Q independent RunProxRJ calls, each rebuilding every
//           per-relation R-tree (index builds grow as Q * n);
//   warm -- one Engine::Create (n index builds, independent of Q)
//           followed by Q Engine::TopK calls over the shared catalog.
//
// The table reports the index-build counts, total and per-query wall
// times, and the cold/warm speedup. PRJ_BENCH_SMOKE=1 shrinks the
// relations and batch sizes to smoke-test scale.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

int Run() {
  const bool smoke = bench::SmokeMode();
  const int n = 2;
  const int dim = 2;
  // Even in smoke mode the relations stay large enough that the per-query
  // index build dominates cold latency by several times: the warm-beats-cold
  // gate below then has a real margin and scheduler noise cannot flip it.
  const int count = smoke ? 2000 : 10000;
  const std::vector<int> batch_sizes =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16, 64};

  SyntheticSpec spec;
  spec.dim = dim;
  spec.count = count;
  spec.density = 50;
  spec.seed = 7;
  const auto rels = GenerateProblem(n, spec);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);

  ProxRJOptions opts;
  opts.k = 10;
  opts.Apply(kTBPA);
  opts.backend = SourceBackend::kRTree;

  std::printf(
      "engine_batch: cold RunProxRJ vs warm Engine reuse "
      "(distance access, R-tree backend, n=%d, %d tuples/relation, K=%d)\n\n",
      n, count, opts.k);
  std::printf("%6s %12s %12s %14s %14s %14s %16s %9s\n", "Q", "cold_builds",
              "warm_builds", "cold_total_ms", "warm_build_ms", "warm_query_ms",
              "warm_query_us/Q", "speedup");

  bool amortized = true;
  for (const int q_count : batch_sizes) {
    Rng rng(99);  // same query sequence for every row and both modes
    std::vector<Vec> queries;
    queries.reserve(static_cast<size_t>(q_count));
    for (int i = 0; i < q_count; ++i) {
      queries.push_back(rng.UniformInCube(dim, -1.0, 1.0));
    }

    WallTimer cold_timer;
    size_t cold_checksum = 0;
    for (const Vec& q : queries) {
      ExecStats stats;
      auto result = RunProxRJ(rels, AccessKind::kDistance, scoring, q, opts,
                              &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "cold run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      cold_checksum += stats.sum_depths;
    }
    const double cold_seconds = cold_timer.ElapsedSeconds();

    WallTimer build_timer;
    auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
    const double build_seconds = build_timer.ElapsedSeconds();
    if (!engine.ok()) {
      std::fprintf(stderr, "Engine::Create failed: %s\n",
                   engine.status().ToString().c_str());
      return 1;
    }

    WallTimer warm_timer;
    size_t warm_checksum = 0;
    for (const Vec& q : queries) {
      ExecStats stats;
      auto result = engine->TopK(q, opts, &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "warm run failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      warm_checksum += stats.sum_depths;
    }
    const double warm_seconds = warm_timer.ElapsedSeconds();

    if (warm_checksum != cold_checksum) {
      std::fprintf(stderr,
                   "checksum mismatch: cold sumDepths %zu != warm %zu\n",
                   cold_checksum, warm_checksum);
      return 1;
    }

    const double warm_total = build_seconds + warm_seconds;
    const double speedup = warm_total > 0 ? cold_seconds / warm_total : 0.0;
    std::printf("%6d %12d %12d %14.2f %14.2f %14.2f %16.1f %8.1fx\n", q_count,
                q_count * n, n, cold_seconds * 1e3, build_seconds * 1e3,
                warm_seconds * 1e3, warm_seconds * 1e6 / q_count, speedup);
    // Gate on the largest batch only: it averages the most queries, so a
    // single scheduler hiccup cannot decide the verdict.
    if (q_count == batch_sizes.back() && q_count > 1 &&
        warm_seconds / q_count >= cold_seconds / q_count) {
      amortized = false;
    }
  }

  std::printf(
      "\nwarm_builds stays at n=%d for every Q (index work independent of "
      "the batch size); cold_builds grows as Q*n.\n",
      n);
  if (!amortized) {
    // Fail the run (and the Release CI step) rather than just warn: the
    // whole point of the Engine is that warm queries skip the per-query
    // index build, so losing to cold is a regression, not a shrug.
    std::fprintf(stderr,
                 "FAIL: warm per-query latency did not beat cold RunProxRJ\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Run(); }
