// Figure 3(n): total CPU time of TBRR/TBPA for n = 3 as a function of the
// dominance period; the paper reports that for n = 3 dominance is always
// beneficial, with ~35% CPU saved at period 8.
#include "bench_util.h"

int main() {
  using namespace prj::bench;
  const std::vector<int> periods = {1, 2, 4, 8, 12, 16, 0};  // 0 == inf
  const std::vector<prj::AlgorithmPreset> algos = {prj::kTBRR, prj::kTBPA};
  for (bool generic_qp : {true, false}) {
    std::vector<std::string> labels;
    std::vector<std::vector<std::string>> cells;
    std::vector<std::string> algo_names = {"TBRR", "TBPA"};
    for (int period : periods) {
      CellConfig c;
      c.n = 3;
      c.seeds = 5;  // n = 3 cells are heavier; fewer repetitions suffice
      c.dominance_period = period;
      c.use_generic_qp = generic_qp;
      labels.push_back(period == 0 ? "inf" : std::to_string(period));
      std::vector<std::string> row;
      for (const auto& preset : algos) {
        row.push_back(FormatCpuDom(RunSyntheticCell(c, preset)));
      }
      cells.push_back(std::move(row));
    }
    PrintTable(
        std::string("Figure 3(n): CPU vs dominance period, n=3, ") +
            (generic_qp ? "generic QP solver (paper's regime)"
                        : "water-filling solver") +
            "  [total seconds (updateBound share / dominance share)]",
        "period", labels, algo_names, cells);
  }
  return 0;
}
