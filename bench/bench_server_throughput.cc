// Aggregate serving throughput of the concurrent Server front end: a
// threads x batch sweep over one shared Engine.
//
// For each worker count W we stand up a Server over the same immutable
// engine, fan the same Q-query workload through SubmitBatch, and report
// wall time, queries/second, speedup over the 1-worker row, p50/p99
// latency from the server's streaming histogram, and the queue-depth
// high-water mark. A serial Engine::RunBatch pass provides both the
// correctness checksum (total sumDepths must match every row exactly:
// concurrency must not change what is computed) and the serial reference
// time.
//
// Gates (exit 1, failing the Release CI step):
//   * any checksum mismatch between a concurrent row and the serial pass;
//   * full mode on >= 8 hardware threads: 8 workers must reach >= 3x the
//     1-worker throughput;
//   * smoke mode (PRJ_BENCH_SMOKE=1) on >= 4 hardware threads: the widest
//     row must beat 1 worker at all (> 1.2x) -- a loose bound that still
//     catches an accidentally serialized pool without being flaky on
//     small CI machines.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "server/server.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

int Run() {
  const bool smoke = bench::SmokeMode();
  const unsigned hw = std::thread::hardware_concurrency();
  const int n = 2;
  const int dim = 2;
  const int count = smoke ? 2000 : 10000;
  const int q_count = smoke ? 64 : 256;
  const std::vector<int> worker_counts = {1, 2, 4, 8};

  SyntheticSpec spec;
  spec.dim = dim;
  spec.count = count;
  spec.density = 50;
  spec.seed = 7;
  const auto rels = GenerateProblem(n, spec);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);

  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  if (!engine.ok()) {
    std::fprintf(stderr, "Engine::Create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  Rng rng(99);
  std::vector<QueryRequest> workload;
  workload.reserve(static_cast<size_t>(q_count));
  for (int i = 0; i < q_count; ++i) {
    QueryRequest req;
    req.query = rng.UniformInCube(dim, -1.0, 1.0);
    req.options.k = 10;
    req.options.Apply(kTBPA);
    workload.push_back(std::move(req));
  }

  // Serial reference: correctness checksum + baseline latency.
  WallTimer serial_timer;
  const auto serial = engine->RunBatch(workload);
  const double serial_seconds = serial_timer.ElapsedSeconds();
  uint64_t serial_checksum = 0;
  for (const QueryResult& qr : serial) {
    if (!qr.ok()) {
      std::fprintf(stderr, "serial run failed: %s\n",
                   qr.status.ToString().c_str());
      return 1;
    }
    serial_checksum += qr.stats.sum_depths;
  }

  std::printf(
      "server_throughput: SubmitBatch over one shared Engine "
      "(distance access, R-tree backend, n=%d, %d tuples/relation, Q=%d, "
      "K=10, hw_threads=%u)\n",
      n, count, q_count, hw);
  std::printf("serial Engine::RunBatch: %.2f ms (%.0f q/s)\n\n",
              serial_seconds * 1e3, q_count / serial_seconds);
  std::printf("%8s %12s %12s %9s %10s %10s %11s\n", "workers", "total_ms",
              "queries/s", "speedup", "p50_ms", "p99_ms", "queue_hwm");

  double single_worker_qps = 0.0;
  double widest_speedup = 0.0;
  double eight_worker_speedup = 0.0;
  for (const int workers : worker_counts) {
    ServerOptions opts;
    opts.num_workers = workers;
    opts.queue_capacity = static_cast<size_t>(q_count);
    Server server(&*engine, opts);
    WallTimer timer;
    const auto results = server.SubmitBatch(workload);
    const double seconds = timer.ElapsedSeconds();

    uint64_t checksum = 0;
    for (const QueryResult& qr : results) {
      if (!qr.ok()) {
        std::fprintf(stderr, "concurrent run failed: %s\n",
                     qr.status.ToString().c_str());
        return 1;
      }
      checksum += qr.stats.sum_depths;
    }
    if (checksum != serial_checksum) {
      std::fprintf(stderr,
                   "FAIL: checksum mismatch at %d workers: serial sumDepths "
                   "%llu != concurrent %llu\n",
                   workers, static_cast<unsigned long long>(serial_checksum),
                   static_cast<unsigned long long>(checksum));
      return 1;
    }

    const ServerStats stats = server.Stats();
    const double qps = q_count / seconds;
    if (workers == 1) single_worker_qps = qps;
    const double speedup = single_worker_qps > 0 ? qps / single_worker_qps : 0;
    if (workers == worker_counts.back()) widest_speedup = speedup;
    if (workers == 8) eight_worker_speedup = speedup;
    std::printf("%8d %12.2f %12.0f %8.2fx %10.3f %10.3f %11zu\n", workers,
                seconds * 1e3, qps, speedup, stats.latency_p50_seconds * 1e3,
                stats.latency_p99_seconds * 1e3, stats.queue_high_water);
  }

  std::printf(
      "\nevery row computes the identical answers (sumDepths checksum == "
      "serial run); speedup is against the 1-worker row.\n");

  if (!smoke && hw >= 8 && eight_worker_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: 8 workers reached only %.2fx single-worker "
                 "throughput on %u hardware threads (need >= 3x)\n",
                 eight_worker_speedup, hw);
    return 1;
  }
  if (smoke && hw >= 4 && widest_speedup < 1.2) {
    std::fprintf(stderr,
                 "FAIL: %d workers reached only %.2fx single-worker "
                 "throughput on %u hardware threads (need > 1.2x)\n",
                 worker_counts.back(), widest_speedup, hw);
    return 1;
  }
  if (hw < 8) {
    std::printf(
        "note: only %u hardware threads; the >= 3x @ 8 workers gate needs "
        ">= 8 and was not enforced.\n",
        hw);
  }
  return 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Run(); }
