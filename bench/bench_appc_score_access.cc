// Appendix C companion experiment (no figure in the paper): the same
// K-sweep as Figure 3(a)/(d) but under score-based access, exercising the
// corner bound (36) and the tight bound (40) with the closed form (41).
#include "bench_util.h"

int main() {
  using namespace prj::bench;
  std::vector<std::string> labels;
  std::vector<CellConfig> configs;
  for (int k : {1, 10, 50}) {
    CellConfig c;
    c.k = k;
    c.kind = prj::AccessKind::kScore;
    labels.push_back("K=" + std::to_string(k));
    configs.push_back(c);
  }
  RunSweep("Appendix C: sumDepths vs K (score-based access)",
           "Appendix C: CPU vs K (score-based access)", "K", labels, configs);
  return 0;
}
