// Figure 3(i) + 3(l): the real-data experiment -- hotels, restaurants and
// theaters in five American cities (simulated per Appendix D.2
// substitution; see DESIGN.md), n=3, d=2, K=10, distance-based access from
// a landmark query point.
#include "bench_util.h"
#include "workload/cities.h"

int main() {
  using namespace prj;
  using namespace prj::bench;

  std::vector<std::string> algo_names;
  for (const auto& p : AllPresets()) algo_names.push_back(p.name);
  std::vector<std::string> labels;
  std::vector<std::vector<std::string>> depth_cells, cpu_cells;

  for (const std::string& code : CityCodes()) {
    const CityDataset city = MakeCityDataset(code);
    CellConfig config;
    config.n = 3;
    config.k = 10;
    // The paper's real-data query weights proximity in km; soften the
    // distance penalties so a ~1 km walk is acceptable.
    config.wq = 0.5;
    config.wmu = 0.5;
    labels.push_back(code);
    std::vector<std::string> drow, crow;
    for (const auto& preset : AllPresets()) {
      const CellResult r =
          RunFixedInstance(city.relations, city.query, config, preset);
      drow.push_back(FormatDepths(r));
      crow.push_back(FormatCpu(r));
    }
    depth_cells.push_back(std::move(drow));
    cpu_cells.push_back(std::move(crow));
  }
  PrintTable("Figure 3(i): sumDepths on real data sets", "city", labels,
             algo_names, depth_cells);
  PrintTable("Figure 3(l): CPU on real data sets  [total seconds (share in "
             "updateBound)]",
             "city", labels, algo_names, cpu_cells);
  return 0;
}
