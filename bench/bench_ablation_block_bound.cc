// Ablation for the paper's §4.2 practical remark: "a good trade-off can be
// achieved by recomputing the tight bound only after retrieving blocks of
// tuples". Varies bound_update_period for TBRR/TBPA and reports both
// sumDepths (grows: stale bounds stop later) and CPU (shrinks: fewer
// recomputations).
#include "bench_util.h"

int main() {
  using namespace prj::bench;
  const std::vector<int> periods = {1, 2, 4, 8, 16};
  std::vector<std::string> labels;
  std::vector<std::vector<std::string>> depth_cells, cpu_cells;
  const std::vector<prj::AlgorithmPreset> algos = {prj::kTBRR, prj::kTBPA};
  std::vector<std::string> algo_names = {"TBRR", "TBPA"};
  for (int period : periods) {
    CellConfig c;
    c.n = 2;
    c.bound_update_period = period;
    labels.push_back("B=" + std::to_string(period));
    std::vector<std::string> drow, crow;
    for (const auto& preset : algos) {
      const CellResult r = RunSyntheticCell(c, preset);
      drow.push_back(FormatDepths(r));
      crow.push_back(FormatCpu(r));
    }
    depth_cells.push_back(std::move(drow));
    cpu_cells.push_back(std::move(crow));
  }
  PrintTable("Ablation: sumDepths vs bound-update period (paper §4.2 remark)",
             "period", labels, algo_names, depth_cells);
  PrintTable("Ablation: CPU vs bound-update period", "period", labels,
             algo_names, cpu_cells);
  return 0;
}
