// Live-update benchmark: a pinned dataset served by LiveEngine under a
// mixed update/query workload, with background compaction on and off.
//
// The workload applies U update batches (inserts + deletes of random live
// tuples) to a fixed synthetic instance; after every batch it runs a
// burst of K-queries from a fixed pool. Reported per mode: query latency
// before any update (epoch 1, pure base), query latency on the final
// epoch (deltas at their largest, or folded when compaction kept up),
// apply latency, and the live counters (epoch, residual delta tuples,
// compactions). The same workload runs twice -- compaction off
// (compact_threshold = 0) and on (small threshold, background pool) --
// so the table shows what compaction buys on the query path and costs on
// the write path.
//
// Gates (exit 1, failing the Release CI step):
//   * after the full workload, sampled queries must be bit-identical to
//     a fresh Engine built from the final logical content (the live
//     bit-identity contract, end to end);
//   * with compaction off, the final epoch must be 1 + U and every delta
//     tuple must still be pending (nothing silently folded).
//
// Emits BENCH_live_update.json (cwd-relative; run from the repo root to
// refresh the tracked datapoint) with the per-mode metrics.
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "live/live_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

struct WorkloadSpec {
  int n = 2;
  int count = 4000;       ///< base tuples per relation (pinned dataset)
  int batches = 40;       ///< update batches applied
  int inserts = 25;       ///< inserts per relation per batch
  int deletes = 5;        ///< deletes per relation per batch
  int queries_per_round = 8;
  int k = 10;
  size_t compact_threshold = 600;  ///< for the compaction-on mode
};

struct ModeResult {
  double epoch1_query_ms = 0.0;  ///< avg query latency before any update
  double final_query_ms = 0.0;   ///< avg query latency after the last batch
  double avg_apply_ms = 0.0;
  double total_seconds = 0.0;
  uint64_t final_epoch = 0;
  uint64_t residual_delta_tuples = 0;
  uint64_t compactions = 0;
};

/// Applies `batch` to the plain-relation reference content.
void ApplyToReference(const UpdateBatch& batch,
                      std::vector<Relation>* relations) {
  for (size_t j = 0; j < relations->size(); ++j) {
    const RelationUpdate& update = batch.relations[j];
    const Relation& old = (*relations)[j];
    std::unordered_set<int64_t> dead(update.deletes.begin(),
                                     update.deletes.end());
    Relation next(old.name(), old.dim(), old.sigma_max());
    for (const Tuple& t : old.tuples()) {
      if (dead.count(t.id) == 0) next.Add(t);
    }
    for (const Tuple& t : update.inserts) next.Add(t);
    (*relations)[j] = std::move(next);
  }
}

/// Deterministic update batches over the pinned dataset: fresh ids for
/// inserts (never reused), deletes drawn from the currently live set.
std::vector<UpdateBatch> MakeBatches(const WorkloadSpec& spec,
                                     const std::vector<Relation>& seed) {
  Rng rng(97);
  std::vector<std::vector<int64_t>> live(seed.size());
  for (size_t j = 0; j < seed.size(); ++j) {
    for (const Tuple& t : seed[j].tuples()) live[j].push_back(t.id);
  }
  int64_t next_id = 1000000;
  std::vector<UpdateBatch> batches(static_cast<size_t>(spec.batches));
  for (UpdateBatch& batch : batches) {
    batch.relations.resize(seed.size());
    for (size_t j = 0; j < seed.size(); ++j) {
      for (int i = 0; i < spec.inserts; ++i) {
        batch.relations[j].inserts.push_back(
            Tuple{next_id++, 0.05 + 0.9 * rng.NextDouble(),
                  rng.UniformInCube(2, -1.0, 1.0)});
      }
      for (int i = 0; i < spec.deletes; ++i) {
        const size_t pick = rng.NextBounded(live[j].size());
        batch.relations[j].deletes.push_back(live[j][pick]);
        live[j].erase(live[j].begin() + static_cast<ptrdiff_t>(pick));
      }
      for (const Tuple& t : batch.relations[j].inserts) {
        live[j].push_back(t.id);
      }
    }
  }
  return batches;
}

std::vector<Vec> MakeQueryPool(int size) {
  Rng rng(31);
  std::vector<Vec> pool;
  pool.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    pool.push_back(rng.UniformInCube(2, -1.0, 1.0));
  }
  return pool;
}

/// Runs a query burst, returns average latency in ms. The results of the
/// last burst land in `last_results` for the exactness gate.
double QueryBurst(const LiveEngine& live, const std::vector<Vec>& pool,
                  const WorkloadSpec& spec,
                  std::vector<std::vector<ResultCombination>>* out = nullptr) {
  ProxRJOptions options;
  options.k = spec.k;
  options.Apply(kTBPA);
  if (out) out->clear();
  const WallTimer timer;
  for (int i = 0; i < spec.queries_per_round; ++i) {
    const Vec& q = pool[static_cast<size_t>(i) % pool.size()];
    auto result = live.TopK(q, options);
    if (!result.ok()) {
      std::fprintf(stderr, "TopK failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (out) out->push_back(std::move(*result));
  }
  return timer.ElapsedSeconds() * 1e3 / spec.queries_per_round;
}

int RunMode(bool compaction_on, const WorkloadSpec& spec,
            const std::vector<Relation>& seed,
            const std::vector<UpdateBatch>& batches,
            const std::vector<Vec>& query_pool,
            const ScoringFunction& scoring, ModeResult* result) {
  LiveEngineOptions options;
  options.compact_threshold = compaction_on ? spec.compact_threshold : 0;
  options.compaction_threads = 1;
  auto live_or = LiveEngine::Create(
      seed, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring), options);
  if (!live_or.ok()) {
    std::fprintf(stderr, "LiveEngine::Create failed: %s\n",
                 live_or.status().ToString().c_str());
    return 1;
  }
  LiveEngine& live = **live_or;

  const WallTimer total_timer;
  result->epoch1_query_ms = QueryBurst(live, query_pool, spec);

  double apply_seconds = 0.0;
  std::vector<Relation> content = seed;
  for (const UpdateBatch& batch : batches) {
    const WallTimer apply_timer;
    const Status applied = live.Apply(batch);
    apply_seconds += apply_timer.ElapsedSeconds();
    if (!applied.ok()) {
      std::fprintf(stderr, "Apply failed: %s\n", applied.ToString().c_str());
      return 1;
    }
    ApplyToReference(batch, &content);
    result->final_query_ms = QueryBurst(live, query_pool, spec);
  }
  result->total_seconds = total_timer.ElapsedSeconds();
  result->avg_apply_ms = apply_seconds * 1e3 / batches.size();

  const LiveCounters counters = live.live_counters();
  result->final_epoch = counters.epoch;
  result->residual_delta_tuples = counters.delta_tuples;
  result->compactions = counters.compactions;

  // --- gates ---
  const uint64_t expected_epoch = 1 + batches.size();
  if (counters.epoch != expected_epoch) {
    std::fprintf(stderr, "FAIL: final epoch %llu, expected %llu\n",
                 static_cast<unsigned long long>(counters.epoch),
                 static_cast<unsigned long long>(expected_epoch));
    return 1;
  }
  if (!compaction_on) {
    const uint64_t all_inserts = static_cast<uint64_t>(batches.size()) *
                                 spec.n * static_cast<uint64_t>(spec.inserts);
    if (counters.compactions != 0 || counters.delta_tuples != all_inserts) {
      std::fprintf(stderr,
                   "FAIL: compaction off but %llu compactions ran / %llu of "
                   "%llu delta tuples pending\n",
                   static_cast<unsigned long long>(counters.compactions),
                   static_cast<unsigned long long>(counters.delta_tuples),
                   static_cast<unsigned long long>(all_inserts));
      return 1;
    }
  }
  // Bit-identity, end to end: the final burst against a fresh engine over
  // the final logical content.
  auto fresh = Engine::Create(content, AccessKind::kDistance, &scoring);
  if (!fresh.ok()) {
    std::fprintf(stderr, "reference Engine::Create failed: %s\n",
                 fresh.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<ResultCombination>> live_results;
  QueryBurst(live, query_pool, spec, &live_results);
  ProxRJOptions q_options;
  q_options.k = spec.k;
  q_options.Apply(kTBPA);
  for (int i = 0; i < spec.queries_per_round; ++i) {
    const Vec& q = query_pool[static_cast<size_t>(i) % query_pool.size()];
    auto expected = fresh->TopK(q, q_options);
    if (!expected.ok()) return 1;
    std::string why;
    if (!BitIdenticalResults(live_results[static_cast<size_t>(i)], *expected,
                             &why)) {
      std::fprintf(stderr, "FAIL: live result diverges from fresh engine (%s "
                           "mode, query %d): %s\n",
                   compaction_on ? "compaction" : "no-compaction", i,
                   why.c_str());
      return 1;
    }
  }
  return 0;
}

void PrintMode(const char* name, const ModeResult& r) {
  std::printf("%-14s %12.3f %12.3f %10.3f %8llu %8llu %12llu %10.2f\n", name,
              r.epoch1_query_ms, r.final_query_ms, r.avg_apply_ms,
              static_cast<unsigned long long>(r.final_epoch),
              static_cast<unsigned long long>(r.compactions),
              static_cast<unsigned long long>(r.residual_delta_tuples),
              r.total_seconds);
}

void WriteJson(const WorkloadSpec& spec, const ModeResult& off,
               const ModeResult& on, bool smoke) {
  std::FILE* f = std::fopen("BENCH_live_update.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_live_update.json\n");
    return;
  }
  auto mode = [&](const char* name, const ModeResult& r, const char* tail) {
    std::fprintf(f,
                 "  \"%s\": {\n"
                 "    \"epoch1_query_ms\": %.4f,\n"
                 "    \"final_query_ms\": %.4f,\n"
                 "    \"avg_apply_ms\": %.4f,\n"
                 "    \"total_seconds\": %.3f,\n"
                 "    \"final_epoch\": %llu,\n"
                 "    \"compactions\": %llu,\n"
                 "    \"residual_delta_tuples\": %llu\n"
                 "  }%s\n",
                 name, r.epoch1_query_ms, r.final_query_ms, r.avg_apply_ms,
                 r.total_seconds, static_cast<unsigned long long>(r.final_epoch),
                 static_cast<unsigned long long>(r.compactions),
                 static_cast<unsigned long long>(r.residual_delta_tuples),
                 tail);
  };
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"live_update\",\n"
               "  \"smoke\": %s,\n"
               "  \"config\": {\n"
               "    \"relations\": %d,\n"
               "    \"tuples_per_relation\": %d,\n"
               "    \"batches\": %d,\n"
               "    \"inserts_per_relation_per_batch\": %d,\n"
               "    \"deletes_per_relation_per_batch\": %d,\n"
               "    \"queries_per_round\": %d,\n"
               "    \"k\": %d,\n"
               "    \"compact_threshold\": %zu\n"
               "  },\n",
               smoke ? "true" : "false", spec.n, spec.count, spec.batches,
               spec.inserts, spec.deletes, spec.queries_per_round, spec.k,
               spec.compact_threshold);
  mode("compaction_off", off, ",");
  mode("compaction_on", on, "");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Run() {
  const bool smoke = bench::SmokeMode();
  WorkloadSpec spec;
  if (smoke) {
    spec.count = 300;
    spec.batches = 6;
    spec.inserts = 8;
    spec.deletes = 2;
    spec.queries_per_round = 4;
    spec.compact_threshold = 40;
  }

  SyntheticSpec synth;
  synth.dim = 2;
  synth.count = spec.count;
  synth.density = 50;
  synth.seed = 61;  // the pinned dataset
  const std::vector<Relation> seed = GenerateProblem(spec.n, synth);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  const std::vector<UpdateBatch> batches = MakeBatches(spec, seed);
  const std::vector<Vec> query_pool = MakeQueryPool(spec.queries_per_round);

  std::printf(
      "live_update: LiveEngine(Monolithic base) over %d relations x %d "
      "tuples, %d batches x (%d ins + %d del)/relation, %d queries/round, "
      "K=%d, TBPA\n\n",
      spec.n, spec.count, spec.batches, spec.inserts, spec.deletes,
      spec.queries_per_round, spec.k);
  std::printf("%-14s %12s %12s %10s %8s %8s %12s %10s\n", "mode",
              "epoch1_q_ms", "final_q_ms", "apply_ms", "epoch", "compact",
              "delta_left", "total_s");

  ModeResult off, on;
  if (RunMode(/*compaction_on=*/false, spec, seed, batches, query_pool,
              scoring, &off) != 0) {
    return 1;
  }
  PrintMode("compaction-off", off);
  if (RunMode(/*compaction_on=*/true, spec, seed, batches, query_pool,
              scoring, &on) != 0) {
    return 1;
  }
  PrintMode("compaction-on", on);

  std::printf(
      "\nfinal-epoch query latency with compaction: %.2fx of the "
      "no-compaction mode; every sampled result bit-identical to a fresh "
      "engine over the final content.\n",
      off.final_query_ms > 0 ? on.final_query_ms / off.final_query_ms : 0.0);
  WriteJson(spec, off, on, smoke);
  return 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Run(); }
