// Incremental paging cost through the Any-K cursor path, served end to
// end by Server::SubmitPage over a monolithic Engine.
//
// The one-shot stack answers "the next 10 after 10" by recomputing
// TopK(20) from rank 0; the cursor path resumes the page-1 enumeration
// and pays only the marginal pulls past rank 10. This bench measures
// both, per query: page 1 (K=10) and page 2 via the session token,
// against a fresh K=20 run of the same query.
//
// Gates (exit 1, failing the Release CI step):
//   * prefix exactness -- for every k' in 1..20, the first k' results
//     pulled from an engine cursor are bit-identical to one-shot
//     TopK(k'), and the two concatenated pages equal one-shot TopK(20);
//   * page-2 access depth (PageResult::page_cost_depths, the marginal
//     cost) is strictly below the fresh K=20 recompute's sum_depths, on
//     aggregate AND for every single query.
//
// Emits BENCH_cursor_paging.json (cwd-relative; run from the repo root
// to land it there, which is where CI uploads from).
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/timer.h"
#include "core/engine.h"
#include "core/result_cursor.h"
#include "server/server.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Order-sensitive FNV-1a over the score bit patterns of a result list:
/// the currency of the cross-variant exactness checks in the JSON.
uint64_t Checksum(uint64_t seed, const std::vector<ResultCombination>& rows) {
  uint64_t h = seed ? seed : 1469598103934665603ull;
  for (const ResultCombination& row : rows) {
    h = (h ^ DoubleBits(row.score)) * 1099511628211ull;
    for (const Tuple& t : row.tuples) {
      h = (h ^ static_cast<uint64_t>(t.id)) * 1099511628211ull;
    }
  }
  return h;
}

int Run() {
  const bool smoke = bench::SmokeMode();
  const int count = smoke ? 1200 : 8000;
  const int q_count = smoke ? 16 : 96;
  const int page_size = 10;

  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = 67;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  if (!engine.ok()) {
    std::fprintf(stderr, "Engine::Create failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "cursor_paging: Server(1 worker) over Engine (n=2, %d tuples/relation, "
      "%d queries, pages of %d, TBPA)\n\n",
      count, q_count, page_size);

  // Prefix exactness first, on a handful of queries: every k'-prefix of a
  // cursor must be bit-identical to one-shot TopK(k').
  Rng prefix_rng(5);
  for (int trial = 0; trial < (smoke ? 2 : 6); ++trial) {
    QueryRequest req;
    req.query = prefix_rng.UniformInCube(2, -1.0, 1.0);
    req.options.k = page_size;
    req.options.Apply(kTBPA);
    auto cursor = engine->OpenCursor(req);
    if (!cursor.ok()) {
      std::fprintf(stderr, "FAIL: OpenCursor: %s\n",
                   cursor.status().ToString().c_str());
      return 1;
    }
    std::vector<ResultCombination> prefix;
    for (int kp = 1; kp <= 2 * page_size; ++kp) {
      auto next = (*cursor)->Next();
      if (!next.ok() || !next->has_value()) {
        std::fprintf(stderr, "FAIL: cursor ended early at k'=%d\n", kp);
        return 1;
      }
      prefix.push_back(std::move(**next));
      ProxRJOptions opts = req.options;
      opts.k = kp;
      auto oneshot = engine->TopK(req.query, opts);
      std::string why;
      if (!oneshot.ok() ||
          !BitIdenticalResults(prefix, *oneshot, &why)) {
        std::fprintf(stderr, "FAIL: prefix k'=%d diverges: %s\n", kp,
                     why.c_str());
        return 1;
      }
    }
  }
  std::printf("prefix exactness: cursor == one-shot TopK(k') for k'=1..%d\n\n",
              2 * page_size);

  ServerOptions server_opts;
  server_opts.num_workers = 1;  // cost accounting, not throughput
  Server server(&*engine, server_opts);

  Rng rng(29);
  uint64_t page1_depths = 0, page2_depths = 0, fresh20_depths = 0;
  uint64_t checksum = 0;
  double page2_seconds = 0.0, fresh_seconds = 0.0;
  int page2_not_cheaper = 0;
  for (int qi = 0; qi < q_count; ++qi) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.0, 1.0);
    req.options.k = page_size;
    req.options.Apply(kTBPA);

    auto page1 = server.SubmitPage(req).get();
    if (!page1.result.status.ok() || page1.next_page_token.empty()) {
      std::fprintf(stderr, "FAIL: page 1 of query %d\n", qi);
      return 1;
    }
    WallTimer page2_timer;
    auto page2 = server.SubmitPage(req, page1.next_page_token).get();
    page2_seconds += page2_timer.ElapsedSeconds();
    if (!page2.result.status.ok()) {
      std::fprintf(stderr, "FAIL: page 2 of query %d\n", qi);
      return 1;
    }

    // The fresh one-shot recompute the cursor path replaces.
    ProxRJOptions deep = req.options;
    deep.k = 2 * page_size;
    ExecStats fresh_stats;
    WallTimer fresh_timer;
    auto fresh = engine->TopK(req.query, deep, &fresh_stats);
    fresh_seconds += fresh_timer.ElapsedSeconds();
    if (!fresh.ok()) return 1;

    std::vector<ResultCombination> paged = page1.result.combinations;
    for (const ResultCombination& row : page2.result.combinations) {
      paged.push_back(row);
    }
    std::string why;
    if (!BitIdenticalResults(paged, *fresh, &why)) {
      std::fprintf(stderr, "FAIL: pages diverge from TopK(20) (query %d): %s\n",
                   qi, why.c_str());
      return 1;
    }
    checksum = Checksum(checksum, paged);

    page1_depths += page1.page_cost_depths;
    page2_depths += page2.page_cost_depths;
    fresh20_depths += fresh_stats.sum_depths;
    if (page2.page_cost_depths >= fresh_stats.sum_depths) ++page2_not_cheaper;
  }

  const double avg_page1 = static_cast<double>(page1_depths) / q_count;
  const double avg_page2 = static_cast<double>(page2_depths) / q_count;
  const double avg_fresh = static_cast<double>(fresh20_depths) / q_count;
  std::printf("%22s %12s\n", "variant", "avg depths");
  std::printf("%22s %12.1f\n", "page 1 (ranks 1-10)", avg_page1);
  std::printf("%22s %12.1f\n", "page 2 (ranks 11-20)", avg_page2);
  std::printf("%22s %12.1f\n", "fresh TopK(20)", avg_fresh);
  std::printf("\npage-2 marginal cost = %.1f%% of the fresh recompute "
              "(%.2fus vs %.2fus wall)\n",
              100.0 * avg_page2 / avg_fresh, 1e6 * page2_seconds / q_count,
              1e6 * fresh_seconds / q_count);
  std::printf("checksum %016" PRIx64 "\n", checksum);

  // The tentpole gate: pulling "the next 10" through the session cursor
  // must do strictly less access work than recomputing the first 20 --
  // per query, not just on average.
  if (page2_not_cheaper > 0) {
    std::fprintf(stderr,
                 "FAIL: page 2 cost >= fresh TopK(20) for %d of %d queries\n",
                 page2_not_cheaper, q_count);
    return 1;
  }
  if (page2_depths >= fresh20_depths) {
    std::fprintf(stderr, "FAIL: aggregate page-2 depth %" PRIu64
                         " >= fresh %" PRIu64 "\n",
                 page2_depths, fresh20_depths);
    return 1;
  }

  std::FILE* f = std::fopen("BENCH_cursor_paging.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write BENCH_cursor_paging.json\n");
  } else {
    std::fprintf(f,
                 "{\n"
                 "  \"smoke\": %s,\n"
                 "  \"queries\": %d,\n"
                 "  \"page_size\": %d,\n"
                 "  \"avg_page1_depths\": %.2f,\n"
                 "  \"avg_page2_depths\": %.2f,\n"
                 "  \"avg_fresh_topk20_depths\": %.2f,\n"
                 "  \"page2_over_fresh\": %.4f,\n"
                 "  \"avg_page2_us\": %.2f,\n"
                 "  \"avg_fresh_us\": %.2f,\n"
                 "  \"checksum\": \"%016" PRIx64 "\"\n"
                 "}\n",
                 smoke ? "true" : "false", q_count, page_size, avg_page1,
                 avg_page2, avg_fresh, avg_page2 / avg_fresh,
                 1e6 * page2_seconds / q_count, 1e6 * fresh_seconds / q_count,
                 checksum);
    std::fclose(f);
    std::printf("wrote BENCH_cursor_paging.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace prj

int main() { return prj::Run(); }
