// Microbenchmarks (google-benchmark) for full operator runs at the
// paper's default setting, one per algorithm, plus the per-pull cost of
// the two bounding schemes.
#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

void RunAlgorithm(benchmark::State& state, const AlgorithmPreset& preset,
                  AccessKind kind) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.density = 50;
  spec.count = 4000;
  spec.seed = 11;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  ProxRJOptions opts;
  opts.k = 10;
  opts.Apply(preset);
  size_t depths = 0;
  for (auto _ : state) {
    ExecStats stats;
    auto result = RunProxRJ(rels, kind, scoring, q, opts, &stats);
    benchmark::DoNotOptimize(result);
    depths = stats.sum_depths;
  }
  state.counters["sumDepths"] = static_cast<double>(depths);
}

void BM_CBRR_Distance(benchmark::State& state) {
  RunAlgorithm(state, kCBRR, AccessKind::kDistance);
}
void BM_CBPA_Distance(benchmark::State& state) {
  RunAlgorithm(state, kCBPA, AccessKind::kDistance);
}
void BM_TBRR_Distance(benchmark::State& state) {
  RunAlgorithm(state, kTBRR, AccessKind::kDistance);
}
void BM_TBPA_Distance(benchmark::State& state) {
  RunAlgorithm(state, kTBPA, AccessKind::kDistance);
}
void BM_TBPA_Score(benchmark::State& state) {
  RunAlgorithm(state, kTBPA, AccessKind::kScore);
}
BENCHMARK(BM_CBRR_Distance);
BENCHMARK(BM_CBPA_Distance);
BENCHMARK(BM_TBRR_Distance);
BENCHMARK(BM_TBPA_Distance);
BENCHMARK(BM_TBPA_Score);

}  // namespace
}  // namespace prj

BENCHMARK_MAIN();
