// Figure 3(b) + 3(e): sumDepths and CPU vs. the dimensionality d of the
// feature space, d in {1, 2, 4, 8, 16}; defaults otherwise.
//
// Optional argument: tuples per relation (default: the repository default
// in bench_util.h; 0 = Appendix D.1 unit-volume mode).
#include <cstdlib>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace prj::bench;
  std::vector<std::string> labels;
  std::vector<CellConfig> configs;
  for (int d : {1, 2, 4, 8, 16}) {
    CellConfig c;
    c.dim = d;
    if (argc > 1) c.count = std::atoi(argv[1]);
    labels.push_back("d=" + std::to_string(d));
    configs.push_back(c);
  }
  RunSweep("Figure 3(b): sumDepths vs d", "Figure 3(e): CPU vs d", "d",
           labels, configs);
  return 0;
}
