// Figure 3(h) + 3(k): sumDepths and CPU vs. the number of joined relations
// n in {2, 3, 4}; defaults otherwise. Mirrors the paper's finding that the
// corner-bound algorithms blow up in combination count as n grows (CBPA
// could not finish n = 4 within five minutes; we use a smaller per-run
// budget and report DNF the same way).
#include "bench_util.h"

int main() {
  using namespace prj::bench;
  std::vector<std::string> labels;
  std::vector<CellConfig> configs;
  for (int n : {2, 3, 4}) {
    CellConfig c;
    c.n = n;
    c.seeds = (n == 4) ? 3 : 10;  // n=4 runs are heavy; fewer repetitions
    c.time_budget_seconds = 15.0;
    labels.push_back("n=" + std::to_string(n));
    configs.push_back(c);
  }
  RunSweep("Figure 3(h): sumDepths vs number of relations",
           "Figure 3(k): CPU vs number of relations", "n", labels, configs);
  std::printf(
      "\n(DNF = run exceeded its %.0fs budget, as the paper reports for "
      "CBPA at n=4.)\n",
      15.0);
  return 0;
}
