#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prj {
namespace bench {

bool SmokeMode() {
  static const bool smoke = [] {
    const char* v = std::getenv("PRJ_BENCH_SMOKE");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return smoke;
}

namespace {

CellConfig EffectiveConfig(const CellConfig& config) {
  if (!SmokeMode()) return config;
  CellConfig c = config;
  c.count = std::min(c.count, 40);
  c.seeds = std::min(c.seeds, 1);
  c.k = std::min(c.k, 5);
  if (c.time_budget_seconds > 0) {
    c.time_budget_seconds = std::min(c.time_budget_seconds, 2.0);
  }
  return c;
}

void Accumulate(CellResult* acc, const ExecStats& stats) {
  if (!stats.completed) {
    ++acc->dnf;
    return;
  }
  acc->sum_depths += static_cast<double>(stats.sum_depths);
  acc->total_seconds += stats.total_seconds;
  acc->bound_seconds += stats.bound_seconds;
  acc->dominance_seconds += stats.dominance_seconds;
  acc->combinations += static_cast<double>(stats.combinations_formed);
  ++acc->runs;
}

void Finalize(CellResult* acc) {
  if (acc->runs == 0) return;
  const double inv = 1.0 / acc->runs;
  acc->sum_depths *= inv;
  acc->total_seconds *= inv;
  acc->bound_seconds *= inv;
  acc->dominance_seconds *= inv;
  acc->combinations *= inv;
}

ProxRJOptions MakeOptions(const CellConfig& config,
                          const AlgorithmPreset& preset) {
  ProxRJOptions opts;
  opts.k = config.k;
  opts.Apply(preset);
  opts.time_budget_seconds = config.time_budget_seconds;
  opts.dominance_period = config.dominance_period;
  opts.bound_update_period = config.bound_update_period;
  opts.use_generic_qp = config.use_generic_qp;
  return opts;
}

}  // namespace

CellResult RunSyntheticCell(const CellConfig& raw_config,
                            const AlgorithmPreset& preset) {
  const CellConfig config = EffectiveConfig(raw_config);
  CellResult acc;
  const SumLogEuclideanScoring scoring(config.ws, config.wq, config.wmu);
  for (int s = 0; s < config.seeds; ++s) {
    SyntheticSpec spec;
    spec.dim = config.dim;
    spec.density = config.density;
    spec.count = config.count;
    spec.seed = config.seed_base + static_cast<uint64_t>(s);
    const auto rels = GenerateProblem(config.n, spec, config.skew);
    const Vec q(config.dim, 0.0);
    ExecStats stats;
    auto result = RunProxRJ(rels, config.kind, scoring, q,
                            MakeOptions(config, preset), &stats);
    PRJ_CHECK(result.ok()) << result.status().ToString();
    Accumulate(&acc, stats);
  }
  Finalize(&acc);
  return acc;
}

CellResult RunFixedInstance(const std::vector<Relation>& relations,
                            const Vec& query, const CellConfig& raw_config,
                            const AlgorithmPreset& preset) {
  const CellConfig config = EffectiveConfig(raw_config);
  CellResult acc;
  const SumLogEuclideanScoring scoring(config.ws, config.wq, config.wmu);
  ExecStats stats;
  auto result = RunProxRJ(relations, config.kind, scoring, query,
                          MakeOptions(config, preset), &stats);
  PRJ_CHECK(result.ok()) << result.status().ToString();
  Accumulate(&acc, stats);
  Finalize(&acc);
  return acc;
}

const std::vector<AlgorithmPreset>& AllPresets() {
  static const std::vector<AlgorithmPreset> presets = {kCBRR, kCBPA, kTBRR,
                                                       kTBPA};
  return presets;
}

bool BitIdentical(const std::vector<QueryResult>& got,
                  const std::vector<QueryResult>& want, const char* label) {
  if (got.size() != want.size()) {
    std::fprintf(stderr, "FAIL(%s): %zu results vs %zu expected\n", label,
                 got.size(), want.size());
    return false;
  }
  for (size_t i = 0; i < got.size(); ++i) {
    if (!got[i].ok() || !want[i].ok()) {
      std::fprintf(stderr, "FAIL(%s): query %zu status mismatch\n", label, i);
      return false;
    }
    std::string why;
    if (!BitIdenticalResults(got[i].combinations, want[i].combinations,
                             &why)) {
      std::fprintf(stderr, "FAIL(%s): query %zu: %s\n", label, i,
                   why.c_str());
      return false;
    }
  }
  return true;
}

std::string FormatDepths(const CellResult& r) {
  char buf[64];
  if (r.runs == 0) return "DNF";
  if (r.dnf > 0) {
    std::snprintf(buf, sizeof(buf), "%.1f(%dDNF)", r.sum_depths, r.dnf);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", r.sum_depths);
  }
  return buf;
}

std::string FormatCpu(const CellResult& r) {
  char buf[64];
  if (r.runs == 0) return "DNF";
  const double pct =
      r.total_seconds > 0 ? 100.0 * r.bound_seconds / r.total_seconds : 0.0;
  std::snprintf(buf, sizeof(buf), "%.4fs(%2.0f%%)", r.total_seconds, pct);
  return buf;
}

std::string FormatCpuDom(const CellResult& r) {
  char buf[80];
  if (r.runs == 0) return "DNF";
  const double bound_pct =
      r.total_seconds > 0 ? 100.0 * r.bound_seconds / r.total_seconds : 0.0;
  const double dom_pct =
      r.total_seconds > 0 ? 100.0 * r.dominance_seconds / r.total_seconds : 0.0;
  std::snprintf(buf, sizeof(buf), "%.4fs(b%2.0f%%/d%2.0f%%)", r.total_seconds,
                bound_pct, dom_pct);
  return buf;
}

void RunSweep(const std::string& fig_depths, const std::string& fig_cpu,
              const std::string& param_name,
              const std::vector<std::string>& values,
              const std::vector<CellConfig>& configs) {
  PRJ_CHECK_EQ(values.size(), configs.size());
  std::vector<std::string> algo_names;
  for (const auto& p : AllPresets()) algo_names.push_back(p.name);
  std::vector<std::vector<std::string>> depth_cells(values.size());
  std::vector<std::vector<std::string>> cpu_cells(values.size());
  for (size_t v = 0; v < values.size(); ++v) {
    for (const auto& preset : AllPresets()) {
      const CellResult r = RunSyntheticCell(configs[v], preset);
      depth_cells[v].push_back(FormatDepths(r));
      cpu_cells[v].push_back(FormatCpu(r));
    }
  }
  PrintTable(fig_depths, param_name, values, algo_names, depth_cells);
  PrintTable(fig_cpu + "  [total seconds (share in updateBound)]", param_name,
             values, algo_names, cpu_cells);
}

void PrintTable(const std::string& title, const std::string& param_name,
                const std::vector<std::string>& param_values,
                const std::vector<std::string>& algo_names,
                const std::vector<std::vector<std::string>>& cells) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-10s", param_name.c_str());
  for (const auto& name : algo_names) std::printf("  %16s", name.c_str());
  std::printf("\n");
  for (size_t r = 0; r < param_values.size(); ++r) {
    std::printf("%-10s", param_values[r].c_str());
    for (const auto& cell : cells[r]) std::printf("  %16s", cell.c_str());
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace prj
