// Microbenchmarks (google-benchmark) for the optimization substrate used
// by the tight bound: water-filling vs. the generic active-set QP on the
// same problem (14), single t(tau) evaluations, and the dominance LP.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/tight_bound.h"
#include "solver/lp.h"
#include "solver/qp.h"
#include "solver/waterfill.h"

namespace prj {
namespace {

WaterfillProblem MakeProblem(Rng* rng, int n, int m) {
  WaterfillProblem p;
  p.n = n;
  p.m = m;
  p.wq = 1.0;
  p.wmu = 1.0;
  p.nu = (m == 0) ? 0.0 : rng->Uniform(0.0, 2.0);
  p.c0 = rng->Uniform(-5.0, 0.0);
  for (int i = 0; i < n - m; ++i) p.deltas.push_back(rng->Uniform(0.0, 2.0));
  return p;
}

void BM_Waterfill(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<WaterfillProblem> problems;
  for (int i = 0; i < 64; ++i) problems.push_back(MakeProblem(&rng, n, n / 2));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWaterfill(problems[i++ & 63]));
  }
}
BENCHMARK(BM_Waterfill)->Arg(2)->Arg(3)->Arg(4)->Arg(8)->Arg(16);

void BM_GenericQpSameProblem(benchmark::State& state) {
  // The paper's formulation (30) solved with the active-set QP: same
  // optimum as water-filling, ~an order of magnitude slower.
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<QpProblem> problems;
  for (int rep = 0; rep < 64; ++rep) {
    const WaterfillProblem wf = MakeProblem(&rng, n, n / 2);
    QpProblem qp;
    qp.h = Matrix(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        qp.h(r, c) = 2.0 * (wf.wmu * ((r == c ? 1.0 : 0.0) - 1.0 / n) +
                            (r == c ? wf.wq : 0.0));
      }
    }
    qp.g.assign(static_cast<size_t>(n), 0.0);
    qp.kind.assign(static_cast<size_t>(n), VarKind::kLowerBounded);
    qp.fixed_value.assign(static_cast<size_t>(n), 0.0);
    qp.lower_bound.assign(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < wf.m; ++i) {
      qp.kind[static_cast<size_t>(i)] = VarKind::kFixed;
      qp.fixed_value[static_cast<size_t>(i)] = wf.nu;
    }
    for (int i = 0; i < n - wf.m; ++i) {
      qp.lower_bound[static_cast<size_t>(wf.m + i)] =
          wf.deltas[static_cast<size_t>(i)];
    }
    problems.push_back(std::move(qp));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveQp(problems[i++ & 63]));
  }
}
BENCHMARK(BM_GenericQpSameProblem)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_TightPartialBound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int d = 2;
  Rng rng(2);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(d, 0.0);
  std::vector<Tuple> storage;
  std::vector<const Tuple*> members;
  const int m = n / 2;
  for (int i = 0; i < m; ++i) {
    storage.push_back(Tuple{i, 0.8, rng.UniformInCube(d, -2, 2)});
  }
  for (const auto& t : storage) members.push_back(&t);
  const uint32_t mask = (1u << m) - 1u;
  const std::vector<double> sigma_max(static_cast<size_t>(n), 1.0);
  std::vector<double> deltas(static_cast<size_t>(n), 0.0);
  for (auto& v : deltas) v = rng.Uniform(0.0, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TightPartialBoundDistance(
        scoring, q, n, mask, members, sigma_max, deltas));
  }
}
BENCHMARK(BM_TightPartialBound)->Arg(2)->Arg(3)->Arg(4);

void BM_DominanceLp(benchmark::State& state) {
  // One emptiness check against `u` active constraints in d = 2.
  const int u = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<DominanceEntry> entries;
  for (int i = 0; i <= u; ++i) {
    entries.push_back(
        DominanceEntry{rng.UniformInCube(2, -2, 2), rng.Uniform(-3, 0)});
  }
  std::vector<bool> active(entries.size(), true);
  uint64_t lp = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PartialIsDominated(0, entries, active, -0.5, &lp));
  }
}
BENCHMARK(BM_DominanceLp)->Arg(8)->Arg(64)->Arg(512);

void BM_FarkasFeasibility(benchmark::State& state) {
  const int u = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  Rng rng(4);
  Matrix g(u, d);
  std::vector<double> h(static_cast<size_t>(u));
  for (int r = 0; r < u; ++r) {
    for (int c = 0; c < d; ++c) g(r, c) = rng.Uniform(-1, 1);
    h[static_cast<size_t>(r)] = rng.Uniform(-0.2, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolyhedronIsEmpty(g, h));
  }
}
BENCHMARK(BM_FarkasFeasibility)->Args({64, 2})->Args({512, 2})->Args({64, 8});

}  // namespace
}  // namespace prj

BENCHMARK_MAIN();
