// Mechanism view behind every sumDepths difference in Figure 3: the bound
// trajectories of the corner and tight schemes on one default instance.
// The operator stops when the K-th buffered score crosses the bound from
// below; the tight bound descends much faster, so the crossing -- and
// termination -- happens earlier (Example 3.1 writ large).
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "workload/synthetic.h"

int main() {
  using namespace prj;
  SyntheticSpec spec;
  spec.dim = 2;
  spec.density = 50;
  // This bench bypasses bench_util's cell runner, so it applies the
  // PRJ_BENCH_SMOKE shrink itself to stay seconds-scale under CTest.
  spec.count = bench::SmokeMode() ? 40 : 400;
  spec.seed = 7;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);

  ExecTrace corner_trace, tight_trace;
  for (auto [preset, trace] : {std::pair{kCBRR, &corner_trace},
                               std::pair{kTBRR, &tight_trace}}) {
    ProxRJOptions opts;
    opts.k = 10;
    opts.Apply(preset);
    opts.trace = trace;
    if (bench::SmokeMode()) opts.time_budget_seconds = 2.0;
    auto result = RunProxRJ(rels, AccessKind::kDistance, scoring, q, opts);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
  }

  std::printf("== Bound convergence (round-robin pulls, defaults, K=10) ==\n");
  std::printf("%-6s  %-14s  %-14s  %-14s\n", "pull", "corner bound",
              "tight bound", "10th best seen");
  const size_t rows = std::max(corner_trace.size(), tight_trace.size());
  for (size_t s = 0; s < rows; s += 4) {
    char corner[32] = "(stopped)", tight[32] = "(stopped)", kth[32] = "";
    if (s < corner_trace.size()) {
      std::snprintf(corner, sizeof(corner), "%.3f", corner_trace.steps[s].bound);
      std::snprintf(kth, sizeof(kth), "%.3f", corner_trace.steps[s].kth_score);
    }
    if (s < tight_trace.size()) {
      std::snprintf(tight, sizeof(tight), "%.3f", tight_trace.steps[s].bound);
      if (s >= corner_trace.size()) {
        std::snprintf(kth, sizeof(kth), "%.3f", tight_trace.steps[s].kth_score);
      }
    }
    std::printf("%-6zu  %-14s  %-14s  %-14s\n", s + 1, corner, tight, kth);
  }
  std::printf("\ntight run stopped after %zu pulls, corner after %zu\n",
              tight_trace.size(), corner_trace.size());
  return 0;
}
