// Figure 3(c) + 3(f): sumDepths and CPU vs. the tuple density rho
// (tuples per volume unit), rho in {20, 50, 100, 200}; defaults otherwise.
#include "bench_util.h"

int main() {
  using namespace prj::bench;
  std::vector<std::string> labels;
  std::vector<CellConfig> configs;
  for (int rho : {20, 50, 100, 200}) {
    CellConfig c;
    c.density = rho;
    labels.push_back("rho=" + std::to_string(rho));
    configs.push_back(c);
  }
  RunSweep("Figure 3(c): sumDepths vs density", "Figure 3(f): CPU vs density",
           "rho", labels, configs);
  return 0;
}
