#include "access/partition.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

#include "common/logging.h"

namespace prj {
namespace {

// splitmix64 finalizer (public domain, Steele et al.): ids are often
// small consecutive integers, so mix them before taking the residue.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Rank-based boundary: element i of n goes to bucket i*buckets/n, giving
// bucket sizes that differ by at most one.
uint32_t BucketOfRank(size_t rank, size_t n, uint32_t buckets) {
  PRJ_CHECK_GT(n, 0u);
  return static_cast<uint32_t>(rank * buckets / n);
}

// floor(sqrt(n)) in exact integer arithmetic: seed with the FP estimate,
// then correct. std::sqrt alone is not trustworthy here -- a libm that
// rounds 49 to 6.999... would truncate to 6 and silently degrade a
// perfect-square grid (7x7) to a single 1x49 slab.
uint32_t IntSqrt(uint32_t n) {
  auto r = static_cast<uint64_t>(std::sqrt(static_cast<double>(n)));
  while (r > 0 && r * r > n) --r;
  while ((r + 1) * (r + 1) <= n) ++r;
  return static_cast<uint32_t>(r);
}

}  // namespace

uint32_t StrTileSlabCount(uint32_t parts, int dim) {
  PRJ_CHECK_GE(parts, 1u);
  if (dim < 2) return parts;
  for (uint32_t d = IntSqrt(parts); d >= 2; --d) {
    if (parts % d == 0) return d;
  }
  return 1;
}

std::vector<uint32_t> HashPartitioner::Assign(const Relation& relation,
                                              uint32_t parts) const {
  PRJ_CHECK_GE(parts, 1u);
  std::vector<uint32_t> assignment;
  assignment.reserve(relation.size());
  for (const Tuple& t : relation.tuples()) {
    assignment.push_back(
        static_cast<uint32_t>(Mix64(static_cast<uint64_t>(t.id)) % parts));
  }
  return assignment;
}

std::vector<uint32_t> StrTilePartitioner::Assign(const Relation& relation,
                                                 uint32_t parts) const {
  PRJ_CHECK_GE(parts, 1u);
  const size_t n = relation.size();
  std::vector<uint32_t> assignment(n, 0);
  if (n == 0 || parts == 1) return assignment;

  const uint32_t slabs = StrTileSlabCount(parts, relation.dim());
  const uint32_t tiles = parts / slabs;

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    const Tuple& ta = relation.tuple(a);
    const Tuple& tb = relation.tuple(b);
    if (ta.x[0] != tb.x[0]) return ta.x[0] < tb.x[0];
    return ta.id < tb.id;
  });

  for (uint32_t slab = 0; slab < slabs; ++slab) {
    const size_t lo = slab * n / slabs;
    const size_t hi = (slab + 1) * n / slabs;
    if (lo >= hi) continue;
    std::sort(order.begin() + static_cast<ptrdiff_t>(lo),
              order.begin() + static_cast<ptrdiff_t>(hi),
              [&](uint32_t a, uint32_t b) {
                const Tuple& ta = relation.tuple(a);
                const Tuple& tb = relation.tuple(b);
                if (relation.dim() >= 2 && ta.x[1] != tb.x[1]) {
                  return ta.x[1] < tb.x[1];
                }
                return ta.id < tb.id;
              });
    for (size_t r = lo; r < hi; ++r) {
      assignment[order[r]] =
          slab * tiles + BucketOfRank(r - lo, hi - lo, tiles);
    }
  }
  return assignment;
}

std::unique_ptr<Partitioner> MakePartitioner(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kHash:
      return std::make_unique<HashPartitioner>();
    case PartitionScheme::kStrTile:
      return std::make_unique<StrTilePartitioner>();
  }
  PRJ_CHECK(false) << "unknown PartitionScheme";
  return nullptr;
}

std::vector<Relation> PartitionRelation(const Relation& relation,
                                        const std::vector<uint32_t>& assignment,
                                        uint32_t parts) {
  PRJ_CHECK_GE(parts, 1u);
  PRJ_CHECK_EQ(assignment.size(), relation.size());
  // Tighten each part's score ceiling to the largest score it actually
  // holds: sigma_max feeds every distance-side bound (paper eq. (4)-(5)),
  // so a part whose tuples all score low admits a correspondingly lower
  // corner bound and terminates (or is pruned) shallower. Still a-priori
  // admissible -- no score in the part exceeds its own maximum -- and the
  // results stay bit-identical (bounds only decide how deep to pull, never
  // which combinations qualify). Empty parts keep the parent's ceiling:
  // there is no witness to tighten with, and 0 would flunk validation.
  std::vector<double> part_sigma(parts, 0.0);
  for (size_t i = 0; i < relation.size(); ++i) {
    PRJ_CHECK_LT(assignment[i], parts);
    part_sigma[assignment[i]] =
        std::max(part_sigma[assignment[i]], relation.tuple(i).score);
  }
  std::vector<Relation> out;
  out.reserve(parts);
  for (uint32_t p = 0; p < parts; ++p) {
    const double sigma =
        part_sigma[p] > 0.0 ? part_sigma[p] : relation.sigma_max();
    out.emplace_back(relation.name() + "/" + std::to_string(p), relation.dim(),
                     sigma);
  }
  for (size_t i = 0; i < relation.size(); ++i) {
    out[assignment[i]].Add(relation.tuple(i));
  }
  return out;
}

std::vector<Relation> PartitionRelation(const Relation& relation,
                                        const Partitioner& partitioner,
                                        uint32_t parts) {
  return PartitionRelation(relation, partitioner.Assign(relation, parts),
                           parts);
}

}  // namespace prj
