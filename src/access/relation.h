// Relations and tuples: the inputs of the proximity rank join problem.
//
// Each tuple carries a real-valued feature vector x in R^d and a score
// sigma (paper §2). A Relation is the service-side collection; the join
// operator itself never sees it directly -- it only consumes AccessSource
// streams (source.h) sorted by distance or score.
#ifndef PRJ_ACCESS_RELATION_H_
#define PRJ_ACCESS_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/vec.h"

namespace prj {

/// One scored, located object.
struct Tuple {
  int64_t id = -1;     ///< provider-assigned identifier, unique per relation
  double score = 0.0;  ///< sigma(tau), must lie in (0, sigma_max]
  Vec x;               ///< feature vector x(tau)
};

/// A named collection of tuples plus the score ceiling sigma_max that
/// distance-based bounding needs a priori (paper eq. (4)-(5)).
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, int dim, double sigma_max = 1.0)
      : name_(std::move(name)), dim_(dim), sigma_max_(sigma_max) {}

  const std::string& name() const { return name_; }
  int dim() const { return dim_; }
  double sigma_max() const { return sigma_max_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  void Add(Tuple t) { tuples_.push_back(std::move(t)); }
  void Add(int64_t id, double score, Vec x) {
    tuples_.push_back(Tuple{id, score, std::move(x)});
  }

  /// Checks structural soundness: consistent dimensions, scores in
  /// (0, sigma_max], unique ids. Returns the first violation found.
  Status Validate() const;

 private:
  std::string name_;
  int dim_ = 0;
  double sigma_max_ = 1.0;
  std::vector<Tuple> tuples_;
};

}  // namespace prj

#endif  // PRJ_ACCESS_RELATION_H_
