// Relation partitioning for the sharded scatter-gather engine.
//
// A Partitioner assigns every tuple of a relation to one of `parts`
// disjoint sub-relations. Two strategies are provided, the classic choices
// of the partition-and-fan-out kNN-join literature:
//   * HashPartitioner    -- splitmix64 over the tuple id: load-balanced,
//                           oblivious to geometry;
//   * StrTilePartitioner -- STR-style spatial tiles (sort by x[0] into
//                           slabs, each slab by x[1] into tiles): tuples
//                           near each other land in the same part, so a
//                           query's top combinations concentrate in few
//                           shards and the others terminate shallow.
// Both are deterministic: the same relation and part count always produce
// the same assignment, a prerequisite for the bit-identical sharded
// results the tests enforce.
//
// Partitions preserve each tuple verbatim (id, score, vector) and inherit
// the parent relation's dim. Each part's sigma_max is TIGHTENED to the
// largest score the part actually holds (the parent's ceiling for empty
// parts): sigma_max is an a-priori ceiling feeding the distance-side
// bounds, and no score in a part exceeds the part's own maximum, so the
// tight ceiling is just as admissible while letting low-scoring shards
// bound lower, terminate shallower, and get pruned earlier. Bounds only
// decide how deep to pull, never which combinations qualify, so results
// are bit-identical to partitioning with the inherited ceiling.
#ifndef PRJ_ACCESS_PARTITION_H_
#define PRJ_ACCESS_PARTITION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "access/relation.h"

namespace prj {

/// Assigns tuples of a relation to parts; see file comment.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual const char* name() const = 0;

  /// One entry per tuple of `relation` (in tuple order), each in
  /// [0, parts). `parts` must be >= 1.
  virtual std::vector<uint32_t> Assign(const Relation& relation,
                                       uint32_t parts) const = 0;
};

/// splitmix64(id) % parts: stateless, geometry-oblivious, load-balanced.
class HashPartitioner final : public Partitioner {
 public:
  const char* name() const override { return "hash"; }
  std::vector<uint32_t> Assign(const Relation& relation,
                               uint32_t parts) const override;
};

/// Two-level STR (sort-tile-recursive) tiling: slabs along x[0], tiles
/// along x[1] within each slab (by id for 1-d relations), all splits by
/// rank so part sizes differ by at most one tuple per level.
class StrTilePartitioner final : public Partitioner {
 public:
  const char* name() const override { return "str-tile"; }
  std::vector<uint32_t> Assign(const Relation& relation,
                               uint32_t parts) const override;
};

/// Slab count StrTilePartitioner uses for a `parts`-way split of a
/// relation of dimensionality `dim`: the largest divisor of `parts` not
/// above its exact integer square root for dim >= 2 (so slabs x tiles ==
/// parts and the grid is as square as possible -- a perfect square always
/// yields root x root), `parts` pure slabs for 1-d relations. Exposed so
/// the grid choice is directly testable (a truncated floating-point sqrt
/// once silently degraded 49 to a 1 x 49 split).
uint32_t StrTileSlabCount(uint32_t parts, int dim);

/// Named partitioning strategies (ShardedEngineOptions selects one).
enum class PartitionScheme { kHash, kStrTile };

std::unique_ptr<Partitioner> MakePartitioner(PartitionScheme scheme);

/// Materializes the parts described by `assignment` (one entry per tuple,
/// each < parts): part i is named "<name>/<i>", inherits dim, and carries
/// the tightened sigma_max described in the file comment. Tuples keep
/// their relative order.
std::vector<Relation> PartitionRelation(const Relation& relation,
                                        const std::vector<uint32_t>& assignment,
                                        uint32_t parts);

/// Convenience: Assign + materialize in one call.
std::vector<Relation> PartitionRelation(const Relation& relation,
                                        const Partitioner& partitioner,
                                        uint32_t parts);

}  // namespace prj

#endif  // PRJ_ACCESS_PARTITION_H_
