#include "access/relation.h"

#include <unordered_set>

namespace prj {

Status Relation::Validate() const {
  if (dim_ < 1 || dim_ > kMaxDim) {
    return Status::InvalidArgument("relation '" + name_ + "': dim " +
                                   std::to_string(dim_) + " out of range");
  }
  if (sigma_max_ <= 0.0) {
    return Status::InvalidArgument("relation '" + name_ +
                                   "': sigma_max must be positive");
  }
  std::unordered_set<int64_t> ids;
  for (const Tuple& t : tuples_) {
    if (t.x.dim() != dim_) {
      return Status::InvalidArgument(
          "relation '" + name_ + "': tuple " + std::to_string(t.id) +
          " has dim " + std::to_string(t.x.dim()) + ", expected " +
          std::to_string(dim_));
    }
    if (!(t.score > 0.0) || t.score > sigma_max_) {
      return Status::InvalidArgument(
          "relation '" + name_ + "': tuple " + std::to_string(t.id) +
          " score " + std::to_string(t.score) + " outside (0, sigma_max]");
    }
    if (!ids.insert(t.id).second) {
      return Status::InvalidArgument("relation '" + name_ +
                                     "': duplicate tuple id " +
                                     std::to_string(t.id));
    }
  }
  return Status::OK();
}

}  // namespace prj
