#include "access/delta_relation.h"

#include <algorithm>
#include <string>
#include <utility>

namespace prj {
namespace {

// The shared access orders (access/source.cc keeps the canonical copies
// in its anonymous namespace; the contract is the comment above them).
bool ScoreOrderLess(const Tuple& a, const Tuple& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

bool DistanceOrderLess(double dist_a, double dist_b, const Tuple& a,
                       const Tuple& b) {
  if (dist_a != dist_b) return dist_a < dist_b;
  return a.id < b.id;
}

}  // namespace

std::shared_ptr<const DeltaRelation> DeltaRelation::Empty(std::string name,
                                                          int dim,
                                                          double sigma_max) {
  auto delta = std::shared_ptr<DeltaRelation>(new DeltaRelation());
  delta->name_ = std::move(name);
  delta->dim_ = dim;
  delta->sigma_max_ = sigma_max;
  return delta;
}

Result<std::shared_ptr<const DeltaRelation>> DeltaRelation::Append(
    std::vector<Tuple> batch) const {
  // Same structural rules Relation::Validate enforces at engine build,
  // extended with freshness against the tuples already in the log: an
  // id can appear at most once across base + delta (the gather order is
  // only total when ids are unique per relation).
  IdSet batch_ids;
  batch_ids.reserve(batch.size());
  for (const Tuple& t : batch) {
    if (t.x.dim() != dim_) {
      return Status::InvalidArgument(
          "delta append to '" + name_ + "': tuple id " + std::to_string(t.id) +
          " has dim " + std::to_string(t.x.dim()) + ", relation has dim " +
          std::to_string(dim_));
    }
    if (!(t.score > 0.0) || t.score > sigma_max_) {
      return Status::InvalidArgument(
          "delta append to '" + name_ + "': tuple id " + std::to_string(t.id) +
          " has score " + std::to_string(t.score) + " outside (0, " +
          std::to_string(sigma_max_) + "]");
    }
    if (!batch_ids.insert(t.id).second || Contains(t.id)) {
      return Status::InvalidArgument("delta append to '" + name_ +
                                     "': duplicate tuple id " +
                                     std::to_string(t.id));
    }
  }

  auto next = std::shared_ptr<DeltaRelation>(new DeltaRelation(*this));
  if (batch.empty()) return std::shared_ptr<const DeltaRelation>(next);
  for (const Tuple& t : batch) {
    next->ids_.insert(t.id);
    if (next->mbr_) {
      next->mbr_->Extend(Rect::ForPoint(t.x));
    } else {
      next->mbr_ = Rect::ForPoint(t.x);
    }
    next->score_max_ = std::max(next->score_max_, t.score);
  }
  next->size_ += batch.size();
  next->chunks_.push_back(
      std::make_shared<const std::vector<Tuple>>(std::move(batch)));
  return std::shared_ptr<const DeltaRelation>(next);
}

std::shared_ptr<const DeltaRelation> DeltaRelation::SuffixFrom(
    size_t first_chunk) const {
  auto suffix = std::shared_ptr<DeltaRelation>(new DeltaRelation());
  suffix->name_ = name_;
  suffix->dim_ = dim_;
  suffix->sigma_max_ = sigma_max_;
  for (size_t c = first_chunk; c < chunks_.size(); ++c) {
    suffix->chunks_.push_back(chunks_[c]);
    for (const Tuple& t : *chunks_[c]) {
      suffix->ids_.insert(t.id);
      if (suffix->mbr_) {
        suffix->mbr_->Extend(Rect::ForPoint(t.x));
      } else {
        suffix->mbr_ = Rect::ForPoint(t.x);
      }
      suffix->score_max_ = std::max(suffix->score_max_, t.score);
    }
    suffix->size_ += chunks_[c]->size();
  }
  return suffix;
}

std::vector<Tuple> DeltaRelation::Collect() const {
  std::vector<Tuple> all;
  all.reserve(size_);
  for (const Chunk& chunk : chunks_) {
    all.insert(all.end(), chunk->begin(), chunk->end());
  }
  return all;
}

DeltaScoreSource::DeltaScoreSource(std::shared_ptr<const DeltaRelation> delta)
    : delta_(std::move(delta)), sorted_(delta_->Collect()) {
  std::sort(sorted_.begin(), sorted_.end(), ScoreOrderLess);
}

std::optional<Tuple> DeltaScoreSource::Next() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

DeltaDistanceSource::DeltaDistanceSource(
    std::shared_ptr<const DeltaRelation> delta, const Vec& query)
    : delta_(std::move(delta)), sorted_(delta_->Collect()) {
  PRJ_CHECK_EQ(query.dim(), delta_->dim());
  std::sort(sorted_.begin(), sorted_.end(),
            [&query](const Tuple& a, const Tuple& b) {
              return DistanceOrderLess(a.x.SquaredDistance(query),
                                       b.x.SquaredDistance(query), a, b);
            });
}

std::optional<Tuple> DeltaDistanceSource::Next() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

MergedAccessSource::MergedAccessSource(std::unique_ptr<AccessSource> base,
                                       std::unique_ptr<AccessSource> delta,
                                       Vec query)
    : base_(std::move(base)), delta_(std::move(delta)),
      query_(std::move(query)) {
  PRJ_CHECK_EQ(static_cast<int>(base_->kind()),
               static_cast<int>(delta_->kind()));
  PRJ_CHECK_EQ(base_->dim(), delta_->dim());
  if (base_->kind() == AccessKind::kDistance) {
    PRJ_CHECK_EQ(query_.dim(), base_->dim());
  }
}

std::optional<Tuple> MergedAccessSource::Next() {
  if (!primed_) {
    base_head_ = base_->Next();
    delta_head_ = delta_->Next();
    primed_ = true;
  }
  const bool take_base = [&]() {
    if (!base_head_) return false;
    if (!delta_head_) return true;
    if (base_->kind() == AccessKind::kDistance) {
      return DistanceOrderLess(base_head_->x.SquaredDistance(query_),
                               delta_head_->x.SquaredDistance(query_),
                               *base_head_, *delta_head_);
    }
    return ScoreOrderLess(*base_head_, *delta_head_);
  }();
  if (!base_head_ && !delta_head_) return std::nullopt;
  std::optional<Tuple> out;
  if (take_base) {
    out = std::move(base_head_);
    base_head_ = base_->Next();
  } else {
    out = std::move(delta_head_);
    delta_head_ = delta_->Next();
  }
  return out;
}

TombstoneFilterSource::TombstoneFilterSource(
    std::unique_ptr<AccessSource> inner,
    std::shared_ptr<const IdSet> tombstones)
    : inner_(std::move(inner)), tombstones_(std::move(tombstones)) {}

std::optional<Tuple> TombstoneFilterSource::Next() {
  for (;;) {
    std::optional<Tuple> t = inner_->Next();
    if (!t) return std::nullopt;
    if (!tombstones_ || tombstones_->count(t->id) == 0) return t;
  }
}

}  // namespace prj
