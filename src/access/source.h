// Sequential access to relations (paper Definition 2.1).
//
// The operator may only consume its inputs as streams, either
//   A. distance-based: increasing delta(x(tau), q), or
//   B. score-based:    decreasing sigma(tau),
// and pays one unit of the sumDepths cost metric per delivered tuple.
// Sources count their own depth so the engine's accounting cannot drift
// from what was actually consumed.
//
// Two distance implementations are provided: a presorted snapshot
// (SortedDistanceSource) and an R-tree-backed incremental browser
// (RTreeDistanceSource) that models a real spatial service answering
// nearest-first without materializing the order up front. They deliver
// identical streams (tested) -- pick whichever fits the deployment.
#ifndef PRJ_ACCESS_SOURCE_H_
#define PRJ_ACCESS_SOURCE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "access/relation.h"
#include "common/vec.h"
#include "index/rtree.h"
#include "plan/relation_stats.h"

namespace prj {

enum class AccessKind { kDistance, kScore };

/// Streaming view of one relation; not thread-safe.
class AccessSource {
 public:
  virtual ~AccessSource() = default;

  /// Delivers the next tuple in access order, or nullopt when exhausted.
  virtual std::optional<Tuple> Next() = 0;

  virtual AccessKind kind() const = 0;
  virtual const std::string& name() const = 0;
  /// Feature-space dimensionality of the underlying relation.
  virtual int dim() const = 0;
  /// Score ceiling of the underlying relation (known a priori).
  virtual double sigma_max() const = 0;
  /// Number of tuples delivered so far (the depth p_i of the paper).
  virtual size_t depth() const = 0;
};

/// Distance-based access over a presorted snapshot of the relation.
/// Ties in distance are broken by tuple id for determinism.
class SortedDistanceSource : public AccessSource {
 public:
  SortedDistanceSource(const Relation& relation, Vec query);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return AccessKind::kDistance; }
  const std::string& name() const override { return name_; }
  int dim() const override { return dim_; }
  double sigma_max() const override { return sigma_max_; }
  size_t depth() const override { return cursor_; }

 private:
  std::string name_;
  int dim_;
  double sigma_max_;
  std::vector<Tuple> sorted_;
  size_t cursor_ = 0;
};

/// Distance-based access backed by an R-tree using incremental
/// distance browsing (Hjaltason & Samet); equivalent stream to
/// SortedDistanceSource but with index-driven, on-demand ordering.
class RTreeDistanceSource : public AccessSource {
 public:
  /// `arena`, when given, backs the browse frontier and must outlive this
  /// source (see RTree::NearestBrowse).
  RTreeDistanceSource(const Relation& relation, Vec query,
                      Arena* arena = nullptr);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return AccessKind::kDistance; }
  const std::string& name() const override { return name_; }
  int dim() const override { return dim_; }
  double sigma_max() const override { return sigma_max_; }
  size_t depth() const override { return depth_; }

 private:
  std::string name_;
  int dim_;
  double sigma_max_;
  std::vector<Tuple> tuples_;  // payload lookup by position
  RTree tree_;
  std::optional<RTree::NearestIterator> browse_;
  size_t depth_ = 0;
};

/// Score-based access: decreasing sigma, ties by tuple id.
class ScoreSource : public AccessSource {
 public:
  explicit ScoreSource(const Relation& relation);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return AccessKind::kScore; }
  const std::string& name() const override { return name_; }
  int dim() const override { return dim_; }
  double sigma_max() const override { return sigma_max_; }
  size_t depth() const override { return cursor_; }

 private:
  std::string name_;
  int dim_;
  double sigma_max_;
  std::vector<Tuple> sorted_;
  size_t cursor_ = 0;
};

/// A relation with a prebuilt spatial index, shareable across queries: a
/// distance-access service builds its R-tree once and answers every query
/// with a fresh incremental browse over the same structure.
class IndexedRelation {
 public:
  static std::shared_ptr<const IndexedRelation> Build(const Relation& relation);

  const std::string& name() const { return name_; }
  int dim() const { return dim_; }
  double sigma_max() const { return sigma_max_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  const RTree& tree() const { return tree_; }
  /// Spatial envelope of the indexed tuples (the R-tree root MBR), or
  /// nullopt for an empty relation. Shard pruning's per-partition bound.
  const std::optional<Rect>& mbr() const { return mbr_; }
  /// Largest score actually present (0 for an empty relation): a tighter
  /// per-partition ceiling than the a-priori sigma_max.
  double score_max() const { return score_max_; }
  /// Planning statistics of the indexed tuples, computed once at Build;
  /// every engine sharing this catalog entry reads the same object.
  const RelationStats& stats() const { return stats_; }

 private:
  IndexedRelation(const Relation& relation);

  std::string name_;
  int dim_;
  double sigma_max_;
  std::vector<Tuple> tuples_;
  RTree tree_;
  std::optional<Rect> mbr_;
  double score_max_ = 0.0;
  RelationStats stats_;
};

/// Distance-based access over a shared IndexedRelation. Construction is
/// O(1) apart from seeding the browse iterator; the index is reused.
class SharedIndexDistanceSource : public AccessSource {
 public:
  /// `arena`, when given, backs the browse frontier and must outlive this
  /// source; Engine::TopK leases one per query so repeated queries on the
  /// same engine stop touching the system allocator.
  SharedIndexDistanceSource(std::shared_ptr<const IndexedRelation> index,
                            Vec query, Arena* arena = nullptr);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return AccessKind::kDistance; }
  const std::string& name() const override { return index_->name(); }
  int dim() const override { return index_->dim(); }
  double sigma_max() const override { return index_->sigma_max(); }
  size_t depth() const override { return depth_; }

 private:
  std::shared_ptr<const IndexedRelation> index_;
  std::optional<RTree::NearestIterator> browse_;
  size_t depth_ = 0;
};

/// A shared, immutable snapshot of a relation, the presorted counterpart
/// of IndexedRelation: tuple storage plus the query-independent
/// score-descending order, both computed once and then shared by every
/// query. Distance order depends on the query point, so distance access
/// over a snapshot re-sorts positions per query -- but never re-copies
/// the tuple payloads.
class RelationSnapshot {
 public:
  static std::shared_ptr<const RelationSnapshot> Build(
      const Relation& relation);

  const std::string& name() const { return name_; }
  int dim() const { return dim_; }
  double sigma_max() const { return sigma_max_; }
  /// Tuples in the relation's original order.
  const std::vector<Tuple>& tuples() const { return tuples_; }
  /// Positions into tuples() sorted by decreasing score, ties by id.
  const std::vector<uint32_t>& score_order() const { return score_order_; }
  /// Spatial envelope of the snapshot's tuples (computed once at Build),
  /// or nullopt for an empty relation; the presorted counterpart of
  /// IndexedRelation::mbr for shard pruning.
  const std::optional<Rect>& mbr() const { return mbr_; }
  /// Largest score actually present (0 for an empty relation).
  double score_max() const { return score_max_; }
  /// Planning statistics of the snapshot tuples, computed once at Build.
  const RelationStats& stats() const { return stats_; }

 private:
  explicit RelationSnapshot(const Relation& relation);

  std::string name_;
  int dim_;
  double sigma_max_;
  std::vector<Tuple> tuples_;
  std::vector<uint32_t> score_order_;
  std::optional<Rect> mbr_;
  double score_max_ = 0.0;
  RelationStats stats_;
};

/// Score-based access over a shared RelationSnapshot; O(1) setup. Same
/// stream as ScoreSource.
class SharedSnapshotScoreSource : public AccessSource {
 public:
  explicit SharedSnapshotScoreSource(
      std::shared_ptr<const RelationSnapshot> snapshot);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return AccessKind::kScore; }
  const std::string& name() const override { return snapshot_->name(); }
  int dim() const override { return snapshot_->dim(); }
  double sigma_max() const override { return snapshot_->sigma_max(); }
  size_t depth() const override { return cursor_; }

 private:
  std::shared_ptr<const RelationSnapshot> snapshot_;
  size_t cursor_ = 0;
};

/// Distance-based access over a shared RelationSnapshot: sorts positions
/// by distance to the query (same order as SortedDistanceSource) without
/// copying tuple payloads. Setup is O(N log N) in the relation size --
/// prefer the R-tree backend when per-query setup must be O(1).
class SharedSnapshotDistanceSource : public AccessSource {
 public:
  SharedSnapshotDistanceSource(std::shared_ptr<const RelationSnapshot> snapshot,
                               const Vec& query);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return AccessKind::kDistance; }
  const std::string& name() const override { return snapshot_->name(); }
  int dim() const override { return snapshot_->dim(); }
  double sigma_max() const override { return snapshot_->sigma_max(); }
  size_t depth() const override { return cursor_; }

 private:
  std::shared_ptr<const RelationSnapshot> snapshot_;
  std::vector<uint32_t> order_;  ///< positions, increasing distance from q
  size_t cursor_ = 0;
};

/// Decorator that fetches from the inner source in blocks of `block_size`,
/// modelling paged remote service invocations (paper §4.2 notes that
/// practical systems retrieve blocks of tuples). depth() reports tuples
/// *fetched from the service*, i.e. whole blocks, which is what a paged
/// deployment would pay for.
class BlockedSource : public AccessSource {
 public:
  BlockedSource(std::unique_ptr<AccessSource> inner, size_t block_size);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return inner_->kind(); }
  const std::string& name() const override { return inner_->name(); }
  int dim() const override { return inner_->dim(); }
  double sigma_max() const override { return inner_->sigma_max(); }
  size_t depth() const override { return inner_->depth(); }

 private:
  std::unique_ptr<AccessSource> inner_;
  size_t block_size_;
  std::vector<Tuple> buffer_;
  size_t buffer_pos_ = 0;
};

/// Builds one source per relation, all with the same access kind.
/// `use_rtree` selects the index-backed distance implementation.
std::vector<std::unique_ptr<AccessSource>> MakeSources(
    const std::vector<Relation>& relations, AccessKind kind, const Vec& query,
    bool use_rtree = false);

}  // namespace prj

#endif  // PRJ_ACCESS_SOURCE_H_
