// Append-only delta logs over the base relations, plus the access
// sources that stream them: the storage half of the live-data layer
// (live/live_engine.h).
//
// A DeltaRelation is an immutable, persistent (in the functional-data-
// structure sense) log of tuples appended to one relation since its base
// was last compacted. Append never mutates: it returns a new DeltaRelation
// sharing every existing chunk with its parent, so a query holding an
// older snapshot keeps streaming exactly the tuples it saw at capture
// time while writers race ahead. Alongside the tuples the delta maintains
// the pruning envelope incrementally -- the MBR of the appended points
// and the largest appended score -- so the live layer can corner-bound a
// delta shard without rescanning the log.
//
// The sources at the bottom of this header extend Definition 2.1 access
// to live data:
//
//   * DeltaScoreSource / DeltaDistanceSource stream a delta in exactly
//     the shared access orders (score desc / distance asc, ties by id --
//     the comparators in access/source.cc): bit-identity of the live
//     merge starts here.
//   * MergedAccessSource performs an order-preserving two-way merge of
//     base and delta streams, presenting them as one relation. It looks
//     ahead lazily (no pull before the first Next), so a freshly built
//     merge reports depth() == 0 and passes ValidateQueryPlan's fresh-
//     source check; depth() is the sum of the inner depths -- the real
//     sumDepths paid on the underlying services.
//   * TombstoneFilterSource drops deleted ids from any stream. Deletes in
//     the live layer are tombstones consulted at access time; the tuples
//     leave physical storage only at compaction.
#ifndef PRJ_ACCESS_DELTA_RELATION_H_
#define PRJ_ACCESS_DELTA_RELATION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "access/relation.h"
#include "access/source.h"
#include "common/status.h"
#include "common/vec.h"
#include "index/rtree.h"

namespace prj {

/// Tombstone set: ids deleted from one relation since its base was built.
using IdSet = std::unordered_set<int64_t>;

/// Immutable append-only log of tuples added to one relation. Appending
/// yields a NEW DeltaRelation that shares all previous chunks with its
/// parent -- snapshots are free, and a reader's view never moves.
class DeltaRelation {
 public:
  /// An empty delta carrying the relation's identity (name, dim, score
  /// ceiling) so sources over it can answer the AccessSource metadata.
  static std::shared_ptr<const DeltaRelation> Empty(std::string name, int dim,
                                                    double sigma_max);

  /// Validates the batch like Relation::Validate does at engine build
  /// (dim agreement, scores in (0, sigma_max], ids unique within the
  /// batch and fresh w.r.t. this delta) and returns the extended delta.
  /// `this` is unchanged; existing chunks are shared, not copied.
  Result<std::shared_ptr<const DeltaRelation>> Append(
      std::vector<Tuple> batch) const;

  /// The tuples of chunks [first_chunk, num_chunks()) as a new delta --
  /// what a newer log holds beyond an older snapshot's view. Used by
  /// compaction to carry over appends that raced past the rebuild.
  std::shared_ptr<const DeltaRelation> SuffixFrom(size_t first_chunk) const;

  /// Whether `id` was appended through this delta (any chunk).
  bool Contains(int64_t id) const { return ids_.count(id) > 0; }

  /// All delta tuples in append order, concatenated across chunks.
  std::vector<Tuple> Collect() const;

  const std::string& name() const { return name_; }
  int dim() const { return dim_; }
  double sigma_max() const { return sigma_max_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_chunks() const { return chunks_.size(); }

  /// Incrementally maintained pruning envelope of the appended points:
  /// MBR (nullopt while empty) and the largest appended score (0 while
  /// empty) -- the delta-side counterpart of RelationSnapshot::mbr() /
  /// score_max().
  const std::optional<Rect>& mbr() const { return mbr_; }
  double score_max() const { return score_max_; }

 private:
  DeltaRelation() = default;

  using Chunk = std::shared_ptr<const std::vector<Tuple>>;

  std::string name_;
  int dim_ = 0;
  double sigma_max_ = 1.0;
  std::vector<Chunk> chunks_;  ///< shared with parents and children
  IdSet ids_;                  ///< every id across all chunks
  size_t size_ = 0;
  std::optional<Rect> mbr_;
  double score_max_ = 0.0;
};

/// Score-based access over a delta: decreasing score, ties by id --
/// identical order to ScoreSource over the same tuples.
class DeltaScoreSource : public AccessSource {
 public:
  explicit DeltaScoreSource(std::shared_ptr<const DeltaRelation> delta);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return AccessKind::kScore; }
  const std::string& name() const override { return delta_->name(); }
  int dim() const override { return delta_->dim(); }
  double sigma_max() const override { return delta_->sigma_max(); }
  size_t depth() const override { return cursor_; }

 private:
  std::shared_ptr<const DeltaRelation> delta_;
  std::vector<Tuple> sorted_;
  size_t cursor_ = 0;
};

/// Distance-based access over a delta: increasing distance to the query,
/// ties by id -- identical order to SortedDistanceSource over the same
/// tuples. Setup sorts the delta (deltas are small by design; compaction
/// folds them into the indexed base before they grow).
class DeltaDistanceSource : public AccessSource {
 public:
  DeltaDistanceSource(std::shared_ptr<const DeltaRelation> delta,
                      const Vec& query);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return AccessKind::kDistance; }
  const std::string& name() const override { return delta_->name(); }
  int dim() const override { return delta_->dim(); }
  double sigma_max() const override { return delta_->sigma_max(); }
  size_t depth() const override { return cursor_; }

 private:
  std::shared_ptr<const DeltaRelation> delta_;
  std::vector<Tuple> sorted_;
  size_t cursor_ = 0;
};

/// Order-preserving two-way merge of two access streams over the same
/// logical relation (base + delta), presenting them as one source. Both
/// inners must share the access kind, dim, and tie discipline; the merge
/// picks whichever head comes first in the shared access order, so the
/// output is the stream a single source over the union would deliver.
///
/// Lookahead is lazy: no inner pull happens before the first Next call,
/// so a fresh merge has depth() == 0 (ValidateQueryPlan's fresh-source
/// requirement). depth() is the SUM of the inner depths: the cost model
/// charges what the underlying services actually delivered, including
/// the one-tuple lookahead each side may hold.
class MergedAccessSource : public AccessSource {
 public:
  /// `query` is needed under distance access to compare heads (squared
  /// distance); ignored under score access.
  MergedAccessSource(std::unique_ptr<AccessSource> base,
                     std::unique_ptr<AccessSource> delta, Vec query);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return base_->kind(); }
  const std::string& name() const override { return base_->name(); }
  int dim() const override { return base_->dim(); }
  double sigma_max() const override { return base_->sigma_max(); }
  size_t depth() const override { return base_->depth() + delta_->depth(); }

 private:
  std::unique_ptr<AccessSource> base_;
  std::unique_ptr<AccessSource> delta_;
  Vec query_;
  std::optional<Tuple> base_head_;
  std::optional<Tuple> delta_head_;
  bool primed_ = false;
};

/// Drops tombstoned ids from an access stream; the surviving tuples keep
/// their relative order, so the stream stays a valid Definition 2.1
/// access over the relation minus the deleted set. depth() is the inner
/// depth: the service delivered those tuples, so the cost model charges
/// them even when the filter discards some.
class TombstoneFilterSource : public AccessSource {
 public:
  TombstoneFilterSource(std::unique_ptr<AccessSource> inner,
                        std::shared_ptr<const IdSet> tombstones);

  std::optional<Tuple> Next() override;
  AccessKind kind() const override { return inner_->kind(); }
  const std::string& name() const override { return inner_->name(); }
  int dim() const override { return inner_->dim(); }
  double sigma_max() const override { return inner_->sigma_max(); }
  size_t depth() const override { return inner_->depth(); }

 private:
  std::unique_ptr<AccessSource> inner_;
  std::shared_ptr<const IdSet> tombstones_;
};

}  // namespace prj

#endif  // PRJ_ACCESS_DELTA_RELATION_H_
