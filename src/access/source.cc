#include "access/source.h"

#include <algorithm>

namespace prj {
namespace {

// The two access orders of Definition 2.1. Every source and snapshot must
// agree on these exactly -- the bit-identical contract between the Engine
// and the single-shot path (tests/engine_reuse_test.cc) depends on it.
bool ScoreOrderLess(const Tuple& a, const Tuple& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

bool DistanceOrderLess(double dist_a, double dist_b, const Tuple& a,
                       const Tuple& b) {
  if (dist_a != dist_b) return dist_a < dist_b;
  return a.id < b.id;
}

// R-tree fan-out for distance-access indexes. Wide nodes suit the SoA
// node layout: the batch MINDIST kernel scores a whole child block per
// call, so a 64-entry node trades tree height for kernel width -- ~1.25x
// more pulls/sec than the default 16 on the bench_hotpath sweep. The
// opposite holds for early-terminating NearestK queries, which keep the
// narrower RTree::kDefaultFanout (see the sweep note there). The
// browse stream itself is shape-independent (sorted by (distance, id)
// with a strict total order on frontier entries), so results are
// bit-identical across fan-outs.
constexpr int kBrowseFanout = 64;

}  // namespace

SortedDistanceSource::SortedDistanceSource(const Relation& relation, Vec query)
    : name_(relation.name()),
      dim_(relation.dim()),
      sigma_max_(relation.sigma_max()),
      sorted_(relation.tuples()) {
  PRJ_CHECK_EQ(query.dim(), relation.dim());
  std::sort(sorted_.begin(), sorted_.end(),
            [&](const Tuple& a, const Tuple& b) {
              return DistanceOrderLess(a.x.SquaredDistance(query),
                                       b.x.SquaredDistance(query), a, b);
            });
}

std::optional<Tuple> SortedDistanceSource::Next() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

RTreeDistanceSource::RTreeDistanceSource(const Relation& relation, Vec query,
                                         Arena* arena)
    : name_(relation.name()),
      dim_(relation.dim()),
      sigma_max_(relation.sigma_max()),
      tuples_(relation.tuples()),
      tree_(relation.dim() == 0 ? 1 : relation.dim()) {
  PRJ_CHECK_EQ(query.dim(), relation.dim());
  std::vector<RTree::Item> items;
  items.reserve(tuples_.size());
  for (size_t i = 0; i < tuples_.size(); ++i) {
    items.push_back(RTree::Item{tuples_[i].x, static_cast<int64_t>(i)});
  }
  tree_ = RTree::BulkLoad(relation.dim(), std::move(items), kBrowseFanout);
  browse_.emplace(tree_.NearestBrowse(query, arena));
}

std::optional<Tuple> RTreeDistanceSource::Next() {
  const RTree::Item* item = browse_->NextRef();
  if (item == nullptr) return std::nullopt;
  ++depth_;
  return tuples_[static_cast<size_t>(item->id)];
}

ScoreSource::ScoreSource(const Relation& relation)
    : name_(relation.name()),
      dim_(relation.dim()),
      sigma_max_(relation.sigma_max()),
      sorted_(relation.tuples()) {
  std::sort(sorted_.begin(), sorted_.end(), ScoreOrderLess);
}

std::optional<Tuple> ScoreSource::Next() {
  if (cursor_ >= sorted_.size()) return std::nullopt;
  return sorted_[cursor_++];
}

IndexedRelation::IndexedRelation(const Relation& relation)
    : name_(relation.name()),
      dim_(relation.dim()),
      sigma_max_(relation.sigma_max()),
      tuples_(relation.tuples()),
      tree_(relation.dim() == 0 ? 1 : relation.dim()) {
  std::vector<RTree::Item> items;
  items.reserve(tuples_.size());
  for (size_t i = 0; i < tuples_.size(); ++i) {
    items.push_back(RTree::Item{tuples_[i].x, static_cast<int64_t>(i)});
    score_max_ = std::max(score_max_, tuples_[i].score);
  }
  tree_ = RTree::BulkLoad(relation.dim(), std::move(items), kBrowseFanout);
  mbr_ = tree_.RootMbr();
  stats_ = BuildRelationStats(tuples_, dim_, sigma_max_);
}

std::shared_ptr<const IndexedRelation> IndexedRelation::Build(
    const Relation& relation) {
  PRJ_CHECK_GE(relation.dim(), 1);
  return std::shared_ptr<const IndexedRelation>(new IndexedRelation(relation));
}

SharedIndexDistanceSource::SharedIndexDistanceSource(
    std::shared_ptr<const IndexedRelation> index, Vec query, Arena* arena)
    : index_(std::move(index)) {
  PRJ_CHECK_EQ(query.dim(), index_->dim());
  browse_.emplace(index_->tree().NearestBrowse(query, arena));
}

std::optional<Tuple> SharedIndexDistanceSource::Next() {
  const RTree::Item* item = browse_->NextRef();
  if (item == nullptr) return std::nullopt;
  ++depth_;
  return index_->tuples()[static_cast<size_t>(item->id)];
}

RelationSnapshot::RelationSnapshot(const Relation& relation)
    : name_(relation.name()),
      dim_(relation.dim()),
      sigma_max_(relation.sigma_max()),
      tuples_(relation.tuples()) {
  score_order_.resize(tuples_.size());
  for (size_t i = 0; i < tuples_.size(); ++i) {
    score_order_[i] = static_cast<uint32_t>(i);
  }
  std::sort(score_order_.begin(), score_order_.end(),
            [&](uint32_t a, uint32_t b) {
              return ScoreOrderLess(tuples_[a], tuples_[b]);
            });
  for (const Tuple& t : tuples_) {
    score_max_ = std::max(score_max_, t.score);
    if (mbr_) {
      mbr_->Extend(Rect::ForPoint(t.x));
    } else {
      mbr_ = Rect::ForPoint(t.x);
    }
  }
  stats_ = BuildRelationStats(tuples_, dim_, sigma_max_);
}

std::shared_ptr<const RelationSnapshot> RelationSnapshot::Build(
    const Relation& relation) {
  return std::shared_ptr<const RelationSnapshot>(
      new RelationSnapshot(relation));
}

SharedSnapshotScoreSource::SharedSnapshotScoreSource(
    std::shared_ptr<const RelationSnapshot> snapshot)
    : snapshot_(std::move(snapshot)) {}

std::optional<Tuple> SharedSnapshotScoreSource::Next() {
  const auto& order = snapshot_->score_order();
  if (cursor_ >= order.size()) return std::nullopt;
  return snapshot_->tuples()[order[cursor_++]];
}

SharedSnapshotDistanceSource::SharedSnapshotDistanceSource(
    std::shared_ptr<const RelationSnapshot> snapshot, const Vec& query)
    : snapshot_(std::move(snapshot)) {
  PRJ_CHECK_EQ(query.dim(), snapshot_->dim());
  const auto& tuples = snapshot_->tuples();
  order_.resize(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    order_[i] = static_cast<uint32_t>(i);
  }
  // Distances are precomputed once (N evaluations, not N log N) -- this
  // constructor runs per query, so it is the snapshot backend's hot path.
  std::vector<double> dist(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    dist[i] = tuples[i].x.SquaredDistance(query);
  }
  std::sort(order_.begin(), order_.end(), [&](uint32_t a, uint32_t b) {
    return DistanceOrderLess(dist[a], dist[b], tuples[a], tuples[b]);
  });
}

std::optional<Tuple> SharedSnapshotDistanceSource::Next() {
  if (cursor_ >= order_.size()) return std::nullopt;
  return snapshot_->tuples()[order_[cursor_++]];
}

BlockedSource::BlockedSource(std::unique_ptr<AccessSource> inner,
                             size_t block_size)
    : inner_(std::move(inner)), block_size_(block_size) {
  PRJ_CHECK_GE(block_size_, 1u);
}

std::optional<Tuple> BlockedSource::Next() {
  if (buffer_pos_ >= buffer_.size()) {
    buffer_.clear();
    buffer_pos_ = 0;
    for (size_t i = 0; i < block_size_; ++i) {
      auto t = inner_->Next();
      if (!t) break;
      buffer_.push_back(std::move(*t));
    }
    if (buffer_.empty()) return std::nullopt;
  }
  return buffer_[buffer_pos_++];
}

std::vector<std::unique_ptr<AccessSource>> MakeSources(
    const std::vector<Relation>& relations, AccessKind kind, const Vec& query,
    bool use_rtree) {
  std::vector<std::unique_ptr<AccessSource>> sources;
  sources.reserve(relations.size());
  for (const Relation& r : relations) {
    if (kind == AccessKind::kDistance) {
      if (use_rtree) {
        sources.push_back(std::make_unique<RTreeDistanceSource>(r, query));
      } else {
        sources.push_back(std::make_unique<SortedDistanceSource>(r, query));
      }
    } else {
      sources.push_back(std::make_unique<ScoreSource>(r));
    }
  }
  return sources;
}

}  // namespace prj
