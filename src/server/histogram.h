// Streaming latency histogram for the server's p50/p99 reporting.
//
// Fixed geometric buckets (4 per power of two starting at 1 microsecond,
// ~19% relative resolution) with lock-free relaxed atomic counters: every
// worker records into its own histogram on the hot path with one atomic
// increment and no synchronization against readers, and the server merges
// the per-worker histograms into a snapshot only when stats are requested.
#ifndef PRJ_SERVER_HISTOGRAM_H_
#define PRJ_SERVER_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstddef>

namespace prj {

class LatencyHistogram {
 public:
  /// 4 buckets per octave from kMinSeconds: 112 buckets reach
  /// 1e-6 * 2^(112/4) ≈ 4.5 minutes; anything slower lands in the last
  /// (overflow) bucket -- ample headroom for query-serving latencies.
  static constexpr size_t kNumBuckets = 112;
  static constexpr double kMinSeconds = 1e-6;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample. Lock-free: a single relaxed fetch_add.
  void Record(double seconds);

  /// Adds `other`'s counts into this histogram (relaxed reads of a live
  /// histogram: the result is a consistent-enough snapshot for quantiles).
  void MergeFrom(const LatencyHistogram& other);

  /// Total samples recorded.
  uint64_t TotalCount() const;

  /// Upper bound of the bucket holding the q-quantile sample (q in
  /// [0, 1]); 0 when empty. Accurate to one bucket width (~19%).
  double Quantile(double q) const;

  /// Exposed for tests: the bucket a sample of `seconds` lands in, and a
  /// bucket's upper boundary in seconds.
  static size_t BucketIndex(double seconds);
  static double BucketUpperBound(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> counts_{};
};

}  // namespace prj

#endif  // PRJ_SERVER_HISTOGRAM_H_
