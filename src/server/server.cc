#include "server/server.h"

#include <algorithm>
#include <utility>

#include "common/timer.h"

namespace prj {

namespace {

int ResolveWorkerCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

Server::Server(const QueryEngine* engine, ServerOptions options)
    : engine_(engine), queue_(options.queue_capacity) {
  PRJ_CHECK(engine != nullptr);
  cache_baseline_ = engine->cache_counters();
  compactions_baseline_ = engine->live_counters().compactions;
  const int n = ResolveWorkerCount(options.num_workers);
  slots_.reserve(static_cast<size_t>(n));
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
    workers_.emplace_back(&Server::WorkerLoop, this, slots_.back().get());
  }
}

Server::~Server() { Shutdown(DrainMode::kDrain); }

void Server::WorkerLoop(WorkerSlot* slot) {
  while (auto task = queue_.Pop()) {
    QueryResult qr;
    // Exception barrier: an escape from a worker thread would terminate
    // the whole process and abandon every other future. A throwing query
    // (e.g. bad_alloc on a huge K) fails alone, through its status, like
    // every other per-query failure.
    try {
      qr = engine_->RunOne(task->request);
    } catch (const std::exception& e) {
      qr = QueryResult{};
      qr.status = Status::Internal(std::string("query threw: ") + e.what());
    } catch (...) {
      qr = QueryResult{};
      qr.status = Status::Internal("query threw a non-standard exception");
    }
    slot->latency.Record(task->submitted.ElapsedSeconds());
    slot->served.fetch_add(1, std::memory_order_relaxed);
    if (!qr.ok()) slot->failed.fetch_add(1, std::memory_order_relaxed);
    slot->sum_depths.fetch_add(qr.stats.sum_depths, std::memory_order_relaxed);
    slot->shards_pruned.fetch_add(qr.stats.shards_pruned,
                                  std::memory_order_relaxed);
    slot->delta_shards_pruned.fetch_add(qr.stats.delta_shards_pruned,
                                        std::memory_order_relaxed);
    slot->gather_nanos.fetch_add(
        static_cast<uint64_t>(qr.stats.gather_seconds * 1e9),
        std::memory_order_relaxed);
    task->promise.set_value(std::move(qr));
  }
}

QueryResult Server::Rejected() {
  QueryResult qr;
  qr.status = Status::Unavailable("server is shut down; query was not run");
  return qr;
}

std::future<QueryResult> Server::Submit(QueryRequest request) {
  Task task;
  task.request = std::move(request);
  std::future<QueryResult> future = task.promise.get_future();
  if (!queue_.Push(task)) {
    // Queue closed by Shutdown: the task was not consumed, so the promise
    // is still ours to resolve.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    task.promise.set_value(Rejected());
  }
  return future;
}

std::vector<QueryResult> Server::SubmitBatch(
    std::span<const QueryRequest> requests) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(Submit(request));
  }
  std::vector<QueryResult> results;
  results.reserve(requests.size());
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

void Server::Shutdown(DrainMode mode) {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (stopped_) return;
  stopped_ = true;
  if (mode == DrainMode::kCancel) {
    // Fail the backlog first so waiters unblock immediately; the workers
    // then finish only the queries they had already started.
    std::vector<Task> cancelled = queue_.CloseAndDrain();
    rejected_.fetch_add(cancelled.size(), std::memory_order_relaxed);
    for (Task& task : cancelled) {
      task.promise.set_value(Rejected());
    }
  } else {
    queue_.Close();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ServerStats Server::Stats() const {
  ServerStats stats;
  LatencyHistogram merged;
  for (const auto& slot : slots_) {
    stats.queries_served += slot->served.load(std::memory_order_relaxed);
    stats.queries_failed += slot->failed.load(std::memory_order_relaxed);
    stats.sum_depths += slot->sum_depths.load(std::memory_order_relaxed);
    stats.shards_pruned +=
        slot->shards_pruned.load(std::memory_order_relaxed);
    stats.delta_shards_pruned +=
        slot->delta_shards_pruned.load(std::memory_order_relaxed);
    stats.gather_seconds +=
        static_cast<double>(
            slot->gather_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    merged.MergeFrom(slot->latency);
  }
  stats.queries_rejected = rejected_.load(std::memory_order_relaxed);
  stats.queue_high_water = queue_.high_water();
  stats.latency_p50_seconds = merged.Quantile(0.5);
  stats.latency_p99_seconds = merged.Quantile(0.99);
  // Engine-side metadata joins the merge: cache counters from whatever
  // cache layers the engine stack contains -- as deltas against the
  // construction-time snapshot, so a server never reports traffic that
  // predates it -- and the scatter fan-out.
  const CacheCounters cache = engine_->cache_counters();
  stats.cache_hits = cache.hits - cache_baseline_.hits;
  stats.cache_misses = cache.misses - cache_baseline_.misses;
  stats.cache_evictions = cache.evictions - cache_baseline_.evictions;
  stats.shard_fan_out = engine_->fan_out();
  // Live-data gauges are point-in-time reads of the stack's live layer;
  // compactions report as a delta so a server over a long-lived engine
  // only claims the rebuilds that happened on its watch.
  const LiveCounters live = engine_->live_counters();
  stats.data_epoch = live.epoch;
  stats.delta_tuples = live.delta_tuples;
  stats.live_tombstones = live.tombstones;
  stats.compactions = live.compactions - compactions_baseline_;
  return stats;
}

}  // namespace prj
