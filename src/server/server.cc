#include "server/server.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/timer.h"
#include "core/result_cursor.h"

namespace prj {

namespace {

int ResolveWorkerCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// Page tokens are "pg:<session-id>:<offset>": opaque to clients, but
// self-describing enough that a lost session (LRU eviction, restart) can
// be served exactly by reopening a cursor and skipping to <offset>.
// Session id 0 means "no session" -- the cursor-less TopK fallback.
std::string MakePageToken(uint64_t id, uint64_t offset) {
  return "pg:" + std::to_string(id) + ":" + std::to_string(offset);
}

bool ParseU64(const std::string& text, size_t begin, size_t end,
              uint64_t* out) {
  if (begin >= end) return false;
  uint64_t value = 0;
  for (size_t i = begin; i < end; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    if (value > (std::numeric_limits<uint64_t>::max() - (c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParsePageToken(const std::string& token, uint64_t* id, uint64_t* offset) {
  if (token.rfind("pg:", 0) != 0) return false;
  const size_t sep = token.find(':', 3);
  if (sep == std::string::npos) return false;
  return ParseU64(token, 3, sep, id) &&
         ParseU64(token, sep + 1, token.size(), offset);
}

}  // namespace

Server::Server(const QueryEngine* engine, ServerOptions options)
    : engine_(engine),
      queue_(options.queue_capacity),
      max_page_sessions_(std::max<size_t>(1, options.max_page_sessions)) {
  PRJ_CHECK(engine != nullptr);
  cache_baseline_ = engine->cache_counters();
  compactions_baseline_ = engine->live_counters().compactions;
  const int n = ResolveWorkerCount(options.num_workers);
  slots_.reserve(static_cast<size_t>(n));
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
    workers_.emplace_back(&Server::WorkerLoop, this, slots_.back().get());
  }
}

Server::~Server() { Shutdown(DrainMode::kDrain); }

void Server::WorkerLoop(WorkerSlot* slot) {
  while (auto task = queue_.Pop()) {
    // Exception barrier: an escape from a worker thread would terminate
    // the whole process and abandon every other future. A throwing query
    // (e.g. bad_alloc on a huge K) fails alone, through its status, like
    // every other per-query failure.
    if (task->kind == Task::Kind::kPage) {
      PageResult page;
      try {
        page = ServePage(task->request, task->page_token);
      } catch (const std::exception& e) {
        page = PageResult{};
        page.result.status =
            Status::Internal(std::string("page threw: ") + e.what());
      } catch (...) {
        page = PageResult{};
        page.result.status =
            Status::Internal("page threw a non-standard exception");
      }
      slot->latency.Record(task->submitted.ElapsedSeconds());
      slot->served.fetch_add(1, std::memory_order_relaxed);
      slot->pages.fetch_add(1, std::memory_order_relaxed);
      if (!page.result.ok()) {
        slot->failed.fetch_add(1, std::memory_order_relaxed);
      }
      // Pages charge their marginal cost: the session's cumulative stats
      // would re-bill every earlier page on each pull.
      slot->sum_depths.fetch_add(page.page_cost_depths,
                                 std::memory_order_relaxed);
      task->page_promise.set_value(std::move(page));
      continue;
    }
    QueryResult qr;
    uint64_t streamed = 0;
    try {
      qr = task->kind == Task::Kind::kStream
               ? ServeStream(task->request, task->on_result, &streamed)
               : engine_->RunOne(task->request);
    } catch (const std::exception& e) {
      qr = QueryResult{};
      qr.status = Status::Internal(std::string("query threw: ") + e.what());
    } catch (...) {
      qr = QueryResult{};
      qr.status = Status::Internal("query threw a non-standard exception");
    }
    slot->latency.Record(task->submitted.ElapsedSeconds());
    slot->served.fetch_add(1, std::memory_order_relaxed);
    slot->streamed.fetch_add(streamed, std::memory_order_relaxed);
    if (!qr.ok()) slot->failed.fetch_add(1, std::memory_order_relaxed);
    slot->sum_depths.fetch_add(qr.stats.sum_depths, std::memory_order_relaxed);
    slot->shards_pruned.fetch_add(qr.stats.shards_pruned,
                                  std::memory_order_relaxed);
    slot->delta_shards_pruned.fetch_add(qr.stats.delta_shards_pruned,
                                        std::memory_order_relaxed);
    slot->gather_nanos.fetch_add(
        static_cast<uint64_t>(qr.stats.gather_seconds * 1e9),
        std::memory_order_relaxed);
    task->promise.set_value(std::move(qr));
  }
}

QueryResult Server::Rejected() {
  QueryResult qr;
  qr.status = Status::Unavailable("server is shut down; query was not run");
  return qr;
}

void Server::Reject(Task* task) {
  if (task->kind == Task::Kind::kPage) {
    PageResult page;
    page.result = Rejected();
    task->page_promise.set_value(std::move(page));
  } else {
    task->promise.set_value(Rejected());
  }
}

std::future<QueryResult> Server::Submit(QueryRequest request) {
  Task task;
  task.request = std::move(request);
  std::future<QueryResult> future = task.promise.get_future();
  if (!queue_.Push(task)) {
    // Queue closed by Shutdown: the task was not consumed, so the promise
    // is still ours to resolve.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Reject(&task);
  }
  return future;
}

std::future<PageResult> Server::SubmitPage(QueryRequest request,
                                           std::string page_token) {
  Task task;
  task.kind = Task::Kind::kPage;
  task.request = std::move(request);
  task.page_token = std::move(page_token);
  std::future<PageResult> future = task.page_promise.get_future();
  if (!queue_.Push(task)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Reject(&task);
  }
  return future;
}

std::future<QueryResult> Server::SubmitStream(QueryRequest request,
                                              StreamCallback on_result) {
  Task task;
  task.kind = Task::Kind::kStream;
  task.request = std::move(request);
  task.on_result = std::move(on_result);
  std::future<QueryResult> future = task.promise.get_future();
  if (!queue_.Push(task)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    Reject(&task);
  }
  return future;
}

std::vector<QueryResult> Server::SubmitBatch(
    std::span<const QueryRequest> requests) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(Submit(request));
  }
  std::vector<QueryResult> results;
  results.reserve(requests.size());
  for (auto& future : futures) {
    results.push_back(future.get());
  }
  return results;
}

void Server::Shutdown(DrainMode mode) {
  MutexLock lock(shutdown_mu_);
  if (stopped_) return;
  stopped_ = true;
  if (mode == DrainMode::kCancel) {
    // Fail the backlog first so waiters unblock immediately; the workers
    // then finish only the queries they had already started.
    std::vector<Task> cancelled = queue_.CloseAndDrain();
    rejected_.fetch_add(cancelled.size(), std::memory_order_relaxed);
    for (Task& task : cancelled) {
      Reject(&task);
    }
  } else {
    queue_.Close();
  }
  for (std::thread& worker : workers_) {
    worker.join();
  }
  // Page-session cursors pin engine snapshots (and, for live engines,
  // whole epochs); a stopped server must not keep them alive. Workers are
  // joined, so no session is in use.
  MutexLock sessions_lock(sessions_mu_);
  session_index_.clear();
  session_lru_.clear();
}

size_t Server::live_page_sessions() const {
  MutexLock lock(sessions_mu_);
  return session_lru_.size();
}

std::shared_ptr<Server::PageSession> Server::FindSession(uint64_t id) {
  MutexLock lock(sessions_mu_);
  auto it = session_index_.find(id);
  if (it == session_index_.end()) return nullptr;
  session_lru_.splice(session_lru_.begin(), session_lru_, it->second);
  return session_lru_.front();
}

std::shared_ptr<Server::PageSession> Server::RegisterSession(
    std::string enum_key) {
  auto session = std::make_shared<PageSession>();
  session->enum_key = std::move(enum_key);
  MutexLock lock(sessions_mu_);
  session->id = next_session_id_++;
  session_lru_.push_front(session);
  session_index_.emplace(session->id, session_lru_.begin());
  while (session_lru_.size() > max_page_sessions_) {
    // The evicted session's token stays serviceable: its next pull
    // reopens a cursor and skips to the token's offset.
    session_index_.erase(session_lru_.back()->id);
    session_lru_.pop_back();
  }
  return session;
}

void Server::DropSession(uint64_t id) {
  MutexLock lock(sessions_mu_);
  auto it = session_index_.find(id);
  if (it == session_index_.end()) return;
  session_lru_.erase(it->second);
  session_index_.erase(it);
}

PageResult Server::ServePage(const QueryRequest& request,
                             const std::string& token) {
  PageResult page;
  uint64_t id = 0;
  uint64_t offset = 0;
  if (!token.empty() && !ParsePageToken(token, &id, &offset)) {
    page.result.status =
        Status::InvalidArgument("malformed page token: " + token);
    return page;
  }
  const uint64_t page_size =
      request.options.k > 0 ? static_cast<uint64_t>(request.options.k) : 0;
  const std::string enum_key =
      CanonicalEnumerationKey(request.query, request.options);
  std::shared_ptr<PageSession> session = id != 0 ? FindSession(id) : nullptr;
  if (session && session->enum_key != enum_key) {
    page.result.status = Status::InvalidArgument(
        "page token belongs to a different request; resend the request "
        "that started the paging session");
    return page;
  }

  if (session) {
    PageSession* held = session.get();
    MutexLock lock(held->mu);
    if (held->cursor != nullptr && held->next_rank == offset) {
      return ServeCursorPage(held, offset, page_size);
    }
    // A replayed or out-of-order token: the cursor cannot rewind, so fall
    // through and reopen at the requested offset.
  }

  auto cursor = engine_->OpenCursor(request);
  if (!cursor.ok()) {
    if (cursor.status().code() == StatusCode::kUnimplemented) {
      return PageViaTopK(request, offset, page_size);
    }
    page.result.status = cursor.status();
    return page;
  }
  if (!session) session = RegisterSession(enum_key);
  PageSession* held = session.get();
  MutexLock lock(held->mu);
  held->cursor = std::move(cursor).value();
  held->next_rank = 0;
  held->reported_depths = 0;
  if (offset > 0) {
    // Stale or replayed token: skip to its offset. Exact -- the skipped
    // prefix is the same prefix every earlier page served.
    auto skipped = held->cursor->NextBatch(offset);
    if (!skipped.ok()) {
      page.result.status = skipped.status();
      return page;
    }
    held->next_rank = skipped->size();
    if (skipped->size() < offset) {
      // The enumeration ends before this page starts: empty final page.
      page.result.status = Status::OK();
      page.result.stats = held->cursor->stats();
      page.page_start = offset;
      page.page_cost_depths =
          page.result.stats.sum_depths - held->reported_depths;
      held->reported_depths = page.result.stats.sum_depths;
      DropSession(held->id);
      return page;
    }
  }
  return ServeCursorPage(held, offset, page_size);
}

PageResult Server::ServeCursorPage(PageSession* session, uint64_t offset,
                                   uint64_t page_size) {
  PageResult out;
  auto batch = session->cursor->NextBatch(page_size);
  if (!batch.ok()) {
    out.result.status = batch.status();
    return out;
  }
  out.result.status = Status::OK();
  out.result.combinations = std::move(batch).value();
  out.result.stats = session->cursor->stats();
  out.page_start = offset;
  out.page_cost_depths = out.result.stats.sum_depths - session->reported_depths;
  session->reported_depths = out.result.stats.sum_depths;
  session->next_rank = offset + out.result.combinations.size();
  if (out.result.combinations.size() == page_size && page_size > 0) {
    out.next_page_token = MakePageToken(session->id, session->next_rank);
  } else {
    // Enumeration exhausted: retire the session (safe lock order --
    // nothing takes a session mutex while holding sessions_mu_).
    DropSession(session->id);
  }
  return out;
}

PageResult Server::PageViaTopK(const QueryRequest& request, uint64_t offset,
                               uint64_t page_size) {
  PageResult page;
  const uint64_t want = offset + page_size;
  if (want > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    page.result.status =
        Status::InvalidArgument("page offset too large for the TopK fallback");
    return page;
  }
  QueryRequest deep = request;
  deep.options.k = static_cast<int>(want);
  QueryResult qr = engine_->RunOne(deep);
  page.page_start = offset;
  // The fallback recomputes ranks [0, offset + k) every page; its page
  // cost is the whole run -- exactly the degradation bench_cursor_paging
  // quantifies against the cursor path.
  page.page_cost_depths = qr.stats.sum_depths;
  if (!qr.ok()) {
    page.result = std::move(qr);
    return page;
  }
  const bool may_have_more = qr.combinations.size() == want;
  qr.combinations.erase(
      qr.combinations.begin(),
      qr.combinations.begin() +
          static_cast<std::ptrdiff_t>(
              std::min<uint64_t>(offset, qr.combinations.size())));
  page.result = std::move(qr);
  if (may_have_more && page_size > 0) {
    page.next_page_token = MakePageToken(0, want);
  }
  return page;
}

QueryResult Server::ServeStream(const QueryRequest& request,
                                const StreamCallback& on_result,
                                uint64_t* delivered) {
  QueryResult qr;
  auto cursor = engine_->OpenCursor(request);
  if (!cursor.ok()) {
    if (cursor.status().code() != StatusCode::kUnimplemented) {
      qr.status = cursor.status();
      return qr;
    }
    // Cursor-less engine: run one-shot, then replay the callbacks in
    // order. Results arrive late but identically.
    qr = engine_->RunOne(request);
    if (qr.ok()) {
      for (size_t rank = 0; rank < qr.combinations.size(); ++rank) {
        on_result(rank, qr.combinations[rank]);
      }
      *delivered = qr.combinations.size();
      qr.combinations.clear();  // delivered through the callback
    }
    return qr;
  }
  const std::unique_ptr<ResultCursor> stream = std::move(cursor).value();
  const uint64_t k =
      request.options.k > 0 ? static_cast<uint64_t>(request.options.k) : 0;
  for (uint64_t rank = 0; rank < k; ++rank) {
    auto next = stream->Next();
    if (!next.ok()) {
      qr.status = next.status();
      qr.stats = stream->stats();
      return qr;
    }
    if (!next->has_value()) break;
    on_result(rank, **next);
    ++*delivered;
  }
  qr.status = Status::OK();
  qr.stats = stream->stats();
  return qr;
}

ServerStats Server::Stats() const {
  ServerStats stats;
  LatencyHistogram merged;
  for (const auto& slot : slots_) {
    stats.queries_served += slot->served.load(std::memory_order_relaxed);
    stats.queries_failed += slot->failed.load(std::memory_order_relaxed);
    stats.sum_depths += slot->sum_depths.load(std::memory_order_relaxed);
    stats.shards_pruned +=
        slot->shards_pruned.load(std::memory_order_relaxed);
    stats.delta_shards_pruned +=
        slot->delta_shards_pruned.load(std::memory_order_relaxed);
    stats.gather_seconds +=
        static_cast<double>(
            slot->gather_nanos.load(std::memory_order_relaxed)) *
        1e-9;
    stats.pages_served += slot->pages.load(std::memory_order_relaxed);
    stats.streamed_results += slot->streamed.load(std::memory_order_relaxed);
    merged.MergeFrom(slot->latency);
  }
  stats.queries_rejected = rejected_.load(std::memory_order_relaxed);
  stats.queue_high_water = queue_.high_water();
  stats.latency_p50_seconds = merged.Quantile(0.5);
  stats.latency_p99_seconds = merged.Quantile(0.99);
  // Engine-side metadata joins the merge: cache counters from whatever
  // cache layers the engine stack contains -- as deltas against the
  // construction-time snapshot, so a server never reports traffic that
  // predates it -- and the scatter fan-out.
  const CacheCounters cache = engine_->cache_counters();
  stats.cache_hits = cache.hits - cache_baseline_.hits;
  stats.cache_misses = cache.misses - cache_baseline_.misses;
  stats.cache_evictions = cache.evictions - cache_baseline_.evictions;
  stats.shard_fan_out = engine_->fan_out();
  // Live-data gauges are point-in-time reads of the stack's live layer;
  // compactions report as a delta so a server over a long-lived engine
  // only claims the rebuilds that happened on its watch.
  const LiveCounters live = engine_->live_counters();
  stats.data_epoch = live.epoch;
  stats.delta_tuples = live.delta_tuples;
  stats.live_tombstones = live.tombstones;
  stats.compactions = live.compactions - compactions_baseline_;
  return stats;
}

}  // namespace prj
