#include "server/histogram.h"

#include <cmath>

namespace prj {

size_t LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;  // also catches NaN and negatives
  const double octaves = std::log2(seconds / kMinSeconds);
  const double idx = std::floor(octaves * 4.0) + 1.0;
  if (idx >= static_cast<double>(kNumBuckets)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

double LatencyHistogram::BucketUpperBound(size_t index) {
  // Bucket 0 holds everything <= kMinSeconds; bucket i >= 1 covers
  // [kMinSeconds * 2^((i-1)/4), kMinSeconds * 2^(i/4)).
  return kMinSeconds * std::exp2(static_cast<double>(index) / 4.0);
}

void LatencyHistogram::Record(double seconds) {
  counts_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = other.counts_[i].load(std::memory_order_relaxed);
    if (n > 0) counts_[i].fetch_add(n, std::memory_order_relaxed);
  }
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::Quantile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // The sample with (1-based) rank ceil(q * total), clamped to [1, total].
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketUpperBound(i);
  }
  return BucketUpperBound(kNumBuckets - 1);
}

}  // namespace prj
