// Concurrent query service over an immutable QueryEngine.
//
// The paper's operator is meant to run inside a service answering many
// users' proximity top-K queries against the same indexed relations
// (PAPER.md §1, §5). The QueryEngine implementations give the
// single-machine substrate -- construct once, then const, data-race-free
// TopK calls -- and Server turns any of them (monolithic Engine, sharded
// scatter-gather, cached decorator, or a stack of those) into a
// traffic-serving front end:
//
//   * a fixed pool of worker threads pulling from a bounded MPMC request
//     queue (back-pressure: Submit blocks while the queue is full);
//   * Submit(QueryRequest) -> std::future<QueryResult> for async callers;
//   * SubmitBatch, the concurrent counterpart of Engine::RunBatch: fans a
//     batch across the pool and blocks until every result is in, in order;
//   * graceful Shutdown that either drains the backlog (kDrain) or
//     cancels it (kCancel: queued requests fail with kUnavailable instead
//     of hanging);
//   * aggregate ServerStats -- queries served, p50/p99 latency from a
//     streaming histogram, queue-depth high-water mark -- merged from
//     per-worker counters that the hot path updates without locks.
//
// Results are bit-identical to serial Engine::TopK calls (tested): the
// engine is shared strictly read-only and each query runs on exactly one
// worker.
#ifndef PRJ_SERVER_SERVER_H_
#define PRJ_SERVER_SERVER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "core/query_engine.h"
#include "server/histogram.h"
#include "server/queue.h"

namespace prj {

struct ServerOptions {
  /// Worker threads in the pool; 0 picks std::thread::hardware_concurrency
  /// (at least 1).
  int num_workers = 0;
  /// Bounded request-queue capacity; Submit blocks when it is full.
  size_t queue_capacity = 1024;
  /// Cap on live paged-enumeration sessions (SubmitPage cursors). Least-
  /// recently-used sessions beyond the cap are evicted; their tokens stay
  /// valid -- a stale token reopens the cursor and skips to its offset --
  /// so the cap bounds memory (cursors pin engine snapshots), never
  /// correctness. Values below 1 are treated as 1.
  size_t max_page_sessions = 64;
};

/// One page of a paged enumeration (SubmitPage): up to options.k results
/// starting at global rank `page_start`, plus the token addressing the
/// next page. Every page prefix is bit-identical to a one-shot TopK of
/// the same length -- paging changes cost, never content.
struct PageResult {
  /// status, this page's combinations, and the CUMULATIVE ExecStats of
  /// the session's enumeration so far (all pages, not just this one).
  QueryResult result;
  /// Opaque token for the next page; empty when the enumeration is
  /// exhausted (this page was short or the cross product ended).
  std::string next_page_token;
  /// Global rank (0-based) of this page's first combination.
  uint64_t page_start = 0;
  /// Access depth paid for THIS page alone (the marginal sum_depths since
  /// the previous page) -- the number bench_cursor_paging gates on:
  /// page 2 through a cursor must cost less than recomputing from rank 0.
  uint64_t page_cost_depths = 0;
};

/// Per-result delivery for SubmitStream: invoked on the serving worker's
/// thread, once per certified combination, in result order, with the
/// combination's global rank. Must be thread-safe against itself only if
/// the caller streams multiple requests concurrently.
using StreamCallback =
    std::function<void(uint64_t rank, const ResultCombination& combination)>;

/// Aggregate counters merged from the per-worker slots; a point-in-time
/// snapshot (exact once the server is idle or shut down).
struct ServerStats {
  uint64_t queries_served = 0;    ///< completed by a worker (ok or failed)
  uint64_t queries_failed = 0;    ///< subset of served with !status.ok()
  uint64_t queries_rejected = 0;  ///< refused at Submit or cancelled queued
  uint64_t sum_depths = 0;        ///< total access cost of served queries
                                  ///< (pages charge their marginal cost)
  uint64_t pages_served = 0;      ///< SubmitPage requests completed
  uint64_t streamed_results = 0;  ///< combinations delivered via callbacks
  size_t queue_high_water = 0;    ///< deepest the request queue ever got
  /// Result-cache counter deltas since this server's construction (all
  /// zero when no CachedEngine layer is present). Note: engine stacks can
  /// be shared; traffic other users drive through the same stack while
  /// this server is up is included in the delta.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  /// Scatter fan-out of the engine: per-shard engines consulted per query
  /// (1 for a monolithic Engine).
  size_t shard_fan_out = 1;
  /// Shards the corner bound skipped, summed over served queries (0 when
  /// the engine stack has no sharded layer or pruning is off).
  uint64_t shards_pruned = 0;
  /// Total time the sharded gather spent merging per-shard results.
  double gather_seconds = 0.0;
  /// Live-data gauges, read off the engine stack at Stats() time (all
  /// zero when no LiveEngine layer is present): current content epoch,
  /// delta tuples and tombstones not yet compacted, and compactions
  /// completed since this server's construction (a delta, like the cache
  /// counters; the gauges are point-in-time by nature).
  uint64_t data_epoch = 0;
  uint64_t delta_tuples = 0;
  uint64_t live_tombstones = 0;
  uint64_t compactions = 0;
  /// Delta shards the live layer's corner bound skipped, summed over
  /// served queries.
  uint64_t delta_shards_pruned = 0;
  /// End-to-end latency quantiles, clocked from Submit to completion --
  /// queue wait included, so saturation shows up here, not just in
  /// queue_high_water.
  double latency_p50_seconds = 0.0;
  double latency_p99_seconds = 0.0;
};

class Server {
 public:
  enum class DrainMode {
    kDrain,   ///< finish every queued request before stopping
    kCancel,  ///< fail queued requests with kUnavailable, stop after the
              ///< queries already running
  };

  /// Starts the worker pool. `engine` must outlive the server and is only
  /// ever used through its const API. Any QueryEngine implementation
  /// works unmodified: Engine, ShardedEngine, CachedEngine, or a
  /// composition (tested under TSan for all of them).
  explicit Server(const QueryEngine* engine, ServerOptions options = {});

  /// Equivalent to Shutdown(DrainMode::kDrain) if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one query; the future resolves to its QueryResult (per-query
  /// failures travel in QueryResult::status, like Engine::RunBatch).
  /// Blocks while the queue is full. After Shutdown the future is already
  /// resolved with a kUnavailable status.
  std::future<QueryResult> Submit(QueryRequest request);

  /// Concurrent counterpart of Engine::RunBatch: fans the batch across
  /// the worker pool and blocks until all results are in. Always returns
  /// one QueryResult per request, in request order.
  std::vector<QueryResult> SubmitBatch(std::span<const QueryRequest> requests);

  /// Paged top-K: returns options.k results per page. An empty token asks
  /// for page 1 and opens a cursor session; pass each PageResult's
  /// next_page_token (with the SAME request) to pull the next page for
  /// only its marginal cost -- the session resumes the engine cursor
  /// where the previous page stopped. Sessions survive in a bounded LRU
  /// registry; a stale token (evicted session, server restart, or a
  /// replayed older token) is served exactly anyway by reopening and
  /// skipping to the token's offset. Engines without cursor support
  /// degrade to TopK(offset + k) per page, sliced. A token from a
  /// different request is rejected as kInvalidArgument.
  std::future<PageResult> SubmitPage(QueryRequest request,
                                     std::string page_token = {});

  /// Streaming top-K: `on_result` fires on the serving worker's thread
  /// for each of the top options.k combinations AS the bound certifies
  /// them -- first results arrive before the enumeration finishes. The
  /// future resolves after the last callback with status + ExecStats
  /// (combinations empty: they were already delivered). Engines without
  /// cursor support fall back to one-shot TopK, then replay the callbacks
  /// in order.
  std::future<QueryResult> SubmitStream(QueryRequest request,
                                        StreamCallback on_result);

  /// Stops the pool: closes the queue, then either drains the backlog or
  /// cancels it (see DrainMode), and joins every worker. Idempotent;
  /// concurrent calls serialize.
  void Shutdown(DrainMode mode = DrainMode::kDrain);

  /// Merged per-worker counters plus queue accounting. Safe to call at any
  /// time, including while queries are in flight.
  ServerStats Stats() const;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const QueryEngine& engine() const { return *engine_; }
  /// Paged-enumeration sessions currently registered (bounded by
  /// ServerOptions::max_page_sessions; test/ops introspection).
  size_t live_page_sessions() const;

 private:
  struct Task {
    enum class Kind { kQuery, kPage, kStream };
    Kind kind = Kind::kQuery;
    QueryRequest request;
    std::string page_token;     ///< kPage only
    StreamCallback on_result;   ///< kStream only
    std::promise<QueryResult> promise;        ///< kQuery / kStream
    std::promise<PageResult> page_promise;    ///< kPage
    WallTimer submitted;  ///< starts in Submit: latency includes queue wait
  };

  /// One paged enumeration: the engine cursor plus its read position,
  /// owned by the session registry and serialized by its own mutex (two
  /// racing pulls of the same token never interleave on the cursor).
  struct PageSession {
    uint64_t id = 0;
    /// CanonicalEnumerationKey of the request that opened the session:
    /// guards against a token replayed with a different request.
    std::string enum_key;
    Mutex mu;
    std::unique_ptr<ResultCursor> cursor PRJ_GUARDED_BY(mu);
    uint64_t next_rank PRJ_GUARDED_BY(mu) = 0;
    /// Marginal-cost base: sum_depths already billed to earlier pages.
    uint64_t reported_depths PRJ_GUARDED_BY(mu) = 0;
  };

  /// One cache line per worker: the hot path touches only its own slot,
  /// with relaxed atomics, so serving threads never contend on stats.
  struct alignas(64) WorkerSlot {
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> failed{0};
    std::atomic<uint64_t> sum_depths{0};
    std::atomic<uint64_t> shards_pruned{0};
    std::atomic<uint64_t> delta_shards_pruned{0};
    std::atomic<uint64_t> gather_nanos{0};
    std::atomic<uint64_t> pages{0};
    std::atomic<uint64_t> streamed{0};
    LatencyHistogram latency;
  };

  void WorkerLoop(WorkerSlot* slot);
  static QueryResult Rejected();
  /// Resolves whichever promise `task`'s kind carries with the rejection
  /// status (queue closed / backlog cancelled).
  static void Reject(Task* task);

  PageResult ServePage(const QueryRequest& request, const std::string& token);
  /// Serves one page from `session`'s positioned cursor (which must sit at
  /// rank `offset`). Formerly a lambda invoked with the session lock held
  /// -- opaque to the thread-safety analysis; as an annotated member the
  /// requirement is machine-checked at every call site.
  PageResult ServeCursorPage(PageSession* session, uint64_t offset,
                             uint64_t page_size) PRJ_REQUIRES(session->mu);
  PageResult PageViaTopK(const QueryRequest& request, uint64_t offset,
                         uint64_t page_size);
  QueryResult ServeStream(const QueryRequest& request,
                          const StreamCallback& on_result,
                          uint64_t* delivered);

  std::shared_ptr<PageSession> FindSession(uint64_t id);
  std::shared_ptr<PageSession> RegisterSession(std::string enum_key);
  void DropSession(uint64_t id);

  const QueryEngine* engine_;
  /// Engine-lifetime cache counters at construction: Stats() reports the
  /// delta, i.e. this server's share of the cache traffic.
  CacheCounters cache_baseline_;
  /// Compactions completed at construction; Stats() reports the delta.
  uint64_t compactions_baseline_ = 0;
  BoundedQueue<Task> queue_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> rejected_{0};

  /// Cursor sessions behind outstanding page tokens: bounded MRU-front
  /// list + id index. Eviction is safe -- a stale token reopens and
  /// skips -- so the cap (ServerOptions::max_page_sessions) only bounds
  /// resources, never correctness. Cleared at Shutdown (cursors pin
  /// engine snapshots).
  size_t max_page_sessions_;
  /// Registry lock. Ordering contract (by convention -- a per-instance
  /// session mutex cannot be named by a PRJ_ACQUIRED_* annotation):
  /// sessions_mu_ may be taken while holding a session's own mu (the
  /// exhausted-enumeration DropSession path) -- never the other way
  /// around, so the pair cannot deadlock.
  mutable Mutex sessions_mu_;
  std::list<std::shared_ptr<PageSession>> session_lru_
      PRJ_GUARDED_BY(sessions_mu_);
  std::unordered_map<uint64_t,
                     std::list<std::shared_ptr<PageSession>>::iterator>
      session_index_ PRJ_GUARDED_BY(sessions_mu_);
  uint64_t next_session_id_ PRJ_GUARDED_BY(sessions_mu_) = 1;

  Mutex shutdown_mu_;  ///< serializes Shutdown
  bool stopped_ PRJ_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace prj

#endif  // PRJ_SERVER_SERVER_H_
