// Bounded multi-producer / multi-consumer FIFO queue: the hand-off point
// between the server's Submit front end and its worker pool.
//
// Classic two-condition-variable design: producers block while the queue
// is full, consumers block while it is empty, and Close() releases both
// sides for shutdown. Two drain disciplines are provided so the server
// can either finish the backlog (Close: consumers keep popping until the
// queue empties) or cancel it (CloseAndDrain: the backlog is handed back
// to the caller, which fails each pending request explicitly).
//
// The queue also tracks its depth high-water mark -- recorded under the
// mutex it already holds, so the accounting costs nothing extra -- which
// the server reports as a saturation signal.
#ifndef PRJ_SERVER_QUEUE_H_
#define PRJ_SERVER_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/logging.h"

namespace prj {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PRJ_CHECK_GE(capacity, 1u);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues `item` (moved from) and
  /// returns true. Returns false -- leaving `item` untouched -- once the
  /// queue is closed, so the caller keeps ownership of rejected work.
  bool Push(T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available and dequeues it. Returns nullopt
  /// only when the queue is closed *and* drained: items enqueued before
  /// Close() are still delivered.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Rejects all future pushes and wakes every blocked thread. Pending
  /// items remain poppable (drain semantics). Idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  /// Close() plus cancellation: returns every item still queued, in FIFO
  /// order, so the caller can fail them instead of running them.
  std::vector<T> CloseAndDrain() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    std::vector<T> drained;
    drained.reserve(items_.size());
    for (T& item : items_) drained.push_back(std::move(item));
    items_.clear();
    not_full_.notify_all();
    not_empty_.notify_all();
    return drained;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Largest depth the queue ever reached.
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const size_t capacity_;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace prj

#endif  // PRJ_SERVER_QUEUE_H_
