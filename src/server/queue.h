// Bounded multi-producer / multi-consumer FIFO queue: the hand-off point
// between the server's Submit front end and its worker pool.
//
// Classic two-condition-variable design: producers block while the queue
// is full, consumers block while it is empty, and Close() releases both
// sides for shutdown. Two drain disciplines are provided so the server
// can either finish the backlog (Close: consumers keep popping until the
// queue empties) or cancel it (CloseAndDrain: the backlog is handed back
// to the caller, which fails each pending request explicitly).
//
// The queue also tracks its depth high-water mark -- recorded under the
// mutex it already holds, so the accounting costs nothing extra -- which
// the server reports as a saturation signal.
#ifndef PRJ_SERVER_QUEUE_H_
#define PRJ_SERVER_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace prj {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {
    PRJ_CHECK_GE(capacity, 1u);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room, then enqueues `item` (moved from) and
  /// returns true. Returns false -- leaving `item` untouched -- once the
  /// queue is closed, so the caller keeps ownership of rejected work.
  bool Push(T& item) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(lock);
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available and dequeues it. Returns nullopt
  /// only when the queue is closed *and* drained: items enqueued before
  /// Close() are still delivered.
  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) not_empty_.Wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Rejects all future pushes and wakes every blocked thread. Pending
  /// items remain poppable (drain semantics). Idempotent.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  /// Close() plus cancellation: returns every item still queued, in FIFO
  /// order, so the caller can fail them instead of running them.
  std::vector<T> CloseAndDrain() {
    MutexLock lock(mu_);
    closed_ = true;
    std::vector<T> drained;
    drained.reserve(items_.size());
    for (T& item : items_) drained.push_back(std::move(item));
    items_.clear();
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
    return drained;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  /// Largest depth the queue ever reached.
  size_t high_water() const {
    MutexLock lock(mu_);
    return high_water_;
  }

  size_t capacity() const { return capacity_; }

 private:
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ PRJ_GUARDED_BY(mu_);
  const size_t capacity_;
  size_t high_water_ PRJ_GUARDED_BY(mu_) = 0;
  bool closed_ PRJ_GUARDED_BY(mu_) = false;
};

}  // namespace prj

#endif  // PRJ_SERVER_QUEUE_H_
