// Sharded-lock LRU cache of in-progress enumerations.
//
// Where QueryCache stores finished answers, CursorCache stores the
// resumable execution itself: one shared ResultCursor per canonical
// ENUMERATION key (CanonicalEnumerationKey -- the request key with k
// pinned, because a cursor's stream is k-independent) plus the prefix of
// results it has materialized so far. A lookup hands back a lightweight
// view cursor with its own read position: results inside the prefix are
// replayed with zero executor work (ExecStats::cursor_partial_hits), and
// reading past the prefix resumes the shared enumeration exactly where
// the previous consumer stopped (ExecStats::cursor_resumes) -- so a
// cached K=10 query serves a later K=50 request by computing only the 40
// missing results, and a page-2 pull costs only page 2.
//
// Epoch freshness works like QueryCache: the epoch is part of the key, an
// update changes the key, pre-update entries age out via LRU -- and a
// view created before an eviction keeps its entry alive through its
// shared_ptr, pinned to the snapshot its cursor captured at open.
//
// Thread safety: the cache structure uses the same sharded-lock scheme as
// QueryCache; each entry serializes its consumers behind one entry mutex
// (the underlying cursor is single-threaded by contract). Views are
// cheap, single-owner objects like any ResultCursor.
#ifndef PRJ_CACHE_CURSOR_CACHE_H_
#define PRJ_CACHE_CURSOR_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/query_engine.h"
#include "core/result_cursor.h"

namespace prj {

/// Internal shared state of one cached enumeration (defined in the .cc;
/// views and the cache share it by shared_ptr).
struct CursorCacheEntry;

struct CursorCacheOptions {
  /// Total cached enumerations across all lock shards (>= 1; smaller
  /// values are clamped). Entries hold live cursors -- pinned snapshots,
  /// arena leases -- so this default is deliberately far below
  /// QueryCacheOptions::capacity.
  size_t capacity = 64;
  /// Independent LRU + mutex shards (>= 1; clamped to capacity).
  size_t lock_shards = 8;
};

class CursorCache {
 public:
  explicit CursorCache(CursorCacheOptions options = {});

  CursorCache(const CursorCache&) = delete;
  CursorCache& operator=(const CursorCache&) = delete;

  /// Returns a view over the cached enumeration for `key` (moving it to
  /// the front of its shard's LRU; counts a hit) or nullptr (counts a
  /// miss). `fingerprint` must be KeyFingerprint(key).
  std::unique_ptr<ResultCursor> Lookup(const std::string& key,
                                       uint64_t fingerprint);

  /// Registers `inner` as the shared enumeration behind `key` and returns
  /// a view over it, evicting LRU entries past capacity. If a concurrent
  /// Adopt already published the key, the existing entry wins and `inner`
  /// is discarded -- both callers end up viewing one enumeration. Does
  /// not count a hit/miss (the preceding Lookup did).
  std::unique_ptr<ResultCursor> Adopt(std::string key, uint64_t fingerprint,
                                      std::unique_ptr<ResultCursor> inner);

  CacheCounters counters() const;

  /// Enumerations currently cached (point-in-time across shards).
  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t lock_shards() const { return shards_.size(); }

 private:
  struct Node {
    std::string key;
    std::shared_ptr<CursorCacheEntry> entry;
  };

  struct Shard {
    Mutex mu;
    /// Front = most recently used; map keys view into the nodes.
    std::list<Node> lru PRJ_GUARDED_BY(mu);
    std::unordered_map<std::string_view, std::list<Node>::iterator> index
        PRJ_GUARDED_BY(mu);
    /// Fixed at construction, read-only after: deliberately unguarded.
    size_t capacity = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    return *shards_[(fingerprint >> 32) % shards_.size()];
  }

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace prj

#endif  // PRJ_CACHE_CURSOR_CACHE_H_
