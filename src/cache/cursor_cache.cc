#include "cache/cursor_cache.h"

#include <algorithm>
#include <optional>
#include <utility>

namespace prj {

/// The shared state behind one cached enumeration: the live cursor plus
/// the prefix it has materialized so far. `mu` serializes every consumer
/// touch -- the cursor itself is single-threaded by contract, and the
/// prefix grows append-only under the same lock, so a view's position
/// stays valid across concurrent extensions.
struct CursorCacheEntry {
  mutable Mutex mu;
  std::unique_ptr<ResultCursor> inner PRJ_GUARDED_BY(mu);
  std::vector<ResultCombination> prefix PRJ_GUARDED_BY(mu);
  /// True once inner returned nullopt.
  bool finished PRJ_GUARDED_BY(mu) = false;
  /// Sticky inner failure.
  Status failed PRJ_GUARDED_BY(mu) = Status::OK();
};

namespace {

/// A consumer's window onto a shared enumeration. Replays the entry's
/// materialized prefix from its own position, then extends it by resuming
/// the shared cursor -- so N views cost one execution, and the per-view
/// split between replay and fresh work is visible in stats().
class CachedCursorView : public ResultCursor {
 public:
  explicit CachedCursorView(std::shared_ptr<CursorCacheEntry> entry)
      : entry_(std::move(entry)) {}

  Result<std::optional<ResultCombination>> Next() override {
    MutexLock lock(entry_->mu);
    if (pos_ < entry_->prefix.size()) {
      ++partial_hits_;
      return std::optional<ResultCombination>(entry_->prefix[pos_++]);
    }
    if (entry_->finished) return std::optional<ResultCombination>();
    if (!entry_->failed.ok()) return entry_->failed;
    auto next = entry_->inner->Next();
    if (!next.ok()) {
      entry_->failed = next.status();
      return next.status();
    }
    if (!next->has_value()) {
      entry_->finished = true;
      return std::optional<ResultCombination>();
    }
    entry_->prefix.push_back(**next);
    ++pos_;
    ++resumes_;
    return next;
  }

  /// The shared enumeration's cumulative accounting (all consumers'
  /// work, not this view's marginal cost -- replays cost nothing, which
  /// is exactly what unchanged sum_depths across two drains shows), with
  /// this view's replay/resume split overlaid.
  ExecStats stats() const override {
    MutexLock lock(entry_->mu);
    ExecStats s = entry_->inner ? entry_->inner->stats() : ExecStats{};
    s.cursor_partial_hits = partial_hits_;
    s.cursor_resumes = resumes_;
    return s;
  }

  uint64_t emitted() const override { return pos_; }

 private:
  std::shared_ptr<CursorCacheEntry> entry_;
  size_t pos_ = 0;  ///< next index of entry_->prefix this view serves
  uint64_t partial_hits_ = 0;
  uint64_t resumes_ = 0;
};

}  // namespace

CursorCache::CursorCache(CursorCacheOptions options)
    : capacity_(std::max<size_t>(1, options.capacity)) {
  const size_t shards =
      std::min(std::max<size_t>(1, options.lock_shards), capacity_);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // Distribute capacity as evenly as possible, first shards get the rest.
    shard->capacity = capacity_ / shards + (i < capacity_ % shards ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::unique_ptr<ResultCursor> CursorCache::Lookup(const std::string& key,
                                                  uint64_t fingerprint) {
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<CachedCursorView>(it->second->entry);
}

std::unique_ptr<ResultCursor> CursorCache::Adopt(
    std::string key, uint64_t fingerprint, std::unique_ptr<ResultCursor> inner) {
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A concurrent Adopt won the race; join its enumeration so both
    // consumers share one execution, and drop ours unstarted.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return std::make_unique<CachedCursorView>(it->second->entry);
  }
  auto entry = std::make_shared<CursorCacheEntry>();
  entry->inner = std::move(inner);
  shard.lru.push_front(Node{std::move(key), entry});
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
  while (shard.lru.size() > shard.capacity) {
    // Views opened on the victim keep it alive through their shared_ptr;
    // the cache just stops handing it out.
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return std::make_unique<CachedCursorView>(std::move(entry));
}

CacheCounters CursorCache::counters() const {
  return CacheCounters{hits_.load(std::memory_order_relaxed),
                       misses_.load(std::memory_order_relaxed),
                       evictions_.load(std::memory_order_relaxed)};
}

size_t CursorCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace prj
