#include "cache/cached_engine.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace prj {

CachedEngine::CachedEngine(const QueryEngine* inner, QueryCacheOptions options,
                           CursorCacheOptions cursor_options)
    : inner_(inner), cache_(options), cursor_cache_(cursor_options) {
  PRJ_CHECK(inner != nullptr);
}

Result<std::vector<ResultCombination>> CachedEngine::TopK(
    const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  if (options.trace != nullptr) {
    // Tracing observes the execution itself; never satisfy it from cache.
    return inner_->TopK(query, options, stats_out);
  }
  // The key carries the inner engine's data epoch, so an update (which
  // bumps the epoch) instantly makes every pre-update entry unaddressable
  // -- invalidation without an invalidation path. Static engines are
  // epoch 0 forever and behave as before. Not const: on a miss the key
  // moves into the cache's LRU node.
  const uint64_t epoch = inner_->live_counters().epoch;
  std::string key = CanonicalRequestKey(query, options, epoch);
  uint64_t fingerprint = KeyFingerprint(key);
  // Stampede-guarded: N concurrent cold-key requests elect one leader to
  // compute while the rest block on its flight -- one execution, N
  // answers. A non-leader woken empty-handed (the leader's execution
  // failed, was uncacheable, or re-keyed to a newer epoch) recomputes on
  // its own below, exactly like a plain miss.
  const QueryCache::CoalesceOutcome outcome =
      cache_.LookupOrLead(key, fingerprint);
  if (outcome.entry) {
    if (stats_out) {
      // A hit pulls nothing: zero cost, by definition complete. The
      // epoch of the content the entry was computed from is reported for
      // observability.
      *stats_out = ExecStats{};
      stats_out->depths.assign(inner_->num_relations(), 0);
      stats_out->completed = true;
      stats_out->data_epoch = outcome.entry->data_epoch;
    }
    return outcome.entry->combinations;
  }
  ExecStats stats;
  auto result = inner_->TopK(query, options, &stats);
  const bool cacheable = result.ok() && stats.completed;
  if (cacheable) {
    // An Apply may have raced between reading the epoch and executing:
    // the execution then saw a NEWER snapshot than the key says. Re-key
    // with the epoch the query actually observed (ExecStats::data_epoch),
    // so an entry always maps key(e) -> content(e) and a post-update
    // lookup can never be served pre-update results. A leader that
    // re-keys aborts its old-epoch flight rather than publish: the
    // waiters asked for key(e) and must not receive content(e').
    const bool rekeyed = stats.data_epoch != epoch;
    if (rekeyed) {
      if (outcome.leader) cache_.AbortLead(key, fingerprint);
      key = CanonicalRequestKey(query, options, stats.data_epoch);
      fingerprint = KeyFingerprint(key);
    }
    auto entry = std::make_shared<QueryCache::Entry>();
    entry->combinations = *result;
    entry->data_epoch = stats.data_epoch;
    if (outcome.leader && !rekeyed) {
      cache_.Publish(std::move(key), fingerprint, std::move(entry));
    } else {
      cache_.Insert(std::move(key), fingerprint, std::move(entry));
    }
  } else if (outcome.leader) {
    cache_.AbortLead(key, fingerprint);
  }
  if (stats_out) *stats_out = std::move(stats);
  return result;
}

Result<std::unique_ptr<ResultCursor>> CachedEngine::OpenCursor(
    const QueryRequest& request) const {
  if (request.options.trace != nullptr ||
      request.options.time_budget_seconds > 0) {
    // Traces observe the execution; time budgets make the stream
    // timing-dependent. Neither may be replayed from cache.
    return inner_->OpenCursor(request);
  }
  const uint64_t epoch = inner_->live_counters().epoch;
  std::string key =
      CanonicalEnumerationKey(request.query, request.options, epoch);
  uint64_t fingerprint = KeyFingerprint(key);
  if (auto view = cursor_cache_.Lookup(key, fingerprint)) return view;
  auto inner = inner_->OpenCursor(request);
  if (!inner.ok()) return inner.status();
  // An Apply may have raced between reading the epoch and opening: the
  // cursor then pinned a NEWER snapshot than the key says. Re-key with
  // the epoch it actually observed, mirroring the TopK path's re-key.
  const uint64_t actual = (*inner)->stats().data_epoch;
  if (actual != 0 && actual != epoch) {
    key = CanonicalEnumerationKey(request.query, request.options, actual);
    fingerprint = KeyFingerprint(key);
  }
  return cursor_cache_.Adopt(std::move(key), fingerprint,
                             std::move(inner).value());
}

CacheCounters CachedEngine::cache_counters() const {
  const CacheCounters mine = cache_.counters();
  const CacheCounters cursors = cursor_cache_.counters();
  const CacheCounters theirs = inner_->cache_counters();
  return CacheCounters{mine.hits + cursors.hits + theirs.hits,
                       mine.misses + cursors.misses + theirs.misses,
                       mine.evictions + cursors.evictions + theirs.evictions,
                       mine.coalesced + cursors.coalesced + theirs.coalesced};
}

}  // namespace prj
