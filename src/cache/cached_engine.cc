#include "cache/cached_engine.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace prj {

CachedEngine::CachedEngine(const QueryEngine* inner, QueryCacheOptions options)
    : inner_(inner), cache_(options) {
  PRJ_CHECK(inner != nullptr);
}

Result<std::vector<ResultCombination>> CachedEngine::TopK(
    const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  if (options.trace != nullptr) {
    // Tracing observes the execution itself; never satisfy it from cache.
    return inner_->TopK(query, options, stats_out);
  }
  // Not const: on a miss the key moves into the cache's LRU node.
  std::string key = CanonicalRequestKey(query, options);
  const uint64_t fingerprint = KeyFingerprint(key);
  if (auto entry = cache_.Lookup(key, fingerprint)) {
    if (stats_out) {
      // A hit pulls nothing: zero cost, by definition complete.
      *stats_out = ExecStats{};
      stats_out->depths.assign(inner_->num_relations(), 0);
      stats_out->completed = true;
    }
    return entry->combinations;
  }
  ExecStats stats;
  auto result = inner_->TopK(query, options, &stats);
  if (result.ok() && stats.completed) {
    auto entry = std::make_shared<QueryCache::Entry>();
    entry->combinations = *result;
    cache_.Insert(std::move(key), fingerprint, std::move(entry));
  }
  if (stats_out) *stats_out = std::move(stats);
  return result;
}

CacheCounters CachedEngine::cache_counters() const {
  const CacheCounters mine = cache_.counters();
  const CacheCounters theirs = inner_->cache_counters();
  return CacheCounters{mine.hits + theirs.hits, mine.misses + theirs.misses,
                       mine.evictions + theirs.evictions};
}

}  // namespace prj
