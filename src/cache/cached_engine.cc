#include "cache/cached_engine.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace prj {

CachedEngine::CachedEngine(const QueryEngine* inner, QueryCacheOptions options)
    : inner_(inner), cache_(options) {
  PRJ_CHECK(inner != nullptr);
}

Result<std::vector<ResultCombination>> CachedEngine::TopK(
    const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  if (options.trace != nullptr) {
    // Tracing observes the execution itself; never satisfy it from cache.
    return inner_->TopK(query, options, stats_out);
  }
  // The key carries the inner engine's data epoch, so an update (which
  // bumps the epoch) instantly makes every pre-update entry unaddressable
  // -- invalidation without an invalidation path. Static engines are
  // epoch 0 forever and behave as before. Not const: on a miss the key
  // moves into the cache's LRU node.
  const uint64_t epoch = inner_->live_counters().epoch;
  std::string key = CanonicalRequestKey(query, options, epoch);
  uint64_t fingerprint = KeyFingerprint(key);
  if (auto entry = cache_.Lookup(key, fingerprint)) {
    if (stats_out) {
      // A hit pulls nothing: zero cost, by definition complete. The
      // epoch of the content the entry was computed from is reported for
      // observability.
      *stats_out = ExecStats{};
      stats_out->depths.assign(inner_->num_relations(), 0);
      stats_out->completed = true;
      stats_out->data_epoch = entry->data_epoch;
    }
    return entry->combinations;
  }
  ExecStats stats;
  auto result = inner_->TopK(query, options, &stats);
  if (result.ok() && stats.completed) {
    // An Apply may have raced between reading the epoch and executing:
    // the execution then saw a NEWER snapshot than the key says. Re-key
    // with the epoch the query actually observed (ExecStats::data_epoch),
    // so an entry always maps key(e) -> content(e) and a post-update
    // lookup can never be served pre-update results.
    if (stats.data_epoch != epoch) {
      key = CanonicalRequestKey(query, options, stats.data_epoch);
      fingerprint = KeyFingerprint(key);
    }
    auto entry = std::make_shared<QueryCache::Entry>();
    entry->combinations = *result;
    entry->data_epoch = stats.data_epoch;
    cache_.Insert(std::move(key), fingerprint, std::move(entry));
  }
  if (stats_out) *stats_out = std::move(stats);
  return result;
}

CacheCounters CachedEngine::cache_counters() const {
  const CacheCounters mine = cache_.counters();
  const CacheCounters theirs = inner_->cache_counters();
  return CacheCounters{mine.hits + theirs.hits, mine.misses + theirs.misses,
                       mine.evictions + theirs.evictions};
}

}  // namespace prj
