// CachedEngine: a query-result cache decorator over any QueryEngine.
//
// Wraps an inner engine (monolithic Engine, ShardedEngine, LiveEngine,
// even another CachedEngine) and serves repeated queries from a
// sharded-lock LRU QueryCache keyed on the canonical request encoding
// INCLUDING the inner engine's data epoch. A cached answer can never go
// stale: static engines are immutable after construction, and a live
// engine's updates bump the epoch, changing the key -- pre-update entries
// become unaddressable instantly and age out via LRU. There is no
// invalidation machinery, only eviction under capacity/byte pressure.
//
// Hit-path exactness: the cache key covers everything that determines the
// answer (see core/query_engine.h), and entries store the combinations
// verbatim, so a hit returns bit-identical results to re-running the
// query. A hit's ExecStats reports what the hit actually cost -- nothing
// (zero depths/pulls, completed) -- so aggregate cost accounting (e.g.
// ServerStats::sum_depths) stays truthful under caching.
//
// Two classes of results bypass the cache:
//   * traced queries (options.trace != nullptr): replaying from cache
//     would silently skip the caller's trace observer;
//   * incomplete executions (a max_pulls / time budget rail tripped):
//     their output is timing-dependent, not a function of the request.
#ifndef PRJ_CACHE_CACHED_ENGINE_H_
#define PRJ_CACHE_CACHED_ENGINE_H_

#include "cache/cursor_cache.h"
#include "cache/query_cache.h"
#include "core/query_engine.h"
#include "plan/relation_stats.h"

namespace prj {

class CachedEngine : public QueryEngine {
 public:
  /// `inner` must outlive this decorator and is only used through its
  /// const (thread-safe) API.
  explicit CachedEngine(const QueryEngine* inner,
                        QueryCacheOptions options = {},
                        CursorCacheOptions cursor_options = {});

  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const override;

  /// Streaming enumeration through the cursor cache: keyed by
  /// CanonicalEnumerationKey + epoch, so requests differing only in k
  /// share one cached cursor -- a K=10 entry serves a K=50 request by
  /// resuming, and a re-drain of a cached prefix costs zero executor
  /// work (ExecStats::cursor_partial_hits / cursor_resumes report the
  /// split). Bypasses the cache for traced requests (the trace must
  /// observe the execution) and for time-budgeted ones (where a rail
  /// trips is timing-dependent, so the stream is not a pure function of
  /// the request; max_pulls is deterministic and stays cacheable).
  Result<std::unique_ptr<ResultCursor>> OpenCursor(
      const QueryRequest& request) const override;

  AccessKind kind() const override { return inner_->kind(); }
  int dim() const override { return inner_->dim(); }
  size_t num_relations() const override { return inner_->num_relations(); }
  size_t fan_out() const override { return inner_->fan_out(); }
  /// This cache's counters plus the inner engine's (for stacked caches).
  CacheCounters cache_counters() const override;
  /// Forwarded: the epoch the next lookup will key on comes from here.
  LiveCounters live_counters() const override {
    return inner_->live_counters();
  }
  /// Forwarded: caching changes no statistics.
  std::vector<RelationStats> relation_stats() const override {
    return inner_->relation_stats();
  }

  const QueryEngine& inner() const { return *inner_; }
  const QueryCache& cache() const { return cache_; }
  const CursorCache& cursor_cache() const { return cursor_cache_; }

 private:
  const QueryEngine* inner_;
  /// TopK is const yet must touch LRU order and counters; all mutation is
  /// internally synchronized (sharded prj::Mutex locks + atomics, with
  /// the guarded state annotated PRJ_GUARDED_BY inside each cache), so
  /// this decorator holds no lock of its own.
  mutable QueryCache cache_;
  mutable CursorCache cursor_cache_;
};

}  // namespace prj

#endif  // PRJ_CACHE_CACHED_ENGINE_H_
