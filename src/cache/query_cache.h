// Sharded-lock LRU cache of query results.
//
// Keys are the canonical request encoding of core/query_engine.h (query
// point + result-relevant options), so two requests share an entry exactly
// when they are guaranteed the same answer. The key space is split across
// `shards` independent LRU structures, each behind its own mutex, chosen
// by the request fingerprint -- concurrent server workers serving
// different queries contend only 1/shards of the time. Hit/miss/eviction
// counters are relaxed atomics off the lock.
//
// Values are immutable snapshots behind shared_ptr: a lookup hands back a
// reference the caller can read lock-free even if the entry is evicted a
// microsecond later. Entries never go stale: static engines are immutable
// after Create, and live engines version their content through the data
// epoch, which is part of the key (core/query_engine.h) -- an update
// changes the epoch and thus the key, so pre-update entries simply stop
// being addressable and age out through LRU. There is no invalidation
// path at all.
//
// Two independent limits bound the cache: an entry-count capacity and a
// byte budget over the approximate materialized size of the cached
// results (keys + combination payloads). Results vary enormously in size
// -- K x n tuples with d-dimensional vectors -- so counting entries alone
// would let a few giant results dominate memory; the byte budget charges
// what an entry actually holds.
#ifndef PRJ_CACHE_QUERY_CACHE_H_
#define PRJ_CACHE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/query_engine.h"

namespace prj {

struct QueryCacheOptions {
  /// Total cached results across all lock shards (>= 1; smaller values
  /// are clamped). Per-shard capacity is split as evenly as possible.
  size_t capacity = 1024;
  /// Independent LRU + mutex shards (>= 1; clamped to capacity).
  size_t lock_shards = 8;
  /// Approximate byte ceiling over the materialized entries (keys +
  /// combination payloads), split across lock shards like `capacity`.
  /// 0 disables byte accounting and bounds by entry count alone.
  size_t byte_budget = 64u << 20;
};

class QueryCache {
 public:
  /// One cached answer: the combinations, verbatim, plus the data epoch
  /// of the content they were computed from (0 for static engines).
  /// (No ExecStats: a hit performs no pulls, so CachedEngine reports zero
  /// cost rather than replaying the original execution's accounting.)
  struct Entry {
    std::vector<ResultCombination> combinations;
    uint64_t data_epoch = 0;
  };

  /// Approximate heap footprint of one cached entry (key string + LRU
  /// node + combination payloads, vectors counted at their element
  /// sizes): the currency of the byte budget. Deterministic and cheap --
  /// O(combinations), not O(allocator introspection).
  static size_t ApproxEntryBytes(const std::string& key, const Entry& entry);

  explicit QueryCache(QueryCacheOptions options = {});

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns the entry for `key` (moving it to the front of its shard's
  /// LRU) or nullptr. `fingerprint` must be RequestFingerprint of the same
  /// request; it picks the lock shard. Counts a hit or a miss.
  std::shared_ptr<const Entry> Lookup(const std::string& key,
                                      uint64_t fingerprint);

  /// Outcome of LookupOrLead, exactly one of three shapes:
  ///   * entry != nullptr            -- serve it (a cache hit, or a
  ///                                    coalesced wait served by the
  ///                                    leader's published result);
  ///   * entry == nullptr, leader    -- the caller owns the computation
  ///                                    and OWES the cache exactly one
  ///                                    Publish or AbortLead for this key;
  ///   * entry == nullptr, !leader   -- the caller waited on a flight
  ///                                    whose leader aborted: recompute,
  ///                                    optionally Insert, never Publish.
  struct CoalesceOutcome {
    std::shared_ptr<const Entry> entry;
    bool leader = false;
  };

  /// Stampede-guarded lookup: a miss whose key is already being computed
  /// by another thread BLOCKS until that leader publishes or aborts,
  /// instead of recomputing the same query in parallel (N concurrent
  /// cold-key requests cost one execution). The first miss per key
  /// becomes the leader. Counts hits/misses like Lookup, plus
  /// CacheCounters::coalesced for every waiter.
  CoalesceOutcome LookupOrLead(const std::string& key, uint64_t fingerprint);

  /// Leader hand-off: inserts the entry exactly like Insert AND wakes
  /// every waiter coalesced behind the key with it.
  void Publish(std::string key, uint64_t fingerprint,
               std::shared_ptr<const Entry> entry);

  /// Leader bail-out (failed or uncacheable execution, or an epoch
  /// re-key): wakes every waiter empty-handed; each recomputes on its
  /// own, and none re-leads (the herd is bounded to one extra round).
  void AbortLead(const std::string& key, uint64_t fingerprint);

  /// Inserts (or refreshes) the entry, evicting least recently used
  /// entries while the shard exceeds its entry capacity or its byte
  /// budget -- an entry larger than the whole budget is evicted straight
  /// away (the insert still counts an eviction; the cache never holds
  /// more than the budget). Does not count a hit/miss. Takes the key by
  /// value: callers done with it move it straight into the LRU node.
  void Insert(std::string key, uint64_t fingerprint,
              std::shared_ptr<const Entry> entry);

  CacheCounters counters() const;

  /// Entries currently cached (point-in-time across shards).
  size_t size() const;
  /// Approximate bytes currently held (point-in-time across shards), in
  /// ApproxEntryBytes currency.
  size_t ApproxBytes() const;
  size_t capacity() const { return capacity_; }
  size_t byte_budget() const { return byte_budget_; }
  size_t lock_shards() const { return shards_.size(); }

 private:
  struct Node {
    std::string key;
    std::shared_ptr<const Entry> entry;
    size_t bytes = 0;  ///< ApproxEntryBytes at insert time
  };

  /// One in-flight computation waiters coalesce behind. Lives outside the
  /// shard lock once found: waiting happens on the flight's own mutex, so
  /// a slow leader never blocks unrelated keys of its shard.
  struct Flight {
    Mutex mu;
    CondVar cv;
    bool done PRJ_GUARDED_BY(mu) = false;
    /// Null = the leader aborted; waiters recompute on their own.
    std::shared_ptr<const Entry> result PRJ_GUARDED_BY(mu);
  };

  struct Shard {
    Mutex mu;
    /// Front = most recently used. The list node owns the key string; the
    /// map's string_view keys point into the nodes (stable across splice),
    /// so each key is stored exactly once.
    std::list<Node> lru PRJ_GUARDED_BY(mu);
    std::unordered_map<std::string_view, std::list<Node>::iterator> index
        PRJ_GUARDED_BY(mu);
    /// capacity / byte_budget are fixed at construction (before the shard
    /// is shared) and read-only afterwards: deliberately unguarded.
    size_t capacity = 0;
    size_t byte_budget = 0;              ///< 0 = unbounded bytes
    size_t bytes PRJ_GUARDED_BY(mu) = 0; ///< sum of node bytes
    /// Keys currently being computed by a leader.
    std::unordered_map<std::string, std::shared_ptr<Flight>> inflight
        PRJ_GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t fingerprint) {
    // The low bits feed unordered_map buckets; shard on the high ones.
    return *shards_[(fingerprint >> 32) % shards_.size()];
  }

  size_t capacity_;
  size_t byte_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> coalesced_{0};
};

}  // namespace prj

#endif  // PRJ_CACHE_QUERY_CACHE_H_
