// Sharded-lock LRU cache of query results.
//
// Keys are the canonical request encoding of core/query_engine.h (query
// point + result-relevant options), so two requests share an entry exactly
// when they are guaranteed the same answer. The key space is split across
// `shards` independent LRU structures, each behind its own mutex, chosen
// by the request fingerprint -- concurrent server workers serving
// different queries contend only 1/shards of the time. Hit/miss/eviction
// counters are relaxed atomics off the lock.
//
// Values are immutable snapshots behind shared_ptr: a lookup hands back a
// reference the caller can read lock-free even if the entry is evicted a
// microsecond later. Because engines are immutable after Create, entries
// never go stale and there is no invalidation path at all.
#ifndef PRJ_CACHE_QUERY_CACHE_H_
#define PRJ_CACHE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/query_engine.h"

namespace prj {

struct QueryCacheOptions {
  /// Total cached results across all lock shards (>= 1; smaller values
  /// are clamped). Per-shard capacity is split as evenly as possible.
  size_t capacity = 1024;
  /// Independent LRU + mutex shards (>= 1; clamped to capacity).
  size_t lock_shards = 8;
};

class QueryCache {
 public:
  /// One cached answer: the combinations, verbatim. (No ExecStats: a hit
  /// performs no pulls, so CachedEngine reports zero cost rather than
  /// replaying the original execution's accounting.)
  struct Entry {
    std::vector<ResultCombination> combinations;
  };

  explicit QueryCache(QueryCacheOptions options = {});

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Returns the entry for `key` (moving it to the front of its shard's
  /// LRU) or nullptr. `fingerprint` must be RequestFingerprint of the same
  /// request; it picks the lock shard. Counts a hit or a miss.
  std::shared_ptr<const Entry> Lookup(const std::string& key,
                                      uint64_t fingerprint);

  /// Inserts (or refreshes) the entry, evicting the least recently used
  /// entries of the shard past its capacity. Does not count a hit/miss.
  /// Takes the key by value: callers done with it move it straight into
  /// the LRU node.
  void Insert(std::string key, uint64_t fingerprint,
              std::shared_ptr<const Entry> entry);

  CacheCounters counters() const;

  /// Entries currently cached (point-in-time across shards).
  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t lock_shards() const { return shards_.size(); }

 private:
  struct Shard {
    std::mutex mu;
    /// Front = most recently used. The list node owns the key string; the
    /// map's string_view keys point into the nodes (stable across splice),
    /// so each key is stored exactly once.
    std::list<std::pair<std::string, std::shared_ptr<const Entry>>> lru;
    std::unordered_map<std::string_view, decltype(lru)::iterator> index;
    size_t capacity = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    // The low bits feed unordered_map buckets; shard on the high ones.
    return *shards_[(fingerprint >> 32) % shards_.size()];
  }

  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace prj

#endif  // PRJ_CACHE_QUERY_CACHE_H_
