#include "cache/query_cache.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace prj {

QueryCache::QueryCache(QueryCacheOptions options)
    : capacity_(std::max<size_t>(1, options.capacity)),
      byte_budget_(options.byte_budget) {
  const size_t n =
      std::min(std::max<size_t>(1, options.lock_shards), capacity_);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Spread capacity and byte budget as evenly as possible; the first
    // `remainder` shards take one extra unit.
    shards_.back()->capacity = capacity_ / n + (i < capacity_ % n ? 1 : 0);
    // A zero per-shard slice of a non-zero budget would turn accounting
    // OFF for that shard (0 = unbounded); clamp to 1 byte instead.
    shards_.back()->byte_budget =
        byte_budget_ == 0
            ? 0
            : std::max<size_t>(
                  1, byte_budget_ / n + (i < byte_budget_ % n ? 1 : 0));
  }
}

size_t QueryCache::ApproxEntryBytes(const std::string& key,
                                    const Entry& entry) {
  // Tuples hold their vectors inline (common/vec.h), so sizeof(Tuple)
  // already covers the feature payload; what varies is the key string and
  // the two vector layers of the combinations.
  size_t bytes = sizeof(Node) + key.size() + sizeof(Entry);
  bytes += entry.combinations.size() * sizeof(ResultCombination);
  for (const ResultCombination& combo : entry.combinations) {
    bytes += combo.tuples.size() * sizeof(Tuple);
  }
  return bytes;
}

std::shared_ptr<const QueryCache::Entry> QueryCache::Lookup(
    const std::string& key, uint64_t fingerprint) {
  Shard& shard = ShardFor(fingerprint);
  std::shared_ptr<const Entry> found;
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(std::string_view(key));
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      found = shard.lru.front().entry;
    }
  }
  if (found) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return found;
}

QueryCache::CoalesceOutcome QueryCache::LookupOrLead(const std::string& key,
                                                     uint64_t fingerprint) {
  Shard& shard = ShardFor(fingerprint);
  std::shared_ptr<Flight> flight;
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(std::string_view(key));
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return CoalesceOutcome{shard.lru.front().entry, false};
    }
    auto in = shard.inflight.find(key);
    if (in == shard.inflight.end()) {
      // First miss on the key: lead. The flight is registered before the
      // shard lock drops, so every later miss coalesces behind it.
      shard.inflight.emplace(key, std::make_shared<Flight>());
      misses_.fetch_add(1, std::memory_order_relaxed);
      return CoalesceOutcome{nullptr, true};
    }
    flight = in->second;
  }
  // Wait off the shard lock: a slow leader stalls only its own key.
  coalesced_.fetch_add(1, std::memory_order_relaxed);
  MutexLock wait_lock(flight->mu);
  while (!flight->done) flight->cv.Wait(wait_lock);
  if (flight->result) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return CoalesceOutcome{flight->result, false};
}

void QueryCache::Publish(std::string key, uint64_t fingerprint,
                         std::shared_ptr<const Entry> entry) {
  Shard& shard = ShardFor(fingerprint);
  std::shared_ptr<Flight> flight;
  {
    MutexLock lock(shard.mu);
    auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
      flight = std::move(in->second);
      shard.inflight.erase(in);
    }
  }
  if (flight) {
    MutexLock wake_lock(flight->mu);
    flight->done = true;
    flight->result = entry;
    flight->cv.NotifyAll();
  }
  Insert(std::move(key), fingerprint, std::move(entry));
}

void QueryCache::AbortLead(const std::string& key, uint64_t fingerprint) {
  Shard& shard = ShardFor(fingerprint);
  std::shared_ptr<Flight> flight;
  {
    MutexLock lock(shard.mu);
    auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
      flight = std::move(in->second);
      shard.inflight.erase(in);
    }
  }
  if (flight) {
    MutexLock wake_lock(flight->mu);
    flight->done = true;
    flight->cv.NotifyAll();
  }
}

void QueryCache::Insert(std::string key, uint64_t fingerprint,
                        std::shared_ptr<const Entry> entry) {
  PRJ_CHECK(entry != nullptr);
  const size_t bytes = ApproxEntryBytes(key, *entry);
  Shard& shard = ShardFor(fingerprint);
  uint64_t evicted = 0;
  {
    MutexLock lock(shard.mu);
    auto it = shard.index.find(std::string_view(key));
    if (it != shard.index.end()) {
      shard.bytes -= it->second->bytes;
      shard.bytes += bytes;
      it->second->entry = std::move(entry);
      it->second->bytes = bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.emplace_front(Node{std::move(key), std::move(entry), bytes});
      shard.index.emplace(std::string_view(shard.lru.front().key),
                          shard.lru.begin());
      shard.bytes += bytes;
    }
    // Evict oldest-first past either limit. An entry bigger than the
    // whole shard budget evicts everything including itself -- the cache
    // honestly refuses to hold it rather than silently blowing the
    // budget.
    while (!shard.lru.empty() &&
           (shard.lru.size() > shard.capacity ||
            (shard.byte_budget > 0 && shard.bytes > shard.byte_budget))) {
      shard.bytes -= shard.lru.back().bytes;
      shard.index.erase(std::string_view(shard.lru.back().key));
      shard.lru.pop_back();
      ++evicted;
    }
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

CacheCounters QueryCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  c.coalesced = coalesced_.load(std::memory_order_relaxed);
  return c;
}

size_t QueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

size_t QueryCache::ApproxBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

}  // namespace prj
