#include "cache/query_cache.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace prj {

QueryCache::QueryCache(QueryCacheOptions options)
    : capacity_(std::max<size_t>(1, options.capacity)) {
  const size_t n =
      std::min(std::max<size_t>(1, options.lock_shards), capacity_);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Spread the capacity as evenly as possible; the first capacity_ % n
    // shards take one extra entry.
    shards_.back()->capacity = capacity_ / n + (i < capacity_ % n ? 1 : 0);
  }
}

std::shared_ptr<const QueryCache::Entry> QueryCache::Lookup(
    const std::string& key, uint64_t fingerprint) {
  Shard& shard = ShardFor(fingerprint);
  std::shared_ptr<const Entry> found;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(std::string_view(key));
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      found = shard.lru.front().second;
    }
  }
  if (found) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return found;
}

void QueryCache::Insert(std::string key, uint64_t fingerprint,
                        std::shared_ptr<const Entry> entry) {
  PRJ_CHECK(entry != nullptr);
  Shard& shard = ShardFor(fingerprint);
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(std::string_view(key));
    if (it != shard.index.end()) {
      it->second->second = std::move(entry);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
      shard.lru.emplace_front(std::move(key), std::move(entry));
      shard.index.emplace(std::string_view(shard.lru.front().first),
                          shard.lru.begin());
      while (shard.lru.size() > shard.capacity) {
        shard.index.erase(std::string_view(shard.lru.back().first));
        shard.lru.pop_back();
        ++evicted;
      }
    }
  }
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

CacheCounters QueryCache::counters() const {
  CacheCounters c;
  c.hits = hits_.load(std::memory_order_relaxed);
  c.misses = misses_.load(std::memory_order_relaxed);
  c.evictions = evictions_.load(std::memory_order_relaxed);
  return c;
}

size_t QueryCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace prj
