#include "workload/synthetic.h"

#include <cmath>

#include "common/random.h"

namespace prj {

int EffectiveCount(const SyntheticSpec& spec) {
  PRJ_CHECK_GE(spec.count, 0);
  if (spec.count > 0) return spec.count;
  const int auto_count = static_cast<int>(std::llround(spec.density));
  PRJ_CHECK_GT(auto_count, 0) << "density too small for auto count";
  return auto_count;
}

double CubeSide(const SyntheticSpec& spec) {
  PRJ_CHECK_GT(spec.density, 0.0);
  return std::pow(static_cast<double>(EffectiveCount(spec)) / spec.density,
                  1.0 / spec.dim);
}

Relation GenerateUniformRelation(const SyntheticSpec& spec,
                                 const std::string& name) {
  PRJ_CHECK(spec.dim >= 1 && spec.dim <= kMaxDim);
  Relation rel(name, spec.dim, spec.sigma_max);
  Rng rng(spec.seed);
  const double half = 0.5 * CubeSide(spec);
  const int count = EffectiveCount(spec);
  for (int i = 0; i < count; ++i) {
    // Scores uniform in (0, sigma_max]: flip U[0,1) so 0 is excluded
    // (log-scoring requires strictly positive scores).
    const double score = spec.sigma_max * (1.0 - rng.NextDouble());
    rel.Add(i, score, rng.UniformInCube(spec.dim, -half, half));
  }
  return rel;
}

std::vector<Relation> GenerateProblem(int n, const SyntheticSpec& spec,
                                      double skew) {
  PRJ_CHECK_GE(n, 1);
  PRJ_CHECK_GE(skew, 1.0);
  std::vector<Relation> rels;
  rels.reserve(static_cast<size_t>(n));
  const double root = std::sqrt(skew);
  for (int i = 0; i < n; ++i) {
    SyntheticSpec s = spec;
    if (i == 0) {
      s.density = spec.density * root;
    } else if (i == 1) {
      s.density = spec.density / root;
    }
    // Keep the expected tuple count near spec.count while the cube side
    // adapts to the density, exactly like D.1's "sample until the desired
    // average density" procedure.
    s.seed = spec.seed * 1000003ULL + static_cast<uint64_t>(i) * 7919ULL + 17ULL;
    rels.push_back(GenerateUniformRelation(s, "R" + std::to_string(i + 1)));
  }
  return rels;
}

}  // namespace prj
