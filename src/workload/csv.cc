#include "workload/csv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace prj {
namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

}  // namespace

Status SaveRelationCsv(const Relation& relation, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "id,score";
  for (int i = 0; i < relation.dim(); ++i) out << ",x" << i;
  out << "\n";
  char buf[64];
  for (const Tuple& t : relation.tuples()) {
    out << t.id;
    std::snprintf(buf, sizeof(buf), ",%.17g", t.score);
    out << buf;
    for (int i = 0; i < relation.dim(); ++i) {
      std::snprintf(buf, sizeof(buf), ",%.17g", t.x[i]);
      out << buf;
    }
    out << "\n";
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Relation> LoadRelationCsv(const std::string& path,
                                 const std::string& name, double sigma_max) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 3 || header[0] != "id" || header[1] != "score") {
    return Status::InvalidArgument("'" + path +
                                   "': header must be id,score,x0,...");
  }
  const int dim = static_cast<int>(header.size()) - 2;
  for (int i = 0; i < dim; ++i) {
    if (header[static_cast<size_t>(i + 2)] != "x" + std::to_string(i)) {
      return Status::InvalidArgument("'" + path + "': bad coordinate header '" +
                                     header[static_cast<size_t>(i + 2)] + "'");
    }
  }
  if (dim > kMaxDim) {
    return Status::InvalidArgument("'" + path + "': dim " +
                                   std::to_string(dim) + " exceeds kMaxDim");
  }

  Relation rel(name, dim, sigma_max);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument(
          "'" + path + "' line " + std::to_string(line_no) + ": expected " +
          std::to_string(header.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    Tuple t;
    if (!ParseInt64(fields[0], &t.id)) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_no) + ": bad id '" +
                                     fields[0] + "'");
    }
    if (!ParseDouble(fields[1], &t.score)) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_no) +
                                     ": bad score '" + fields[1] + "'");
    }
    t.x = Vec(dim);
    for (int i = 0; i < dim; ++i) {
      double v;
      if (!ParseDouble(fields[static_cast<size_t>(i + 2)], &v)) {
        return Status::InvalidArgument(
            "'" + path + "' line " + std::to_string(line_no) +
            ": bad coordinate '" + fields[static_cast<size_t>(i + 2)] + "'");
      }
      t.x[i] = v;
    }
    rel.Add(std::move(t));
  }
  PRJ_RETURN_IF_ERROR(rel.Validate());
  return rel;
}

}  // namespace prj
