// Simulated real-world data sets (paper Appendix D.2 substitution).
//
// The paper's real experiments pull hotels, restaurants and theaters for
// five American cities from Yahoo!'s YQL service, which no longer exists.
// We substitute a deterministic synthetic city model that preserves what
// the operator actually observes: three distance-sorted streams of
// entertainment POIs with customer-rating scores in (0, 1], d = 2
// coordinates, clustered densities around downtown cores, and a landmark
// query point. See DESIGN.md §3 for the substitution rationale.
//
// Coordinates are in kilometres relative to the city center; each city has
// a fixed seed derived from its name, so data sets are reproducible.
#ifndef PRJ_WORKLOAD_CITIES_H_
#define PRJ_WORKLOAD_CITIES_H_

#include <string>
#include <vector>

#include "access/relation.h"

namespace prj {

struct CityDataset {
  std::string city;                 ///< short code, e.g. "SF"
  std::string landmark;             ///< name of the query location
  Vec query;                        ///< query vector q (landmark position)
  std::vector<Relation> relations;  ///< hotels, restaurants, theaters (n=3)
};

/// The five cities evaluated in the paper (Figure 3(i)/(l)).
const std::vector<std::string>& CityCodes();

/// Builds the simulated data set for one of the codes returned by
/// CityCodes(). Aborts on an unknown code.
CityDataset MakeCityDataset(const std::string& code);

}  // namespace prj

#endif  // PRJ_WORKLOAD_CITIES_H_
