#include "workload/cities.h"

#include <cmath>

#include "common/random.h"

namespace prj {
namespace {

struct CityProfile {
  const char* code;
  const char* landmark;
  uint64_t seed;
  int clusters;        // number of POI districts
  double spread_km;    // how far districts sit from the center
  double cluster_km;   // in-district standard deviation
  int hotels;
  int restaurants;
  int theaters;
};

// Profiles roughly shaped like the respective metro areas: dense compact
// cores (SF, BO) vs. sprawling ones (DA, HO). Absolute counts are in the
// low hundreds like a Yahoo! Local page crawl of 2010 would return.
constexpr CityProfile kProfiles[] = {
    {"SF", "Fishermans Wharf", 101, 6, 3.0, 0.8, 220, 420, 60},
    {"NY", "Battery Park", 102, 9, 5.0, 1.0, 380, 640, 110},
    {"BO", "Faneuil Hall", 103, 5, 2.5, 0.7, 160, 300, 45},
    {"DA", "Dealey Plaza", 104, 7, 8.0, 1.6, 190, 340, 50},
    {"HO", "Waikiki Beach", 105, 4, 6.0, 1.2, 150, 260, 35},
};

// Rating models per category. Hotels: star ratings 1-5 scaled to (0,1];
// restaurants and theaters: user ratings skewed toward the upper-middle.
double HotelScore(Rng* rng) {
  const double stars = 1.0 + std::floor(rng->NextDouble() * 5.0);
  return std::min(stars, 5.0) / 5.0;
}

double UserRatingScore(Rng* rng) {
  // Average of two uniforms: triangular around 0.5, then shifted up a bit
  // (review sites skew positive); clamped to (0, 1].
  double s = 0.3 + 0.7 * 0.5 * (rng->NextDouble() + rng->NextDouble());
  if (s > 1.0) s = 1.0;
  if (s <= 0.0) s = 1e-3;
  return s;
}

Relation MakeCategory(const CityProfile& profile, const std::string& category,
                      int count, uint64_t salt, const std::vector<Vec>& centers,
                      double cluster_km, double sprawl_km) {
  Relation rel(category, 2);
  Rng rng(profile.seed * 0x9e3779b9ULL + salt);
  for (int i = 0; i < count; ++i) {
    Vec pos(2);
    if (rng.NextDouble() < 0.7) {
      // Clustered around a district core.
      const auto& c = centers[rng.NextBounded(centers.size())];
      pos = rng.GaussianAround(c, cluster_km);
    } else {
      // Urban sprawl.
      pos = rng.UniformInCube(2, -sprawl_km, sprawl_km);
    }
    const double score =
        (category == "hotels") ? HotelScore(&rng) : UserRatingScore(&rng);
    rel.Add(i, score, pos);
  }
  return rel;
}

}  // namespace

const std::vector<std::string>& CityCodes() {
  static const std::vector<std::string> codes = {"SF", "NY", "BO", "DA", "HO"};
  return codes;
}

CityDataset MakeCityDataset(const std::string& code) {
  const CityProfile* profile = nullptr;
  for (const CityProfile& p : kProfiles) {
    if (code == p.code) {
      profile = &p;
      break;
    }
  }
  PRJ_CHECK(profile != nullptr) << "unknown city code '" << code << "'";

  Rng rng(profile->seed);
  std::vector<Vec> centers;
  centers.reserve(static_cast<size_t>(profile->clusters));
  for (int i = 0; i < profile->clusters; ++i) {
    centers.push_back(rng.GaussianAround(Vec{0.0, 0.0}, profile->spread_km));
  }
  const double sprawl = 2.0 * profile->spread_km;

  CityDataset ds;
  ds.city = profile->code;
  ds.landmark = profile->landmark;
  // The landmark sits near (not exactly on) the first district core,
  // like a waterfront attraction at the edge of downtown.
  ds.query = rng.GaussianAround(centers[0], 0.3 * profile->cluster_km);
  ds.relations.push_back(MakeCategory(*profile, "hotels", profile->hotels, 1,
                                      centers, profile->cluster_km, sprawl));
  ds.relations.push_back(MakeCategory(*profile, "restaurants",
                                      profile->restaurants, 2, centers,
                                      profile->cluster_km, sprawl));
  ds.relations.push_back(MakeCategory(*profile, "theaters", profile->theaters,
                                      3, centers, profile->cluster_km, sprawl));
  return ds;
}

}  // namespace prj
