// CSV persistence for relations, so users can run the operator over their
// own data (format: header `id,score,x0,...,x{d-1}` then one row per tuple).
#ifndef PRJ_WORKLOAD_CSV_H_
#define PRJ_WORKLOAD_CSV_H_

#include <string>

#include "access/relation.h"
#include "common/status.h"

namespace prj {

/// Writes `relation` to `path`. Fails with IOError if unwritable.
Status SaveRelationCsv(const Relation& relation, const std::string& path);

/// Reads a relation from `path`. The relation name is taken from
/// `name`; sigma_max from the parameter (scores are validated against it).
Result<Relation> LoadRelationCsv(const std::string& path,
                                 const std::string& name,
                                 double sigma_max = 1.0);

}  // namespace prj

#endif  // PRJ_WORKLOAD_CSV_H_
