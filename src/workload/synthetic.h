// Synthetic data generation following the paper's Appendix D.1.
//
// Tuples get scores sampled uniformly from (0, 1] and feature vectors
// sampled uniformly from a d-dimensional cube centered at the origin whose
// side is chosen so that the average density equals rho tuples per volume
// unit. The absolute relation size is irrelevant to the problem (only a
// prefix is ever read, paper D.1); we default to a few thousand tuples so
// no experiment ever exhausts its inputs.
#ifndef PRJ_WORKLOAD_SYNTHETIC_H_
#define PRJ_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "access/relation.h"

namespace prj {

struct SyntheticSpec {
  int dim = 2;             ///< feature-space dimensionality d
  double density = 50.0;   ///< rho, tuples per unit volume
  /// Tuples per relation. 0 (the default) reproduces Appendix D.1 exactly:
  /// the domain is the unit-volume cube [-0.5, 0.5]^d and the relation has
  /// round(rho) tuples. A positive count keeps the density by growing the
  /// domain instead (side = (count/density)^(1/d)); use it when an
  /// experiment must never exhaust its inputs.
  int count = 0;
  uint64_t seed = 1;       ///< RNG seed; same seed -> identical relation
  double sigma_max = 1.0;  ///< score ceiling (scores uniform in (0, ceiling])
};

/// Effective tuple count: spec.count, or round(spec.density) in auto mode.
int EffectiveCount(const SyntheticSpec& spec);

/// Side length of the cube that realizes `spec.density` with `spec.count`
/// tuples: (count / density)^(1/dim).
double CubeSide(const SyntheticSpec& spec);

/// Generates one relation per the spec.
Relation GenerateUniformRelation(const SyntheticSpec& spec,
                                 const std::string& name);

/// Generates the n relations of one synthetic problem instance. `skew` is
/// the paper's density ratio rho_1/rho_2 (Table 2), applied to the first
/// two relations while preserving their geometric-mean density:
/// rho_1 = rho * sqrt(skew), rho_2 = rho / sqrt(skew). Remaining relations
/// use rho unchanged. Seeds are derived from `seed` per relation.
std::vector<Relation> GenerateProblem(int n, const SyntheticSpec& spec,
                                      double skew = 1.0);

}  // namespace prj

#endif  // PRJ_WORKLOAD_SYNTHETIC_H_
