#include "solver/waterfill.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"

namespace prj {
namespace {

void Validate(const WaterfillProblem& p) {
  PRJ_CHECK_GE(p.wq, 0.0);
  PRJ_CHECK_GE(p.wmu, 0.0);
  PRJ_CHECK(p.m >= 0 && p.m < p.n) << "m=" << p.m << " n=" << p.n;
  PRJ_CHECK_EQ(static_cast<int>(p.deltas.size()), p.n - p.m);
  for (double d : p.deltas) PRJ_CHECK_GE(d, 0.0);
}

}  // namespace

double WaterfillObjective(const WaterfillProblem& p,
                          const std::vector<double>& theta) {
  PRJ_CHECK_EQ(theta.size(), p.deltas.size());
  double sum = 0.0, sum_sq = 0.0;
  for (double t : theta) {
    sum += t;
    sum_sq += t * t;
  }
  const double n = static_cast<double>(p.n);
  return p.c0 - (p.wq + p.wmu) * sum_sq + (p.wmu / n) * sum * sum +
         (2.0 * p.wmu * static_cast<double>(p.m) * p.nu / n) * sum;
}

WaterfillResult SolveWaterfill(const WaterfillProblem& p) {
  Validate(p);
  const int k = p.n - p.m;
  const double n = static_cast<double>(p.n);
  const double m = static_cast<double>(p.m);

  WaterfillResult result;
  result.theta.assign(static_cast<size_t>(k), 0.0);

  // Fully degenerate weights: the objective is the constant C0; any
  // feasible point is optimal.
  if (p.wq + p.wmu == 0.0) {
    result.theta = p.deltas;
    result.value = p.c0;
    return result;
  }

  // Sort slot indices by decreasing delta; the optimal active set is a
  // prefix of this order (DESIGN.md §4.1).
  std::vector<int> order(static_cast<size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return p.deltas[static_cast<size_t>(a)] > p.deltas[static_cast<size_t>(b)];
  });

  // Degenerate direction: wq == 0, m == 0 makes the free-value equation
  // singular when everything is free; any common value >= max delta is
  // optimal (phi is 0 + C0 there). Handled by the prefix scan below since
  // j == 0 then requires theta_F >= delta_(1) and the formula degenerates;
  // special-case it for clarity.
  if (p.wq == 0.0 && p.m == 0) {
    const double common =
        p.deltas.empty() ? 0.0 : *std::max_element(p.deltas.begin(), p.deltas.end());
    // With wq = 0 and no seen tuples, only mutual proximity matters; all
    // unseen tuples collocated at the largest required distance is optimal
    // unless wmu is also irrelevant -- the value is C0 either way.
    for (double& t : result.theta) t = common;
    result.value = WaterfillObjective(p, result.theta);
    return result;
  }

  double prefix_sum = 0.0;  // sum of deltas clamped so far
  for (int j = 0; j <= k; ++j) {
    // Candidate: first j (largest) deltas active, the rest free at theta_F.
    const int free_count = k - j;
    const double denom = n * (p.wq + p.wmu) - p.wmu * static_cast<double>(free_count);
    double theta_f = 0.0;
    if (free_count > 0) {
      PRJ_CHECK_GT(denom, 1e-15);
      theta_f = p.wmu * (prefix_sum + m * p.nu) / denom;
    }
    const double delta_j =
        (j == 0) ? std::numeric_limits<double>::infinity()
                 : p.deltas[static_cast<size_t>(order[static_cast<size_t>(j - 1)])];
    const double delta_next =
        (j == k) ? 0.0
                 : p.deltas[static_cast<size_t>(order[static_cast<size_t>(j)])];
    // Consistency: active deltas above the shared free value, free deltas
    // below it. For j == k check the stationarity threshold instead.
    bool consistent;
    if (free_count > 0) {
      consistent = (delta_j >= theta_f - 1e-12) && (theta_f >= delta_next - 1e-12);
    } else {
      const double threshold = p.wmu * (prefix_sum + m * p.nu) / (n * (p.wq + p.wmu));
      consistent = delta_j >= threshold - 1e-12;
    }
    if (consistent) {
      for (int i = 0; i < k; ++i) {
        const int slot = order[static_cast<size_t>(i)];
        result.theta[static_cast<size_t>(slot)] =
            (i < j) ? p.deltas[static_cast<size_t>(slot)] : theta_f;
      }
      result.value = WaterfillObjective(p, result.theta);
      return result;
    }
    if (j < k) prefix_sum += p.deltas[static_cast<size_t>(order[static_cast<size_t>(j)])];
  }
  // Strict concavity guarantees one consistent prefix; reaching here means a
  // numerical tie slipped through every tolerance. Fall back to all-active.
  for (int i = 0; i < k; ++i) {
    result.theta[static_cast<size_t>(i)] = p.deltas[static_cast<size_t>(i)];
  }
  result.value = WaterfillObjective(p, result.theta);
  return result;
}

bool CheckWaterfillKkt(const WaterfillProblem& p,
                       const std::vector<double>& theta, double tol) {
  if (theta.size() != p.deltas.size()) return false;
  const double n = static_cast<double>(p.n);
  const double sum = std::accumulate(theta.begin(), theta.end(), 0.0);
  for (size_t i = 0; i < theta.size(); ++i) {
    if (theta[i] < p.deltas[i] - tol) return false;  // infeasible
    // d phi / d theta_i
    const double grad = -2.0 * (p.wq + p.wmu) * theta[i] +
                        2.0 * (p.wmu / n) * sum +
                        2.0 * p.wmu * static_cast<double>(p.m) * p.nu / n;
    if (theta[i] > p.deltas[i] + tol) {
      if (std::fabs(grad) > tol) return false;  // interior: stationary
    } else {
      if (grad > tol) return false;  // at bound: must not want to grow
    }
  }
  return true;
}

}  // namespace prj
