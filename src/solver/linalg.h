// Small dense linear algebra used by the bound computations.
//
// Problem sizes here are tiny (the QP of paper eq. (14) has n <= 16
// variables; the dominance LP basis has d+1 <= 17 rows), so simple dense
// O(n^3) routines are the right tool.
#ifndef PRJ_SOLVER_LINALG_H_
#define PRJ_SOLVER_LINALG_H_

#include <string>
#include <vector>

#include "common/logging.h"

namespace prj {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        a_(static_cast<size_t>(rows) * static_cast<size_t>(cols), fill) {
    PRJ_CHECK(rows >= 0 && cols >= 0);
  }

  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) {
    PRJ_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return a_[static_cast<size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    PRJ_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return a_[static_cast<size_t>(r) * cols_ + c];
  }

  Matrix Transposed() const;
  std::vector<double> MultiplyVec(const std::vector<double>& x) const;
  Matrix Multiply(const Matrix& other) const;

  std::string ToString() const;

 private:
  int rows_, cols_;
  std::vector<double> a_;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite matrix.
/// Returns false if A is not (numerically) positive definite.
bool CholeskyFactor(const Matrix& a, Matrix* l);

/// Solves L L^T x = b given the Cholesky factor L.
std::vector<double> CholeskySolve(const Matrix& l, std::vector<double> b);

/// Solves A x = b for symmetric positive-definite A; aborts if not SPD.
std::vector<double> SolveSPD(const Matrix& a, const std::vector<double>& b);

/// Solves a general square system via partial-pivoting LU.
/// Returns false if the matrix is numerically singular.
bool SolveLU(Matrix a, std::vector<double> b, std::vector<double>* x);

}  // namespace prj

#endif  // PRJ_SOLVER_LINALG_H_
