#include "solver/qp.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace prj {
namespace {

constexpr double kTol = 1e-10;

void ValidateProblem(const QpProblem& p) {
  const int n = p.n();
  PRJ_CHECK_EQ(p.h.rows(), p.h.cols());
  PRJ_CHECK_EQ(static_cast<int>(p.g.size()), n);
  PRJ_CHECK_EQ(static_cast<int>(p.kind.size()), n);
  PRJ_CHECK_EQ(static_cast<int>(p.fixed_value.size()), n);
  PRJ_CHECK_EQ(static_cast<int>(p.lower_bound.size()), n);
}

// Gradient of the objective: H x + g.
std::vector<double> Gradient(const QpProblem& p, const std::vector<double>& x) {
  std::vector<double> grad = p.h.MultiplyVec(x);
  for (size_t i = 0; i < grad.size(); ++i) grad[i] += p.g[i];
  return grad;
}

// Solves the equality-constrained QP where variables in `pinned` are held at
// their current values in `x` and the rest minimize the objective. Returns
// false if the reduced Hessian is not SPD. On success writes the full-space
// minimizer into *target (pinned coordinates copied from x).
bool SolveEqp(const QpProblem& p, const std::vector<bool>& pinned,
              const std::vector<double>& x, std::vector<double>* target) {
  const int n = p.n();
  std::vector<int> free_idx;
  for (int i = 0; i < n; ++i) {
    if (!pinned[static_cast<size_t>(i)]) free_idx.push_back(i);
  }
  *target = x;
  if (free_idx.empty()) return true;
  const int f = static_cast<int>(free_idx.size());
  Matrix hff(f, f);
  std::vector<double> rhs(static_cast<size_t>(f), 0.0);
  for (int a = 0; a < f; ++a) {
    const int i = free_idx[static_cast<size_t>(a)];
    double r = -p.g[static_cast<size_t>(i)];
    for (int j = 0; j < n; ++j) {
      if (pinned[static_cast<size_t>(j)]) {
        r -= p.h(i, j) * x[static_cast<size_t>(j)];
      }
    }
    rhs[static_cast<size_t>(a)] = r;
    for (int b = 0; b < f; ++b) {
      hff(a, b) = p.h(i, free_idx[static_cast<size_t>(b)]);
    }
  }
  Matrix l;
  if (!CholeskyFactor(hff, &l)) return false;
  const std::vector<double> xf = CholeskySolve(l, rhs);
  for (int a = 0; a < f; ++a) {
    (*target)[static_cast<size_t>(free_idx[static_cast<size_t>(a)])] =
        xf[static_cast<size_t>(a)];
  }
  return true;
}

}  // namespace

double QpObjective(const QpProblem& p, const std::vector<double>& x) {
  const std::vector<double> hx = p.h.MultiplyVec(x);
  double obj = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    obj += 0.5 * x[i] * hx[i] + p.g[i] * x[i];
  }
  return obj;
}

QpResult SolveQp(const QpProblem& p) {
  ValidateProblem(p);
  const int n = p.n();
  QpResult result;

  // Feasible start: fixed vars at their values, bounded vars at the bound,
  // free vars at zero.
  std::vector<double> x(static_cast<size_t>(n), 0.0);
  // Working set: true = held at its value this iteration. Fixed variables
  // are permanently pinned; bounded variables start active.
  std::vector<bool> pinned(static_cast<size_t>(n), false);
  std::vector<bool> working(static_cast<size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    switch (p.kind[static_cast<size_t>(i)]) {
      case VarKind::kFixed:
        x[static_cast<size_t>(i)] = p.fixed_value[static_cast<size_t>(i)];
        pinned[static_cast<size_t>(i)] = true;
        break;
      case VarKind::kLowerBounded:
        x[static_cast<size_t>(i)] = p.lower_bound[static_cast<size_t>(i)];
        working[static_cast<size_t>(i)] = true;
        break;
      case VarKind::kFree:
        break;
    }
  }

  const int max_iters = 50 + 10 * n * n;
  for (int iter = 0; iter < max_iters; ++iter) {
    result.iterations = iter + 1;
    std::vector<bool> held(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      held[static_cast<size_t>(i)] =
          pinned[static_cast<size_t>(i)] || working[static_cast<size_t>(i)];
    }
    std::vector<double> target;
    if (!SolveEqp(p, held, x, &target)) return result;  // not SPD

    // Direction from current iterate to the EQP minimizer.
    double dir_norm = 0.0;
    for (int i = 0; i < n; ++i) {
      dir_norm = std::max(dir_norm, std::fabs(target[static_cast<size_t>(i)] -
                                              x[static_cast<size_t>(i)]));
    }

    if (dir_norm <= kTol) {
      // Stationary on the working set; check multipliers of active bounds.
      const std::vector<double> grad = Gradient(p, x);
      int worst = -1;
      double worst_lambda = -1e-9;
      for (int i = 0; i < n; ++i) {
        if (!working[static_cast<size_t>(i)]) continue;
        // For x_i >= lo_i, the KKT multiplier equals grad_i and must be >= 0.
        const double lambda = grad[static_cast<size_t>(i)];
        if (lambda < worst_lambda) {
          worst_lambda = lambda;
          worst = i;
        }
      }
      if (worst < 0) {
        result.ok = true;
        result.x = std::move(x);
        result.objective = QpObjective(p, result.x);
        return result;
      }
      working[static_cast<size_t>(worst)] = false;
      continue;
    }

    // Step toward the target, stopping at the nearest violated bound.
    double alpha = 1.0;
    int blocking = -1;
    for (int i = 0; i < n; ++i) {
      if (p.kind[static_cast<size_t>(i)] != VarKind::kLowerBounded) continue;
      if (working[static_cast<size_t>(i)]) continue;
      const double step = target[static_cast<size_t>(i)] - x[static_cast<size_t>(i)];
      if (step >= -kTol) continue;
      const double room =
          x[static_cast<size_t>(i)] - p.lower_bound[static_cast<size_t>(i)];
      const double a = room / (-step);
      if (a < alpha) {
        alpha = a;
        blocking = i;
      }
    }
    for (int i = 0; i < n; ++i) {
      x[static_cast<size_t>(i)] +=
          alpha * (target[static_cast<size_t>(i)] - x[static_cast<size_t>(i)]);
    }
    if (blocking >= 0) {
      x[static_cast<size_t>(blocking)] =
          p.lower_bound[static_cast<size_t>(blocking)];
      working[static_cast<size_t>(blocking)] = true;
    }
  }
  return result;  // did not converge; ok stays false
}

QpResult SolveQpByEnumeration(const QpProblem& p) {
  ValidateProblem(p);
  const int n = p.n();
  std::vector<int> bounded;
  for (int i = 0; i < n; ++i) {
    if (p.kind[static_cast<size_t>(i)] == VarKind::kLowerBounded) {
      bounded.push_back(i);
    }
  }
  const int b = static_cast<int>(bounded.size());
  PRJ_CHECK_LE(b, 20) << "enumeration oracle limited to 20 bounded variables";

  QpResult best;
  double best_obj = std::numeric_limits<double>::infinity();
  std::vector<double> start(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    if (p.kind[static_cast<size_t>(i)] == VarKind::kFixed) {
      start[static_cast<size_t>(i)] = p.fixed_value[static_cast<size_t>(i)];
    }
  }
  for (uint32_t mask = 0; mask < (1u << b); ++mask) {
    std::vector<bool> held(static_cast<size_t>(n), false);
    std::vector<double> x = start;
    for (int i = 0; i < n; ++i) {
      held[static_cast<size_t>(i)] =
          p.kind[static_cast<size_t>(i)] == VarKind::kFixed;
    }
    for (int k = 0; k < b; ++k) {
      if (mask & (1u << k)) {
        const int i = bounded[static_cast<size_t>(k)];
        held[static_cast<size_t>(i)] = true;
        x[static_cast<size_t>(i)] = p.lower_bound[static_cast<size_t>(i)];
      }
    }
    std::vector<double> candidate;
    if (!SolveEqp(p, held, x, &candidate)) continue;
    if (!CheckKkt(p, candidate, 1e-7)) continue;
    const double obj = QpObjective(p, candidate);
    if (obj < best_obj) {
      best_obj = obj;
      best.ok = true;
      best.x = candidate;
      best.objective = obj;
    }
  }
  return best;
}

bool CheckKkt(const QpProblem& p, const std::vector<double>& x, double tol) {
  ValidateProblem(p);
  const int n = p.n();
  if (static_cast<int>(x.size()) != n) return false;
  const std::vector<double> grad = Gradient(p, x);
  for (int i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    switch (p.kind[si]) {
      case VarKind::kFixed:
        if (std::fabs(x[si] - p.fixed_value[si]) > tol) return false;
        break;
      case VarKind::kFree:
        if (std::fabs(grad[si]) > tol) return false;
        break;
      case VarKind::kLowerBounded:
        if (x[si] < p.lower_bound[si] - tol) return false;  // infeasible
        if (x[si] > p.lower_bound[si] + tol) {
          // Inactive bound: stationarity must hold.
          if (std::fabs(grad[si]) > tol) return false;
        } else {
          // Active bound: multiplier (= gradient) must be nonnegative.
          if (grad[si] < -tol) return false;
        }
        break;
    }
  }
  return true;
}

}  // namespace prj
