// Convex quadratic programming with fixed variables and lower bounds.
//
// This is the "off-the-shelf QP solver" the paper assumes for problem (14)
// / (30): minimize theta^T H theta with the first m variables fixed to the
// projections of the seen tuples and the remaining ones lower-bounded by
// the current access depths. We solve the slightly more general
//
//   minimize   1/2 x^T H x + g^T x
//   subject to x_i  =  fixed_value[i]   for i with kind kFixed
//              x_i  >= lower_bound[i]   for i with kind kLowerBounded
//              x_i free                 for i with kind kFree
//
// with H symmetric positive definite on the non-fixed subspace, using a
// textbook primal active-set method (Nocedal & Wright, ch. 16). Problem
// sizes are tiny (n <= 16), so dense Cholesky per iteration is ideal.
#ifndef PRJ_SOLVER_QP_H_
#define PRJ_SOLVER_QP_H_

#include <vector>

#include "solver/linalg.h"

namespace prj {

enum class VarKind { kFree, kFixed, kLowerBounded };

struct QpProblem {
  Matrix h;                          ///< symmetric, n x n
  std::vector<double> g;             ///< linear term, size n
  std::vector<VarKind> kind;         ///< per-variable kind, size n
  std::vector<double> fixed_value;   ///< used when kind == kFixed
  std::vector<double> lower_bound;   ///< used when kind == kLowerBounded

  int n() const { return h.rows(); }
};

struct QpResult {
  bool ok = false;                 ///< false if H was not SPD on the subspace
  std::vector<double> x;           ///< optimizer
  double objective = 0.0;          ///< 1/2 x^T H x + g^T x at the optimizer
  int iterations = 0;
};

/// Solves the QP with a primal active-set method. Aborts on malformed input
/// (dimension mismatches); returns ok=false only on numerical failure.
QpResult SolveQp(const QpProblem& problem);

/// Test oracle: enumerate all active subsets of the lower-bounded variables
/// (2^b candidate sets, b <= 20) and return the best KKT point.
QpResult SolveQpByEnumeration(const QpProblem& problem);

/// Evaluates 1/2 x^T H x + g^T x.
double QpObjective(const QpProblem& problem, const std::vector<double>& x);

/// Returns true if `x` satisfies the KKT conditions of the problem
/// within tolerance `tol` (feasibility + stationarity + multiplier signs).
bool CheckKkt(const QpProblem& problem, const std::vector<double>& x,
              double tol = 1e-7);

}  // namespace prj

#endif  // PRJ_SOLVER_QP_H_
