// Exact specialized solver for the tight-bound optimization of paper
// §3.2.1 (problems (10)/(12), reduced to (14) via Theorem 3.4).
//
// With the origin shifted to the query q, the seen set M (|M| = m),
// partial-combination centroid norm nu = ||centroid - q||, and the n - m
// unseen tuples placed collinearly at distances theta_i >= delta_i along
// the ray through the centroid, the full aggregate score of problem (12)
// equals exactly
//
//   phi(theta) = C0 - (wq+wmu) * sum theta_i^2
//              + (wmu/n) * (sum theta_i)^2
//              + (2 wmu m nu / n) * sum theta_i
//
// which is a strictly concave QP over theta >= delta (see DESIGN.md §4.1).
// Its KKT structure is water-filling-like: all free variables share one
// value theta_F, and the active set is a prefix of the deltas sorted in
// decreasing order. This yields an exact O(k log k) solver, k = n - m.
#ifndef PRJ_SOLVER_WATERFILL_H_
#define PRJ_SOLVER_WATERFILL_H_

#include <vector>

namespace prj {

struct WaterfillProblem {
  double wq = 1.0;    ///< weight of the query-distance penalty
  double wmu = 1.0;   ///< weight of the centroid-distance penalty
  int n = 0;          ///< total number of relations in the join
  int m = 0;          ///< number of seen positions (|M|)
  double nu = 0.0;    ///< distance of the partial centroid from the query
  double c0 = 0.0;    ///< constant term C0 (see header comment)
  std::vector<double> deltas;  ///< lower bounds for the n - m unseen slots
};

struct WaterfillResult {
  std::vector<double> theta;  ///< optimal distances, aligned with `deltas`
  double value = 0.0;         ///< phi(theta*) == tight bound t(tau)
};

/// Evaluates phi(theta) for the given problem.
double WaterfillObjective(const WaterfillProblem& p,
                          const std::vector<double>& theta);

/// Solves the problem exactly. Requires wq, wmu >= 0, 0 <= m < n,
/// deltas.size() == n - m, deltas >= 0.
WaterfillResult SolveWaterfill(const WaterfillProblem& p);

/// Returns true if theta satisfies the KKT conditions within `tol`
/// (used by tests; independent re-derivation of optimality).
bool CheckWaterfillKkt(const WaterfillProblem& p,
                       const std::vector<double>& theta, double tol = 1e-8);

}  // namespace prj

#endif  // PRJ_SOLVER_WATERFILL_H_
