#include "solver/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace prj {
namespace {

constexpr double kPivotTol = 1e-9;
constexpr double kCostTol = 1e-9;

// Revised simplex over the matrix [A | I_artificial]; basis inverse kept
// densely. Columns >= n_cols are the artificials of phase 1.
class RevisedSimplex {
 public:
  RevisedSimplex(const Matrix& a, std::vector<double> b)
      : a_(a), b_(std::move(b)), rows_(a.rows()), cols_(a.cols()) {
    // Normalize to b >= 0 so the artificial basis is feasible.
    row_sign_.assign(static_cast<size_t>(rows_), 1.0);
    for (int r = 0; r < rows_; ++r) {
      if (b_[static_cast<size_t>(r)] < 0) {
        row_sign_[static_cast<size_t>(r)] = -1.0;
        b_[static_cast<size_t>(r)] = -b_[static_cast<size_t>(r)];
      }
    }
    binv_ = Matrix::Identity(rows_);
    basis_.resize(static_cast<size_t>(rows_));
    for (int r = 0; r < rows_; ++r) basis_[static_cast<size_t>(r)] = cols_ + r;
    xb_ = b_;
  }

  // Entry (r, j) of the sign-normalized constraint matrix, artificials
  // included as an identity block.
  double Entry(int r, int j) const {
    if (j < cols_) return row_sign_[static_cast<size_t>(r)] * a_(r, j);
    return (j - cols_ == r) ? 1.0 : 0.0;
  }

  // Runs simplex iterations with the given per-column costs. `allowed`
  // marks columns that may enter the basis. Returns status.
  LpStatus Run(const std::vector<double>& cost, const std::vector<bool>& allowed,
               int max_iterations, int* iterations) {
    const int total = cols_ + rows_;
    for (; *iterations < max_iterations; ++*iterations) {
      // Duals: y^T = c_B^T B^{-1}.
      std::vector<double> y(static_cast<size_t>(rows_), 0.0);
      for (int r = 0; r < rows_; ++r) {
        const double cb = cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
        if (cb == 0.0) continue;
        for (int c = 0; c < rows_; ++c) {
          y[static_cast<size_t>(c)] += cb * binv_(r, c);
        }
      }
      // Bland's rule: smallest-index column with negative reduced cost.
      int entering = -1;
      for (int j = 0; j < total; ++j) {
        if (!allowed[static_cast<size_t>(j)]) continue;
        if (InBasis(j)) continue;
        double red = cost[static_cast<size_t>(j)];
        for (int r = 0; r < rows_; ++r) red -= y[static_cast<size_t>(r)] * Entry(r, j);
        if (red < -kCostTol) {
          entering = j;
          break;
        }
      }
      if (entering < 0) return LpStatus::kOptimal;

      // Direction d = B^{-1} A_e.
      std::vector<double> d(static_cast<size_t>(rows_), 0.0);
      for (int r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (int c = 0; c < rows_; ++c) acc += binv_(r, c) * Entry(c, entering);
        d[static_cast<size_t>(r)] = acc;
      }
      // Ratio test (Bland: break ties by smallest basis variable index).
      int leaving_row = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int r = 0; r < rows_; ++r) {
        if (d[static_cast<size_t>(r)] > kPivotTol) {
          const double ratio = xb_[static_cast<size_t>(r)] / d[static_cast<size_t>(r)];
          if (ratio < best_ratio - kPivotTol ||
              (ratio < best_ratio + kPivotTol &&
               (leaving_row < 0 ||
                basis_[static_cast<size_t>(r)] <
                    basis_[static_cast<size_t>(leaving_row)]))) {
            best_ratio = ratio;
            leaving_row = r;
          }
        }
      }
      if (leaving_row < 0) return LpStatus::kUnbounded;

      Pivot(entering, leaving_row, d, best_ratio);
    }
    return LpStatus::kIterationLimit;
  }

  void Pivot(int entering, int leaving_row, const std::vector<double>& d,
             double step) {
    for (int r = 0; r < rows_; ++r) {
      xb_[static_cast<size_t>(r)] -= step * d[static_cast<size_t>(r)];
      if (xb_[static_cast<size_t>(r)] < 0.0) xb_[static_cast<size_t>(r)] = 0.0;
    }
    xb_[static_cast<size_t>(leaving_row)] = step;
    // Update B^{-1}: eliminate the entering column from other rows.
    const double piv = d[static_cast<size_t>(leaving_row)];
    for (int c = 0; c < rows_; ++c) binv_(leaving_row, c) /= piv;
    for (int r = 0; r < rows_; ++r) {
      if (r == leaving_row) continue;
      const double f = d[static_cast<size_t>(r)];
      if (std::fabs(f) < 1e-14) continue;
      for (int c = 0; c < rows_; ++c) {
        binv_(r, c) -= f * binv_(leaving_row, c);
      }
    }
    basis_[static_cast<size_t>(leaving_row)] = entering;
  }

  bool InBasis(int j) const {
    for (int r = 0; r < rows_; ++r) {
      if (basis_[static_cast<size_t>(r)] == j) return true;
    }
    return false;
  }

  // Dual vector y^T = c_B^T B^{-1}, mapped back through the row-sign
  // normalization so it corresponds to the caller's original rows.
  std::vector<double> Duals(const std::vector<double>& cost) const {
    std::vector<double> y(static_cast<size_t>(rows_), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const double cb = cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])];
      if (cb == 0.0) continue;
      for (int c = 0; c < rows_; ++c) {
        y[static_cast<size_t>(c)] += cb * binv_(r, c);
      }
    }
    for (int r = 0; r < rows_; ++r) {
      y[static_cast<size_t>(r)] *= row_sign_[static_cast<size_t>(r)];
    }
    return y;
  }

  double BasicObjective(const std::vector<double>& cost) const {
    double obj = 0.0;
    for (int r = 0; r < rows_; ++r) {
      obj += cost[static_cast<size_t>(basis_[static_cast<size_t>(r)])] *
             xb_[static_cast<size_t>(r)];
    }
    return obj;
  }

  std::vector<double> ExtractX() const {
    std::vector<double> x(static_cast<size_t>(cols_), 0.0);
    for (int r = 0; r < rows_; ++r) {
      const int j = basis_[static_cast<size_t>(r)];
      if (j < cols_) x[static_cast<size_t>(j)] = xb_[static_cast<size_t>(r)];
    }
    return x;
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  const std::vector<int>& basis() const { return basis_; }

 private:
  const Matrix& a_;
  std::vector<double> b_;
  int rows_, cols_;
  std::vector<double> row_sign_;
  Matrix binv_;
  std::vector<int> basis_;
  std::vector<double> xb_;  // current basic values
};

}  // namespace

LpResult SolveStandardForm(const Matrix& a, const std::vector<double>& b,
                           const std::vector<double>& c, int max_iterations) {
  PRJ_CHECK_EQ(a.rows(), static_cast<int>(b.size()));
  PRJ_CHECK_EQ(a.cols(), static_cast<int>(c.size()));
  LpResult result;
  const int rows = a.rows();
  const int cols = a.cols();
  RevisedSimplex simplex(a, b);

  // Phase 1: minimize the sum of artificials.
  std::vector<double> phase1_cost(static_cast<size_t>(cols + rows), 0.0);
  for (int r = 0; r < rows; ++r) phase1_cost[static_cast<size_t>(cols + r)] = 1.0;
  std::vector<bool> all_allowed(static_cast<size_t>(cols + rows), true);
  LpStatus st = simplex.Run(phase1_cost, all_allowed, max_iterations,
                            &result.iterations);
  if (st == LpStatus::kIterationLimit) return result;
  const double phase1_obj = simplex.BasicObjective(phase1_cost);
  if (phase1_obj > 1e-7) {
    result.status = LpStatus::kInfeasible;
    return result;
  }

  // Phase 2: original costs; artificials may stay basic at level zero but
  // are assigned a prohibitive cost so they never re-enter and any attempt
  // to raise them is suboptimal.
  std::vector<double> phase2_cost(static_cast<size_t>(cols + rows), 0.0);
  for (int j = 0; j < cols; ++j) phase2_cost[static_cast<size_t>(j)] = c[static_cast<size_t>(j)];
  double big = 1.0;
  for (double cj : c) big = std::max(big, std::fabs(cj));
  for (int r = 0; r < rows; ++r) {
    phase2_cost[static_cast<size_t>(cols + r)] = big * 1e8;
  }
  std::vector<bool> allowed(static_cast<size_t>(cols + rows), false);
  for (int j = 0; j < cols; ++j) allowed[static_cast<size_t>(j)] = true;
  st = simplex.Run(phase2_cost, allowed, max_iterations, &result.iterations);
  if (st == LpStatus::kIterationLimit || st == LpStatus::kUnbounded) {
    result.status = st;
    return result;
  }
  result.status = LpStatus::kOptimal;
  result.x = simplex.ExtractX();
  result.duals = simplex.Duals(phase2_cost);
  result.objective = 0.0;
  for (int j = 0; j < cols; ++j) {
    result.objective += c[static_cast<size_t>(j)] * result.x[static_cast<size_t>(j)];
  }
  return result;
}

LpResult SolveInequalityForm(const Matrix& g, const std::vector<double>& h,
                             const std::vector<double>& c, int max_iterations) {
  const int u = g.rows();
  const int d = g.cols();
  PRJ_CHECK_EQ(static_cast<int>(h.size()), u);
  PRJ_CHECK_EQ(static_cast<int>(c.size()), d);
  // Variables: y+ (d), y- (d), slack (u). G y+ - G y- + s = h.
  Matrix a(u, 2 * d + u);
  for (int r = 0; r < u; ++r) {
    for (int j = 0; j < d; ++j) {
      a(r, j) = g(r, j);
      a(r, d + j) = -g(r, j);
    }
    a(r, 2 * d + r) = 1.0;
  }
  std::vector<double> cost(static_cast<size_t>(2 * d + u), 0.0);
  for (int j = 0; j < d; ++j) {
    cost[static_cast<size_t>(j)] = c[static_cast<size_t>(j)];
    cost[static_cast<size_t>(d + j)] = -c[static_cast<size_t>(j)];
  }
  LpResult inner = SolveStandardForm(a, h, cost, max_iterations);
  LpResult result;
  result.status = inner.status;
  result.iterations = inner.iterations;
  if (inner.status != LpStatus::kOptimal) return result;
  result.x.assign(static_cast<size_t>(d), 0.0);
  for (int j = 0; j < d; ++j) {
    result.x[static_cast<size_t>(j)] =
        inner.x[static_cast<size_t>(j)] - inner.x[static_cast<size_t>(d + j)];
  }
  result.objective = inner.objective;
  return result;
}

bool PolyhedronIsEmpty(const Matrix& g, const std::vector<double>& h,
                       std::vector<double>* witness) {
  const int u = g.rows();
  const int d = g.cols();
  PRJ_CHECK_EQ(static_cast<int>(h.size()), u);
  if (witness) witness->assign(static_cast<size_t>(d), 0.0);
  if (u == 0) return false;  // whole space

  // Quick screen: a row with zero normal and negative offset is itself a
  // Farkas certificate (0 <= h_i with h_i < 0).
  for (int r = 0; r < u; ++r) {
    double norm = 0.0;
    for (int j = 0; j < d; ++j) norm += std::fabs(g(r, j));
    if (norm < 1e-13 && h[static_cast<size_t>(r)] < -1e-12) return true;
  }

  // Capped-margin Farkas dual:
  //   min h^T lambda + lambda_0
  //   s.t. G^T lambda = 0, 1^T lambda + lambda_0 = 1, lambda, lambda_0 >= 0,
  // which is the LP dual of "max mu s.t. G y + mu*1 <= h, mu <= 1" (in
  // h/scale units). It is always feasible (lambda_0 = 1) and bounded;
  // the polyhedron is empty iff the optimum is < 0 (a Farkas certificate
  // with lambda_0 = 0), and otherwise the duals of the first d rows are
  // the max-margin point y -- a ready-made interior witness.
  Matrix a(d + 1, u + 1);
  for (int r = 0; r < u; ++r) {
    for (int j = 0; j < d; ++j) a(j, r) = g(r, j);
    a(d, r) = 1.0;
  }
  a(d, u) = 1.0;  // the lambda_0 column
  std::vector<double> b(static_cast<size_t>(d + 1), 0.0);
  b[static_cast<size_t>(d)] = 1.0;

  // Scale-normalize the objective for a robust sign test.
  double scale = 1.0;
  for (double v : h) scale = std::max(scale, std::fabs(v));
  std::vector<double> c(h);
  for (double& v : c) v /= scale;
  c.push_back(1.0);  // cost of lambda_0 (the mu <= 1 cap)

  const LpResult lp = SolveStandardForm(a, b, c);
  PRJ_CHECK(lp.status == LpStatus::kOptimal)
      << "capped Farkas LP must be solvable; status="
      << static_cast<int>(lp.status);
  if (lp.objective < -1e-9) return true;
  if (witness) {
    for (int j = 0; j < d; ++j) {
      (*witness)[static_cast<size_t>(j)] = lp.duals[static_cast<size_t>(j)] * scale;
    }
  }
  return false;
}

}  // namespace prj
