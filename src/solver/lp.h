// Dense linear programming used by the dominance test of paper §3.2.2.
//
// The dominance region D(tau_alpha) (eq. (17)) is an intersection of
// half-spaces; tau_alpha is dominated iff the region is empty, which the
// paper decides with the feasibility LP (35). The number of half-spaces u
// grows with the retrieved prefix (up to thousands) while the dimension d
// stays tiny (<= 16), so instead of a u-row phase-1 we solve the Farkas
// dual -- min h^T lambda s.t. G^T lambda = 0, 1^T lambda = 1, lambda >= 0 --
// whose basis has only d+2 rows, with a two-phase revised simplex.
#ifndef PRJ_SOLVER_LP_H_
#define PRJ_SOLVER_LP_H_

#include <vector>

#include "solver/linalg.h"

namespace prj {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  std::vector<double> x;      ///< primal solution when kOptimal
  double objective = 0.0;     ///< c^T x when kOptimal
  std::vector<double> duals;  ///< dual vector (one per row) when kOptimal
  int iterations = 0;
};

/// Solves  min c^T x  s.t.  A x = b, x >= 0  (standard form) with a
/// two-phase revised simplex using Bland's anti-cycling rule.
/// A has r rows (small) and n columns (possibly many).
LpResult SolveStandardForm(const Matrix& a, const std::vector<double>& b,
                           const std::vector<double>& c,
                           int max_iterations = 20000);

/// Solves  min c^T y  s.t.  G y <= h  with y free, by conversion to
/// standard form. Intended for tests and small instances (the conversion
/// introduces one slack per row).
LpResult SolveInequalityForm(const Matrix& g, const std::vector<double>& h,
                             const std::vector<double>& c,
                             int max_iterations = 20000);

/// Returns true iff { y : G y <= h } is empty, decided via a Farkas
/// certificate: the set is empty iff some lambda >= 0 with G^T lambda = 0
/// has h^T lambda < 0. This is the engine of the dominance test (35).
///
/// When the set is nonempty and `witness` is non-null, *witness receives a
/// point of the set (the max-margin point, read off the Farkas dual's dual
/// variables). Callers can use it to skip future feasibility solves: the
/// set can only lose points as constraints are added, so as long as the
/// cached witness satisfies every new constraint the set stays nonempty.
bool PolyhedronIsEmpty(const Matrix& g, const std::vector<double>& h,
                       std::vector<double>* witness = nullptr);

}  // namespace prj

#endif  // PRJ_SOLVER_LP_H_
