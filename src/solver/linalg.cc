#include "solver/linalg.h"

#include <cmath>
#include <cstdio>

namespace prj {

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

std::vector<double> Matrix::MultiplyVec(const std::vector<double>& x) const {
  PRJ_CHECK_EQ(static_cast<int>(x.size()), cols_);
  std::vector<double> y(static_cast<size_t>(rows_), 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[static_cast<size_t>(c)];
    y[static_cast<size_t>(r)] = acc;
  }
  return y;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  PRJ_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (int c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  }
  return out;
}

std::string Matrix::ToString() const {
  std::string s;
  char buf[40];
  for (int r = 0; r < rows_; ++r) {
    s += (r == 0) ? "[" : " ";
    for (int c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%10.4g", (*this)(r, c));
      s += buf;
    }
    s += (r + 1 == rows_) ? "]\n" : "\n";
  }
  return s;
}

bool CholeskyFactor(const Matrix& a, Matrix* l) {
  PRJ_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  *l = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= (*l)(j, k) * (*l)(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return false;
    const double root = std::sqrt(diag);
    (*l)(j, j) = root;
    for (int i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (int k = 0; k < j; ++k) v -= (*l)(i, k) * (*l)(j, k);
      (*l)(i, j) = v / root;
    }
  }
  return true;
}

std::vector<double> CholeskySolve(const Matrix& l, std::vector<double> b) {
  const int n = l.rows();
  PRJ_CHECK_EQ(static_cast<int>(b.size()), n);
  // Forward substitution: L z = b.
  for (int i = 0; i < n; ++i) {
    double v = b[static_cast<size_t>(i)];
    for (int k = 0; k < i; ++k) v -= l(i, k) * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(i)] = v / l(i, i);
  }
  // Back substitution: L^T x = z.
  for (int i = n - 1; i >= 0; --i) {
    double v = b[static_cast<size_t>(i)];
    for (int k = i + 1; k < n; ++k) v -= l(k, i) * b[static_cast<size_t>(k)];
    b[static_cast<size_t>(i)] = v / l(i, i);
  }
  return b;
}

std::vector<double> SolveSPD(const Matrix& a, const std::vector<double>& b) {
  Matrix l;
  PRJ_CHECK(CholeskyFactor(a, &l)) << "matrix is not positive definite";
  return CholeskySolve(l, b);
}

bool SolveLU(Matrix a, std::vector<double> b, std::vector<double>* x) {
  PRJ_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  PRJ_CHECK_EQ(static_cast<int>(b.size()), n);
  std::vector<int> perm(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    double best = std::fabs(a(col, col));
    for (int r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[static_cast<size_t>(col)], b[static_cast<size_t>(pivot)]);
    }
    for (int r = col + 1; r < n; ++r) {
      const double f = a(r, col) / a(col, col);
      if (f == 0.0) continue;
      a(r, col) = 0.0;
      for (int c = col + 1; c < n; ++c) a(r, c) -= f * a(col, c);
      b[static_cast<size_t>(r)] -= f * b[static_cast<size_t>(col)];
    }
  }
  x->assign(static_cast<size_t>(n), 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double v = b[static_cast<size_t>(i)];
    for (int c = i + 1; c < n; ++c) v -= a(i, c) * (*x)[static_cast<size_t>(c)];
    (*x)[static_cast<size_t>(i)] = v / a(i, i);
  }
  return true;
}

}  // namespace prj
