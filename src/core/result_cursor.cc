#include "core/result_cursor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/form_combinations.h"
#include "core/join_state.h"
#include "core/strategy.h"
#include "core/tight_bound.h"
#include "core/trace.h"

namespace prj {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// std heap "less": the best candidate must be the heap's largest element.
bool HeapLess(const Combination& a, const Combination& b) {
  return CombinationBetter(b, a);
}

/// Adds a timer's elapsed time to a sink on every scope exit, so each
/// Next call charges its wall time no matter which branch returns.
class TimeCharge {
 public:
  TimeCharge(const WallTimer* timer, double* sink)
      : timer_(timer), sink_(sink) {}
  ~TimeCharge() { *sink_ += timer_->ElapsedSeconds(); }
  TimeCharge(const TimeCharge&) = delete;
  TimeCharge& operator=(const TimeCharge&) = delete;

 private:
  const WallTimer* timer_;
  double* sink_;
};

}  // namespace

Result<std::vector<ResultCombination>> ResultCursor::NextBatch(size_t n) {
  std::vector<ResultCombination> out;
  out.reserve(std::min<size_t>(n, 1024));
  for (size_t i = 0; i < n; ++i) {
    Result<std::optional<ResultCombination>> next = Next();
    if (!next.ok()) return next.status();
    if (!next.value().has_value()) break;
    out.push_back(std::move(*next.value()));
  }
  return out;
}

// ---------------------------- ExecutionCursor ---------------------------- //

Result<std::unique_ptr<ExecutionCursor>> ExecutionCursor::Open(
    const QueryPlan& plan, size_t retain_cap) {
  PRJ_RETURN_IF_ERROR(ValidateQueryPlan(plan));
  return std::unique_ptr<ExecutionCursor>(
      new ExecutionCursor(plan, retain_cap));
}

ExecutionCursor::ExecutionCursor(const QueryPlan& plan, size_t retain_cap)
    : sources_(plan.sources),
      scoring_(plan.scoring),
      options_(*plan.options),
      retain_cap_(retain_cap),
      current_bound_(kInf) {
  const AccessKind kind = (*sources_)[0]->kind();
  state_ = std::make_unique<JoinState>(*plan.query, kind, *sources_);
  if (options_.bound == BoundKind::kCorner) {
    bound_ = std::make_unique<CornerBound>(state_.get(), scoring_);
  } else if (kind == AccessKind::kDistance) {
    bound_ = std::make_unique<TightBoundDistance>(
        state_.get(), static_cast<const SumLogEuclideanScoring*>(scoring_),
        options_.dominance_period, options_.bound_update_period,
        &stats_.dominance_seconds, options_.use_generic_qp);
  } else {
    bound_ = std::make_unique<TightBoundScore>(
        state_.get(), static_cast<const SumLogEuclideanScoring*>(scoring_));
  }
  if (options_.pull == PullKind::kRoundRobin) {
    strategy_ = std::make_unique<RoundRobinStrategy>();
  } else {
    strategy_ = std::make_unique<PotentialAdaptiveStrategy>();
  }
  if (retain_cap_ > 0) {
    admit_ = std::make_unique<TopKBuffer>(retain_cap_);
  } else if (options_.trace != nullptr) {
    trace_kth_ = std::make_unique<TopKBuffer>(static_cast<size_t>(options_.k));
  }
  stats_.completed = true;
}

ExecutionCursor::~ExecutionCursor() = default;

ResultCombination ExecutionCursor::PopBest() {
  std::pop_heap(heap_.begin(), heap_.end(), HeapLess);
  Combination c = std::move(heap_.back());
  heap_.pop_back();
  ResultCombination rc;
  rc.score = c.score;
  const int n = state_->n();
  rc.tuples.reserve(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    rc.tuples.push_back(
        state_->rel(j).seen[c.positions[static_cast<size_t>(j)]]);
  }
  ++emitted_;
  return rc;
}

bool ExecutionCursor::PullStep(const WallTimer& call_timer) {
  // Rails before input selection -- the one-shot loop-top order. A trip is
  // sticky: the cursor never pulls again, and the remaining candidates
  // drain uncertified exactly like the one-shot buffer return.
  if (options_.max_pulls > 0 && pulls_ >= options_.max_pulls) {
    rail_tripped_ = true;
    stats_.completed = false;
    return false;
  }
  if (options_.time_budget_seconds > 0 &&
      stats_.total_seconds + call_timer.ElapsedSeconds() >
          options_.time_budget_seconds) {
    rail_tripped_ = true;
    stats_.completed = false;
    return false;
  }
  const int i = strategy_->ChooseInput(*state_, *bound_);
  if (i < 0) {
    exhausted_ = true;  // every input exhausted: all candidates are final
    return false;
  }
  std::optional<Tuple> tuple = (*sources_)[static_cast<size_t>(i)]->Next();
  if (!tuple) {
    state_->MarkExhausted(i);
    bound_->OnExhausted(i);
    current_bound_ = bound_->bound();
    return true;
  }
  ++pulls_;
  state_->Append(i, std::move(*tuple));
  stats_.combinations_formed += internal::FormNewCombinations(
      *state_, *scoring_, i, [this](Combination c) {
        if (admit_ != nullptr) {
          // One-shot admission: a candidate outside the best retain_cap
          // seen so far can never be emitted by a capped drain.
          if (!admit_->Offer(c)) return;
        } else if (trace_kth_ != nullptr) {
          trace_kth_->Offer(c);
        }
        heap_.push_back(std::move(c));
        std::push_heap(heap_.begin(), heap_.end(), HeapLess);
      });
  {
    ScopedTimer timer(&stats_.bound_seconds);
    bound_->OnPull(i);
    current_bound_ = bound_->bound();
  }
  if (options_.trace != nullptr) {
    const TopKBuffer& kth = admit_ != nullptr ? *admit_ : *trace_kth_;
    options_.trace->steps.push_back(TraceStep{i, state_->rel(i).depth(),
                                              current_bound_, kth.KthScore(),
                                              stats_.combinations_formed});
  }
  return true;
}

Result<std::optional<ResultCombination>> ExecutionCursor::Next() {
  if (retain_cap_ > 0 && emitted_ >= retain_cap_) {
    // A capped cursor only promises its cap: the admission filter may
    // have dropped candidates beyond it, so the stream ends here.
    return std::optional<ResultCombination>();
  }
  WallTimer call_timer;
  TimeCharge charge(&call_timer, &stats_.total_seconds);
  for (;;) {
    const bool drained = exhausted_ || rail_tripped_;
    if (!heap_.empty()) {
      // Certification (Algorithm 1 line 3, per result): the best unemitted
      // candidate is final once no combination containing an unseen tuple
      // can beat OR TIE it -- or once no such combination can exist at all
      // (inputs exhausted / bound at -infinity) or pulling stopped for
      // good (rail tripped; uncertified drain, completed already false).
      // The comparison is strict, widened by the epsilon slack in the
      // safe direction: an unformed combination may tie this score
      // exactly (adversarial tie-heavy data) and sort EARLIER under
      // CombinationBetter, so emitting at score == bound would fix a tie
      // order that depends on pull chronology -- which the scatter-gather
      // merge (core/gather.h) cannot reconstruct from output tuples.
      // Waiting until the bound falls strictly below the score means the
      // whole tie class is formed before any member is emitted, making
      // the emitted order a pure function of (score, member positions).
      if (drained ||
          heap_.front().score > current_bound_ + options_.epsilon) {
        return std::optional<ResultCombination>(PopBest());
      }
    } else if (drained ||
               (std::isinf(current_bound_) && current_bound_ < 0)) {
      return std::optional<ResultCombination>();  // enumeration complete
    }
    if (!PullStep(call_timer)) {
      // No pull happened: a rail tripped or exhaustion was detected; the
      // loop re-enters with the flags set and resolves on the heap alone.
      continue;
    }
  }
}

ExecStats ExecutionCursor::stats() const {
  ExecStats s = stats_;
  const size_t n = sources_->size();
  s.depths.resize(n);
  s.sum_depths = 0;
  for (size_t i = 0; i < n; ++i) {
    // Report what the *service* delivered, not what the engine consumed --
    // they differ for paged sources, and the paper's sumDepths charges the
    // access, not the use.
    s.depths[i] = (*sources_)[i]->depth();
    s.sum_depths += s.depths[i];
  }
  s.bound_stats = bound_->stats();
  s.final_bound = current_bound_;
  return s;
}

// --------------------------- GatherMergeCursor --------------------------- //

GatherMergeCursor::GatherMergeCursor(AccessKind kind, Vec query,
                                     size_t num_relations, bool prune,
                                     std::vector<Part> parts)
    : kind_(kind),
      query_(std::move(query)),
      num_relations_(num_relations),
      prune_(prune),
      parts_(std::move(parts)) {
  std::stable_sort(
      parts_.begin(), parts_.end(),
      [](const Part& a, const Part& b) { return a.bound > b.bound; });
}

Status GatherMergeCursor::Advance(Stream* stream) {
  stream->head.reset();
  Result<std::optional<ResultCombination>> next = stream->cursor->Next();
  if (!next.ok()) return next.status();
  if (next.value().has_value()) {
    stream->head = MakeKeyed(std::move(*next.value()), kind_, query_);
  }
  return Status::OK();
}

int GatherMergeCursor::BestStream() const {
  int best = -1;
  for (size_t j = 0; j < streams_.size(); ++j) {
    if (!streams_[j].head.has_value()) continue;
    if (best < 0 ||
        GatherBetter(*streams_[j].head,
                     *streams_[static_cast<size_t>(best)].head)) {
      best = static_cast<int>(j);
    }
  }
  return best;
}

double GatherMergeCursor::max_unopened_bound() const {
  return next_part_ < parts_.size() ? parts_[next_part_].bound
                                    : -std::numeric_limits<double>::infinity();
}

Result<std::optional<ResultCombination>> GatherMergeCursor::Next() {
  if (!failed_.ok()) return failed_;
  int best = BestStream();
  // Open parts (descending bound order) until the next unopened one
  // provably cannot beat or tie the best open head. GatherPruned is
  // strictly monotone in the bound, so stopping at the first pruned part
  // prunes every later one too.
  while (next_part_ < parts_.size()) {
    if (best >= 0 && prune_ &&
        GatherPruned(parts_[next_part_].bound,
                     streams_[static_cast<size_t>(best)].head->combo.score)) {
      break;
    }
    Result<std::unique_ptr<ResultCursor>> opened = parts_[next_part_].open();
    if (!opened.ok()) {
      failed_ = opened.status();
      return failed_;
    }
    ++next_part_;
    streams_.push_back(Stream{std::move(opened).value(), std::nullopt});
    Status advanced = Advance(&streams_.back());
    if (!advanced.ok()) {
      failed_ = advanced;
      return failed_;
    }
    best = BestStream();
  }
  if (best < 0) return std::optional<ResultCombination>();
  Stream& winner = streams_[static_cast<size_t>(best)];
  ResultCombination out = std::move(winner.head->combo);
  ++emitted_;
  Status advanced = Advance(&winner);
  if (!advanced.ok()) {
    // The result in hand is valid; surface the stream failure on the
    // next call instead of dropping a certified combination.
    failed_ = advanced;
  }
  return std::optional<ResultCombination>(std::move(out));
}

ExecStats GatherMergeCursor::stats() const {
  ExecStats agg;
  agg.depths.assign(num_relations_, 0);
  agg.completed = true;
  for (const Stream& stream : streams_) {
    AggregateShardStats(stream.cursor->stats(), ScatterMode::kSequential,
                        &agg);
  }
  return agg;
}

}  // namespace prj
