// Pulling strategies (paper §3.3): decide which relation to access next.
#ifndef PRJ_CORE_STRATEGY_H_
#define PRJ_CORE_STRATEGY_H_

#include "core/bounds.h"
#include "core/join_state.h"

namespace prj {

class PullingStrategy {
 public:
  virtual ~PullingStrategy() = default;

  /// Index of the next relation to pull, or -1 if every input is exhausted.
  virtual int ChooseInput(const JoinState& state,
                          const BoundingScheme& bound) = 0;
};

/// Cycles R_1, ..., R_n, skipping exhausted inputs.
class RoundRobinStrategy : public PullingStrategy {
 public:
  int ChooseInput(const JoinState& state, const BoundingScheme& bound) override;

 private:
  int next_ = 0;
};

/// Potential-adaptive (PA) strategy: pull the relation with the largest
/// potential pot_i, breaking ties in favour of the least depth p_i, then
/// the least index (paper §3.3). With the corner bound this is HRJN*'s
/// adaptive strategy; with the tight bound it is the paper's TBPA.
class PotentialAdaptiveStrategy : public PullingStrategy {
 public:
  int ChooseInput(const JoinState& state, const BoundingScheme& bound) override;
};

}  // namespace prj

#endif  // PRJ_CORE_STRATEGY_H_
