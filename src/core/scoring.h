// Aggregation functions for proximity rank join (paper §2, eq. (1)-(2)).
//
// A ScoringFunction bundles the three ingredients of eq. (1):
//   * per-tuple proximity weighting g_i(sigma, dist_to_query, dist_to_centroid),
//     non-decreasing in sigma, non-increasing in both distances;
//   * the monotone aggregate f over the n weighted scores;
//   * the combination centroid mu(tau).
//
// SumLogEuclideanScoring is the paper's concrete instance (eq. (2)):
//   S(tau) = sum_i  ws*ln(sigma_i) - wq*||x_i - q||^2 - wmu*||x_i - mu||^2
// with mu the arithmetic mean. The tight bounding schemes are specialized
// to this family (paper §3.2.1); the corner bound works for any
// ScoringFunction.
#ifndef PRJ_CORE_SCORING_H_
#define PRJ_CORE_SCORING_H_

#include <vector>

#include "access/relation.h"
#include "common/vec.h"

namespace prj {

/// Identifies the concrete scoring family; bounding schemes that require a
/// specific family check this tag instead of dynamic_cast.
enum class ScoringKind { kSumLogEuclidean, kOther };

class ScoringFunction {
 public:
  virtual ~ScoringFunction() = default;

  virtual ScoringKind scoring_kind() const { return ScoringKind::kOther; }

  /// g_i: proximity weighted score of tuple i given its score and its
  /// (plain, non-squared) distances from the query and the centroid.
  virtual double ProximityWeightedScore(int i, double sigma, double dist_q,
                                        double dist_mu) const = 0;

  /// f: aggregate of the n proximity weighted scores.
  virtual double Aggregate(const std::vector<double>& s) const = 0;

  /// mu(tau): centroid of the member feature vectors.
  virtual Vec Centroid(const std::vector<const Vec*>& xs) const = 0;

  /// delta: the metric distance the g_i's expect. Euclidean by default.
  virtual double Distance(const Vec& a, const Vec& b) const {
    return a.Distance(b);
  }

  /// True when Distance() is the Euclidean metric; distance-based access
  /// sources stream in Euclidean order, so the engine rejects
  /// distance-access runs with non-Euclidean scorers.
  virtual bool euclidean_metric() const { return true; }

  /// Convenience: S(tau) for a full combination of tuple pointers.
  double CombinationScore(const Vec& q,
                          const std::vector<const Tuple*>& tuples) const;
};

/// The paper's eq. (2): f = sum, g_i = ws*ln(sigma) - wq*y^2 - wmu*z^2,
/// Euclidean distance, mean centroid.
class SumLogEuclideanScoring final : public ScoringFunction {
 public:
  SumLogEuclideanScoring(double ws, double wq, double wmu);

  ScoringKind scoring_kind() const override {
    return ScoringKind::kSumLogEuclidean;
  }
  double ProximityWeightedScore(int i, double sigma, double dist_q,
                                double dist_mu) const override;
  double Aggregate(const std::vector<double>& s) const override;
  Vec Centroid(const std::vector<const Vec*>& xs) const override;

  double ws() const { return ws_; }
  double wq() const { return wq_; }
  double wmu() const { return wmu_; }

 private:
  double ws_, wq_, wmu_;
};

/// Extension (paper §6 future work): proximity via cosine dissimilarity,
/// g_i = ws*ln(sigma) - wq*(1 - cos(x,q)) - wmu*(1 - cos(x, mu)), f = sum,
/// centroid = normalized mean direction. Supported by the corner bound
/// (and brute force); the tight bound is specific to eq. (2).
class SumLogCosineScoring final : public ScoringFunction {
 public:
  SumLogCosineScoring(double ws, double wq, double wmu, Vec query);

  double ProximityWeightedScore(int i, double sigma, double dist_q,
                                double dist_mu) const override;
  double Aggregate(const std::vector<double>& s) const override;
  Vec Centroid(const std::vector<const Vec*>& xs) const override;
  double Distance(const Vec& a, const Vec& b) const override {
    return CosineDissimilarity(a, b);
  }
  bool euclidean_metric() const override { return false; }

  /// Cosine dissimilarity in [0, 2]; vectors must be nonzero.
  static double CosineDissimilarity(const Vec& a, const Vec& b);

 private:
  double ws_, wq_, wmu_;
  Vec query_;
};

}  // namespace prj

#endif  // PRJ_CORE_SCORING_H_
