// The exact scatter-gather merge: the one reconstruction of the
// executor's result order from output tuples alone, shared by every layer
// that partitions a query across sub-executions and merges the per-part
// top-K lists (ShardedEngine's shard scatter, LiveEngine's base+delta
// merge).
//
// The executor's output order (score descending, ties by lexicographic
// member positions) is reconstructible from the output tuples because
// position order per relation IS access order: (distance to q asc, id
// asc) under distance access, (score desc, id asc) under score access --
// and because certification is strict (core/result_cursor.cc): an entire
// tie class is formed before any member is emitted, so the emitted tie
// order never depends on pull chronology. GatherBetter compares
// two combinations under exactly that order -- a strict total order
// whenever member ids are unique per relation across the merged parts --
// so a bounded K-heap of the union keeps the global top K independent of
// arrival order, and one final sort reproduces the unpartitioned answer
// bit for bit (the exactness argument in shard/sharded_engine.h; the
// property tests in tests/shard_test.cc and tests/live_test.cc hold both
// users to it).
#ifndef PRJ_CORE_GATHER_H_
#define PRJ_CORE_GATHER_H_

#include <vector>

#include "access/source.h"
#include "common/arena.h"
#include "common/vec.h"
#include "core/executor.h"

namespace prj {

/// One gathered combination plus its precomputed access keys: per relation
/// in join order, the key a member sorts by within its access stream --
/// squared distance to q under distance access (orders identically to
/// distance), negated score under score access; ties break by member id.
struct KeyedCombination {
  ResultCombination combo;
  std::vector<double> keys;  ///< ascending = earlier in access order
};

KeyedCombination MakeKeyed(ResultCombination combo, AccessKind kind,
                           const Vec& query);

/// The executor's result order over keyed combinations: score descending,
/// ties by the per-relation access keys in join order (id breaking key
/// ties). Strict and total whenever distinct combinations differ on some
/// (key, id) pair -- guaranteed when ids are unique per relation across
/// the merged parts.
bool GatherBetter(const KeyedCombination& a, const KeyedCombination& b);

/// Pruning test shared by the scatter layers: true when a part whose
/// admissible upper bound is `bound` cannot contribute to a result whose
/// K-th gathered score is `kth_score`. The comparison is widened by a
/// relative-absolute slack so floating-point rounding in the bound
/// computation (e.g. the sqrt/square round trip through MINDIST) can only
/// keep a prunable part, never prune a part whose best combination ties
/// the K-th score.
bool GatherPruned(double bound, double kth_score);

/// Bounded K-heap under GatherBetter: offers from any number of parts,
/// keeps the best `keep`, and finishes into the executor's order. Peak
/// memory is O(keep) regardless of how many parts feed it. Not
/// internally synchronized -- concurrent scatters guard it with their own
/// merge lock; when an arena is supplied, every touch of the heap
/// (including destruction) must honor the same discipline, since growth
/// allocates from it. A null arena falls back to the plain heap.
class GatherHeap {
 public:
  explicit GatherHeap(size_t keep, Arena* arena = nullptr)
      : keep_(keep), best_(ArenaAllocator<KeyedCombination>(arena)) {}

  void Offer(KeyedCombination kc);

  bool full() const { return best_.size() >= keep_ && keep_ > 0; }
  size_t size() const { return best_.size(); }
  /// Score of the worst kept combination -- the running K-th score the
  /// pruning test compares against. Only meaningful when full().
  double kth_score() const { return best_.front().combo.score; }

  /// Sorts the kept combinations into the executor's order and strips the
  /// keys. The heap is left empty.
  std::vector<ResultCombination> Finish();

 private:
  size_t keep_;
  /// Heap, worst at front; spine drawn from the scatter's arena lease so
  /// repeated queries stop paying malloc for the merge (the member
  /// payloads move through unchanged).
  std::vector<KeyedCombination, ArenaAllocator<KeyedCombination>> best_;
};

/// How one query's parts were visited; picks the wall-clock aggregation
/// rule (see AggregateShardStats).
enum class ScatterMode { kSequential, kParallel };

/// Accumulates one part's per-query stats into the scatter-gather
/// aggregate: counters sum; wall-clock fields SUM under
/// ScatterMode::kSequential (parts ran back to back -- the real latency)
/// and MAX under kParallel (the idealized makespan); final_bound and
/// data_epoch take the max, completed ANDs. `aggregate->depths` must
/// already be sized to the relation count. Exposed for the focused unit
/// test.
void AggregateShardStats(const ExecStats& shard, ScatterMode mode,
                         ExecStats* aggregate);

}  // namespace prj

#endif  // PRJ_CORE_GATHER_H_
