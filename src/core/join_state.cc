#include "core/join_state.h"

namespace prj {

JoinState::JoinState(Vec query, AccessKind kind,
                     const std::vector<std::unique_ptr<AccessSource>>& sources)
    : query_(std::move(query)), kind_(kind) {
  rels_.reserve(sources.size());
  for (const auto& s : sources) {
    RelationState rs;
    rs.name = s->name();
    rs.sigma_max = s->sigma_max();
    rels_.push_back(std::move(rs));
  }
}

void JoinState::Append(int i, Tuple tuple) {
  RelationState& rs = rels_[static_cast<size_t>(i)];
  PRJ_CHECK(!rs.exhausted);
  const double d = tuple.x.Distance(query_);
  if (kind_ == AccessKind::kDistance && !rs.seen.empty()) {
    PRJ_CHECK_GE(d + 1e-12, rs.dist_q.back())
        << "distance-based access must be non-decreasing in distance";
  }
  if (kind_ == AccessKind::kScore && !rs.seen.empty()) {
    PRJ_CHECK_LE(tuple.score, rs.seen.back().score + 1e-12)
        << "score-based access must be non-increasing in score";
  }
  rs.dist_q.push_back(d);
  rs.seen.push_back(std::move(tuple));
}

void JoinState::MarkExhausted(int i) {
  rels_[static_cast<size_t>(i)].exhausted = true;
}

bool JoinState::AllExhausted() const {
  for (const RelationState& rs : rels_) {
    if (!rs.exhausted) return false;
  }
  return true;
}

size_t JoinState::SumDepths() const {
  size_t total = 0;
  for (const RelationState& rs : rels_) total += rs.depth();
  return total;
}

}  // namespace prj
