// Output buffer O of Algorithm 1: retains the best K combinations seen so
// far under (score desc, lexicographic member positions asc) -- the
// deterministic tie-breaking criterion required by Definition 2.1.
#ifndef PRJ_CORE_TOPK_H_
#define PRJ_CORE_TOPK_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace prj {

/// A combination identified by the per-relation positions of its members
/// within the pulled prefixes P_i, plus its aggregate score.
struct Combination {
  std::vector<uint32_t> positions;  ///< positions[i] indexes P_i
  double score = 0.0;
};

/// Total order: higher score first; ties by lexicographically smaller
/// position vector (deterministic across runs).
bool CombinationBetter(const Combination& a, const Combination& b);

class TopKBuffer {
 public:
  explicit TopKBuffer(size_t k);

  size_t k() const { return k_; }
  size_t size() const { return entries_.size(); }
  bool full() const { return entries_.size() >= k_; }

  /// Inserts if the combination belongs in the top K. Returns true if kept.
  bool Offer(Combination combo);

  /// Score of the K-th best entry; -infinity while the buffer is not full.
  double KthScore() const;

  /// Entries in best-to-worst order.
  std::vector<Combination> SortedDescending() const;

 private:
  size_t k_;
  // Max-heap on "worst first" so the K-th best is at the root.
  std::vector<Combination> entries_;
};

}  // namespace prj

#endif  // PRJ_CORE_TOPK_H_
