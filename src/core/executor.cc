#include "core/executor.h"

#include <cmath>
#include <limits>
#include <string>

#include "common/timer.h"
#include "core/form_combinations.h"
#include "core/join_state.h"
#include "core/strategy.h"
#include "core/tight_bound.h"
#include "core/topk.h"

namespace prj {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Status ValidateOptions(const ProxRJOptions& options) {
  if (options.k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (options.bound_update_period < 1) {
    return Status::InvalidArgument("bound_update_period must be >= 1");
  }
  if (options.dominance_period < 0) {
    return Status::InvalidArgument("dominance_period must be >= 0");
  }
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  return Status::OK();
}

Status ValidateQueryPlan(const QueryPlan& plan) {
  if (plan.sources == nullptr || plan.scoring == nullptr ||
      plan.query == nullptr || plan.options == nullptr) {
    return Status::InvalidArgument("incomplete query plan");
  }
  PRJ_RETURN_IF_ERROR(ValidateOptions(*plan.options));
  const auto& sources = *plan.sources;
  const ProxRJOptions& options = *plan.options;
  if (sources.empty()) {
    return Status::InvalidArgument("need at least one input relation");
  }
  if (sources.size() > 20) {
    return Status::InvalidArgument("at most 20 input relations supported");
  }
  const AccessKind kind = sources[0]->kind();
  for (const auto& s : sources) {
    if (s->kind() != kind) {
      return Status::InvalidArgument(
          "all sources must share one access kind (Definition 2.1)");
    }
    if (s->dim() != plan.query->dim()) {
      return Status::InvalidArgument(
          "source '" + s->name() + "' has dim " + std::to_string(s->dim()) +
          " but the query has dim " + std::to_string(plan.query->dim()));
    }
    if (s->depth() != 0) {
      return Status::FailedPrecondition("source '" + s->name() +
                                        "' was already consumed");
    }
  }
  if (kind == AccessKind::kDistance && !plan.scoring->euclidean_metric()) {
    return Status::FailedPrecondition(
        "distance-based access streams in Euclidean order; use score-based "
        "access with non-Euclidean scorers");
  }
  if (options.bound == BoundKind::kTight &&
      plan.scoring->scoring_kind() != ScoringKind::kSumLogEuclidean) {
    return Status::Unimplemented(
        "the tight bound is specialized to SumLogEuclideanScoring "
        "(paper §3.2.1); use the corner bound for other scorers");
  }
  return Status::OK();
}

Result<std::vector<ResultCombination>> ExecuteQuery(const QueryPlan& plan,
                                                    ExecStats* stats) {
  ExecStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = ExecStats{};  // a fresh accounting per query (also on failure),
                         // so reuse cannot leak a previous query's numbers
  PRJ_RETURN_IF_ERROR(ValidateQueryPlan(plan));

  auto& sources = *plan.sources;
  const ScoringFunction& scoring = *plan.scoring;
  const ProxRJOptions& options = *plan.options;
  const int n = static_cast<int>(sources.size());
  const AccessKind kind = sources[0]->kind();
  JoinState state(*plan.query, kind, sources);

  std::unique_ptr<BoundingScheme> bound;
  if (options.bound == BoundKind::kCorner) {
    bound = std::make_unique<CornerBound>(&state, &scoring);
  } else if (kind == AccessKind::kDistance) {
    bound = std::make_unique<TightBoundDistance>(
        &state, static_cast<const SumLogEuclideanScoring*>(&scoring),
        options.dominance_period, options.bound_update_period,
        &stats->dominance_seconds, options.use_generic_qp);
  } else {
    bound = std::make_unique<TightBoundScore>(
        &state, static_cast<const SumLogEuclideanScoring*>(&scoring));
  }

  std::unique_ptr<PullingStrategy> strategy;
  if (options.pull == PullKind::kRoundRobin) {
    strategy = std::make_unique<RoundRobinStrategy>();
  } else {
    strategy = std::make_unique<PotentialAdaptiveStrategy>();
  }

  TopKBuffer buffer(static_cast<size_t>(options.k));
  WallTimer total_timer;
  uint64_t pulls = 0;
  stats->completed = true;
  double current_bound = kInf;

  for (;;) {
    if (buffer.full() && buffer.KthScore() >= current_bound - options.epsilon) {
      break;  // threshold termination (Algorithm 1 line 3)
    }
    if (std::isinf(current_bound) && current_bound < 0) {
      // No continuation can form a combination with an unseen tuple (e.g.,
      // an input turned out to be empty): the buffer can never grow.
      break;
    }
    if (options.max_pulls > 0 && pulls >= options.max_pulls) {
      stats->completed = false;
      break;
    }
    if (options.time_budget_seconds > 0 &&
        total_timer.ElapsedSeconds() > options.time_budget_seconds) {
      stats->completed = false;
      break;
    }
    const int i = strategy->ChooseInput(state, *bound);
    if (i < 0) break;  // every input exhausted: the buffer is the answer
    std::optional<Tuple> tuple = sources[static_cast<size_t>(i)]->Next();
    if (!tuple) {
      state.MarkExhausted(i);
      bound->OnExhausted(i);
      current_bound = bound->bound();
      continue;
    }
    ++pulls;
    state.Append(i, std::move(*tuple));
    stats->combinations_formed += internal::FormNewCombinations(
        state, scoring, i,
        [&buffer](Combination c) { buffer.Offer(std::move(c)); });
    {
      ScopedTimer timer(&stats->bound_seconds);
      bound->OnPull(i);
      current_bound = bound->bound();
    }
    if (options.trace) {
      options.trace->steps.push_back(TraceStep{
          i, state.rel(i).depth(), current_bound, buffer.KthScore(),
          stats->combinations_formed});
    }
  }

  stats->total_seconds = total_timer.ElapsedSeconds();
  stats->depths.resize(static_cast<size_t>(n));
  stats->sum_depths = 0;
  for (int i = 0; i < n; ++i) {
    // Report what the *service* delivered, not what the engine consumed --
    // they differ for paged sources, and the paper's sumDepths charges the
    // access, not the use.
    const size_t depth = sources[static_cast<size_t>(i)]->depth();
    stats->depths[static_cast<size_t>(i)] = depth;
    stats->sum_depths += depth;
  }
  stats->bound_stats = bound->stats();
  stats->final_bound = current_bound;

  std::vector<ResultCombination> results;
  for (const Combination& c : buffer.SortedDescending()) {
    ResultCombination rc;
    rc.score = c.score;
    rc.tuples.reserve(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      rc.tuples.push_back(
          state.rel(j).seen[c.positions[static_cast<size_t>(j)]]);
    }
    results.push_back(std::move(rc));
  }
  return results;
}

}  // namespace prj
