#include "core/executor.h"

#include <string>

#include "core/result_cursor.h"

namespace prj {

Status ValidateOptions(const ProxRJOptions& options) {
  if (options.k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (options.bound_update_period < 1) {
    return Status::InvalidArgument("bound_update_period must be >= 1");
  }
  if (options.dominance_period < 0) {
    return Status::InvalidArgument("dominance_period must be >= 0");
  }
  if (options.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  return Status::OK();
}

Status ValidateQueryPlan(const QueryPlan& plan) {
  if (plan.sources == nullptr || plan.scoring == nullptr ||
      plan.query == nullptr || plan.options == nullptr) {
    return Status::InvalidArgument("incomplete query plan");
  }
  PRJ_RETURN_IF_ERROR(ValidateOptions(*plan.options));
  const auto& sources = *plan.sources;
  const ProxRJOptions& options = *plan.options;
  if (sources.empty()) {
    return Status::InvalidArgument("need at least one input relation");
  }
  if (sources.size() > 20) {
    return Status::InvalidArgument("at most 20 input relations supported");
  }
  const AccessKind kind = sources[0]->kind();
  for (const auto& s : sources) {
    if (s->kind() != kind) {
      return Status::InvalidArgument(
          "all sources must share one access kind (Definition 2.1)");
    }
    if (s->dim() != plan.query->dim()) {
      return Status::InvalidArgument(
          "source '" + s->name() + "' has dim " + std::to_string(s->dim()) +
          " but the query has dim " + std::to_string(plan.query->dim()));
    }
    if (s->depth() != 0) {
      return Status::FailedPrecondition("source '" + s->name() +
                                        "' was already consumed");
    }
  }
  if (kind == AccessKind::kDistance && !plan.scoring->euclidean_metric()) {
    return Status::FailedPrecondition(
        "distance-based access streams in Euclidean order; use score-based "
        "access with non-Euclidean scorers");
  }
  if (options.bound == BoundKind::kTight &&
      plan.scoring->scoring_kind() != ScoringKind::kSumLogEuclidean) {
    return Status::Unimplemented(
        "the tight bound is specialized to SumLogEuclideanScoring "
        "(paper §3.2.1); use the corner bound for other scorers");
  }
  return Status::OK();
}

Result<std::vector<ResultCombination>> ExecuteQuery(const QueryPlan& plan,
                                                    ExecStats* stats) {
  ExecStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = ExecStats{};  // a fresh accounting per query (also on failure),
                         // so reuse cannot leak a previous query's numbers

  // One-shot top-K is "open a cursor, drain K": the capped cursor runs
  // the identical Algorithm-1 trajectory (pull choice never depends on k)
  // and admits candidates through the same TopKBuffer(k), so this path
  // and incremental consumers of ExecutionCursor cannot drift.
  const size_t cap = plan.options != nullptr
                         ? static_cast<size_t>(plan.options->k)
                         : size_t{1};
  Result<std::unique_ptr<ExecutionCursor>> cursor =
      ExecutionCursor::Open(plan, cap);
  if (!cursor.ok()) return cursor.status();
  Result<std::vector<ResultCombination>> results =
      (*cursor)->NextBatch(cap);
  if (!results.ok()) return results.status();
  *stats = (*cursor)->stats();
  return results;
}

}  // namespace prj
