// Bounding schemes: upper bounds on the aggregate score of any combination
// that uses at least one unseen tuple (paper §3). The engine stops once the
// K-th buffered combination scores at least the bound.
//
// Two schemes are provided for each access kind:
//   * CornerBound      -- the HRJN-style bound (eq. (3)-(5) / (36)-(38));
//                         cheap but not tight, hence not instance-optimal
//                         (Theorems 3.1 / C.1).
//   * TightBound*      -- the paper's contribution (eq. (9) / (40));
//                         tight, hence instance-optimal with round-robin
//                         or potential-adaptive pulling.
//
// A scheme also exposes per-relation potentials pot_i = max{t_M : i not in M}
// (§3.3), which drive the potential-adaptive pulling strategy.
#ifndef PRJ_CORE_BOUNDS_H_
#define PRJ_CORE_BOUNDS_H_

#include <cstdint>

#include "core/join_state.h"
#include "core/scoring.h"

namespace prj {

struct BoundStats {
  uint64_t bound_updates = 0;   ///< calls to OnPull
  uint64_t qp_solves = 0;       ///< tight-bound optimization problems solved
  uint64_t lp_solves = 0;       ///< dominance feasibility LPs solved
  uint64_t partials_total = 0;  ///< partial combinations materialized
  uint64_t partials_dominated = 0;
};

class BoundingScheme {
 public:
  virtual ~BoundingScheme() = default;

  /// Notifies that a tuple was appended to P_i (JoinState already updated).
  virtual void OnPull(int i) = 0;
  /// Notifies that relation i is exhausted.
  virtual void OnExhausted(int i) = 0;

  /// Current upper bound t on unseen-using combinations.
  virtual double bound() const = 0;
  /// pot_i: bound over combinations needing an unseen tuple from R_i.
  virtual double Potential(int i) const = 0;

  virtual const BoundStats& stats() const = 0;
};

/// What a corner-style bound needs to know about a *region* of one
/// relation (a partition, a subtree, ...): a ceiling on member scores and
/// a floor on member distances to the query, in the scoring metric.
struct RelationEnvelope {
  double score_ceiling = 0.0;  ///< no member scores above this
  double min_dist_q = 0.0;     ///< no member is closer to q than this
};

/// Admissible upper bound on the aggregate score of ANY combination drawn
/// from regions described by `envelopes` (one per relation, join order):
/// each slot at its score ceiling, at its minimum query distance, at
/// centroid distance 0. The same corner construction as eq. (4) -- g_i is
/// non-decreasing in sigma and non-increasing in both distances, and f is
/// monotone, so no combination of the regions can score higher. The
/// sharded engine prunes shards whose bound over the partition MBRs
/// cannot beat the running K-th score (shard/sharded_engine.h).
double CornerUpperBound(const ScoringFunction& scoring,
                        const std::vector<RelationEnvelope>& envelopes);

/// HRJN's corner bound; works with any ScoringFunction and both access
/// kinds. CBRR/CBPA of the paper == HRJN/HRJN* with this scheme.
class CornerBound : public BoundingScheme {
 public:
  CornerBound(const JoinState* state, const ScoringFunction* scoring);

  void OnPull(int i) override;
  void OnExhausted(int /*i*/) override {}
  double bound() const override;
  double Potential(int i) const override;
  const BoundStats& stats() const override { return stats_; }

 private:
  // t_i of eq. (3) / (36): every slot j != i at its best-possible weighted
  // score, slot i at the best an *unseen* tuple of R_i can reach.
  double CornerTerm(int i) const;

  const JoinState* state_;
  const ScoringFunction* scoring_;
  BoundStats stats_;
};

}  // namespace prj

#endif  // PRJ_CORE_BOUNDS_H_
