#include "core/strategy.h"

#include <limits>

namespace prj {

int RoundRobinStrategy::ChooseInput(const JoinState& state,
                                    const BoundingScheme& /*bound*/) {
  const int n = state.n();
  for (int step = 0; step < n; ++step) {
    const int i = (next_ + step) % n;
    if (!state.rel(i).exhausted) {
      next_ = (i + 1) % n;
      return i;
    }
  }
  return -1;
}

int PotentialAdaptiveStrategy::ChooseInput(const JoinState& state,
                                           const BoundingScheme& bound) {
  const int n = state.n();
  int best = -1;
  double best_pot = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    if (state.rel(i).exhausted) continue;
    const double pot = bound.Potential(i);
    bool better;
    if (best < 0) {
      better = true;
    } else if (pot != best_pot) {
      better = pot > best_pot;
    } else if (state.rel(i).depth() != state.rel(best).depth()) {
      better = state.rel(i).depth() < state.rel(best).depth();
    } else {
      better = false;  // equal depth: keep the least index (i > best)
    }
    if (better) {
      best = i;
      best_pot = pot;
    }
  }
  return best;
}

}  // namespace prj
