// Optional per-pull execution trace: which relation was pulled, the bound
// and buffer state after the pull. Used to study bound convergence (the
// mechanism behind the sumDepths differences in Figure 3) and by property
// tests that assert trajectory invariants (the upper bound never rises,
// the k-th buffered score never falls).
#ifndef PRJ_CORE_TRACE_H_
#define PRJ_CORE_TRACE_H_

#include <cstdint>
#include <vector>

namespace prj {

struct TraceStep {
  int relation = -1;        ///< input pulled at this step
  size_t depth = 0;         ///< depth of that relation after the pull
  double bound = 0.0;       ///< t after updateBound
  double kth_score = 0.0;   ///< K-th best buffered score (-inf if < K)
  uint64_t combinations_formed = 0;  ///< cumulative
};

struct ExecTrace {
  std::vector<TraceStep> steps;

  void Clear() { steps.clear(); }
  size_t size() const { return steps.size(); }
};

}  // namespace prj

#endif  // PRJ_CORE_TRACE_H_
