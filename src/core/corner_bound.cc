#include "core/bounds.h"

#include <limits>

namespace prj {

double CornerUpperBound(const ScoringFunction& scoring,
                        const std::vector<RelationEnvelope>& envelopes) {
  std::vector<double> s;
  s.reserve(envelopes.size());
  for (size_t j = 0; j < envelopes.size(); ++j) {
    s.push_back(scoring.ProximityWeightedScore(
        static_cast<int>(j), envelopes[j].score_ceiling,
        envelopes[j].min_dist_q, 0.0));
  }
  return scoring.Aggregate(s);
}

CornerBound::CornerBound(const JoinState* state, const ScoringFunction* scoring)
    : state_(state), scoring_(scoring) {}

void CornerBound::OnPull(int /*i*/) { ++stats_.bound_updates; }

double CornerBound::CornerTerm(int i) const {
  const int n = state_->n();
  std::vector<double> s(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    const RelationState& rs = state_->rel(j);
    if (state_->kind() == AccessKind::kDistance) {
      if (j == i) {
        // Best unseen tuple of R_i: max score, at the access frontier,
        // centroid distance 0 (eq. (5)).
        s[static_cast<size_t>(j)] = scoring_->ProximityWeightedScore(
            j, rs.sigma_max, rs.last_dist(), 0.0);
      } else {
        // Best conceivable tuple of R_j: max score, as close to the query
        // as the first retrieved tuple, centroid distance 0 (eq. (4)).
        s[static_cast<size_t>(j)] = scoring_->ProximityWeightedScore(
            j, rs.sigma_max, rs.first_dist(), 0.0);
      }
    } else {
      if (j == i) {
        // Best unseen tuple of R_i: frontier score, both distances 0
        // (eq. (38)).
        s[static_cast<size_t>(j)] = scoring_->ProximityWeightedScore(
            j, rs.last_score(), 0.0, 0.0);
      } else {
        s[static_cast<size_t>(j)] = scoring_->ProximityWeightedScore(
            j, rs.first_score(), 0.0, 0.0);
      }
    }
  }
  return scoring_->Aggregate(s);
}

double CornerBound::bound() const {
  double t = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < state_->n(); ++i) {
    t = std::max(t, Potential(i));
  }
  return t;
}

double CornerBound::Potential(int i) const {
  if (state_->rel(i).exhausted) {
    return -std::numeric_limits<double>::infinity();
  }
  return CornerTerm(i);
}

}  // namespace prj
