#include "core/engine.h"

#include <cmath>
#include <limits>

#include "common/timer.h"
#include "core/join_state.h"
#include "core/strategy.h"
#include "core/tight_bound.h"
#include "core/topk.h"

#include "core/form_combinations.h"

namespace prj {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ProxRJ::ProxRJ(std::vector<std::unique_ptr<AccessSource>> sources,
               const ScoringFunction* scoring, Vec query,
               ProxRJOptions options)
    : sources_(std::move(sources)),
      scoring_(scoring),
      query_(std::move(query)),
      options_(options) {}

ProxRJ::~ProxRJ() = default;

Status ProxRJ::Validate() const {
  if (sources_.empty()) {
    return Status::InvalidArgument("need at least one input relation");
  }
  if (sources_.size() > 20) {
    return Status::InvalidArgument("at most 20 input relations supported");
  }
  if (options_.k < 1) {
    return Status::InvalidArgument("k must be at least 1");
  }
  if (options_.bound_update_period < 1) {
    return Status::InvalidArgument("bound_update_period must be >= 1");
  }
  if (options_.dominance_period < 0) {
    return Status::InvalidArgument("dominance_period must be >= 0");
  }
  if (options_.epsilon < 0) {
    return Status::InvalidArgument("epsilon must be >= 0");
  }
  const AccessKind kind = sources_[0]->kind();
  for (const auto& s : sources_) {
    if (s->kind() != kind) {
      return Status::InvalidArgument(
          "all sources must share one access kind (Definition 2.1)");
    }
    if (s->dim() != query_.dim()) {
      return Status::InvalidArgument(
          "source '" + s->name() + "' has dim " + std::to_string(s->dim()) +
          " but the query has dim " + std::to_string(query_.dim()));
    }
    if (s->depth() != 0) {
      return Status::FailedPrecondition("source '" + s->name() +
                                        "' was already consumed");
    }
  }
  if (kind == AccessKind::kDistance && !scoring_->euclidean_metric()) {
    return Status::FailedPrecondition(
        "distance-based access streams in Euclidean order; use score-based "
        "access with non-Euclidean scorers");
  }
  if (options_.bound == BoundKind::kTight &&
      scoring_->scoring_kind() != ScoringKind::kSumLogEuclidean) {
    return Status::Unimplemented(
        "the tight bound is specialized to SumLogEuclideanScoring "
        "(paper §3.2.1); use the corner bound for other scorers");
  }
  return Status::OK();
}

Result<std::vector<ResultCombination>> ProxRJ::Run() {
  if (ran_) {
    return Status::FailedPrecondition("ProxRJ::Run may be called only once");
  }
  ran_ = true;
  PRJ_RETURN_IF_ERROR(Validate());

  const int n = static_cast<int>(sources_.size());
  const AccessKind kind = sources_[0]->kind();
  JoinState state(query_, kind, sources_);

  std::unique_ptr<BoundingScheme> bound;
  if (options_.bound == BoundKind::kCorner) {
    bound = std::make_unique<CornerBound>(&state, scoring_);
  } else if (kind == AccessKind::kDistance) {
    bound = std::make_unique<TightBoundDistance>(
        &state, static_cast<const SumLogEuclideanScoring*>(scoring_),
        options_.dominance_period, options_.bound_update_period,
        &stats_.dominance_seconds, options_.use_generic_qp);
  } else {
    bound = std::make_unique<TightBoundScore>(
        &state, static_cast<const SumLogEuclideanScoring*>(scoring_));
  }

  std::unique_ptr<PullingStrategy> strategy;
  if (options_.pull == PullKind::kRoundRobin) {
    strategy = std::make_unique<RoundRobinStrategy>();
  } else {
    strategy = std::make_unique<PotentialAdaptiveStrategy>();
  }

  TopKBuffer buffer(static_cast<size_t>(options_.k));
  WallTimer total_timer;
  uint64_t pulls = 0;
  stats_.completed = true;
  double current_bound = kInf;

  for (;;) {
    if (buffer.full() && buffer.KthScore() >= current_bound - options_.epsilon) {
      break;  // threshold termination (Algorithm 1 line 3)
    }
    if (std::isinf(current_bound) && current_bound < 0) {
      // No continuation can form a combination with an unseen tuple (e.g.,
      // an input turned out to be empty): the buffer can never grow.
      break;
    }
    if (options_.max_pulls > 0 && pulls >= options_.max_pulls) {
      stats_.completed = false;
      break;
    }
    if (options_.time_budget_seconds > 0 &&
        total_timer.ElapsedSeconds() > options_.time_budget_seconds) {
      stats_.completed = false;
      break;
    }
    const int i = strategy->ChooseInput(state, *bound);
    if (i < 0) break;  // every input exhausted: the buffer is the answer
    std::optional<Tuple> tuple = sources_[static_cast<size_t>(i)]->Next();
    if (!tuple) {
      state.MarkExhausted(i);
      bound->OnExhausted(i);
      current_bound = bound->bound();
      continue;
    }
    ++pulls;
    state.Append(i, std::move(*tuple));
    stats_.combinations_formed += internal::FormNewCombinations(
        state, *scoring_, i,
        [&buffer](Combination c) { buffer.Offer(std::move(c)); });
    {
      ScopedTimer timer(&stats_.bound_seconds);
      bound->OnPull(i);
      current_bound = bound->bound();
    }
    if (options_.trace) {
      options_.trace->steps.push_back(TraceStep{
          i, state.rel(i).depth(), current_bound, buffer.KthScore(),
          stats_.combinations_formed});
    }
  }

  stats_.total_seconds = total_timer.ElapsedSeconds();
  stats_.depths.resize(static_cast<size_t>(n));
  stats_.sum_depths = 0;
  for (int i = 0; i < n; ++i) {
    // Report what the *service* delivered, not what the engine consumed --
    // they differ for paged sources, and the paper's sumDepths charges the
    // access, not the use.
    const size_t depth = sources_[static_cast<size_t>(i)]->depth();
    stats_.depths[static_cast<size_t>(i)] = depth;
    stats_.sum_depths += depth;
  }
  stats_.bound_stats = bound->stats();
  stats_.final_bound = current_bound;

  std::vector<ResultCombination> results;
  for (const Combination& c : buffer.SortedDescending()) {
    ResultCombination rc;
    rc.score = c.score;
    rc.tuples.reserve(static_cast<size_t>(n));
    for (int j = 0; j < n; ++j) {
      rc.tuples.push_back(
          state.rel(j).seen[c.positions[static_cast<size_t>(j)]]);
    }
    results.push_back(std::move(rc));
  }
  return results;
}

Result<std::vector<ResultCombination>> RunProxRJ(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction& scoring, const Vec& query,
    const ProxRJOptions& options, ExecStats* stats_out) {
  for (const Relation& r : relations) {
    PRJ_RETURN_IF_ERROR(r.Validate());
    if (r.dim() != query.dim()) {
      return Status::InvalidArgument(
          "relation '" + r.name() + "' has dim " + std::to_string(r.dim()) +
          " but the query has dim " + std::to_string(query.dim()));
    }
  }
  ProxRJ op(MakeSources(relations, kind, query), &scoring, query, options);
  auto result = op.Run();
  if (stats_out) *stats_out = op.stats();
  return result;
}

}  // namespace prj
