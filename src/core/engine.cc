#include "core/engine.h"

#include <utility>

#include "core/executor.h"
#include "core/result_cursor.h"

namespace prj {
namespace {

/// The self-contained cursor Engine::OpenCursor returns: the per-query
/// sources, their arena lease, and copies of the query/options travel
/// with the ExecutionCursor so it stays valid until destroyed. Member
/// order is destruction order in reverse: the exec cursor goes first,
/// then the sources, and the lease (whose arena backs the sources'
/// browse frontiers) last.
struct EngineCursor : public ResultCursor {
  EngineCursor(ArenaPool::Lease arena_lease, Vec query_point,
               ProxRJOptions run_options)
      : lease(std::move(arena_lease)),
        query(std::move(query_point)),
        options(run_options) {}

  Result<std::optional<ResultCombination>> Next() override {
    return exec->Next();
  }
  ExecStats stats() const override { return exec->stats(); }
  uint64_t emitted() const override { return exec->emitted(); }

  ArenaPool::Lease lease;
  Vec query;
  ProxRJOptions options;
  std::vector<std::unique_ptr<AccessSource>> sources;
  std::unique_ptr<ExecutionCursor> exec;
};

// Shared by RunProxRJ and Engine::Create: structural soundness of each
// relation plus agreement with one expected dimension (the query's or the
// first relation's -- `dim_holder` names it in the error message).
Status ValidateRelations(const std::vector<Relation>& relations, int dim,
                         const std::string& dim_holder) {
  for (const Relation& r : relations) {
    PRJ_RETURN_IF_ERROR(r.Validate());
    if (r.dim() != dim) {
      return Status::InvalidArgument(
          "relation '" + r.name() + "' has dim " + std::to_string(r.dim()) +
          " but " + dim_holder + " has dim " + std::to_string(dim));
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateEngineInputs(const std::vector<Relation>& relations,
                            AccessKind kind, const ScoringFunction* scoring) {
  if (scoring == nullptr) {
    return Status::InvalidArgument("scoring function must not be null");
  }
  if (relations.empty()) {
    return Status::InvalidArgument("need at least one input relation");
  }
  if (relations.size() > 20) {
    return Status::InvalidArgument("at most 20 input relations supported");
  }
  PRJ_RETURN_IF_ERROR(ValidateRelations(
      relations, relations.front().dim(),
      "relation '" + relations.front().name() + "'"));
  if (kind == AccessKind::kDistance && !scoring->euclidean_metric()) {
    return Status::FailedPrecondition(
        "distance-based access streams in Euclidean order; use score-based "
        "access with non-Euclidean scorers");
  }
  return Status::OK();
}

ProxRJ::ProxRJ(std::vector<std::unique_ptr<AccessSource>> sources,
               const ScoringFunction* scoring, Vec query,
               ProxRJOptions options)
    : sources_(std::move(sources)),
      scoring_(scoring),
      query_(std::move(query)),
      options_(options) {}

ProxRJ::~ProxRJ() = default;

Result<std::vector<ResultCombination>> ProxRJ::Run() {
  if (ran_) {
    return Status::FailedPrecondition("ProxRJ::Run may be called only once");
  }
  ran_ = true;
  QueryPlan plan;
  plan.sources = &sources_;
  plan.scoring = scoring_;
  plan.query = &query_;
  plan.options = &options_;
  return ExecuteQuery(plan, &stats_);
}

Result<std::vector<ResultCombination>> RunProxRJ(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction& scoring, const Vec& query,
    const ProxRJOptions& options, ExecStats* stats_out) {
  PRJ_RETURN_IF_ERROR(ValidateRelations(relations, query.dim(), "the query"));
  ProxRJ op(MakeSources(relations, kind, query,
                        options.backend == SourceBackend::kRTree),
            &scoring, query, options);
  auto result = op.Run();
  if (stats_out) *stats_out = op.stats();
  return result;
}

Engine::Engine(AccessKind kind, const ScoringFunction* scoring,
               Options options, int dim)
    : kind_(kind),
      scoring_(scoring),
      options_(options),
      dim_(dim),
      arena_pool_(std::make_unique<ArenaPool>()) {}

Result<Engine> Engine::Create(const std::vector<Relation>& relations,
                              AccessKind kind, const ScoringFunction* scoring,
                              Options options) {
  PRJ_RETURN_IF_ERROR(ValidateEngineInputs(relations, kind, scoring));
  const int dim = relations.front().dim();
  const bool use_rtree =
      kind == AccessKind::kDistance && options.backend == SourceBackend::kRTree;
  Engine engine(kind, scoring, options, dim);
  if (use_rtree) {
    engine.indexes_.reserve(relations.size());
    for (const Relation& r : relations) {
      engine.indexes_.push_back(IndexedRelation::Build(r));
    }
  } else {
    engine.snapshots_.reserve(relations.size());
    for (const Relation& r : relations) {
      engine.snapshots_.push_back(RelationSnapshot::Build(r));
    }
  }
  return engine;
}

Result<Engine> Engine::FromCatalog(
    AccessKind kind, const ScoringFunction* scoring, Options options,
    std::vector<std::shared_ptr<const IndexedRelation>> indexes,
    std::vector<std::shared_ptr<const RelationSnapshot>> snapshots) {
  if (scoring == nullptr) {
    return Status::InvalidArgument("scoring function must not be null");
  }
  if (indexes.empty() == snapshots.empty()) {
    return Status::InvalidArgument(
        "exactly one of indexes/snapshots must be non-empty");
  }
  const bool want_indexes =
      kind == AccessKind::kDistance && options.backend == SourceBackend::kRTree;
  if (want_indexes != !indexes.empty()) {
    return Status::InvalidArgument(
        "catalog type does not match the (kind, backend) pair: the R-tree "
        "distance backend needs indexes, every other path needs snapshots");
  }
  if (kind == AccessKind::kDistance && !scoring->euclidean_metric()) {
    return Status::FailedPrecondition(
        "distance-based access streams in Euclidean order; use score-based "
        "access with non-Euclidean scorers");
  }
  const size_t n = indexes.empty() ? snapshots.size() : indexes.size();
  if (n > 20) {
    return Status::InvalidArgument("at most 20 input relations supported");
  }
  const int dim = indexes.empty() ? snapshots.front()->dim()
                                  : indexes.front()->dim();
  for (const auto& index : indexes) {
    if (index == nullptr || index->dim() != dim) {
      return Status::InvalidArgument("catalog entries must agree on one dim");
    }
  }
  for (const auto& snap : snapshots) {
    if (snap == nullptr || snap->dim() != dim) {
      return Status::InvalidArgument("catalog entries must agree on one dim");
    }
  }
  Engine engine(kind, scoring, options, dim);
  engine.indexes_ = std::move(indexes);
  engine.snapshots_ = std::move(snapshots);
  return engine;
}

std::vector<std::unique_ptr<AccessSource>> Engine::MakeQuerySources(
    const Vec& query, Arena* arena) const {
  std::vector<std::unique_ptr<AccessSource>> sources;
  sources.reserve(num_relations());
  if (kind_ == AccessKind::kScore) {
    for (const auto& snap : snapshots_) {
      sources.push_back(std::make_unique<SharedSnapshotScoreSource>(snap));
    }
  } else if (!indexes_.empty()) {
    for (const auto& index : indexes_) {
      sources.push_back(
          std::make_unique<SharedIndexDistanceSource>(index, query, arena));
    }
  } else {
    for (const auto& snap : snapshots_) {
      sources.push_back(
          std::make_unique<SharedSnapshotDistanceSource>(snap, query));
    }
  }
  if (options_.block_size > 0) {
    for (auto& source : sources) {
      source = std::make_unique<BlockedSource>(std::move(source),
                                               options_.block_size);
    }
  }
  return sources;
}

Result<std::vector<ResultCombination>> Engine::TopK(
    const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  // A fresh accounting on every path, including failures, so a caller
  // reusing one ExecStats across a loop can never read stale numbers.
  if (stats_out) *stats_out = ExecStats{};
  // Reject bad requests before paying for per-query source construction
  // (the presorted distance backend sorts O(N log N) per relation).
  PRJ_RETURN_IF_ERROR(ValidateOptions(options));
  if (query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(query.dim()));
  }
  // The lease outlives `sources`: every browse frontier this query builds
  // lives in the leased arena, which is reset and returned to the pool
  // only after the sources are gone. A sequential query loop therefore
  // reuses one warmed arena forever; concurrent queries lease distinct
  // arenas and never share frontier memory.
  ArenaPool::Lease lease = arena_pool_->Acquire();
  auto sources = MakeQuerySources(query, lease.arena());
  QueryPlan plan;
  plan.sources = &sources;
  plan.scoring = scoring_;
  plan.query = &query;
  plan.options = &options;
  return ExecuteQuery(plan, stats_out);
}

std::vector<RelationStats> Engine::relation_stats() const {
  std::vector<RelationStats> stats;
  stats.reserve(num_relations());
  for (const auto& index : indexes_) stats.push_back(index->stats());
  for (const auto& snap : snapshots_) stats.push_back(snap->stats());
  return stats;
}

Result<std::unique_ptr<ResultCursor>> Engine::OpenCursor(
    const QueryRequest& request) const {
  PRJ_RETURN_IF_ERROR(ValidateOptions(request.options));
  if (request.query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(request.query.dim()));
  }
  auto cursor = std::make_unique<EngineCursor>(
      arena_pool_->Acquire(), request.query, request.options);
  cursor->sources = MakeQuerySources(cursor->query, cursor->lease.arena());
  QueryPlan plan;
  plan.sources = &cursor->sources;
  plan.scoring = scoring_;
  plan.query = &cursor->query;
  plan.options = &cursor->options;
  // Uncapped: the cursor may enumerate past options.k (paging), so every
  // formed candidate is retained until emitted.
  Result<std::unique_ptr<ExecutionCursor>> exec =
      ExecutionCursor::Open(plan, /*retain_cap=*/0);
  if (!exec.ok()) return exec.status();
  cursor->exec = std::move(exec).value();
  return std::unique_ptr<ResultCursor>(std::move(cursor));
}

}  // namespace prj
