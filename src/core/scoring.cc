#include "core/scoring.h"

#include <cmath>

namespace prj {

double ScoringFunction::CombinationScore(
    const Vec& q, const std::vector<const Tuple*>& tuples) const {
  const int n = static_cast<int>(tuples.size());
  PRJ_CHECK_GE(n, 1);
  std::vector<const Vec*> xs;
  xs.reserve(tuples.size());
  for (const Tuple* t : tuples) xs.push_back(&t->x);
  const Vec mu = Centroid(xs);
  std::vector<double> s(tuples.size());
  for (int i = 0; i < n; ++i) {
    const Tuple& t = *tuples[static_cast<size_t>(i)];
    s[static_cast<size_t>(i)] = ProximityWeightedScore(
        i, t.score, Distance(t.x, q), Distance(t.x, mu));
  }
  return Aggregate(s);
}

SumLogEuclideanScoring::SumLogEuclideanScoring(double ws, double wq, double wmu)
    : ws_(ws), wq_(wq), wmu_(wmu) {
  PRJ_CHECK_GE(ws, 0.0);
  PRJ_CHECK_GE(wq, 0.0);
  PRJ_CHECK_GE(wmu, 0.0);
}

double SumLogEuclideanScoring::ProximityWeightedScore(int /*i*/, double sigma,
                                                      double dist_q,
                                                      double dist_mu) const {
  PRJ_DCHECK(sigma > 0.0) << "log-scoring needs positive scores";
  return ws_ * std::log(sigma) - wq_ * dist_q * dist_q -
         wmu_ * dist_mu * dist_mu;
}

double SumLogEuclideanScoring::Aggregate(const std::vector<double>& s) const {
  double acc = 0.0;
  for (double v : s) acc += v;
  return acc;
}

Vec SumLogEuclideanScoring::Centroid(const std::vector<const Vec*>& xs) const {
  PRJ_CHECK(!xs.empty());
  Vec acc(xs[0]->dim());
  for (const Vec* x : xs) acc += *x;
  return acc / static_cast<double>(xs.size());
}

SumLogCosineScoring::SumLogCosineScoring(double ws, double wq, double wmu,
                                         Vec query)
    : ws_(ws), wq_(wq), wmu_(wmu), query_(std::move(query)) {
  PRJ_CHECK_GE(ws, 0.0);
  PRJ_CHECK_GE(wq, 0.0);
  PRJ_CHECK_GE(wmu, 0.0);
}

double SumLogCosineScoring::CosineDissimilarity(const Vec& a, const Vec& b) {
  const double na = a.Norm();
  const double nb = b.Norm();
  PRJ_CHECK(na > 0.0 && nb > 0.0) << "cosine needs nonzero vectors";
  double cos = a.Dot(b) / (na * nb);
  if (cos > 1.0) cos = 1.0;
  if (cos < -1.0) cos = -1.0;
  return 1.0 - cos;
}

double SumLogCosineScoring::ProximityWeightedScore(int /*i*/, double sigma,
                                                   double dist_q,
                                                   double dist_mu) const {
  PRJ_DCHECK(sigma > 0.0);
  return ws_ * std::log(sigma) - wq_ * dist_q - wmu_ * dist_mu;
}

double SumLogCosineScoring::Aggregate(const std::vector<double>& s) const {
  double acc = 0.0;
  for (double v : s) acc += v;
  return acc;
}

Vec SumLogCosineScoring::Centroid(const std::vector<const Vec*>& xs) const {
  PRJ_CHECK(!xs.empty());
  Vec acc(xs[0]->dim());
  for (const Vec* x : xs) acc += x->Normalized();
  const double norm = acc.Norm();
  // Degenerate case (directions cancel): fall back to the first member's
  // direction so the centroid stays well defined.
  if (norm < 1e-12) return xs[0]->Normalized();
  return acc / norm;
}

}  // namespace prj
