// The stateless query executor behind every ProxRJ entry point.
//
// ExecuteQuery runs Algorithm 1 over a QueryPlan -- a borrowed set of
// freshly positioned access sources plus a scoring function, query point
// and options. It owns no state between calls: the single-shot ProxRJ
// operator, the RunProxRJ convenience wrapper and the reusable Engine all
// delegate here, so the run loop exists exactly once.
//
// This header also defines the plan-level vocabulary types (options,
// statistics, result combinations, algorithm presets) that those front
// ends share.
#ifndef PRJ_CORE_EXECUTOR_H_
#define PRJ_CORE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/bounds.h"
#include "core/scoring.h"
#include "core/trace.h"

namespace prj {

enum class BoundKind { kCorner, kTight };
enum class PullKind { kRoundRobin, kPotentialAdaptive };

/// Which concrete access-path implementation backs distance-based access:
/// a presorted snapshot of the relation, or an R-tree answering
/// nearest-first through incremental distance browsing. Both deliver the
/// identical stream (tested); score-based access ignores the choice.
enum class SourceBackend { kPresorted, kRTree };

/// Named presets for the four algorithms of the experimental study.
struct AlgorithmPreset {
  const char* name;
  BoundKind bound;
  PullKind pull;
};
inline constexpr AlgorithmPreset kCBRR{"CBRR(HRJN)", BoundKind::kCorner,
                                       PullKind::kRoundRobin};
inline constexpr AlgorithmPreset kCBPA{"CBPA(HRJN*)", BoundKind::kCorner,
                                       PullKind::kPotentialAdaptive};
inline constexpr AlgorithmPreset kTBRR{"TBRR", BoundKind::kTight,
                                       PullKind::kRoundRobin};
inline constexpr AlgorithmPreset kTBPA{"TBPA", BoundKind::kTight,
                                       PullKind::kPotentialAdaptive};

struct ProxRJOptions {
  int k = 10;                       ///< number of result combinations K
  BoundKind bound = BoundKind::kTight;
  PullKind pull = PullKind::kPotentialAdaptive;

  /// Distance-access implementation used by RunProxRJ when it builds the
  /// sources itself (Engine has its own construction-time choice, and
  /// explicitly constructed sources are taken as given).
  SourceBackend backend = SourceBackend::kPresorted;

  /// Tight bound, distance access only: run the dominance LP sweep every
  /// `dominance_period` pulls; 0 disables dominance (paper Figure 3(m)/(n)).
  int dominance_period = 0;
  /// Tight bound, distance access only: refresh stale partial bounds every
  /// `bound_update_period` pulls (>= 1). 1 reproduces Algorithm 2; larger
  /// values trade extra I/O for less CPU (paper §4.2 remark).
  int bound_update_period = 1;
  /// Tight bound, distance access only: solve each t(tau) through the
  /// paper's explicit QP formulation (14)/(30) instead of the closed-form
  /// water-filling path. Identical results; matches the paper's
  /// off-the-shelf-solver CPU regime (used by the dominance ablations).
  bool use_generic_qp = false;

  /// Safety rails for benchmarking; 0 disables each. When tripped, the
  /// executor still returns the current buffer but ExecStats::completed is
  /// false (this is how the paper reports CBPA's DNF at n = 4).
  uint64_t max_pulls = 0;
  double time_budget_seconds = 0.0;

  /// Certification slack on the threshold test (floating-point guard):
  /// a result is emitted once its score exceeds the bound by more than
  /// this. The slack widens the comparison in the safe direction -- a
  /// bound that rounds low can only delay emission (extra pulls), never
  /// certify a result an unseen combination could still beat or tie.
  double epsilon = 1e-9;

  // Per-request execution hints, set by a planning layer
  // (plan/planned_engine.h). Like `backend` they can never change the
  // answer -- every plan is exact -- so the canonical request key
  // (core/query_engine.h) excludes them; engines without the hinted
  // machinery ignore them.

  /// Scatter-width hint for sharded execution: 0 keeps the engine's
  /// construction-time scatter configuration, 1 forces the sequential
  /// scatter, > 1 allows parallel scatter (capped by the engine's
  /// configured pool width -- hints never create threads).
  uint32_t scatter_hint = 0;
  /// Shard-pruning hint: 0 keeps the engine's configuration, > 0 forces
  /// corner-bound shard pruning on, < 0 forces it off.
  int8_t prune_hint = 0;

  /// When non-null, records one TraceStep per pull (not owned).
  ExecTrace* trace = nullptr;

  void Apply(const AlgorithmPreset& preset) {
    bound = preset.bound;
    pull = preset.pull;
  }
};

/// Cost accounting matching the paper's reporting: sumDepths, total CPU
/// time, and the fractions spent in updateBound and in dominance tests.
struct ExecStats {
  std::vector<size_t> depths;       ///< depth(A, I, i) per relation
  size_t sum_depths = 0;            ///< the sumDepths metric
  double total_seconds = 0.0;
  double bound_seconds = 0.0;       ///< time inside updateBound
  double dominance_seconds = 0.0;   ///< included in bound_seconds
  uint64_t combinations_formed = 0;
  BoundStats bound_stats;
  double final_bound = 0.0;
  bool completed = false;           ///< false if a safety rail tripped

  // Scatter-gather accounting, filled only by ShardedEngine (zero for
  // monolithic executions). On the sequential scatter path the wall-clock
  // fields above are SUMS across shards (the real single-thread latency);
  // on the parallel path they are MAXES (the makespan).
  uint32_t scatter_threads = 0;     ///< threads that scattered the shards:
                                    ///< 0 = plain sequential configuration,
                                    ///< 1 = parallel engine fell back inline
                                    ///< (adaptive scatter: too few shards
                                    ///< survived pruning to fan out),
                                    ///< >1 = parallel workers used
  uint64_t shards_pruned = 0;       ///< shards skipped by the corner bound
  double gather_seconds = 0.0;      ///< merging per-shard results

  // Live-data accounting, filled only by LiveEngine (live/live_engine.h);
  // zero for engines without a live layer.
  uint64_t data_epoch = 0;          ///< epoch of the snapshot this query saw
  uint64_t delta_tuples = 0;        ///< delta tuples live in that snapshot
  uint64_t delta_shards_pruned = 0; ///< delta shards the corner bound skipped

  // Cursor-cache accounting, filled only by cache/cursor_cache.h views
  // (zero elsewhere): how a paged request split between replaying an
  // already-materialized prefix and resuming the live enumeration.
  uint64_t cursor_partial_hits = 0; ///< results replayed from a cached prefix
  uint64_t cursor_resumes = 0;      ///< results computed by resuming the
                                    ///< shared enumeration past its prefix

  // Plan-selection accounting, filled only by PlannedEngine
  // (plan/planned_engine.h); empty/zero when no planner ran. Comparing
  // plan_cost_estimate against total_seconds after the fact is how
  // mispredictions are measured -- a wrong pick costs latency, never
  // correctness.
  std::string planned_backend;      ///< PlanSpec::name() of the chosen plan
  double plan_cost_estimate = 0.0;  ///< predicted seconds of the chosen plan
  uint32_t plan_alternatives_considered = 0;  ///< candidate plans scored
};

/// One result combination with materialized member tuples.
struct ResultCombination {
  double score = 0.0;
  std::vector<Tuple> tuples;  ///< one per relation, join order
};

/// Everything one query execution needs, borrowed from the caller: the
/// executor consumes `*sources` (pulls them to their final depths) but
/// owns nothing and keeps no state afterwards.
struct QueryPlan {
  std::vector<std::unique_ptr<AccessSource>>* sources = nullptr;
  const ScoringFunction* scoring = nullptr;
  const Vec* query = nullptr;
  const ProxRJOptions* options = nullptr;
};

/// Checks just the option ranges (k, periods, epsilon). Cheap; front ends
/// call it before paying for per-query source construction.
Status ValidateOptions(const ProxRJOptions& options);

/// Checks a plan's setup invariants (source presence and uniformity,
/// dimension agreement, fresh sources, option ranges, scorer/access-kind
/// compatibility) without consuming anything.
Status ValidateQueryPlan(const QueryPlan& plan);

/// Executes Algorithm 1 over the plan and returns the top-K combinations
/// in descending score order (fewer than K if the cross product is
/// smaller). Returns InvalidArgument/FailedPrecondition on bad setup.
///
/// `*stats` (when non-null) is reset to a fresh ExecStats first -- on
/// failures too -- so repeated executions, e.g. through a reusable Engine,
/// can never leak dominance_seconds, bound_stats or depths across queries.
Result<std::vector<ResultCombination>> ExecuteQuery(const QueryPlan& plan,
                                                    ExecStats* stats);

}  // namespace prj

#endif  // PRJ_CORE_EXECUTOR_H_
