// The stateless query executor behind every ProxRJ entry point.
//
// ExecuteQuery runs Algorithm 1 over a QueryPlan -- a borrowed set of
// freshly positioned access sources plus a scoring function, query point
// and options. It owns no state between calls: the single-shot ProxRJ
// operator, the RunProxRJ convenience wrapper and the reusable Engine all
// delegate here, so the run loop exists exactly once.
//
// This header also defines the plan-level vocabulary types (options,
// statistics, result combinations, algorithm presets) that those front
// ends share.
#ifndef PRJ_CORE_EXECUTOR_H_
#define PRJ_CORE_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/bounds.h"
#include "core/scoring.h"
#include "core/trace.h"

namespace prj {

enum class BoundKind { kCorner, kTight };
enum class PullKind { kRoundRobin, kPotentialAdaptive };

/// Which concrete access-path implementation backs distance-based access:
/// a presorted snapshot of the relation, or an R-tree answering
/// nearest-first through incremental distance browsing. Both deliver the
/// identical stream (tested); score-based access ignores the choice.
enum class SourceBackend { kPresorted, kRTree };

/// Named presets for the four algorithms of the experimental study.
struct AlgorithmPreset {
  const char* name;
  BoundKind bound;
  PullKind pull;
};
inline constexpr AlgorithmPreset kCBRR{"CBRR(HRJN)", BoundKind::kCorner,
                                       PullKind::kRoundRobin};
inline constexpr AlgorithmPreset kCBPA{"CBPA(HRJN*)", BoundKind::kCorner,
                                       PullKind::kPotentialAdaptive};
inline constexpr AlgorithmPreset kTBRR{"TBRR", BoundKind::kTight,
                                       PullKind::kRoundRobin};
inline constexpr AlgorithmPreset kTBPA{"TBPA", BoundKind::kTight,
                                       PullKind::kPotentialAdaptive};

// ---------------------------------------------------------------------
// The options field registry.
//
// Every ProxRJOptions field is declared through PRJ_OPTION_FIELDS, an
// X-macro that forces a classification choice per field:
//
//   KEY    -- the field can change what a query returns (or how far an
//             enumeration runs), so it participates in the canonical
//             request key (core/query_engine.h). Forgetting a KEY field
//             would make two different queries share one cache entry:
//             silent wrong answers from CachedEngine.
//   EXEMPT -- the field can never change the answer (execution hints,
//             backend choice among bit-identical access paths, trace
//             attachment), so the key deliberately excludes it: sharing
//             a cache entry across hint values is the point, not a
//             collision.
//
// The struct fields, the canonical key encoding (AppendCanonicalOptions
// in query_engine.cc), CanonicalOptionsEqual, and the exemption list
// below are all generated from this one list, and a static_assert
// (OptionsFieldsAllRegistered) proves the struct has no field the list
// missed -- adding an option without classifying it fails to compile
// (tests/compile_fail/options_unregistered_field.cc proves the check
// fires). Field semantics:
//
//   k                    number of result combinations K.
//   bound / pull         the algorithm axes of the experimental study
//                        (corner vs tight bound, round-robin vs
//                        potential-adaptive pulls); see the presets.
//   backend              distance-access implementation used by RunProxRJ
//                        when it builds the sources itself (Engine has its
//                        own construction-time choice). Both backends
//                        deliver the identical stream (tested): EXEMPT.
//   dominance_period     tight bound, distance access only: run the
//                        dominance LP sweep every N pulls; 0 disables
//                        (paper Figure 3(m)/(n)).
//   bound_update_period  tight bound, distance access only: refresh stale
//                        partial bounds every N pulls (>= 1). 1 reproduces
//                        Algorithm 2; larger trades I/O for CPU (paper
//                        section 4.2 remark).
//   use_generic_qp       solve each t(tau) through the paper's explicit QP
//                        formulation (14)/(30) instead of closed-form
//                        water-filling. Identical results, different CPU
//                        regime -- but KEY: it changes ExecStats timings a
//                        cached entry would replay.
//   max_pulls /          safety rails for benchmarking; 0 disables each.
//   time_budget_seconds  When tripped the executor still returns the
//                        current buffer with ExecStats::completed = false
//                        (how the paper reports CBPA's DNF at n = 4).
//   epsilon              certification slack on the threshold test
//                        (floating-point guard, widens the comparison in
//                        the safe direction).
//   scatter_hint         planner hint (plan/planned_engine.h): 0 keeps the
//                        engine's scatter configuration, 1 forces
//                        sequential, > 1 allows parallel scatter (capped
//                        by the engine's pool width). Picks among
//                        bit-identical plans: EXEMPT.
//   prune_hint           planner hint: 0 keeps the engine configuration,
//                        > 0 forces corner-bound shard pruning on, < 0
//                        forces it off. EXEMPT for the same reason.
//   trace                when non-null, records one TraceStep per pull
//                        (not owned). Observation only: EXEMPT.
// ---------------------------------------------------------------------
#define PRJ_OPTION_FIELDS(X)                                             \
  X(KEY, int, k, 10)                                                     \
  X(KEY, BoundKind, bound, BoundKind::kTight)                            \
  X(KEY, PullKind, pull, PullKind::kPotentialAdaptive)                   \
  X(EXEMPT, SourceBackend, backend, SourceBackend::kPresorted)           \
  X(KEY, int, dominance_period, 0)                                       \
  X(KEY, int, bound_update_period, 1)                                    \
  X(KEY, bool, use_generic_qp, false)                                    \
  X(KEY, uint64_t, max_pulls, 0)                                         \
  X(KEY, double, time_budget_seconds, 0.0)                               \
  X(KEY, double, epsilon, 1e-9)                                          \
  X(EXEMPT, uint32_t, scatter_hint, 0)                                   \
  X(EXEMPT, int8_t, prune_hint, 0)                                       \
  X(EXEMPT, ExecTrace*, trace, nullptr)

/// Expands one registry row into its member declaration. Stays defined
/// (not #undef'd) so the negative-compile test can build a rogue struct
/// from the same list.
#define PRJ_OPTION_DECLARE_FIELD(CLASS, TYPE, NAME, DEFAULT) \
  TYPE NAME = DEFAULT;

/// Number of rows in PRJ_OPTION_FIELDS.
#define PRJ_OPTION_COUNT_FIELD(CLASS, TYPE, NAME, DEFAULT) +1
inline constexpr size_t kProxRJOptionFieldCount =
    0 PRJ_OPTION_FIELDS(PRJ_OPTION_COUNT_FIELD);
#undef PRJ_OPTION_COUNT_FIELD

/// Names of the EXEMPT rows -- the explicit canonical-key exemption list,
/// generated so it can never drift from the registry (the key-audit tests
/// sweep it).
#define PRJ_OPTION_EXEMPT_NAME(CLASS, TYPE, NAME, DEFAULT) \
  PRJ_OPTION_EXEMPT_NAME_##CLASS(NAME)
#define PRJ_OPTION_EXEMPT_NAME_KEY(NAME)
#define PRJ_OPTION_EXEMPT_NAME_EXEMPT(NAME) #NAME,
inline constexpr const char* kCanonicalKeyExemptFields[] = {
    PRJ_OPTION_FIELDS(PRJ_OPTION_EXEMPT_NAME)};
#undef PRJ_OPTION_EXEMPT_NAME
#undef PRJ_OPTION_EXEMPT_NAME_KEY
#undef PRJ_OPTION_EXEMPT_NAME_EXEMPT

namespace internal {

/// Converts to any field type; only ever used unevaluated, to probe
/// aggregate initialization.
struct AnyOptionField {
  template <typename T>
  operator T() const;  // NOLINT(google-explicit-constructor)
};

/// Counts the fields of aggregate T by probing how many initializers
/// T{...} accepts: braced init with N+1 convert-to-anything arguments is
/// well-formed exactly while N+1 <= field count.
template <typename T, typename... Probe>
constexpr size_t AggregateFieldCount() {
  if constexpr (requires { T{Probe{}..., AnyOptionField{}}; }) {
    return AggregateFieldCount<T, Probe..., AnyOptionField>();
  } else {
    return sizeof...(Probe);
  }
}

}  // namespace internal

/// True iff every field of T appears in PRJ_OPTION_FIELDS. Asserted over
/// ProxRJOptions below: a field added to the struct without a registry row
/// (KEY or EXEMPT) fails this at compile time, replacing the old
/// sizeof-based layout tripwire with a check that counts fields exactly
/// and cannot be silenced by padding.
template <typename T>
constexpr bool OptionsFieldsAllRegistered() {
  return internal::AggregateFieldCount<T>() == kProxRJOptionFieldCount;
}

struct ProxRJOptions {
  PRJ_OPTION_FIELDS(PRJ_OPTION_DECLARE_FIELD)

  void Apply(const AlgorithmPreset& preset) {
    bound = preset.bound;
    pull = preset.pull;
  }
};

static_assert(
    OptionsFieldsAllRegistered<ProxRJOptions>(),
    "ProxRJOptions field is not registered in PRJ_OPTION_FIELDS: classify "
    "it KEY (participates in CanonicalRequestKey) or EXEMPT (cannot change "
    "the answer)");

/// Cost accounting matching the paper's reporting: sumDepths, total CPU
/// time, and the fractions spent in updateBound and in dominance tests.
struct ExecStats {
  std::vector<size_t> depths;       ///< depth(A, I, i) per relation
  size_t sum_depths = 0;            ///< the sumDepths metric
  double total_seconds = 0.0;
  double bound_seconds = 0.0;       ///< time inside updateBound
  double dominance_seconds = 0.0;   ///< included in bound_seconds
  uint64_t combinations_formed = 0;
  BoundStats bound_stats;
  double final_bound = 0.0;
  bool completed = false;           ///< false if a safety rail tripped

  // Scatter-gather accounting, filled only by ShardedEngine (zero for
  // monolithic executions). On the sequential scatter path the wall-clock
  // fields above are SUMS across shards (the real single-thread latency);
  // on the parallel path they are MAXES (the makespan).
  uint32_t scatter_threads = 0;     ///< threads that scattered the shards:
                                    ///< 0 = plain sequential configuration,
                                    ///< 1 = parallel engine fell back inline
                                    ///< (adaptive scatter: too few shards
                                    ///< survived pruning to fan out),
                                    ///< >1 = parallel workers used
  uint64_t shards_pruned = 0;       ///< shards skipped by the corner bound
  double gather_seconds = 0.0;      ///< merging per-shard results

  // Live-data accounting, filled only by LiveEngine (live/live_engine.h);
  // zero for engines without a live layer.
  uint64_t data_epoch = 0;          ///< epoch of the snapshot this query saw
  uint64_t delta_tuples = 0;        ///< delta tuples live in that snapshot
  uint64_t delta_shards_pruned = 0; ///< delta shards the corner bound skipped

  // Cursor-cache accounting, filled only by cache/cursor_cache.h views
  // (zero elsewhere): how a paged request split between replaying an
  // already-materialized prefix and resuming the live enumeration.
  uint64_t cursor_partial_hits = 0; ///< results replayed from a cached prefix
  uint64_t cursor_resumes = 0;      ///< results computed by resuming the
                                    ///< shared enumeration past its prefix

  // Plan-selection accounting, filled only by PlannedEngine
  // (plan/planned_engine.h); empty/zero when no planner ran. Comparing
  // plan_cost_estimate against total_seconds after the fact is how
  // mispredictions are measured -- a wrong pick costs latency, never
  // correctness.
  std::string planned_backend;      ///< PlanSpec::name() of the chosen plan
  double plan_cost_estimate = 0.0;  ///< predicted seconds of the chosen plan
  uint32_t plan_alternatives_considered = 0;  ///< candidate plans scored
};

/// One result combination with materialized member tuples.
struct ResultCombination {
  double score = 0.0;
  std::vector<Tuple> tuples;  ///< one per relation, join order
};

/// Everything one query execution needs, borrowed from the caller: the
/// executor consumes `*sources` (pulls them to their final depths) but
/// owns nothing and keeps no state afterwards.
struct QueryPlan {
  std::vector<std::unique_ptr<AccessSource>>* sources = nullptr;
  const ScoringFunction* scoring = nullptr;
  const Vec* query = nullptr;
  const ProxRJOptions* options = nullptr;
};

/// Checks just the option ranges (k, periods, epsilon). Cheap; front ends
/// call it before paying for per-query source construction.
Status ValidateOptions(const ProxRJOptions& options);

/// Checks a plan's setup invariants (source presence and uniformity,
/// dimension agreement, fresh sources, option ranges, scorer/access-kind
/// compatibility) without consuming anything.
Status ValidateQueryPlan(const QueryPlan& plan);

/// Executes Algorithm 1 over the plan and returns the top-K combinations
/// in descending score order (fewer than K if the cross product is
/// smaller). Returns InvalidArgument/FailedPrecondition on bad setup.
///
/// `*stats` (when non-null) is reset to a fresh ExecStats first -- on
/// failures too -- so repeated executions, e.g. through a reusable Engine,
/// can never leak dominance_seconds, bound_stats or depths across queries.
Result<std::vector<ResultCombination>> ExecuteQuery(const QueryPlan& plan,
                                                    ExecStats* stats);

}  // namespace prj

#endif  // PRJ_CORE_EXECUTOR_H_
