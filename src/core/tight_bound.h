// Tight bounding schemes (paper §3.2, Appendix B/C), specialized to the
// SumLogEuclidean aggregation family of eq. (2) as in §3.2.1.
//
// For every proper subset M of {1..n} and every partial combination
// tau in PC(M) = prod_{i in M} P_i, the scheme computes t(tau): the best
// aggregate score reachable by completing tau with unseen tuples. Under
// distance-based access the unseen tuples are constrained to lie at least
// delta_i from the query; Theorem 3.4 makes the optimum collinear, and the
// resulting 1-D concave QP is solved exactly by the water-filling solver
// (solver/waterfill.h). Under score-based access the problem is
// unconstrained and the optimum has the closed form (41).
//
// The final bound is t = max over M of t_M = max over tau of t(tau)
// (eq. (8)-(9) / (40)); per-relation potentials pot_i = max{t_M : i not
// in M} drive the potential-adaptive pulling strategy (§3.3).
#ifndef PRJ_CORE_TIGHT_BOUND_H_
#define PRJ_CORE_TIGHT_BOUND_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "core/bounds.h"
#include "core/dominance.h"
#include "core/join_state.h"
#include "core/scoring.h"

namespace prj {

/// Reference implementation of t(tau) for distance-based access: solves
/// problem (12) for the partial combination given by `mask` (bit i set =
/// relation i seen) and `seen` (its members, ascending relation index).
/// `sigma_max` and `deltas` are full per-relation arrays; entries of seen
/// relations are ignored where not applicable. Optionally returns the
/// optimal collinear distances theta* and reconstructed locations y*
/// (eq. (15)), with seen slots carrying the members' own positions.
double TightPartialBoundDistance(const SumLogEuclideanScoring& scoring,
                                 const Vec& q, int n, uint32_t mask,
                                 const std::vector<const Tuple*>& seen,
                                 const std::vector<double>& sigma_max,
                                 const std::vector<double>& deltas,
                                 std::vector<double>* theta_out = nullptr,
                                 std::vector<Vec>* y_out = nullptr);

/// Same for score-based access (problem (39), closed form (41)):
/// `unseen_scores[j]` is the best score still available from R_j
/// (= last seen score, or sigma_max at depth 0).
double TightPartialBoundScore(const SumLogEuclideanScoring& scoring,
                              const Vec& q, int n, uint32_t mask,
                              const std::vector<const Tuple*>& seen,
                              const std::vector<double>& unseen_scores,
                              std::vector<Vec>* y_out = nullptr);

/// Independent check used by tests: reconstructs the completion (synthetic
/// tuples at y* with the allowed scores) and evaluates the true aggregate
/// score through ScoringFunction::CombinationScore. Tightness means this
/// equals the returned bound.
double TightBoundValueByReconstruction(const SumLogEuclideanScoring& scoring,
                                       const Vec& q, int n, uint32_t mask,
                                       const std::vector<const Tuple*>& seen,
                                       const std::vector<double>& scores_unseen,
                                       const std::vector<Vec>& y);

/// Tight bounding scheme for distance-based access, with optional periodic
/// dominance pruning (§3.2.2) and periodic recomputation of stale partial
/// bounds (§4.2 practical remark). recompute_period == 1 reproduces
/// Algorithm 2 exactly; larger periods trade extra I/O for less CPU while
/// staying correct (cached bounds only over-estimate).
class TightBoundDistance : public BoundingScheme {
 public:
  /// `dominance_seconds_sink`, when non-null, accumulates wall time spent
  /// in dominance LP sweeps (for the paper's stacked CPU charts).
  /// `use_generic_qp` solves every t(tau) through the paper's explicit QP
  /// formulation (14)/(30) with the active-set solver instead of the
  /// closed-form water-filling path -- bit-compatible results, an order of
  /// magnitude slower, matching the paper's "off-the-shelf solver" cost
  /// regime (where periodic dominance testing pays off).
  TightBoundDistance(const JoinState* state,
                     const SumLogEuclideanScoring* scoring,
                     int dominance_period = 0, int recompute_period = 1,
                     double* dominance_seconds_sink = nullptr,
                     bool use_generic_qp = false);

  void OnPull(int i) override;
  void OnExhausted(int i) override;
  double bound() const override;
  double Potential(int i) const override;
  const BoundStats& stats() const override { return stats_; }

  /// t_M for one subset (testing/inspection).
  double SubsetBound(uint32_t mask) const;
  /// Dominance flag of one partial (testing/inspection).
  bool IsPartialDominated(uint32_t mask, size_t index) const;
  size_t NumPartials(uint32_t mask) const;

 private:
  struct Partial {
    std::vector<uint32_t> pos;  ///< member positions, ascending rel index
    Vec nu_centered;            ///< centroid of members minus q
    double nu_norm = 0.0;
    double base_const = 0.0;    ///< sum ws*ln(sigma) - (wq+wmu)*sum d(x,q)^2
    double t = 0.0;             ///< cached t(tau)
    bool dominated = false;
    Vec witness;                ///< cached point of the dominance region
  };
  struct SubsetStore {
    uint32_t mask = 0;
    int m = 0;
    double unseen_log = 0.0;  ///< sum over complement of ws*ln(sigma_max)
    std::vector<Partial> partials;
    double t_max = -std::numeric_limits<double>::infinity();
    bool stale = false;            ///< cached t's behind current deltas
    bool dominance_dirty = false;  ///< new partials since last LP sweep
  };

  Partial MakePartial(const SubsetStore& ss, std::vector<uint32_t> pos) const;
  double SolvePartial(const SubsetStore& ss, const Partial& p);
  double SolvePartialGenericQp(const SubsetStore& ss, const Partial& p);
  void AddNewPartials(SubsetStore* ss, int i);
  void RecomputeStore(SubsetStore* ss);
  void RefreshMax(SubsetStore* ss) const;
  void RunDominance(SubsetStore* ss);
  bool StoreValid(const SubsetStore& ss) const;

  const JoinState* state_;
  const SumLogEuclideanScoring* scoring_;
  int dominance_period_;
  int recompute_period_;
  double* dominance_seconds_sink_;
  bool use_generic_qp_;
  uint64_t pulls_ = 0;
  std::vector<SubsetStore> subsets_;  ///< indexed by mask, full mask unused
  BoundStats stats_;
};

/// Tight bounding scheme for score-based access (Appendix C). Keeps only
/// the single dominating partial per subset (Algorithm 3): within a subset
/// the ordering of t_s(tau) values is invariant as depths grow, because a
/// frontier-score change shifts every bound in the subset equally.
class TightBoundScore : public BoundingScheme {
 public:
  TightBoundScore(const JoinState* state,
                  const SumLogEuclideanScoring* scoring);

  void OnPull(int i) override;
  void OnExhausted(int i) override;
  double bound() const override;
  double Potential(int i) const override;
  const BoundStats& stats() const override { return stats_; }

 private:
  struct BestPartial {
    bool present = false;
    std::vector<uint32_t> pos;  ///< member positions, ascending rel index
  };

  double PartialValue(uint32_t mask, const std::vector<uint32_t>& pos) const;
  std::vector<double> CurrentUnseenScores() const;

  const JoinState* state_;
  const SumLogEuclideanScoring* scoring_;
  std::vector<BestPartial> best_;  ///< indexed by mask
  mutable BoundStats stats_;       ///< bound()/Potential() also solve
};

}  // namespace prj

#endif  // PRJ_CORE_TIGHT_BOUND_H_
