#include "core/dominance.h"

#include "solver/lp.h"

namespace prj {

double DominanceResidual(const DominanceEntry& alpha, const DominanceEntry& beta,
                         double b_scale, const Vec& y_centered) {
  Vec diff = alpha.nu_centered;
  diff -= beta.nu_centered;
  return alpha.c - beta.c - 2.0 * b_scale * diff.Dot(y_centered);
}

bool PartialIsDominated(size_t alpha, const std::vector<DominanceEntry>& entries,
                        const std::vector<bool>& active, double b_scale,
                        uint64_t* lp_solves, Vec* witness) {
  PRJ_CHECK_EQ(entries.size(), active.size());
  const int d = entries[alpha].nu_centered.dim();

  // Witness screen: if the cached region point still beats every active
  // beta, the region is still nonempty -- no LP needed.
  if (witness && witness->dim() == d) {
    bool still_wins = true;
    for (size_t b = 0; b < entries.size(); ++b) {
      if (b == alpha || !active[b]) continue;
      if (DominanceResidual(entries[alpha], entries[b], b_scale, *witness) <
          -1e-9) {
        still_wins = false;
        break;
      }
    }
    if (still_wins) return false;
  }

  // Rows: for every active beta != alpha,
  //   2*b_scale*(nu_a - nu_b)^T y <= C_a - C_b.
  std::vector<size_t> betas;
  for (size_t b = 0; b < entries.size(); ++b) {
    if (b != alpha && active[b]) betas.push_back(b);
  }
  if (betas.empty()) return false;

  Matrix g(static_cast<int>(betas.size()), d);
  std::vector<double> h(betas.size());
  for (size_t r = 0; r < betas.size(); ++r) {
    const DominanceEntry& a = entries[alpha];
    const DominanceEntry& b = entries[betas[r]];
    for (int j = 0; j < d; ++j) {
      g(static_cast<int>(r), j) =
          2.0 * b_scale * (a.nu_centered[j] - b.nu_centered[j]);
    }
    h[r] = a.c - b.c;
  }
  ++*lp_solves;
  std::vector<double> point;
  const bool empty = PolyhedronIsEmpty(g, h, witness ? &point : nullptr);
  if (!empty && witness) *witness = Vec::FromStd(point);
  return empty;
}

}  // namespace prj
