// The polymorphic query-engine interface: the contract every execution
// backend of the serving stack satisfies.
//
// Engine (core/engine.h) is the monolithic implementation; ShardedEngine
// (shard/sharded_engine.h) scatter-gathers over partitioned per-shard
// engines; CachedEngine (cache/cached_engine.h) decorates any of them with
// a query-result cache. Server (server/server.h), RunBatch callers and the
// benches all program against this interface, so the serving layers
// compose freely: Server over CachedEngine over ShardedEngine is just
// pointer plumbing.
//
// The contract: TopK is const, keeps no mutable state visible to callers,
// and is safe to call concurrently from many threads. All implementations
// must return bit-identical combinations for the same (query, options) --
// the exactness guarantee the tests enforce across the whole lattice.
//
// This header is also home of the request/response vocabulary
// (QueryRequest, QueryResult) and of the *canonical request key*: the one
// byte-level encoding of everything that determines a query's answer,
// shared by the result cache and by every test that needs request
// equality -- so there is exactly one notion of "the same query".
#ifndef PRJ_CORE_QUERY_ENGINE_H_
#define PRJ_CORE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/executor.h"

namespace prj {

class ResultCursor;    // core/result_cursor.h
struct RelationStats;  // plan/relation_stats.h

/// One query of a batch: where to evaluate and how.
struct QueryRequest {
  Vec query;
  ProxRJOptions options;
};

/// Outcome of one query. A failed query (bad options, dimension mismatch)
/// carries its Status here instead of failing the whole batch.
struct QueryResult {
  Status status;
  std::vector<ResultCombination> combinations;
  ExecStats stats;

  bool ok() const { return status.ok(); }
};

/// Result-cache counters surfaced through the QueryEngine interface (all
/// zero for engines without a cache layer). Servers merge these into their
/// aggregate stats without knowing which decorator, if any, is present.
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Lookups that joined an in-flight computation of the same key instead
  /// of recomputing (the stampede guard, cache/query_cache.h). Such a
  /// lookup ALSO counts as a hit (served from the flight) or a miss (the
  /// leader aborted and the follower recomputed).
  uint64_t coalesced = 0;
};

/// Live-data counters surfaced through the QueryEngine interface (all
/// zero for engines without a live layer, whose content is fixed at epoch
/// 0 forever). `epoch` versions the logical content: it bumps on every
/// applied update batch and -- deliberately -- does NOT change on
/// compaction, which moves tuples between physical homes without changing
/// what a query would answer. The result cache keys on it, so update
/// invalidation is free and compaction keeps the cache warm.
struct LiveCounters {
  uint64_t epoch = 0;         ///< logical content version
  uint64_t delta_tuples = 0;  ///< inserts not yet compacted into the base
  uint64_t tombstones = 0;    ///< deletes not yet compacted away
  uint64_t compactions = 0;   ///< base rebuilds completed so far
};

/// Abstract top-K query engine: TopK / RunBatch plus the metadata a
/// serving layer needs (dimensionality, access kind, scatter fan-out,
/// cache counters). Implementations are immutable after construction;
/// every method here is const and thread-safe.
class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Answers one top-K query: the top-K combinations in descending score
  /// order (fewer than K if the cross product is smaller), or
  /// InvalidArgument/FailedPrecondition on bad setup. `stats_out`, when
  /// non-null, receives a fresh ExecStats for this query alone.
  virtual Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const = 0;

  /// Opens a resumable cursor (core/result_cursor.h) that enumerates this
  /// engine's results for `request` in the exact TopK order: for every
  /// k', the first k' results pulled are bit-identical to TopK with
  /// options.k = k'. The cursor enumerates past request.options.k freely
  /// (k only sizes trace accounting); it observes the engine's data epoch
  /// at open time and stays exact for that epoch. The engine must outlive
  /// the cursor. Traced requests are rejected by scatter/merge
  /// implementations (their segment semantics need the one-shot path).
  /// The default implementation reports Unimplemented; Engine,
  /// ShardedEngine, LiveEngine and CachedEngine all provide conforming
  /// overrides.
  virtual Result<std::unique_ptr<ResultCursor>> OpenCursor(
      const QueryRequest& request) const;

  /// Evaluates one request and packages the outcome -- combinations on
  /// success, the error Status otherwise, plus this query's ExecStats --
  /// into a QueryResult. Shared by RunBatch and by Server's workers, so
  /// serial and concurrent serving cannot drift in how they report a
  /// query's result. Non-virtual by design: it delegates to TopK, so every
  /// implementation (and decorator) inherits consistent packaging.
  QueryResult RunOne(const QueryRequest& request) const;

  /// Evaluates a batch of queries sequentially. Always returns one
  /// QueryResult per request, in order; per-query failures are reported in
  /// QueryResult::status. For the concurrent counterpart see
  /// Server::SubmitBatch in server/server.h.
  std::vector<QueryResult> RunBatch(
      std::span<const QueryRequest> requests) const;

  /// Access kind the engine was built for.
  virtual AccessKind kind() const = 0;
  /// Feature-space dimensionality served.
  virtual int dim() const = 0;
  /// Number of joined relations.
  virtual size_t num_relations() const = 0;
  /// Scatter fan-out: how many per-shard engines one TopK call consults.
  /// 1 for monolithic engines; decorators forward to their inner engine.
  virtual size_t fan_out() const { return 1; }
  /// Result-cache counters; all zero for engines without a cache layer.
  virtual CacheCounters cache_counters() const { return {}; }
  /// Live-data counters; all zero for engines without a live layer (their
  /// content never changes, i.e. it is epoch 0 forever).
  virtual LiveCounters live_counters() const { return {}; }
  /// Per-relation planning statistics (plan/relation_stats.h), one entry
  /// per relation in join order. Engines compute them once at ingestion;
  /// decorators forward or aggregate (ShardedEngine merges partitions,
  /// LiveEngine folds its deltas in). The default returns an empty vector
  /// -- "no statistics available" -- which planning layers treat as
  /// "use conservative estimates". Statistics are planning inputs only and
  /// never affect result content.
  virtual std::vector<RelationStats> relation_stats() const;

 protected:
  QueryEngine() = default;
  // Implementations are value types (Engine is returned via Result<Engine>
  // and moved); the interface itself carries no state, so defaulted
  // copy/move on the base are safe and only reachable through derived
  // classes.
  QueryEngine(const QueryEngine&) = default;
  QueryEngine& operator=(const QueryEngine&) = default;
};

// ------------------------ canonical request key ------------------------ //
//
// The canonical encoding covers exactly the inputs that determine a
// query's answer and cost accounting: the query point, every
// ProxRJOptions field except
//   * `trace`   -- a side-channel observer, not part of the query; and
//   * `backend` -- the access-path implementation is the *engine's*
//                  construction-time choice (Engine ignores the per-query
//                  field, and both backends deliver bit-identical streams);
//   * `scatter_hint` / `prune_hint` -- the planner's per-request execution
//                  hints pick among bit-identical plans, never answers,
// and the data epoch of the engine answering it: on a live engine the
// same (query, options) pair produces different answers before and after
// an update, so the epoch is part of request identity. Engines without a
// live layer are epoch 0 forever, which the default argument encodes.
// Floating-point values are encoded by bit pattern with -0.0 canonicalized
// to +0.0 (they compare equal and produce identical results), so two
// requests with equal keys are guaranteed to produce bit-identical
// answers on the same engine -- the property the result cache relies on.

/// Appends the canonical encoding of the result-relevant option fields.
void AppendCanonicalOptions(const ProxRJOptions& options, std::string* out);

/// Canonical byte key of (query point, options, data epoch): the cache
/// key, and the single request-identity notion used by the tests.
std::string CanonicalRequestKey(const Vec& query, const ProxRJOptions& options,
                                uint64_t data_epoch = 0);
inline std::string CanonicalRequestKey(const QueryRequest& request) {
  return CanonicalRequestKey(request.query, request.options);
}

/// Canonical byte key of the ENUMERATION a request addresses: the
/// canonical request key with k pinned to a fixed sentinel. Cursor
/// streams are k-independent (prefix exactness), so requests differing
/// only in k share one cached cursor -- a K=10 entry serves a K=50
/// request by resuming (cache/cursor_cache.h keys on this).
std::string CanonicalEnumerationKey(const Vec& query,
                                    const ProxRJOptions& options,
                                    uint64_t data_epoch = 0);

/// 64-bit FNV-1a over an already-built canonical key (used for cache-shard
/// selection; the full key string guards against collisions).
uint64_t KeyFingerprint(std::string_view key);

/// Convenience: KeyFingerprint(CanonicalRequestKey(...)).
uint64_t RequestFingerprint(const Vec& query, const ProxRJOptions& options);
inline uint64_t RequestFingerprint(const QueryRequest& request) {
  return RequestFingerprint(request.query, request.options);
}

/// Canonical equality: true iff the two sides encode to the same key,
/// i.e. they are interchangeable queries. Replaces ad-hoc field-by-field
/// comparisons.
bool CanonicalOptionsEqual(const ProxRJOptions& a, const ProxRJOptions& b);
bool CanonicalRequestEqual(const QueryRequest& a, const QueryRequest& b);

/// The library's exactness contract, as a predicate: true iff the two
/// result lists have the same length and match rank-for-rank on exactly
/// equal (==, no tolerance) scores and identical member tuple ids. Every
/// pair of execution paths that must agree (Engine vs ShardedEngine,
/// cache hit vs recompute, concurrent vs serial) is tested and
/// bench-gated against this one definition. `why`, when non-null,
/// receives a description of the first divergence.
bool BitIdenticalResults(const std::vector<ResultCombination>& a,
                         const std::vector<ResultCombination>& b,
                         std::string* why = nullptr);

}  // namespace prj

#endif  // PRJ_CORE_QUERY_ENGINE_H_
