// Any-K streaming enumeration: the resumable form of Algorithm 1.
//
// A ResultCursor enumerates result combinations in the executor's exact
// output order (score descending, deterministic tie-breaking), emitting
// each combination the moment the rank-join bound certifies it final: the
// best unemitted candidate C is final as soon as score(C) >= B - epsilon,
// where B upper-bounds every combination containing a not-yet-pulled
// tuple. One-shot TopK(k) is literally "open a cursor, drain k" (see
// ExecuteQuery), so the streaming path and the one-shot path cannot
// drift: for every k' <= k the first k' results pulled from a cursor are
// bit-identical to a one-shot TopK(k') -- the pull sequence chosen by the
// strategy depends only on the join state and the bound, never on k, so
// k only decides where the shared trajectory stops.
//
// ExecutionCursor is the monolithic implementation (the Algorithm-1 loop
// state -- pull frontier, candidate heap, running bound -- lifted out of
// the old ExecuteQuery body); GatherMergeCursor streams an exact merge
// over any number of part cursors under the gather order (core/gather.h),
// opening parts lazily in best-bound-first order -- the streaming form of
// the scatter-gather used by ShardedEngine and LiveEngine.
#ifndef PRJ_CORE_RESULT_CURSOR_H_
#define PRJ_CORE_RESULT_CURSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/timer.h"
#include "common/vec.h"
#include "core/executor.h"
#include "core/gather.h"
#include "core/topk.h"

namespace prj {

class BoundingScheme;
class JoinState;
class PullingStrategy;

/// Abstract resumable result stream. Not thread-safe: a cursor is owned
/// by one logical consumer (the cursor-state cache serializes sharing
/// behind its own lock). The engine a cursor was opened from must outlive
/// it, like any TopK caller.
class ResultCursor {
 public:
  virtual ~ResultCursor() = default;

  /// The next certified combination in the global result order, or
  /// nullopt when the enumeration is complete. When a safety rail
  /// (max_pulls / time budget) trips, pulling stops for good,
  /// stats().completed flips to false, and the remaining best candidates
  /// drain uncertified -- mirroring the one-shot executor, which returns
  /// its buffer when a rail trips.
  virtual Result<std::optional<ResultCombination>> Next() = 0;

  /// Cumulative execution accounting since open, across all Next calls.
  /// Depths / bound stats are read live, so this is cheap but not free.
  virtual ExecStats stats() const = 0;

  /// Combinations emitted so far.
  virtual uint64_t emitted() const = 0;

  /// Drains up to `n` further results (fewer when the enumeration ends).
  Result<std::vector<ResultCombination>> NextBatch(size_t n);
};

/// The Algorithm-1 loop as a cursor over a QueryPlan. Borrows the plan's
/// sources/scoring exactly like ExecuteQuery, but holds them across calls:
/// the caller must keep `*plan.sources`, `*plan.scoring` and the trace
/// sink alive for the cursor's lifetime (query and options are copied).
class ExecutionCursor : public ResultCursor {
 public:
  /// `retain_cap` bounds candidate retention: 0 enumerates without limit
  /// (every formed candidate is kept until emitted -- required to resume
  /// past the original k); a positive cap admits candidates through a
  /// TopKBuffer(cap) exactly like the one-shot executor, emits at most
  /// `cap` results, and then ends the stream. ExecuteQuery drains with
  /// retain_cap = options.k; cursor-serving layers open with 0.
  static Result<std::unique_ptr<ExecutionCursor>> Open(const QueryPlan& plan,
                                                       size_t retain_cap = 0);
  ~ExecutionCursor() override;

  Result<std::optional<ResultCombination>> Next() override;
  ExecStats stats() const override;
  uint64_t emitted() const override { return emitted_; }

 private:
  ExecutionCursor(const QueryPlan& plan, size_t retain_cap);

  /// One Algorithm-1 pull step (or an exhaustion marking). Returns false
  /// when no further pulling is possible or allowed.
  bool PullStep(const WallTimer& call_timer);
  ResultCombination PopBest();

  std::vector<std::unique_ptr<AccessSource>>* sources_;  // borrowed
  const ScoringFunction* scoring_;                       // borrowed
  ProxRJOptions options_;
  size_t retain_cap_;

  std::unique_ptr<JoinState> state_;
  std::unique_ptr<BoundingScheme> bound_;
  std::unique_ptr<PullingStrategy> strategy_;
  /// Max-heap (best at front, CombinationBetter order) of every formed,
  /// admitted, not-yet-emitted candidate.
  std::vector<Combination> heap_;
  /// Admission filter in capped mode (the one-shot TopKBuffer); also the
  /// running K-th score a trace records.
  std::unique_ptr<TopKBuffer> admit_;
  /// K-th-score tracker for traced uncapped cursors (trace parity with
  /// the one-shot executor's buffer).
  std::unique_ptr<TopKBuffer> trace_kth_;

  double current_bound_;
  uint64_t pulls_ = 0;
  uint64_t emitted_ = 0;
  bool exhausted_ = false;     ///< the strategy found every input exhausted
  bool rail_tripped_ = false;  ///< max_pulls / time budget hit: never pull again
  ExecStats stats_;            ///< stable home (the tight bound writes into
                               ///< dominance_seconds by pointer)
};

/// Streams the exact gather merge over ranked parts. Each part carries an
/// admissible upper bound on the score of ANY combination it can produce
/// plus a factory that opens its stream on first need. Parts are visited
/// in descending bound order and opened lazily: before a head combination
/// is emitted, every still-unopened part that could beat or tie it (the
/// GatherPruned test, slack included) is opened -- so the emitted sequence
/// is the GatherBetter-ordered merge of all parts, bit-identical to the
/// bounded K-heap gather at every prefix. With `prune` false all parts
/// open eagerly (the measurement knob of the scatter layers).
class GatherMergeCursor : public ResultCursor {
 public:
  struct Part {
    double bound = 0.0;
    std::function<Result<std::unique_ptr<ResultCursor>>()> open;
  };

  GatherMergeCursor(AccessKind kind, Vec query, size_t num_relations,
                    bool prune, std::vector<Part> parts);

  Result<std::optional<ResultCombination>> Next() override;
  /// Sequential-mode aggregate over the opened part streams (see
  /// AggregateShardStats). Pruned/unopened parts are NOT counted here --
  /// the owning layer attributes them to its own field (shards_pruned vs
  /// delta_shards_pruned) via parts_unopened().
  ExecStats stats() const override;
  uint64_t emitted() const override { return emitted_; }

  size_t parts_total() const { return parts_.size(); }
  size_t parts_unopened() const { return parts_.size() - streams_.size(); }
  /// Largest admissible bound among unopened parts (-infinity when all
  /// are open): what final_bound must still account for.
  double max_unopened_bound() const;

 private:
  struct Stream {
    std::unique_ptr<ResultCursor> cursor;
    std::optional<KeyedCombination> head;
  };

  /// Advances `stream` to its next head (nullopt at end-of-stream).
  Status Advance(Stream* stream);
  /// Index of the best head among open streams, -1 when none.
  int BestStream() const;

  AccessKind kind_;
  Vec query_;
  size_t num_relations_;
  bool prune_;
  std::vector<Part> parts_;  ///< sorted by descending bound
  std::vector<Stream> streams_;
  size_t next_part_ = 0;  ///< first unopened entry of parts_
  uint64_t emitted_ = 0;
  Status failed_ = Status::OK();  ///< sticky: a failed stream ends the merge
};

}  // namespace prj

#endif  // PRJ_CORE_RESULT_CURSOR_H_
