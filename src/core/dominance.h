// Dominance between partial combinations (paper §3.2.2, Appendix B.5).
//
// Within one subset M, the unconstrained completion objective of a partial
// combination alpha is U_alpha(y) = C_alpha - a*||y-q||^2 - 2*b_alpha^T(y-q)
// with a shared quadratic coefficient a, b_alpha = -wmu*(n-m)*(m/n)*
// (nu_alpha - q) and C_alpha the constant of DESIGN.md §4.2. alpha
// dominates beta at y iff 2*(b_alpha - b_beta)^T (y-q) <= C_alpha - C_beta
// -- a half-space, since the quadratic terms cancel. The dominance region
// D(alpha) is the intersection over all beta; alpha is dominated iff it is
// empty, decided by the Farkas-dual LP of solver/lp.h. A dominated partial
// can never attain t_M (the half-space comparison is exact for *every*
// completion configuration, not just symmetric ones; see DESIGN.md §4.2),
// so it is skipped by all future bound recomputations.
#ifndef PRJ_CORE_DOMINANCE_H_
#define PRJ_CORE_DOMINANCE_H_

#include <cstdint>
#include <vector>

#include "common/vec.h"

namespace prj {

/// Geometry of one partial combination for dominance purposes.
struct DominanceEntry {
  Vec nu_centered;   ///< centroid of seen members minus q
  double c = 0.0;    ///< the constant C_alpha
};

/// Returns true iff entry `alpha` is dominated by the entries whose
/// `active` flag is set (alpha itself is skipped). `b_scale` is the common
/// scalar such that b = b_scale * nu_centered, i.e. -wmu*(n-m)*m/n.
/// Increments *lp_solves when an LP is actually run.
///
/// `witness` (optional, in/out): a point of alpha's dominance region from
/// an earlier check. Regions only shrink as partials are added, so if the
/// cached witness still beats every active beta the LP is skipped
/// entirely; otherwise the LP runs and refreshes the witness. Witness
/// staleness can only cost an extra LP, never a wrong flag.
bool PartialIsDominated(size_t alpha, const std::vector<DominanceEntry>& entries,
                        const std::vector<bool>& active, double b_scale,
                        uint64_t* lp_solves, Vec* witness = nullptr);

/// Evaluates U_alpha(y) - U_beta(y) margins directly; test support.
/// Returns the half-space residual C_alpha - C_beta - 2*(b_a - b_b)^T y
/// (>= 0 where alpha dominates beta).
double DominanceResidual(const DominanceEntry& alpha, const DominanceEntry& beta,
                         double b_scale, const Vec& y_centered);

}  // namespace prj

#endif  // PRJ_CORE_DOMINANCE_H_
