// Pipelined proximity rank join: a GetNext-style operator interface.
//
// The batch ProxRJ engine (engine.h) answers one top-K request. Inside a
// query plan, rank-join operators are instead consumed incrementally --
// HRJN itself is defined as a GetNext operator (Ilyas et al.). This class
// provides that interface for proximity rank join: each Next() call emits
// the single next-best combination, pulling input tuples lazily and only
// as far as the bounding scheme requires to *certify* that the emitted
// combination cannot be beaten by anything unseen.
//
// Consuming r results costs no more input than a batch run with K = r
// (same pulling strategy and bound), so early termination by the consumer
// translates directly into saved accesses.
//
// Unlike the batch engine, which caps its buffer at K, the stream must
// retain every formed-but-not-yet-emitted combination (their count is
// bounded by the product of the pulled prefixes).
#ifndef PRJ_CORE_STREAM_H_
#define PRJ_CORE_STREAM_H_

#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "core/engine.h"
#include "core/join_state.h"
#include "core/strategy.h"
#include "core/topk.h"

namespace prj {

/// Streaming options: a subset of ProxRJOptions (no K -- the consumer
/// decides when to stop).
struct ProxRJStreamOptions {
  BoundKind bound = BoundKind::kTight;
  PullKind pull = PullKind::kPotentialAdaptive;
  int dominance_period = 0;
  int bound_update_period = 1;
  bool use_generic_qp = false;
  double epsilon = 1e-9;

  void Apply(const AlgorithmPreset& preset) {
    bound = preset.bound;
    pull = preset.pull;
  }
};

class ProxRJStream {
 public:
  /// Same contracts as ProxRJ: one shared access kind, matching
  /// dimensions, SumLogEuclidean scorer for the tight bound.
  ProxRJStream(std::vector<std::unique_ptr<AccessSource>> sources,
               const ScoringFunction* scoring, Vec query,
               ProxRJStreamOptions options);
  ~ProxRJStream();

  /// Validates the setup; must be called (once) before Next().
  Status Open();

  /// Emits the next combination in descending score order, or nullopt once
  /// the whole cross product has been produced. Requires a successful
  /// Open().
  std::optional<ResultCombination> Next();

  /// Number of combinations emitted so far.
  size_t emitted() const { return emitted_; }
  /// Input consumed so far (the sumDepths metric at this point).
  size_t SumDepths() const;

 private:
  void Pull();

  std::vector<std::unique_ptr<AccessSource>> sources_;
  const ScoringFunction* scoring_;
  Vec query_;
  ProxRJStreamOptions options_;

  bool opened_ = false;
  std::unique_ptr<JoinState> state_;
  std::unique_ptr<BoundingScheme> bound_;
  std::unique_ptr<PullingStrategy> strategy_;
  // Formed-but-unemitted combinations, best first: the heap's "largest"
  // element (its top) is the best combination.
  struct WorseThan {
    bool operator()(const Combination& a, const Combination& b) const {
      return CombinationBetter(b, a);
    }
  };
  std::priority_queue<Combination, std::vector<Combination>, WorseThan>
      buffer_;
  double current_bound_ = 0.0;
  size_t emitted_ = 0;
  bool exhausted_ = false;
};

}  // namespace prj

#endif  // PRJ_CORE_STREAM_H_
