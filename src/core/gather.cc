#include "core/gather.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace prj {

KeyedCombination MakeKeyed(ResultCombination combo, AccessKind kind,
                           const Vec& query) {
  KeyedCombination keyed;
  keyed.keys.reserve(combo.tuples.size());
  for (const Tuple& t : combo.tuples) {
    keyed.keys.push_back(kind == AccessKind::kDistance
                             ? t.x.SquaredDistance(query)
                             : -t.score);
  }
  keyed.combo = std::move(combo);
  return keyed;
}

bool GatherBetter(const KeyedCombination& a, const KeyedCombination& b) {
  if (a.combo.score != b.combo.score) return a.combo.score > b.combo.score;
  for (size_t j = 0; j < a.keys.size(); ++j) {
    if (a.keys[j] != b.keys[j]) return a.keys[j] < b.keys[j];
    const int64_t ida = a.combo.tuples[j].id;
    const int64_t idb = b.combo.tuples[j].id;
    if (ida != idb) return ida < idb;
  }
  return false;
}

bool GatherPruned(double bound, double kth_score) {
  return bound + 1e-9 * (1.0 + std::abs(bound)) < kth_score;
}

void GatherHeap::Offer(KeyedCombination kc) {
  if (keep_ == 0) return;
  if (best_.size() < keep_) {
    best_.push_back(std::move(kc));
    std::push_heap(best_.begin(), best_.end(), GatherBetter);
  } else if (GatherBetter(kc, best_.front())) {
    std::pop_heap(best_.begin(), best_.end(), GatherBetter);
    best_.back() = std::move(kc);
    std::push_heap(best_.begin(), best_.end(), GatherBetter);
  }
}

std::vector<ResultCombination> GatherHeap::Finish() {
  std::sort(best_.begin(), best_.end(), GatherBetter);
  std::vector<ResultCombination> merged;
  merged.reserve(best_.size());
  for (KeyedCombination& keyed : best_) {
    merged.push_back(std::move(keyed.combo));
  }
  best_.clear();
  return merged;
}

void AggregateShardStats(const ExecStats& shard, ScatterMode mode,
                         ExecStats* aggregate) {
  for (size_t j = 0; j < shard.depths.size() && j < aggregate->depths.size();
       ++j) {
    aggregate->depths[j] += shard.depths[j];
  }
  aggregate->sum_depths += shard.sum_depths;
  if (mode == ScatterMode::kSequential) {
    // Parts ran back to back on one thread: their wall times add up to
    // the real latency (maxing here under-reported it by up to the
    // fan-out factor).
    aggregate->total_seconds += shard.total_seconds;
    aggregate->bound_seconds += shard.bound_seconds;
    aggregate->dominance_seconds += shard.dominance_seconds;
  } else {
    // Parts ran concurrently: the slowest one is the makespan.
    aggregate->total_seconds =
        std::max(aggregate->total_seconds, shard.total_seconds);
    aggregate->bound_seconds =
        std::max(aggregate->bound_seconds, shard.bound_seconds);
    aggregate->dominance_seconds =
        std::max(aggregate->dominance_seconds, shard.dominance_seconds);
  }
  aggregate->combinations_formed += shard.combinations_formed;
  aggregate->bound_stats.bound_updates += shard.bound_stats.bound_updates;
  aggregate->bound_stats.qp_solves += shard.bound_stats.qp_solves;
  aggregate->bound_stats.lp_solves += shard.bound_stats.lp_solves;
  aggregate->bound_stats.partials_total += shard.bound_stats.partials_total;
  aggregate->bound_stats.partials_dominated +=
      shard.bound_stats.partials_dominated;
  aggregate->final_bound = std::max(aggregate->final_bound, shard.final_bound);
  aggregate->completed = aggregate->completed && shard.completed;
  aggregate->data_epoch = std::max(aggregate->data_epoch, shard.data_epoch);
  aggregate->delta_tuples += shard.delta_tuples;
  aggregate->delta_shards_pruned += shard.delta_shards_pruned;
  aggregate->cursor_partial_hits += shard.cursor_partial_hits;
  aggregate->cursor_resumes += shard.cursor_resumes;
}

}  // namespace prj
