#include "core/topk.h"

#include <algorithm>
#include <limits>

namespace prj {

bool CombinationBetter(const Combination& a, const Combination& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.positions < b.positions;
}

namespace {

// Heap comparator: parent is *worse* than children (worst at the root).
bool WorseHeap(const Combination& a, const Combination& b) {
  return CombinationBetter(a, b);
}

}  // namespace

TopKBuffer::TopKBuffer(size_t k) : k_(k) { PRJ_CHECK_GE(k, 1u); }

bool TopKBuffer::Offer(Combination combo) {
  if (entries_.size() < k_) {
    entries_.push_back(std::move(combo));
    std::push_heap(entries_.begin(), entries_.end(), WorseHeap);
    return true;
  }
  if (!CombinationBetter(combo, entries_.front())) return false;
  std::pop_heap(entries_.begin(), entries_.end(), WorseHeap);
  entries_.back() = std::move(combo);
  std::push_heap(entries_.begin(), entries_.end(), WorseHeap);
  return true;
}

double TopKBuffer::KthScore() const {
  if (entries_.size() < k_) return -std::numeric_limits<double>::infinity();
  return entries_.front().score;
}

std::vector<Combination> TopKBuffer::SortedDescending() const {
  std::vector<Combination> out = entries_;
  std::sort(out.begin(), out.end(), CombinationBetter);
  return out;
}

}  // namespace prj
