#include "core/stream.h"

#include <cmath>
#include <limits>

#include "core/form_combinations.h"
#include "core/tight_bound.h"

namespace prj {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ProxRJStream::ProxRJStream(std::vector<std::unique_ptr<AccessSource>> sources,
                           const ScoringFunction* scoring, Vec query,
                           ProxRJStreamOptions options)
    : sources_(std::move(sources)),
      scoring_(scoring),
      query_(std::move(query)),
      options_(options) {}

ProxRJStream::~ProxRJStream() = default;

Status ProxRJStream::Open() {
  if (opened_) {
    return Status::FailedPrecondition("Open may be called only once");
  }
  // Reuse the batch engine's validation by constructing the same checks.
  if (sources_.empty()) {
    return Status::InvalidArgument("need at least one input relation");
  }
  if (sources_.size() > 20) {
    return Status::InvalidArgument("at most 20 input relations supported");
  }
  const AccessKind kind = sources_[0]->kind();
  for (const auto& s : sources_) {
    if (s->kind() != kind) {
      return Status::InvalidArgument(
          "all sources must share one access kind (Definition 2.1)");
    }
    if (s->dim() != query_.dim()) {
      return Status::InvalidArgument(
          "source '" + s->name() + "' has dim " + std::to_string(s->dim()) +
          " but the query has dim " + std::to_string(query_.dim()));
    }
    if (s->depth() != 0) {
      return Status::FailedPrecondition("source '" + s->name() +
                                        "' was already consumed");
    }
  }
  if (kind == AccessKind::kDistance && !scoring_->euclidean_metric()) {
    return Status::FailedPrecondition(
        "distance-based access streams in Euclidean order; use score-based "
        "access with non-Euclidean scorers");
  }
  if (options_.bound == BoundKind::kTight &&
      scoring_->scoring_kind() != ScoringKind::kSumLogEuclidean) {
    return Status::Unimplemented(
        "the tight bound is specialized to SumLogEuclideanScoring");
  }

  state_ = std::make_unique<JoinState>(query_, kind, sources_);
  if (options_.bound == BoundKind::kCorner) {
    bound_ = std::make_unique<CornerBound>(state_.get(), scoring_);
  } else if (kind == AccessKind::kDistance) {
    bound_ = std::make_unique<TightBoundDistance>(
        state_.get(), static_cast<const SumLogEuclideanScoring*>(scoring_),
        options_.dominance_period, options_.bound_update_period, nullptr,
        options_.use_generic_qp);
  } else {
    bound_ = std::make_unique<TightBoundScore>(
        state_.get(), static_cast<const SumLogEuclideanScoring*>(scoring_));
  }
  if (options_.pull == PullKind::kRoundRobin) {
    strategy_ = std::make_unique<RoundRobinStrategy>();
  } else {
    strategy_ = std::make_unique<PotentialAdaptiveStrategy>();
  }
  current_bound_ = kInf;
  opened_ = true;
  return Status::OK();
}

void ProxRJStream::Pull() {
  const int i = strategy_->ChooseInput(*state_, *bound_);
  if (i < 0) {
    exhausted_ = true;
    return;
  }
  std::optional<Tuple> tuple = sources_[static_cast<size_t>(i)]->Next();
  if (!tuple) {
    state_->MarkExhausted(i);
    bound_->OnExhausted(i);
    current_bound_ = bound_->bound();
    return;
  }
  state_->Append(i, std::move(*tuple));
  internal::FormNewCombinations(*state_, *scoring_, i,
                                [&](Combination c) { buffer_.push(std::move(c)); });
  bound_->OnPull(i);
  current_bound_ = bound_->bound();
}

std::optional<ResultCombination> ProxRJStream::Next() {
  PRJ_CHECK(opened_) << "call Open() before Next()";
  for (;;) {
    // Emit once the best buffered combination is certified: nothing unseen
    // can beat or tie it. Strict with the slack in the safe direction,
    // mirroring ExecutionCursor: at score == bound an unformed tie could
    // still sort earlier, so certifying it would make the tie order
    // depend on pull chronology.
    const bool certified =
        !buffer_.empty() &&
        (buffer_.top().score > current_bound_ + options_.epsilon ||
         exhausted_ || state_->AllExhausted());
    if (certified) {
      const Combination& top = buffer_.top();
      ResultCombination rc;
      rc.score = top.score;
      rc.tuples.reserve(static_cast<size_t>(state_->n()));
      for (int j = 0; j < state_->n(); ++j) {
        rc.tuples.push_back(
            state_->rel(j).seen[top.positions[static_cast<size_t>(j)]]);
      }
      buffer_.pop();
      ++emitted_;
      return rc;
    }
    if (exhausted_ || state_->AllExhausted()) {
      // Buffer drained and inputs gone: the stream is complete.
      if (buffer_.empty()) return std::nullopt;
      continue;  // certify-and-emit the remaining buffer
    }
    if (std::isinf(current_bound_) && current_bound_ < 0 && buffer_.empty()) {
      // No continuation can produce further combinations.
      return std::nullopt;
    }
    Pull();
  }
}

size_t ProxRJStream::SumDepths() const {
  size_t total = 0;
  for (const auto& s : sources_) total += s->depth();
  return total;
}

}  // namespace prj
