// The ProxRJ operator (paper Algorithm 1): the public entry point of the
// library. Combines an access kind, a bounding scheme and a pulling
// strategy into the four evaluated algorithms:
//
//   CBRR = corner bound + round-robin          (== HRJN   of Ilyas et al.)
//   CBPA = corner bound + potential-adaptive   (== HRJN*)
//   TBRR = tight bound  + round-robin          (instance-optimal, Thm 3.3)
//   TBPA = tight bound  + potential-adaptive   (instance-optimal, Cor 3.6,
//                                               never deeper than TBRR,
//                                               Thm 3.5)
#ifndef PRJ_CORE_ENGINE_H_
#define PRJ_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/bounds.h"
#include "core/scoring.h"
#include "core/trace.h"

namespace prj {

enum class BoundKind { kCorner, kTight };
enum class PullKind { kRoundRobin, kPotentialAdaptive };

/// Named presets for the four algorithms of the experimental study.
struct AlgorithmPreset {
  const char* name;
  BoundKind bound;
  PullKind pull;
};
inline constexpr AlgorithmPreset kCBRR{"CBRR(HRJN)", BoundKind::kCorner,
                                       PullKind::kRoundRobin};
inline constexpr AlgorithmPreset kCBPA{"CBPA(HRJN*)", BoundKind::kCorner,
                                       PullKind::kPotentialAdaptive};
inline constexpr AlgorithmPreset kTBRR{"TBRR", BoundKind::kTight,
                                       PullKind::kRoundRobin};
inline constexpr AlgorithmPreset kTBPA{"TBPA", BoundKind::kTight,
                                       PullKind::kPotentialAdaptive};

struct ProxRJOptions {
  int k = 10;                       ///< number of result combinations K
  BoundKind bound = BoundKind::kTight;
  PullKind pull = PullKind::kPotentialAdaptive;

  /// Tight bound, distance access only: run the dominance LP sweep every
  /// `dominance_period` pulls; 0 disables dominance (paper Figure 3(m)/(n)).
  int dominance_period = 0;
  /// Tight bound, distance access only: refresh stale partial bounds every
  /// `bound_update_period` pulls (>= 1). 1 reproduces Algorithm 2; larger
  /// values trade extra I/O for less CPU (paper §4.2 remark).
  int bound_update_period = 1;
  /// Tight bound, distance access only: solve each t(tau) through the
  /// paper's explicit QP formulation (14)/(30) instead of the closed-form
  /// water-filling path. Identical results; matches the paper's
  /// off-the-shelf-solver CPU regime (used by the dominance ablations).
  bool use_generic_qp = false;

  /// Safety rails for benchmarking; 0 disables each. When tripped, Run
  /// still returns the current buffer but ExecStats::completed is false
  /// (this is how the paper reports CBPA's DNF at n = 4).
  uint64_t max_pulls = 0;
  double time_budget_seconds = 0.0;

  /// Termination slack on the threshold test (floating-point guard).
  double epsilon = 1e-9;

  /// When non-null, records one TraceStep per pull (not owned).
  ExecTrace* trace = nullptr;

  void Apply(const AlgorithmPreset& preset) {
    bound = preset.bound;
    pull = preset.pull;
  }
};

/// Cost accounting matching the paper's reporting: sumDepths, total CPU
/// time, and the fractions spent in updateBound and in dominance tests.
struct ExecStats {
  std::vector<size_t> depths;       ///< depth(A, I, i) per relation
  size_t sum_depths = 0;            ///< the sumDepths metric
  double total_seconds = 0.0;
  double bound_seconds = 0.0;       ///< time inside updateBound
  double dominance_seconds = 0.0;   ///< included in bound_seconds
  uint64_t combinations_formed = 0;
  BoundStats bound_stats;
  double final_bound = 0.0;
  bool completed = false;           ///< false if a safety rail tripped
};

/// One result combination with materialized member tuples.
struct ResultCombination {
  double score = 0.0;
  std::vector<Tuple> tuples;  ///< one per relation, join order
};

/// The ProxRJ operator. Single-shot: construct, Run once, read stats.
class ProxRJ {
 public:
  /// `sources` must all share one access kind; `scoring` must outlive the
  /// operator. The tight bound requires SumLogEuclideanScoring; distance
  /// access requires a Euclidean-metric scorer (sources stream in
  /// Euclidean order).
  ProxRJ(std::vector<std::unique_ptr<AccessSource>> sources,
         const ScoringFunction* scoring, Vec query, ProxRJOptions options);
  ~ProxRJ();

  /// Executes Algorithm 1 and returns the top-K combinations in
  /// descending score order (fewer than K if the cross product is
  /// smaller). Returns InvalidArgument/FailedPrecondition on bad setup.
  Result<std::vector<ResultCombination>> Run();

  const ExecStats& stats() const { return stats_; }

 private:
  Status Validate() const;

  std::vector<std::unique_ptr<AccessSource>> sources_;
  const ScoringFunction* scoring_;
  Vec query_;
  ProxRJOptions options_;
  ExecStats stats_;
  bool ran_ = false;
};

/// Convenience wrapper: build sources for `relations` with the given access
/// kind and run the operator.
Result<std::vector<ResultCombination>> RunProxRJ(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction& scoring, const Vec& query,
    const ProxRJOptions& options, ExecStats* stats_out = nullptr);

}  // namespace prj

#endif  // PRJ_CORE_ENGINE_H_
