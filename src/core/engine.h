// The ProxRJ operator (paper Algorithm 1): the public entry points of the
// library. Combines an access kind, a bounding scheme and a pulling
// strategy into the four evaluated algorithms:
//
//   CBRR = corner bound + round-robin          (== HRJN   of Ilyas et al.)
//   CBPA = corner bound + potential-adaptive   (== HRJN*)
//   TBRR = tight bound  + round-robin          (instance-optimal, Thm 3.3)
//   TBPA = tight bound  + potential-adaptive   (instance-optimal, Cor 3.6,
//                                               never deeper than TBRR,
//                                               Thm 3.5)
//
// Three front ends share one stateless executor (core/executor.h):
//   * ProxRJ     -- single-shot operator over explicitly built sources;
//   * RunProxRJ  -- one-call convenience wrapper (sources built per call);
//   * Engine     -- reusable: preprocess the relations once (shared R-tree
//                   indexes or presorted snapshots), then answer unlimited
//                   TopK / RunBatch queries with no per-query index work.
#ifndef PRJ_CORE_ENGINE_H_
#define PRJ_CORE_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "access/source.h"
#include "common/arena.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/executor.h"
#include "core/query_engine.h"
#include "core/scoring.h"
#include "plan/relation_stats.h"

namespace prj {

/// The ProxRJ operator. Single-shot: construct, Run once, read stats.
class ProxRJ {
 public:
  /// `sources` must all share one access kind; `scoring` must outlive the
  /// operator. The tight bound requires SumLogEuclideanScoring; distance
  /// access requires a Euclidean-metric scorer (sources stream in
  /// Euclidean order).
  ProxRJ(std::vector<std::unique_ptr<AccessSource>> sources,
         const ScoringFunction* scoring, Vec query, ProxRJOptions options);
  ~ProxRJ();

  /// Executes Algorithm 1 and returns the top-K combinations in
  /// descending score order (fewer than K if the cross product is
  /// smaller). Returns InvalidArgument/FailedPrecondition on bad setup.
  Result<std::vector<ResultCombination>> Run();

  const ExecStats& stats() const { return stats_; }

 private:
  std::vector<std::unique_ptr<AccessSource>> sources_;
  const ScoringFunction* scoring_;
  Vec query_;
  ProxRJOptions options_;
  ExecStats stats_;
  bool ran_ = false;
};

/// Shared construction-time validation of every engine front end (Engine,
/// ShardedEngine): non-null scoring, 1..20 structurally sound relations
/// agreeing on one dimension, Euclidean metric under distance access.
Status ValidateEngineInputs(const std::vector<Relation>& relations,
                            AccessKind kind, const ScoringFunction* scoring);

/// Convenience wrapper: build sources for `relations` with the given access
/// kind (`options.backend` selects the distance implementation) and run the
/// operator.
Result<std::vector<ResultCombination>> RunProxRJ(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction& scoring, const Vec& query,
    const ProxRJOptions& options, ExecStats* stats_out = nullptr);

/// Construction-time choices of an Engine.
struct EngineOptions {
  /// Distance-access implementation backing the catalog. kRTree gives
  /// O(1) per-query setup; kPresorted re-sorts positions per query but
  /// never re-copies tuples. Ignored under score access.
  SourceBackend backend = SourceBackend::kRTree;
  /// When > 0, wrap every per-query source in a BlockedSource fetching
  /// `block_size` tuples per service invocation (paged deployments).
  size_t block_size = 0;
};

/// Reusable query engine: the separation of one-time preprocessing from
/// per-query enumeration that a multi-query deployment needs.
///
/// Construction ingests the relations once and builds a catalog of shared
/// access structures -- per-relation R-trees (IndexedRelation, reused via
/// SharedIndexDistanceSource) or presorted snapshots (RelationSnapshot) --
/// and every subsequent TopK/RunBatch call only instantiates lightweight
/// cursors over them. With the R-tree distance backend and with score
/// access, per-query source setup is O(1) in the relation size.
///
/// An Engine is immutable after Create: TopK and RunBatch are const and
/// share no mutable state, so concurrent queries from multiple threads are
/// safe (the underlying RTree supports concurrent reads). Server
/// (server/server.h) builds directly on this guarantee; it holds the
/// engine through the QueryEngine interface by pointer, so keep the Engine
/// alive and un-moved while any server is running over it.
class Engine : public QueryEngine {
 public:
  using Options = EngineOptions;

  /// Validates the relations (structural soundness, one common dimension)
  /// and builds the shared catalog. `scoring` must outlive the engine.
  static Result<Engine> Create(const std::vector<Relation>& relations,
                               AccessKind kind,
                               const ScoringFunction* scoring,
                               Options options = {});

  /// Advanced: assembles an engine over prebuilt shared catalogs instead
  /// of ingesting relations. ShardedEngine (shard/sharded_engine.h) uses
  /// this to build each per-partition index exactly once and share it
  /// among every shard engine that covers the partition. Exactly one of
  /// `indexes`/`snapshots` must be non-empty, matching (kind, backend):
  /// indexes for the R-tree distance backend, snapshots otherwise. The
  /// catalogs are taken as already validated (they come from relations
  /// that passed Create-style validation).
  static Result<Engine> FromCatalog(
      AccessKind kind, const ScoringFunction* scoring, Options options,
      std::vector<std::shared_ptr<const IndexedRelation>> indexes,
      std::vector<std::shared_ptr<const RelationSnapshot>> snapshots);

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

  /// Answers one top-K query against the shared catalog. Identical results
  /// to RunProxRJ on the same relations (tested bit-for-bit). `stats_out`,
  /// when non-null, receives a fresh ExecStats for this query alone.
  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const override;

  /// Streaming enumeration over the shared catalog: an ExecutionCursor
  /// whose per-query sources (and their arena lease) travel inside the
  /// returned cursor, so it stays valid across calls until destroyed.
  /// See QueryEngine::OpenCursor for the exactness contract.
  Result<std::unique_ptr<ResultCursor>> OpenCursor(
      const QueryRequest& request) const override;

  AccessKind kind() const override { return kind_; }
  SourceBackend backend() const { return options_.backend; }
  int dim() const override { return dim_; }
  size_t num_relations() const override {
    return indexes_.empty() ? snapshots_.size() : indexes_.size();
  }

  /// The per-query arena pool behind TopK (observability for tests: a
  /// sequential query loop must show arenas_created() == 1 however many
  /// queries ran -- the frontier-reuse property of the hot-path work).
  const ArenaPool& arena_pool() const { return *arena_pool_; }

  /// Per-relation planning statistics, computed once per catalog entry at
  /// Build time (access/source.h) -- shard engines assembled over shared
  /// catalogs via FromCatalog read the same statistics objects, so nothing
  /// is ever computed twice.
  std::vector<RelationStats> relation_stats() const override;

 private:
  Engine(AccessKind kind, const ScoringFunction* scoring, Options options,
         int dim);

  /// Per-query cursor construction over the shared catalog: O(1) for the
  /// R-tree backend and score access, O(N log N) for presorted distance
  /// access (positions re-sorted per query, payloads never copied).
  std::vector<std::unique_ptr<AccessSource>> MakeQuerySources(
      const Vec& query, Arena* arena) const;

  AccessKind kind_;
  const ScoringFunction* scoring_;
  Options options_;
  int dim_;
  /// Exactly one catalog is populated: indexes_ for the R-tree distance
  /// backend, snapshots_ otherwise.
  std::vector<std::shared_ptr<const IndexedRelation>> indexes_;
  std::vector<std::shared_ptr<const RelationSnapshot>> snapshots_;
  /// Backs each query's R-tree browse frontiers; behind a pointer so the
  /// Engine stays movable (TopK is const, the pool is internally locked).
  std::unique_ptr<ArenaPool> arena_pool_;
};

}  // namespace prj

#endif  // PRJ_CORE_ENGINE_H_
