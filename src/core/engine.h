// The ProxRJ operator (paper Algorithm 1): the public entry points of the
// library. Combines an access kind, a bounding scheme and a pulling
// strategy into the four evaluated algorithms:
//
//   CBRR = corner bound + round-robin          (== HRJN   of Ilyas et al.)
//   CBPA = corner bound + potential-adaptive   (== HRJN*)
//   TBRR = tight bound  + round-robin          (instance-optimal, Thm 3.3)
//   TBPA = tight bound  + potential-adaptive   (instance-optimal, Cor 3.6,
//                                               never deeper than TBRR,
//                                               Thm 3.5)
//
// Three front ends share one stateless executor (core/executor.h):
//   * ProxRJ     -- single-shot operator over explicitly built sources;
//   * RunProxRJ  -- one-call convenience wrapper (sources built per call);
//   * Engine     -- reusable: preprocess the relations once (shared R-tree
//                   indexes or presorted snapshots), then answer unlimited
//                   TopK / RunBatch queries with no per-query index work.
#ifndef PRJ_CORE_ENGINE_H_
#define PRJ_CORE_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/executor.h"
#include "core/scoring.h"

namespace prj {

/// The ProxRJ operator. Single-shot: construct, Run once, read stats.
class ProxRJ {
 public:
  /// `sources` must all share one access kind; `scoring` must outlive the
  /// operator. The tight bound requires SumLogEuclideanScoring; distance
  /// access requires a Euclidean-metric scorer (sources stream in
  /// Euclidean order).
  ProxRJ(std::vector<std::unique_ptr<AccessSource>> sources,
         const ScoringFunction* scoring, Vec query, ProxRJOptions options);
  ~ProxRJ();

  /// Executes Algorithm 1 and returns the top-K combinations in
  /// descending score order (fewer than K if the cross product is
  /// smaller). Returns InvalidArgument/FailedPrecondition on bad setup.
  Result<std::vector<ResultCombination>> Run();

  const ExecStats& stats() const { return stats_; }

 private:
  std::vector<std::unique_ptr<AccessSource>> sources_;
  const ScoringFunction* scoring_;
  Vec query_;
  ProxRJOptions options_;
  ExecStats stats_;
  bool ran_ = false;
};

/// Convenience wrapper: build sources for `relations` with the given access
/// kind (`options.backend` selects the distance implementation) and run the
/// operator.
Result<std::vector<ResultCombination>> RunProxRJ(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction& scoring, const Vec& query,
    const ProxRJOptions& options, ExecStats* stats_out = nullptr);

/// One query of a batch: where to evaluate and how.
struct QueryRequest {
  Vec query;
  ProxRJOptions options;
};

/// Outcome of one batched query. A failed query (bad options, dimension
/// mismatch) carries its Status here instead of failing the whole batch.
struct QueryResult {
  Status status;
  std::vector<ResultCombination> combinations;
  ExecStats stats;

  bool ok() const { return status.ok(); }
};

/// Construction-time choices of an Engine.
struct EngineOptions {
  /// Distance-access implementation backing the catalog. kRTree gives
  /// O(1) per-query setup; kPresorted re-sorts positions per query but
  /// never re-copies tuples. Ignored under score access.
  SourceBackend backend = SourceBackend::kRTree;
  /// When > 0, wrap every per-query source in a BlockedSource fetching
  /// `block_size` tuples per service invocation (paged deployments).
  size_t block_size = 0;
};

/// Reusable query engine: the separation of one-time preprocessing from
/// per-query enumeration that a multi-query deployment needs.
///
/// Construction ingests the relations once and builds a catalog of shared
/// access structures -- per-relation R-trees (IndexedRelation, reused via
/// SharedIndexDistanceSource) or presorted snapshots (RelationSnapshot) --
/// and every subsequent TopK/RunBatch call only instantiates lightweight
/// cursors over them. With the R-tree distance backend and with score
/// access, per-query source setup is O(1) in the relation size.
///
/// An Engine is immutable after Create: TopK and RunBatch are const and
/// share no mutable state, so concurrent queries from multiple threads are
/// safe (the underlying RTree supports concurrent reads). Server
/// (server/server.h) builds directly on this guarantee; it holds the
/// engine by pointer, so keep the Engine alive and un-moved while any
/// server is running over it.
class Engine {
 public:
  using Options = EngineOptions;

  /// Validates the relations (structural soundness, one common dimension)
  /// and builds the shared catalog. `scoring` must outlive the engine.
  static Result<Engine> Create(const std::vector<Relation>& relations,
                               AccessKind kind,
                               const ScoringFunction* scoring,
                               Options options = {});

  Engine(Engine&&) = default;
  Engine& operator=(Engine&&) = default;

  /// Answers one top-K query against the shared catalog. Identical results
  /// to RunProxRJ on the same relations (tested bit-for-bit). `stats_out`,
  /// when non-null, receives a fresh ExecStats for this query alone.
  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const;

  /// Evaluates one request and packages the outcome -- combinations on
  /// success, the error Status otherwise, plus this query's ExecStats --
  /// into a QueryResult. The shared building block of RunBatch and of
  /// Server's workers, so serial and concurrent serving cannot drift in
  /// how they report a query's result.
  QueryResult RunOne(const QueryRequest& request) const;

  /// Evaluates a batch of queries sequentially against the shared catalog.
  /// Always returns one QueryResult per request, in order; per-query
  /// failures are reported in QueryResult::status. For the concurrent
  /// counterpart -- the same contract, fanned across a worker pool -- see
  /// Server::SubmitBatch in server/server.h.
  std::vector<QueryResult> RunBatch(
      std::span<const QueryRequest> requests) const;

  AccessKind kind() const { return kind_; }
  SourceBackend backend() const { return options_.backend; }
  int dim() const { return dim_; }
  size_t num_relations() const {
    return indexes_.empty() ? snapshots_.size() : indexes_.size();
  }

 private:
  Engine(AccessKind kind, const ScoringFunction* scoring, Options options,
         int dim);

  /// Per-query cursor construction over the shared catalog: O(1) for the
  /// R-tree backend and score access, O(N log N) for presorted distance
  /// access (positions re-sorted per query, payloads never copied).
  std::vector<std::unique_ptr<AccessSource>> MakeQuerySources(
      const Vec& query) const;

  AccessKind kind_;
  const ScoringFunction* scoring_;
  Options options_;
  int dim_;
  /// Exactly one catalog is populated: indexes_ for the R-tree distance
  /// backend, snapshots_ otherwise.
  std::vector<std::shared_ptr<const IndexedRelation>> indexes_;
  std::vector<std::shared_ptr<const RelationSnapshot>> snapshots_;
};

}  // namespace prj

#endif  // PRJ_CORE_ENGINE_H_
