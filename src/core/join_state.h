// Shared execution state of Algorithm 1: the pulled prefixes P_i and the
// per-relation statistics (first/last distance and score) that every
// bounding scheme reads.
#ifndef PRJ_CORE_JOIN_STATE_H_
#define PRJ_CORE_JOIN_STATE_H_

#include <vector>

#include "access/relation.h"
#include "access/source.h"
#include "common/vec.h"

namespace prj {

struct RelationState {
  std::string name;
  double sigma_max = 1.0;
  std::vector<Tuple> seen;            ///< P_i in access order
  std::vector<double> dist_q;         ///< Euclidean distance of seen[j] from q
  bool exhausted = false;

  size_t depth() const { return seen.size(); }
  /// delta(x(R_i[1]), q); 0 by convention when nothing was pulled (§3.1).
  double first_dist() const { return seen.empty() ? 0.0 : dist_q.front(); }
  /// delta_i = delta(x(R_i[p_i]), q); 0 by convention at depth 0.
  double last_dist() const { return seen.empty() ? 0.0 : dist_q.back(); }
  /// sigma(R_i[1]); sigma_max by convention at depth 0 (App. C).
  double first_score() const {
    return seen.empty() ? sigma_max : seen.front().score;
  }
  /// sigma(R_i[p_i]); sigma_max by convention at depth 0.
  double last_score() const {
    return seen.empty() ? sigma_max : seen.back().score;
  }
};

class JoinState {
 public:
  JoinState(Vec query, AccessKind kind,
            const std::vector<std::unique_ptr<AccessSource>>& sources);

  int n() const { return static_cast<int>(rels_.size()); }
  const Vec& query() const { return query_; }
  AccessKind kind() const { return kind_; }

  const RelationState& rel(int i) const {
    return rels_[static_cast<size_t>(i)];
  }

  /// Appends a freshly pulled tuple to P_i and updates its statistics.
  void Append(int i, Tuple tuple);
  void MarkExhausted(int i);

  /// True if every relation is exhausted.
  bool AllExhausted() const;
  /// Total number of tuples pulled (the sumDepths metric).
  size_t SumDepths() const;

 private:
  Vec query_;
  AccessKind kind_;
  std::vector<RelationState> rels_;
};

}  // namespace prj

#endif  // PRJ_CORE_JOIN_STATE_H_
