#include "core/tight_bound.h"

#include <bit>
#include <cmath>
#include <limits>

#include "common/timer.h"
#include "solver/qp.h"
#include "solver/waterfill.h"

namespace prj {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shared setup: computes the water-filling problem for a partial
// combination with members `seen` of subset `mask`, given per-relation
// unseen log-score bounds and distance lower bounds for the complement.
WaterfillProblem BuildWaterfill(const SumLogEuclideanScoring& scoring,
                                const Vec& q, int n, uint32_t mask,
                                const std::vector<const Tuple*>& seen,
                                const std::vector<double>& unseen_log_scores,
                                const std::vector<double>& deltas,
                                Vec* nu_centered_out) {
  const int m = std::popcount(mask);
  PRJ_CHECK_EQ(static_cast<int>(seen.size()), m);
  PRJ_CHECK_LT(m, n);

  Vec nu_centered(q.dim());
  double base = 0.0;
  for (const Tuple* t : seen) {
    Vec centered = t->x;
    centered -= q;
    nu_centered += centered;
    base += scoring.ws() * std::log(t->score) -
            (scoring.wq() + scoring.wmu()) * centered.SquaredNorm();
  }
  if (m > 0) nu_centered /= static_cast<double>(m);
  const double nu_norm = (m > 0) ? nu_centered.Norm() : 0.0;

  WaterfillProblem p;
  p.wq = scoring.wq();
  p.wmu = scoring.wmu();
  p.n = n;
  p.m = m;
  p.nu = nu_norm;
  double unseen_log = 0.0;
  for (int j = 0; j < n; ++j) {
    if (mask & (1u << j)) continue;
    unseen_log += scoring.ws() * std::log(unseen_log_scores[static_cast<size_t>(j)]);
    p.deltas.push_back(deltas.empty() ? 0.0 : deltas[static_cast<size_t>(j)]);
  }
  p.c0 = base + unseen_log +
         scoring.wmu() * static_cast<double>(m) * static_cast<double>(m) /
             static_cast<double>(n) * nu_norm * nu_norm;
  if (nu_centered_out) *nu_centered_out = nu_centered;
  return p;
}

// Reconstructs the optimal unseen locations y_j = q + theta_j * u
// (eq. (15)), with u along the partial centroid (arbitrary axis if the
// centroid coincides with the query, where the value is direction-free).
void ReconstructLocations(const Vec& q, int n, uint32_t mask,
                          const std::vector<const Tuple*>& seen,
                          const Vec& nu_centered,
                          const std::vector<double>& theta,
                          std::vector<Vec>* y_out) {
  Vec u(q.dim());
  if (nu_centered.Norm() > 1e-12) {
    u = nu_centered.Normalized();
  } else {
    u = Vec::Basis(q.dim(), 0);
  }
  y_out->assign(static_cast<size_t>(n), Vec(q.dim()));
  size_t seen_idx = 0, unseen_idx = 0;
  for (int j = 0; j < n; ++j) {
    if (mask & (1u << j)) {
      (*y_out)[static_cast<size_t>(j)] = seen[seen_idx++]->x;
    } else {
      Vec y = q;
      y += u * theta[unseen_idx++];
      (*y_out)[static_cast<size_t>(j)] = y;
    }
  }
}

}  // namespace

double TightPartialBoundDistance(const SumLogEuclideanScoring& scoring,
                                 const Vec& q, int n, uint32_t mask,
                                 const std::vector<const Tuple*>& seen,
                                 const std::vector<double>& sigma_max,
                                 const std::vector<double>& deltas,
                                 std::vector<double>* theta_out,
                                 std::vector<Vec>* y_out) {
  PRJ_CHECK_EQ(static_cast<int>(sigma_max.size()), n);
  PRJ_CHECK_EQ(static_cast<int>(deltas.size()), n);
  Vec nu_centered;
  const WaterfillProblem p =
      BuildWaterfill(scoring, q, n, mask, seen, sigma_max, deltas, &nu_centered);
  const WaterfillResult r = SolveWaterfill(p);
  if (theta_out) *theta_out = r.theta;
  if (y_out) ReconstructLocations(q, n, mask, seen, nu_centered, r.theta, y_out);
  return r.value;
}

double TightPartialBoundScore(const SumLogEuclideanScoring& scoring,
                              const Vec& q, int n, uint32_t mask,
                              const std::vector<const Tuple*>& seen,
                              const std::vector<double>& unseen_scores,
                              std::vector<Vec>* y_out) {
  PRJ_CHECK_EQ(static_cast<int>(unseen_scores.size()), n);
  // Score-based access imposes no geometric constraint: same objective with
  // all distance lower bounds at zero, and the best unseen score is the
  // frontier score instead of sigma_max (eq. (39)/(41)).
  Vec nu_centered;
  const std::vector<double> zero_deltas(static_cast<size_t>(n), 0.0);
  const WaterfillProblem p = BuildWaterfill(scoring, q, n, mask, seen,
                                            unseen_scores, zero_deltas,
                                            &nu_centered);
  const WaterfillResult r = SolveWaterfill(p);
  if (y_out) ReconstructLocations(q, n, mask, seen, nu_centered, r.theta, y_out);
  return r.value;
}

double TightBoundValueByReconstruction(const SumLogEuclideanScoring& scoring,
                                       const Vec& q, int n, uint32_t mask,
                                       const std::vector<const Tuple*>& seen,
                                       const std::vector<double>& scores_unseen,
                                       const std::vector<Vec>& y) {
  PRJ_CHECK_EQ(static_cast<int>(y.size()), n);
  std::vector<Tuple> storage;
  storage.reserve(static_cast<size_t>(n));
  std::vector<const Tuple*> combo(static_cast<size_t>(n), nullptr);
  size_t seen_idx = 0;
  for (int j = 0; j < n; ++j) {
    if (mask & (1u << j)) {
      combo[static_cast<size_t>(j)] = seen[seen_idx++];
    } else {
      Tuple t;
      t.id = -1;
      t.score = scores_unseen[static_cast<size_t>(j)];
      t.x = y[static_cast<size_t>(j)];
      storage.push_back(std::move(t));
    }
  }
  size_t k = 0;
  for (int j = 0; j < n; ++j) {
    if (!(mask & (1u << j))) combo[static_cast<size_t>(j)] = &storage[k++];
  }
  return scoring.CombinationScore(q, combo);
}

// ---------------------------------------------------------------------------
// TightBoundDistance
// ---------------------------------------------------------------------------

TightBoundDistance::TightBoundDistance(const JoinState* state,
                                       const SumLogEuclideanScoring* scoring,
                                       int dominance_period,
                                       int recompute_period,
                                       double* dominance_seconds_sink,
                                       bool use_generic_qp)
    : state_(state),
      scoring_(scoring),
      dominance_period_(dominance_period),
      recompute_period_(recompute_period),
      dominance_seconds_sink_(dominance_seconds_sink),
      use_generic_qp_(use_generic_qp) {
  PRJ_CHECK_GE(dominance_period_, 0);
  PRJ_CHECK_GE(recompute_period_, 1);
  const int n = state_->n();
  PRJ_CHECK_LE(n, 20);
  const uint32_t full = (1u << n) - 1u;
  subsets_.resize(full);  // every proper subset, indexed by mask
  for (uint32_t mask = 0; mask < full; ++mask) {
    SubsetStore& ss = subsets_[mask];
    ss.mask = mask;
    ss.m = std::popcount(mask);
    ss.unseen_log = 0.0;
    for (int j = 0; j < n; ++j) {
      if (mask & (1u << j)) continue;
      ss.unseen_log +=
          scoring_->ws() * std::log(state_->rel(j).sigma_max);
    }
  }
  // The empty partial <> exists from the start; its bound is +inf until the
  // first recomputation (nothing retrieved means nothing is constrained).
  Partial empty;
  empty.nu_centered = Vec(state_->query().dim());
  empty.t = kInf;
  subsets_[0].partials.push_back(std::move(empty));
  subsets_[0].t_max = kInf;
  ++stats_.partials_total;
}

TightBoundDistance::Partial TightBoundDistance::MakePartial(
    const SubsetStore& ss, std::vector<uint32_t> pos) const {
  Partial p;
  p.pos = std::move(pos);
  const Vec& q = state_->query();
  Vec nu(q.dim());
  double base = 0.0;
  size_t k = 0;
  for (int j = 0; j < state_->n(); ++j) {
    if (!(ss.mask & (1u << j))) continue;
    const Tuple& t = state_->rel(j).seen[p.pos[k++]];
    Vec centered = t.x;
    centered -= q;
    nu += centered;
    base += scoring_->ws() * std::log(t.score) -
            (scoring_->wq() + scoring_->wmu()) * centered.SquaredNorm();
  }
  if (ss.m > 0) nu /= static_cast<double>(ss.m);
  p.nu_centered = nu;
  p.nu_norm = (ss.m > 0) ? nu.Norm() : 0.0;
  p.base_const = base;
  return p;
}

double TightBoundDistance::SolvePartialGenericQp(const SubsetStore& ss,
                                                 const Partial& p) {
  // The paper's route (§3.2.1): fix the seen variables to the projections
  // (13) of their locations onto the centroid ray, lower-bound the unseen
  // ones by the current deltas, minimize theta^T H theta (eq. (30)-(34))
  // with the active-set QP, reconstruct y* via (15), and evaluate the true
  // aggregate score of the completion. Same optimum as the water-filling
  // path, at the cost regime of an off-the-shelf solver.
  const int n = state_->n();
  const Vec& q = state_->query();
  ++stats_.qp_solves;

  // Gather members and the ray direction.
  std::vector<const Tuple*> members;
  size_t k = 0;
  for (int j = 0; j < n; ++j) {
    if (!(ss.mask & (1u << j))) continue;
    members.push_back(&state_->rel(j).seen[p.pos[k++]]);
  }
  Vec u(q.dim());
  if (p.nu_norm > 1e-12) {
    u = p.nu_centered.Normalized();
  } else if (q.dim() > 0) {
    u = Vec::Basis(q.dim(), 0);
  }

  QpProblem qp;
  qp.h = Matrix(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      const double proj = (r == c ? 1.0 : 0.0) - 1.0 / n;
      qp.h(r, c) =
          2.0 * (scoring_->wmu() * proj + (r == c ? scoring_->wq() : 0.0));
    }
  }
  qp.g.assign(static_cast<size_t>(n), 0.0);
  qp.kind.assign(static_cast<size_t>(n), VarKind::kLowerBounded);
  qp.fixed_value.assign(static_cast<size_t>(n), 0.0);
  qp.lower_bound.assign(static_cast<size_t>(n), 0.0);
  size_t member_idx = 0;
  for (int j = 0; j < n; ++j) {
    const size_t sj = static_cast<size_t>(j);
    if (ss.mask & (1u << j)) {
      // theta_j = P(x(tau_j)) of eq. (13).
      Vec centered = members[member_idx++]->x;
      centered -= q;
      qp.kind[sj] = VarKind::kFixed;
      qp.fixed_value[sj] = centered.Dot(u);
    } else {
      qp.lower_bound[sj] = state_->rel(j).last_dist();
    }
  }
  const QpResult qr = SolveQp(qp);
  PRJ_CHECK(qr.ok) << "tight-bound QP failed";

  // Reconstruct the unseen locations (15) and evaluate the true score.
  std::vector<double> scores_unseen(static_cast<size_t>(n), 0.0);
  std::vector<Vec> y(static_cast<size_t>(n), Vec(q.dim()));
  member_idx = 0;
  for (int j = 0; j < n; ++j) {
    const size_t sj = static_cast<size_t>(j);
    if (ss.mask & (1u << j)) {
      y[sj] = members[member_idx++]->x;
    } else {
      scores_unseen[sj] = state_->rel(j).sigma_max;
      y[sj] = q + u * qr.x[sj];
    }
  }
  return TightBoundValueByReconstruction(*scoring_, q, n, ss.mask, members,
                                         scores_unseen, y);
}

double TightBoundDistance::SolvePartial(const SubsetStore& ss,
                                        const Partial& p) {
  if (use_generic_qp_) return SolvePartialGenericQp(ss, p);
  const int n = state_->n();
  WaterfillProblem wp;
  wp.wq = scoring_->wq();
  wp.wmu = scoring_->wmu();
  wp.n = n;
  wp.m = ss.m;
  wp.nu = p.nu_norm;
  for (int j = 0; j < n; ++j) {
    if (ss.mask & (1u << j)) continue;
    wp.deltas.push_back(state_->rel(j).last_dist());
  }
  wp.c0 = p.base_const + ss.unseen_log +
          scoring_->wmu() * static_cast<double>(ss.m) *
              static_cast<double>(ss.m) / static_cast<double>(n) * p.nu_norm *
              p.nu_norm;
  ++stats_.qp_solves;
  return SolveWaterfill(wp).value;
}

void TightBoundDistance::AddNewPartials(SubsetStore* ss, int i) {
  // New partials of PC(M), M containing i, are those whose i-th member is
  // the just-pulled tuple (Algorithm 2 line 7, first disjunct).
  const uint32_t new_pos_i =
      static_cast<uint32_t>(state_->rel(i).depth()) - 1u;
  std::vector<int> members;
  for (int j = 0; j < state_->n(); ++j) {
    if (ss->mask & (1u << j)) members.push_back(j);
  }
  // Odometer over the prefixes of the other members.
  std::vector<uint32_t> counters(members.size(), 0);
  std::vector<uint32_t> limits(members.size());
  for (size_t a = 0; a < members.size(); ++a) {
    limits[a] = (members[a] == i)
                    ? 1u
                    : static_cast<uint32_t>(state_->rel(members[a]).depth());
    if (limits[a] == 0) return;  // PC(M) still empty
  }
  for (;;) {
    std::vector<uint32_t> pos(members.size());
    for (size_t a = 0; a < members.size(); ++a) {
      pos[a] = (members[a] == i) ? new_pos_i : counters[a];
    }
    Partial p = MakePartial(*ss, std::move(pos));
    p.t = SolvePartial(*ss, p);
    if (!(p.t <= ss->t_max)) ss->t_max = p.t;
    ss->partials.push_back(std::move(p));
    ++stats_.partials_total;
    ss->dominance_dirty = true;
    // Advance the odometer.
    size_t a = 0;
    for (; a < members.size(); ++a) {
      if (members[a] == i) continue;
      if (++counters[a] < limits[a]) break;
      counters[a] = 0;
    }
    if (a == members.size()) break;
  }
}

void TightBoundDistance::RefreshMax(SubsetStore* ss) const {
  double t_max = -kInf;
  for (const Partial& p : ss->partials) {
    if (!p.dominated && p.t > t_max) t_max = p.t;
  }
  ss->t_max = t_max;
}

void TightBoundDistance::RecomputeStore(SubsetStore* ss) {
  for (Partial& p : ss->partials) {
    if (p.dominated) continue;
    p.t = SolvePartial(*ss, p);
  }
  RefreshMax(ss);
  ss->stale = false;
}

void TightBoundDistance::RunDominance(SubsetStore* ss) {
  if (ss->m == 0) return;
  std::vector<DominanceEntry> entries(ss->partials.size());
  std::vector<bool> active(ss->partials.size());
  size_t active_count = 0;
  const int n = state_->n();
  for (size_t a = 0; a < ss->partials.size(); ++a) {
    entries[a].nu_centered = ss->partials[a].nu_centered;
    entries[a].c = ss->partials[a].base_const + ss->unseen_log +
                   scoring_->wmu() * static_cast<double>(ss->m) *
                       static_cast<double>(ss->m) / static_cast<double>(n) *
                       ss->partials[a].nu_norm * ss->partials[a].nu_norm;
    active[a] = !ss->partials[a].dominated;
    if (active[a]) ++active_count;
  }
  if (active_count < 2) return;
  const double b_scale = -scoring_->wmu() *
                         static_cast<double>(n - ss->m) *
                         static_cast<double>(ss->m) / static_cast<double>(n);
  for (size_t a = 0; a < ss->partials.size(); ++a) {
    if (!active[a]) continue;
    if (PartialIsDominated(a, entries, active, b_scale, &stats_.lp_solves,
                           &ss->partials[a].witness)) {
      active[a] = false;
      ss->partials[a].dominated = true;
      ++stats_.partials_dominated;
    }
  }
  RefreshMax(ss);
}

void TightBoundDistance::OnPull(int i) {
  ++pulls_;
  ++stats_.bound_updates;
  const uint32_t bit = 1u << i;
  for (SubsetStore& ss : subsets_) {
    if (ss.mask & bit) {
      AddNewPartials(&ss, i);
    } else {
      ss.stale = true;  // delta_i grew; cached bounds are now upper estimates
    }
  }
  if (pulls_ % static_cast<uint64_t>(recompute_period_) == 0) {
    for (SubsetStore& ss : subsets_) {
      if (ss.stale) RecomputeStore(&ss);
    }
  }
  if (dominance_period_ > 0 &&
      pulls_ % static_cast<uint64_t>(dominance_period_) == 0) {
    double local_sink = 0.0;
    {
      ScopedTimer timer(dominance_seconds_sink_ ? dominance_seconds_sink_
                                                : &local_sink);
      for (SubsetStore& ss : subsets_) {
        if (ss.dominance_dirty) {
          RunDominance(&ss);
          ss.dominance_dirty = false;
        }
      }
    }
  }
}

void TightBoundDistance::OnExhausted(int /*i*/) {
  // Validity is re-derived from JoinState on every bound()/Potential call.
}

bool TightBoundDistance::StoreValid(const SubsetStore& ss) const {
  // A completion needs one unseen tuple from every complement relation.
  for (int j = 0; j < state_->n(); ++j) {
    if (ss.mask & (1u << j)) continue;
    if (state_->rel(j).exhausted) return false;
  }
  return true;
}

double TightBoundDistance::bound() const {
  double t = -kInf;
  for (const SubsetStore& ss : subsets_) {
    if (!StoreValid(ss)) continue;
    if (ss.t_max > t) t = ss.t_max;
  }
  return t;
}

double TightBoundDistance::Potential(int i) const {
  if (state_->rel(i).exhausted) return -kInf;
  double t = -kInf;
  const uint32_t bit = 1u << i;
  for (const SubsetStore& ss : subsets_) {
    if (ss.mask & bit) continue;  // pot_i ranges over M not containing i
    if (!StoreValid(ss)) continue;
    if (ss.t_max > t) t = ss.t_max;
  }
  return t;
}

double TightBoundDistance::SubsetBound(uint32_t mask) const {
  PRJ_CHECK_LT(mask, subsets_.size());
  return subsets_[mask].t_max;
}

bool TightBoundDistance::IsPartialDominated(uint32_t mask, size_t index) const {
  PRJ_CHECK_LT(mask, subsets_.size());
  PRJ_CHECK_LT(index, subsets_[mask].partials.size());
  return subsets_[mask].partials[index].dominated;
}

size_t TightBoundDistance::NumPartials(uint32_t mask) const {
  PRJ_CHECK_LT(mask, subsets_.size());
  return subsets_[mask].partials.size();
}

// ---------------------------------------------------------------------------
// TightBoundScore
// ---------------------------------------------------------------------------

TightBoundScore::TightBoundScore(const JoinState* state,
                                 const SumLogEuclideanScoring* scoring)
    : state_(state), scoring_(scoring) {
  const int n = state_->n();
  PRJ_CHECK_LE(n, 20);
  best_.resize((1u << n) - 1u);
  // M = empty: the single empty partial is always present.
  best_[0].present = true;
}

std::vector<double> TightBoundScore::CurrentUnseenScores() const {
  std::vector<double> s(static_cast<size_t>(state_->n()));
  for (int j = 0; j < state_->n(); ++j) {
    s[static_cast<size_t>(j)] = state_->rel(j).last_score();
  }
  return s;
}

double TightBoundScore::PartialValue(uint32_t mask,
                                     const std::vector<uint32_t>& pos) const {
  std::vector<const Tuple*> members;
  size_t k = 0;
  for (int j = 0; j < state_->n(); ++j) {
    if (!(mask & (1u << j))) continue;
    members.push_back(&state_->rel(j).seen[pos[k++]]);
  }
  ++stats_.qp_solves;
  return TightPartialBoundScore(*scoring_, state_->query(), state_->n(), mask,
                                members, CurrentUnseenScores());
}

void TightBoundScore::OnPull(int i) {
  ++stats_.bound_updates;
  const uint32_t bit = 1u << i;
  const uint32_t new_pos_i = static_cast<uint32_t>(state_->rel(i).depth()) - 1u;
  for (uint32_t mask = 0; mask < best_.size(); ++mask) {
    if (!(mask & bit)) continue;
    // Enumerate the new partials (those using the new tuple at slot i) and
    // keep the best among {current best} U {new ones} (Algorithm 3). The
    // comparison at current frontier scores is depth-invariant within M.
    std::vector<int> members;
    for (int j = 0; j < state_->n(); ++j) {
      if (mask & (1u << j)) members.push_back(j);
    }
    std::vector<uint32_t> counters(members.size(), 0);
    std::vector<uint32_t> limits(members.size());
    bool empty = false;
    for (size_t a = 0; a < members.size(); ++a) {
      limits[a] = (members[a] == i)
                      ? 1u
                      : static_cast<uint32_t>(state_->rel(members[a]).depth());
      if (limits[a] == 0) empty = true;
    }
    if (empty) continue;
    BestPartial& best = best_[mask];
    double best_value = -kInf;
    if (best.present) best_value = PartialValue(mask, best.pos);
    for (;;) {
      std::vector<uint32_t> pos(members.size());
      for (size_t a = 0; a < members.size(); ++a) {
        pos[a] = (members[a] == i) ? new_pos_i : counters[a];
      }
      ++stats_.partials_total;
      const double v = PartialValue(mask, pos);
      if (v > best_value) {
        best_value = v;
        best.pos = pos;
        best.present = true;
      } else {
        ++stats_.partials_dominated;  // discarded immediately (Algorithm 3)
      }
      size_t a = 0;
      for (; a < members.size(); ++a) {
        if (members[a] == i) continue;
        if (++counters[a] < limits[a]) break;
        counters[a] = 0;
      }
      if (a == members.size()) break;
    }
  }
}

void TightBoundScore::OnExhausted(int /*i*/) {}

double TightBoundScore::bound() const {
  double t = -kInf;
  for (int i = 0; i < state_->n(); ++i) {
    t = std::max(t, Potential(i));
  }
  return t;
}

double TightBoundScore::Potential(int i) const {
  if (state_->rel(i).exhausted) return -kInf;
  double t = -kInf;
  const uint32_t bit = 1u << i;
  for (uint32_t mask = 0; mask < best_.size(); ++mask) {
    if (mask & bit) continue;
    if (!best_[mask].present) continue;
    bool valid = true;
    for (int j = 0; j < state_->n(); ++j) {
      if ((mask & (1u << j)) == 0 && state_->rel(j).exhausted) {
        valid = false;
        break;
      }
    }
    if (!valid) continue;
    t = std::max(t, PartialValue(mask, best_[mask].pos));
  }
  return t;
}

}  // namespace prj
