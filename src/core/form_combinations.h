// Internal helper shared by the batch engine and the streaming operator:
// forms every new combination created by the tuple just appended to P_i
// (Algorithm 1 line 6: P_1 x ... x {tau_i} x ... x P_n), scores it, and
// hands it to the sink. Returns how many were formed.
#ifndef PRJ_CORE_FORM_COMBINATIONS_H_
#define PRJ_CORE_FORM_COMBINATIONS_H_

#include <cstdint>
#include <vector>

#include "core/join_state.h"
#include "core/scoring.h"
#include "core/topk.h"

namespace prj {
namespace internal {

template <typename Sink>
uint64_t FormNewCombinations(const JoinState& state,
                             const ScoringFunction& scoring, int i,
                             Sink&& sink) {
  const int n = state.n();
  const uint32_t new_pos = static_cast<uint32_t>(state.rel(i).depth()) - 1u;
  std::vector<uint32_t> limits(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    if (j == i) continue;
    limits[static_cast<size_t>(j)] = static_cast<uint32_t>(state.rel(j).depth());
    if (limits[static_cast<size_t>(j)] == 0) return 0;
  }
  std::vector<uint32_t> pos(static_cast<size_t>(n), 0);
  pos[static_cast<size_t>(i)] = new_pos;

  // Reused scratch buffers keep the per-combination cost allocation-free.
  std::vector<const Vec*> xs(static_cast<size_t>(n));
  std::vector<double> s(static_cast<size_t>(n));
  uint64_t formed = 0;
  const Vec& q = state.query();
  for (;;) {
    for (int j = 0; j < n; ++j) {
      xs[static_cast<size_t>(j)] =
          &state.rel(j).seen[pos[static_cast<size_t>(j)]].x;
    }
    const Vec mu = scoring.Centroid(xs);
    for (int j = 0; j < n; ++j) {
      const Tuple& t = state.rel(j).seen[pos[static_cast<size_t>(j)]];
      s[static_cast<size_t>(j)] = scoring.ProximityWeightedScore(
          j, t.score, scoring.Distance(t.x, q), scoring.Distance(t.x, mu));
    }
    Combination combo;
    combo.positions = pos;
    combo.score = scoring.Aggregate(s);
    sink(std::move(combo));
    ++formed;

    int j = 0;
    for (; j < n; ++j) {
      if (j == i) continue;
      if (++pos[static_cast<size_t>(j)] < limits[static_cast<size_t>(j)]) break;
      pos[static_cast<size_t>(j)] = 0;
    }
    if (j == n) break;
  }
  return formed;
}

}  // namespace internal
}  // namespace prj

#endif  // PRJ_CORE_FORM_COMBINATIONS_H_
