#include "core/query_engine.h"

#include <cstring>
#include <utility>

#include "core/result_cursor.h"
#include "plan/relation_stats.h"

namespace prj {

Result<std::unique_ptr<ResultCursor>> QueryEngine::OpenCursor(
    const QueryRequest&) const {
  return Status::Unimplemented(
      "this engine does not support streaming cursors");
}

std::vector<RelationStats> QueryEngine::relation_stats() const { return {}; }

QueryResult QueryEngine::RunOne(const QueryRequest& request) const {
  QueryResult qr;
  auto combinations = TopK(request.query, request.options, &qr.stats);
  if (combinations.ok()) {
    qr.combinations = std::move(*combinations);
  } else {
    qr.status = combinations.status();
  }
  return qr;
}

std::vector<QueryResult> QueryEngine::RunBatch(
    std::span<const QueryRequest> requests) const {
  std::vector<QueryResult> results;
  results.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    results.push_back(RunOne(request));
  }
  return results;
}

namespace {

void AppendU64(uint64_t v, std::string* out) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(v));
}

void AppendI64(int64_t v, std::string* out) {
  AppendU64(static_cast<uint64_t>(v), out);
}

// Bit pattern with -0.0 canonicalized to +0.0: the two compare equal and
// yield identical executions, so they must share one key.
void AppendDouble(double v, std::string* out) {
  if (v == 0.0) v = 0.0;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(bits, out);
}

// Overload set mapping each KEY field type to its canonical byte
// encoding. A KEY field whose type has no overload here fails to compile:
// choosing an encoding is part of registering the field.
void AppendCanonicalField(int v, std::string* out) { AppendI64(v, out); }
void AppendCanonicalField(BoundKind v, std::string* out) {
  out->push_back(static_cast<char>(v));
}
void AppendCanonicalField(PullKind v, std::string* out) {
  out->push_back(static_cast<char>(v));
}
void AppendCanonicalField(bool v, std::string* out) {
  out->push_back(v ? 1 : 0);
}
void AppendCanonicalField(uint64_t v, std::string* out) { AppendU64(v, out); }
void AppendCanonicalField(double v, std::string* out) { AppendDouble(v, out); }

}  // namespace

// Generated from the PRJ_OPTION_FIELDS registry (core/executor.h): KEY
// rows are encoded in declaration order (byte-compatible with the
// hand-written encoding this replaces -- CanonicalRequestKeyTest pins the
// separations); EXEMPT rows (kCanonicalKeyExemptFields: backend, the
// planner hints, trace) are skipped. They pick among bit-identical plans,
// so two requests differing only in an exempt field ARE the same query --
// sharing a cache entry across them is the point, not a collision.
void AppendCanonicalOptions(const ProxRJOptions& options, std::string* out) {
#define PRJ_OPTION_APPEND_KEY(NAME) AppendCanonicalField(options.NAME, out);
#define PRJ_OPTION_APPEND_EXEMPT(NAME)
#define PRJ_OPTION_APPEND_FIELD(CLASS, TYPE, NAME, DEFAULT) \
  PRJ_OPTION_APPEND_##CLASS(NAME)
  PRJ_OPTION_FIELDS(PRJ_OPTION_APPEND_FIELD)
#undef PRJ_OPTION_APPEND_FIELD
#undef PRJ_OPTION_APPEND_EXEMPT
#undef PRJ_OPTION_APPEND_KEY
}

std::string CanonicalRequestKey(const Vec& query, const ProxRJOptions& options,
                                uint64_t data_epoch) {
  std::string key;
  key.reserve(static_cast<size_t>(query.dim() + 9) * sizeof(uint64_t));
  AppendI64(query.dim(), &key);
  for (int i = 0; i < query.dim(); ++i) {
    AppendDouble(query[i], &key);
  }
  AppendCanonicalOptions(options, &key);
  AppendU64(data_epoch, &key);
  return key;
}

std::string CanonicalEnumerationKey(const Vec& query,
                                    const ProxRJOptions& options,
                                    uint64_t data_epoch) {
  // A cursor's stream is k-independent (prefix exactness: k only decides
  // where the shared trajectory stops), so requests differing only in k
  // address the same enumeration. Every other canonical field stays: the
  // safety rails and epsilon DO change what a cursor emits.
  ProxRJOptions canonical = options;
  canonical.k = 1;
  return CanonicalRequestKey(query, canonical, data_epoch);
}

uint64_t KeyFingerprint(std::string_view key) {
  uint64_t hash = 0xcbf29ce484222325ull;  // FNV-1a 64-bit offset basis
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint64_t RequestFingerprint(const Vec& query, const ProxRJOptions& options) {
  return KeyFingerprint(CanonicalRequestKey(query, options));
}

bool CanonicalOptionsEqual(const ProxRJOptions& a, const ProxRJOptions& b) {
  std::string ka, kb;
  AppendCanonicalOptions(a, &ka);
  AppendCanonicalOptions(b, &kb);
  return ka == kb;
}

bool CanonicalRequestEqual(const QueryRequest& a, const QueryRequest& b) {
  return CanonicalRequestKey(a) == CanonicalRequestKey(b);
}

namespace {

void Explain(std::string* why, const std::string& message) {
  if (why) *why = message;
}

}  // namespace

bool BitIdenticalResults(const std::vector<ResultCombination>& a,
                         const std::vector<ResultCombination>& b,
                         std::string* why) {
  if (a.size() != b.size()) {
    Explain(why, std::to_string(a.size()) + " combinations vs " +
                     std::to_string(b.size()));
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].score != b[i].score) {
      Explain(why, "rank " + std::to_string(i) + ": scores differ");
      return false;
    }
    if (a[i].tuples.size() != b[i].tuples.size()) {
      Explain(why, "rank " + std::to_string(i) + ": member counts differ");
      return false;
    }
    for (size_t j = 0; j < a[i].tuples.size(); ++j) {
      if (a[i].tuples[j].id != b[i].tuples[j].id) {
        Explain(why, "rank " + std::to_string(i) + " member " +
                         std::to_string(j) + ": ids " +
                         std::to_string(a[i].tuples[j].id) + " vs " +
                         std::to_string(b[i].tuples[j].id));
        return false;
      }
    }
  }
  return true;
}

}  // namespace prj
