// Exhaustive reference evaluation: scores the entire cross product and
// returns the top K. Exponential in n -- used as the correctness oracle in
// tests and to sanity-check benchmark instances, never in production paths.
#ifndef PRJ_CORE_BRUTE_FORCE_H_
#define PRJ_CORE_BRUTE_FORCE_H_

#include <vector>

#include "access/relation.h"
#include "core/engine.h"
#include "core/scoring.h"

namespace prj {

/// Top-k combinations of the full cross product under `scoring`, ordered by
/// (score desc, lexicographic member tuple ids asc). Returns fewer than k
/// when the cross product is smaller; empty if any relation is empty.
std::vector<ResultCombination> BruteForceTopK(
    const std::vector<Relation>& relations, const ScoringFunction& scoring,
    const Vec& query, int k);

}  // namespace prj

#endif  // PRJ_CORE_BRUTE_FORCE_H_
