#include "core/brute_force.h"

#include "core/topk.h"

namespace prj {

std::vector<ResultCombination> BruteForceTopK(
    const std::vector<Relation>& relations, const ScoringFunction& scoring,
    const Vec& query, int k) {
  PRJ_CHECK_GE(k, 1);
  const int n = static_cast<int>(relations.size());
  PRJ_CHECK_GE(n, 1);
  for (const Relation& r : relations) {
    if (r.empty()) return {};
  }

  TopKBuffer buffer(static_cast<size_t>(k));
  std::vector<uint32_t> pos(static_cast<size_t>(n), 0);
  std::vector<const Vec*> xs(static_cast<size_t>(n));
  std::vector<double> s(static_cast<size_t>(n));
  for (;;) {
    for (int j = 0; j < n; ++j) {
      xs[static_cast<size_t>(j)] =
          &relations[static_cast<size_t>(j)].tuple(pos[static_cast<size_t>(j)]).x;
    }
    const Vec mu = scoring.Centroid(xs);
    for (int j = 0; j < n; ++j) {
      const Tuple& t =
          relations[static_cast<size_t>(j)].tuple(pos[static_cast<size_t>(j)]);
      s[static_cast<size_t>(j)] = scoring.ProximityWeightedScore(
          j, t.score, scoring.Distance(t.x, query), scoring.Distance(t.x, mu));
    }
    Combination combo;
    combo.positions = pos;
    combo.score = scoring.Aggregate(s);
    buffer.Offer(std::move(combo));

    int j = 0;
    for (; j < n; ++j) {
      if (++pos[static_cast<size_t>(j)] <
          relations[static_cast<size_t>(j)].size()) {
        break;
      }
      pos[static_cast<size_t>(j)] = 0;
    }
    if (j == n) break;
  }

  std::vector<ResultCombination> out;
  for (const Combination& c : buffer.SortedDescending()) {
    ResultCombination rc;
    rc.score = c.score;
    for (int j = 0; j < n; ++j) {
      rc.tuples.push_back(
          relations[static_cast<size_t>(j)].tuple(c.positions[static_cast<size_t>(j)]));
    }
    out.push_back(std::move(rc));
  }
  return out;
}

}  // namespace prj
