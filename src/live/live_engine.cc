#include "live/live_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "common/timer.h"
#include "core/bounds.h"
#include "core/gather.h"
#include "core/result_cursor.h"

namespace prj {
namespace {

const IdSet& Deref(const std::shared_ptr<const IdSet>& set) {
  static const IdSet kEmpty;
  return set ? *set : kEmpty;
}

std::shared_ptr<const IdSet> EmptyIdSet() {
  static const std::shared_ptr<const IdSet> kEmpty =
      std::make_shared<const IdSet>();
  return kEmpty;
}

/// Wraps `source` in a tombstone filter only when there is something to
/// filter; the common no-deletes path pays nothing.
std::unique_ptr<AccessSource> MaybeFilter(
    std::unique_ptr<AccessSource> source,
    const std::shared_ptr<const IdSet>& tombstones) {
  if (!tombstones || tombstones->empty()) return source;
  return std::make_unique<TombstoneFilterSource>(std::move(source), tombstones);
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<uint64_t>::max() / b) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

/// Drops combinations the predicate rejects, preserving the inner
/// cursor's order: the cursor form of the base-result tombstone filter.
/// Enumeration makes the one-shot geometric over-fetch unnecessary --
/// Next just keeps pulling until a survivor emerges.
class FilteredCursor : public ResultCursor {
 public:
  FilteredCursor(std::unique_ptr<ResultCursor> inner,
                 std::function<bool(const ResultCombination&)> keep)
      : inner_(std::move(inner)), keep_(std::move(keep)) {}

  Result<std::optional<ResultCombination>> Next() override {
    for (;;) {
      auto next = inner_->Next();
      if (!next.ok()) return next.status();
      if (!next->has_value()) return std::optional<ResultCombination>();
      if (keep_(**next)) {
        ++emitted_;
        return next;
      }
    }
  }
  /// Work accounting is the inner cursor's: filtered-out results still
  /// cost their pulls.
  ExecStats stats() const override { return inner_->stats(); }
  uint64_t emitted() const override { return emitted_; }

 private:
  std::unique_ptr<ResultCursor> inner_;
  std::function<bool(const ResultCombination&)> keep_;
  uint64_t emitted_ = 0;
};

/// LiveEngine's cursor: the lazy gather merge plus the snapshot pin that
/// makes it epoch-stable, and the live stats overlay. Declared before
/// merge_ so the pinned world outlives the part streams drawing on it.
class LiveMergeCursor : public ResultCursor {
 public:
  LiveMergeCursor(std::shared_ptr<const void> snapshot, uint64_t epoch,
                  uint64_t delta_tuples, AccessKind kind, Vec query,
                  size_t num_relations, bool prune,
                  std::vector<GatherMergeCursor::Part> parts)
      : snapshot_(std::move(snapshot)),
        epoch_(epoch),
        delta_tuples_(delta_tuples),
        merge_(kind, std::move(query), num_relations, prune,
               std::move(parts)) {}

  Result<std::optional<ResultCombination>> Next() override {
    return merge_.Next();
  }
  ExecStats stats() const override {
    ExecStats s = merge_.stats();
    s.data_epoch = epoch_;
    s.delta_tuples = delta_tuples_;
    // Unopened merge parts (the base stream or a delta shard) were
    // corner-bound pruned so far; their bound keeps final_bound honest.
    s.delta_shards_pruned = merge_.parts_unopened();
    s.final_bound = std::max(s.final_bound, merge_.max_unopened_bound());
    return s;
  }
  uint64_t emitted() const override { return merge_.emitted(); }

 private:
  std::shared_ptr<const void> snapshot_;  ///< pins the observed epoch
  uint64_t epoch_;
  uint64_t delta_tuples_;
  GatherMergeCursor merge_;
};

/// Owner of one delta shard's composed sources + executor cursor (the
/// live-layer sibling of engine.cc's EngineCursor). Member order is
/// reverse destruction order: exec first dead, sources after.
struct DeltaPartCursor : public ResultCursor {
  DeltaPartCursor(Vec query_point, ProxRJOptions run_options)
      : query(std::move(query_point)), options(run_options) {}

  Result<std::optional<ResultCombination>> Next() override {
    return exec->Next();
  }
  ExecStats stats() const override { return exec->stats(); }
  uint64_t emitted() const override { return exec->emitted(); }

  Vec query;
  ProxRJOptions options;
  std::vector<std::unique_ptr<AccessSource>> sources;
  std::unique_ptr<ExecutionCursor> exec;
};

}  // namespace

size_t LiveEngine::Snapshot::delta_tuples() const {
  size_t total = 0;
  for (const LiveRelation& lr : relations) total += lr.delta->size();
  return total;
}

size_t LiveEngine::Snapshot::tombstones() const {
  size_t total = 0;
  for (const LiveRelation& lr : relations) {
    total += Deref(lr.base_tombstones).size();
    total += Deref(lr.delta_tombstones).size();
  }
  return total;
}

LiveEngine::LiveEngine(AccessKind kind, const ScoringFunction* scoring,
                       BaseEngineFactory factory, Options options, int dim,
                       size_t num_relations)
    : kind_(kind),
      scoring_(scoring),
      factory_(std::move(factory)),
      options_(options),
      dim_(dim),
      num_relations_(num_relations) {}

LiveEngine::~LiveEngine() = default;

Result<std::unique_ptr<LiveEngine>> LiveEngine::Create(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction* scoring, BaseEngineFactory factory,
    Options options) {
  PRJ_RETURN_IF_ERROR(ValidateEngineInputs(relations, kind, scoring));
  if (!factory) {
    return Status::InvalidArgument("LiveEngine needs a base engine factory");
  }
  auto base = factory(relations);
  PRJ_RETURN_IF_ERROR(base.status());

  std::unique_ptr<LiveEngine> live(
      new LiveEngine(kind, scoring, std::move(factory), options,
                     relations.front().dim(), relations.size()));
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = 1;
  snap->base = std::shared_ptr<const QueryEngine>(std::move(*base));
  PRJ_RETURN_IF_ERROR(live->BuildBaseState(relations, &snap->relations));
  live->snapshot_ = std::move(snap);
  if (options.compact_threshold > 0) {
    live->pool_ =
        std::make_unique<ThreadPool>(std::max(1, options.compaction_threads));
  }
  return live;
}

BaseEngineFactory LiveEngine::MonolithicFactory(AccessKind kind,
                                                const ScoringFunction* scoring,
                                                EngineOptions options) {
  return [kind, scoring,
          options](const std::vector<Relation>& relations)
             -> Result<std::unique_ptr<const QueryEngine>> {
    auto engine = Engine::Create(relations, kind, scoring, options);
    PRJ_RETURN_IF_ERROR(engine.status());
    return std::unique_ptr<const QueryEngine>(
        std::make_unique<Engine>(std::move(*engine)));
  };
}

BaseEngineFactory LiveEngine::ShardedFactory(AccessKind kind,
                                             const ScoringFunction* scoring,
                                             ShardedEngineOptions options) {
  return [kind, scoring,
          options](const std::vector<Relation>& relations)
             -> Result<std::unique_ptr<const QueryEngine>> {
    auto engine = ShardedEngine::Create(relations, kind, scoring, options);
    PRJ_RETURN_IF_ERROR(engine.status());
    return std::unique_ptr<const QueryEngine>(
        std::make_unique<ShardedEngine>(std::move(*engine)));
  };
}

Status LiveEngine::BuildBaseState(const std::vector<Relation>& relations,
                                  std::vector<LiveRelation>* out) const {
  const bool use_rtree = kind_ == AccessKind::kDistance &&
                         options_.catalog.backend == SourceBackend::kRTree;
  out->clear();
  out->reserve(relations.size());
  for (const Relation& relation : relations) {
    LiveRelation lr;
    if (use_rtree) {
      lr.index = IndexedRelation::Build(relation);
    } else {
      lr.snap = RelationSnapshot::Build(relation);
    }
    IdSet ids;
    ids.reserve(relation.size());
    for (const Tuple& t : relation.tuples()) ids.insert(t.id);
    lr.base_ids = std::make_shared<const IdSet>(std::move(ids));
    lr.delta = DeltaRelation::Empty(relation.name(), relation.dim(),
                                    relation.sigma_max());
    lr.base_tombstones = EmptyIdSet();
    lr.delta_tombstones = EmptyIdSet();
    out->push_back(std::move(lr));
  }
  return Status();
}

std::shared_ptr<const LiveEngine::Snapshot> LiveEngine::Capture() const {
  MutexLock lock(snapshot_mu_);
  return snapshot_;
}

void LiveEngine::Publish(std::shared_ptr<const Snapshot> next) {
  MutexLock lock(snapshot_mu_);
  snapshot_ = std::move(next);
}

size_t LiveEngine::fan_out() const {
  auto snap = Capture();
  size_t fan = snap->base->fan_out();
  for (const LiveRelation& lr : snap->relations) {
    if (!lr.delta->empty()) ++fan;
  }
  return fan;
}

CacheCounters LiveEngine::cache_counters() const {
  return Capture()->base->cache_counters();
}

LiveCounters LiveEngine::live_counters() const {
  auto snap = Capture();
  LiveCounters counters;
  counters.epoch = snap->epoch;
  counters.delta_tuples = snap->delta_tuples();
  counters.tombstones = snap->tombstones();
  counters.compactions = compactions_.load(std::memory_order_relaxed);
  return counters;
}

std::vector<RelationStats> LiveEngine::relation_stats() const {
  auto snap = Capture();
  std::vector<RelationStats> stats = snap->base->relation_stats();
  stats.resize(num_relations_);
  for (size_t j = 0; j < num_relations_; ++j) {
    const LiveRelation& lr = snap->relations[j];
    if (lr.delta == nullptr || lr.delta->empty()) continue;
    stats[j] = MergeRelationStats(
        stats[j],
        BuildRelationStats(lr.delta->Collect(), dim_, lr.delta->sigma_max()));
  }
  return stats;
}

std::unique_ptr<AccessSource> LiveEngine::MakeBaseSource(
    const Snapshot& snap, size_t j, const Vec& query) const {
  const LiveRelation& lr = snap.relations[j];
  if (lr.index) {
    return std::make_unique<SharedIndexDistanceSource>(lr.index, query);
  }
  if (kind_ == AccessKind::kScore) {
    return std::make_unique<SharedSnapshotScoreSource>(lr.snap);
  }
  return std::make_unique<SharedSnapshotDistanceSource>(lr.snap, query);
}

Result<std::vector<ResultCombination>> LiveEngine::TopK(
    const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  if (stats_out) *stats_out = ExecStats{};
  PRJ_RETURN_IF_ERROR(ValidateOptions(options));
  if (query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(query.dim()));
  }
  const auto snap = Capture();  // the query's immutable world

  ExecStats aggregate;
  aggregate.depths.assign(num_relations_, 0);
  aggregate.completed = true;
  aggregate.final_bound = -std::numeric_limits<double>::infinity();
  aggregate.data_epoch = snap->epoch;
  aggregate.delta_tuples = snap->delta_tuples();

  const size_t keep = static_cast<size_t>(options.k);
  GatherHeap heap(keep);

  // --- shard_base: the wrapped engine answers the all-base part. ---
  //
  // Tombstones make the base engine's top-K' prefix over-complete: some
  // of its combinations contain deleted members. Filtering preserves the
  // executor order, so the survivors of the prefix are exactly the
  // leading survivors of the whole filtered space -- we just need enough
  // of them. Geometric over-fetch (x4) re-asks until K survive, the base
  // is exhausted, a safety rail trips, or K' covers every combination
  // the base can form. The cap must be the FULL base cross product
  // (tombstoned members included): the wrapped engine ranks dead
  // combinations too, so under heavy deletes the whole live answer can
  // sit past any live-count-sized prefix.
  bool base_tombstoned = false;
  uint64_t full_base_cap = 1;  // all base combinations, saturating
  for (const LiveRelation& lr : snap->relations) {
    base_tombstoned =
        base_tombstoned || !Deref(lr.base_tombstones).empty();
    full_base_cap = SaturatingMul(full_base_cap, lr.base_ids->size());
  }
  std::vector<ResultCombination> base_results;
  uint64_t want = keep;
  for (;;) {
    ProxRJOptions base_options = options;
    base_options.k = static_cast<int>(std::min<uint64_t>(
        want, static_cast<uint64_t>(std::numeric_limits<int>::max())));
    ExecStats base_stats;
    auto res = snap->base->TopK(query, base_options, &base_stats);
    if (!res.ok()) return res.status();
    AggregateShardStats(base_stats, ScatterMode::kSequential, &aggregate);
    size_t survivors = 0;
    if (base_tombstoned) {
      for (const ResultCombination& combo : *res) {
        bool dead = false;
        for (size_t j = 0; j < combo.tuples.size() && !dead; ++j) {
          dead = Deref(snap->relations[j].base_tombstones)
                     .count(combo.tuples[j].id) > 0;
        }
        survivors += dead ? 0 : 1;
      }
    } else {
      survivors = res->size();
    }
    const bool exhausted = res->size() < static_cast<size_t>(base_options.k);
    if (survivors >= keep || exhausted || !base_stats.completed ||
        want >= full_base_cap) {
      if (base_tombstoned) {
        for (ResultCombination& combo : *res) {
          bool dead = false;
          for (size_t j = 0; j < combo.tuples.size() && !dead; ++j) {
            dead = Deref(snap->relations[j].base_tombstones)
                       .count(combo.tuples[j].id) > 0;
          }
          if (!dead) base_results.push_back(std::move(combo));
        }
      } else {
        base_results = std::move(*res);
      }
      break;
    }
    want = std::min(SaturatingMul(want, 4), full_base_cap);
  }
  {
    const WallTimer gather_timer;
    for (ResultCombination& combo : base_results) {
      heap.Offer(MakeKeyed(std::move(combo), kind_, query));
    }
    aggregate.gather_seconds += gather_timer.ElapsedSeconds();
  }

  // --- delta shards: one executor run per first-delta slot j. ---
  //
  // shard_j covers exactly the combinations whose first delta member is
  // at join slot j (base-only below j, delta-only at j, base+delta merge
  // above j): disjoint across j, and together with shard_base a cover of
  // the whole live combination space. Shards are visited best-bound-first
  // and pruned against the running K-th score via the same corner bound
  // the sharded scatter uses.
  const bool euclidean = scoring_->euclidean_metric();
  // A traced query must observe every sub-execution, so pruning is off
  // (same contract as the sharded scatter).
  const bool prune = options.trace == nullptr;
  struct RankedShard {
    size_t slot;
    double bound;
  };
  std::vector<RankedShard> order;
  std::vector<RelationEnvelope> envelopes(num_relations_);
  for (size_t j = 0; j < num_relations_; ++j) {
    if (snap->relations[j].delta->empty()) continue;
    for (size_t i = 0; i < num_relations_; ++i) {
      const LiveRelation& lr = snap->relations[i];
      const std::optional<Rect>& base_mbr =
          lr.index ? lr.index->mbr() : lr.snap->mbr();
      const double base_score =
          lr.index ? lr.index->score_max() : lr.snap->score_max();
      std::optional<Rect> mbr;
      double score = 0.0;
      if (i < j) {
        mbr = base_mbr;
        score = base_score;
      } else if (i == j) {
        mbr = lr.delta->mbr();
        score = lr.delta->score_max();
      } else {
        mbr = base_mbr;
        if (lr.delta->mbr()) {
          if (mbr) {
            mbr->Extend(*lr.delta->mbr());
          } else {
            mbr = lr.delta->mbr();
          }
        }
        score = std::max(base_score, lr.delta->score_max());
      }
      envelopes[i].score_ceiling = score;
      envelopes[i].min_dist_q =
          euclidean && mbr ? std::sqrt(mbr->MinSquaredDistance(query)) : 0.0;
    }
    order.push_back({j, CornerUpperBound(*scoring_, envelopes)});
  }
  std::sort(order.begin(), order.end(),
            [](const RankedShard& a, const RankedShard& b) {
              if (a.bound != b.bound) return a.bound > b.bound;
              return a.slot < b.slot;
            });

  uint64_t pruned = 0;
  for (const RankedShard& ranked : order) {
    if (prune && heap.full() && GatherPruned(ranked.bound, heap.kth_score())) {
      ++pruned;
      aggregate.final_bound = std::max(aggregate.final_bound, ranked.bound);
      continue;
    }
    const size_t j = ranked.slot;
    std::vector<std::unique_ptr<AccessSource>> sources;
    sources.reserve(num_relations_);
    for (size_t i = 0; i < num_relations_; ++i) {
      const LiveRelation& lr = snap->relations[i];
      std::unique_ptr<AccessSource> source;
      auto delta_source = [&]() -> std::unique_ptr<AccessSource> {
        if (kind_ == AccessKind::kScore) {
          return std::make_unique<DeltaScoreSource>(lr.delta);
        }
        return std::make_unique<DeltaDistanceSource>(lr.delta, query);
      };
      if (i < j) {
        source = MaybeFilter(MakeBaseSource(*snap, i, query),
                             lr.base_tombstones);
      } else if (i == j) {
        source = MaybeFilter(delta_source(), lr.delta_tombstones);
      } else {
        source = std::make_unique<MergedAccessSource>(
            MaybeFilter(MakeBaseSource(*snap, i, query), lr.base_tombstones),
            MaybeFilter(delta_source(), lr.delta_tombstones), query);
      }
      if (options_.catalog.block_size > 0) {
        source = std::make_unique<BlockedSource>(std::move(source),
                                                 options_.catalog.block_size);
      }
      sources.push_back(std::move(source));
    }
    ProxRJ op(std::move(sources), scoring_, query, options);
    auto local = op.Run();
    if (!local.ok()) return local.status();
    AggregateShardStats(op.stats(), ScatterMode::kSequential, &aggregate);
    const WallTimer gather_timer;
    for (ResultCombination& combo : *local) {
      heap.Offer(MakeKeyed(std::move(combo), kind_, query));
    }
    aggregate.gather_seconds += gather_timer.ElapsedSeconds();
  }

  const WallTimer finish_timer;
  std::vector<ResultCombination> merged = heap.Finish();
  aggregate.gather_seconds += finish_timer.ElapsedSeconds();
  aggregate.delta_shards_pruned = pruned;
  if (stats_out) *stats_out = std::move(aggregate);
  return merged;
}

Result<std::unique_ptr<ResultCursor>> LiveEngine::OpenCursor(
    const QueryRequest& request) const {
  PRJ_RETURN_IF_ERROR(ValidateOptions(request.options));
  if (request.query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(request.query.dim()));
  }
  if (request.options.trace != nullptr) {
    return Status::InvalidArgument(
        "traced queries are not supported through live cursors; use TopK");
  }
  const auto snap = Capture();  // the cursor's immutable world, pinned below
  const Vec& query = request.query;
  const bool euclidean = scoring_->euclidean_metric();

  std::vector<GatherMergeCursor::Part> parts;
  parts.reserve(1 + num_relations_);
  std::vector<RelationEnvelope> envelopes(num_relations_);

  // --- shard_base as a stream: the wrapped engine's cursor, tombstone-
  // filtered on the way out. Filtering preserves the executor order, so
  // the stream is exactly the live all-base combinations in order; the
  // part bound is the corner bound over the full base envelopes.
  bool base_tombstoned = false;
  for (size_t i = 0; i < num_relations_; ++i) {
    const LiveRelation& lr = snap->relations[i];
    base_tombstoned = base_tombstoned || !Deref(lr.base_tombstones).empty();
    const std::optional<Rect>& mbr =
        lr.index ? lr.index->mbr() : lr.snap->mbr();
    envelopes[i].score_ceiling =
        lr.index ? lr.index->score_max() : lr.snap->score_max();
    envelopes[i].min_dist_q =
        euclidean && mbr ? std::sqrt(mbr->MinSquaredDistance(query)) : 0.0;
  }
  parts.push_back(
      {CornerUpperBound(*scoring_, envelopes),
       [snap, request,
        base_tombstoned]() -> Result<std::unique_ptr<ResultCursor>> {
         auto inner = snap->base->OpenCursor(request);
         if (!inner.ok()) return inner.status();
         if (!base_tombstoned) return inner;
         return std::unique_ptr<ResultCursor>(std::make_unique<FilteredCursor>(
             std::move(*inner), [snap](const ResultCombination& combo) {
               for (size_t j = 0; j < combo.tuples.size(); ++j) {
                 if (Deref(snap->relations[j].base_tombstones)
                         .count(combo.tuples[j].id) > 0) {
                   return false;
                 }
               }
               return true;
             }));
       }});

  // --- delta shards: one lazily opened executor cursor per first-delta
  // slot j, over the same composed sources (and the same corner bound)
  // as the one-shot path.
  for (size_t j = 0; j < num_relations_; ++j) {
    if (snap->relations[j].delta->empty()) continue;
    for (size_t i = 0; i < num_relations_; ++i) {
      const LiveRelation& lr = snap->relations[i];
      const std::optional<Rect>& base_mbr =
          lr.index ? lr.index->mbr() : lr.snap->mbr();
      const double base_score =
          lr.index ? lr.index->score_max() : lr.snap->score_max();
      std::optional<Rect> mbr;
      double score = 0.0;
      if (i < j) {
        mbr = base_mbr;
        score = base_score;
      } else if (i == j) {
        mbr = lr.delta->mbr();
        score = lr.delta->score_max();
      } else {
        mbr = base_mbr;
        if (lr.delta->mbr()) {
          if (mbr) {
            mbr->Extend(*lr.delta->mbr());
          } else {
            mbr = lr.delta->mbr();
          }
        }
        score = std::max(base_score, lr.delta->score_max());
      }
      envelopes[i].score_ceiling = score;
      envelopes[i].min_dist_q =
          euclidean && mbr ? std::sqrt(mbr->MinSquaredDistance(query)) : 0.0;
    }
    parts.push_back(
        {CornerUpperBound(*scoring_, envelopes),
         [this, snap, request, j]() -> Result<std::unique_ptr<ResultCursor>> {
           auto part = std::make_unique<DeltaPartCursor>(request.query,
                                                         request.options);
           part->sources.reserve(num_relations_);
           for (size_t i = 0; i < num_relations_; ++i) {
             const LiveRelation& lr = snap->relations[i];
             std::unique_ptr<AccessSource> source;
             auto delta_source = [&]() -> std::unique_ptr<AccessSource> {
               if (kind_ == AccessKind::kScore) {
                 return std::make_unique<DeltaScoreSource>(lr.delta);
               }
               return std::make_unique<DeltaDistanceSource>(lr.delta,
                                                            part->query);
             };
             if (i < j) {
               source = MaybeFilter(MakeBaseSource(*snap, i, part->query),
                                    lr.base_tombstones);
             } else if (i == j) {
               source = MaybeFilter(delta_source(), lr.delta_tombstones);
             } else {
               source = std::make_unique<MergedAccessSource>(
                   MaybeFilter(MakeBaseSource(*snap, i, part->query),
                               lr.base_tombstones),
                   MaybeFilter(delta_source(), lr.delta_tombstones),
                   part->query);
             }
             if (options_.catalog.block_size > 0) {
               source = std::make_unique<BlockedSource>(
                   std::move(source), options_.catalog.block_size);
             }
             part->sources.push_back(std::move(source));
           }
           QueryPlan plan;
           plan.sources = &part->sources;
           plan.scoring = scoring_;
           plan.query = &part->query;
           plan.options = &part->options;
           // Uncapped: live cursors may page past options.k.
           auto exec = ExecutionCursor::Open(plan, /*retain_cap=*/0);
           if (!exec.ok()) return exec.status();
           part->exec = std::move(exec).value();
           return std::unique_ptr<ResultCursor>(std::move(part));
         }});
  }

  return std::unique_ptr<ResultCursor>(std::make_unique<LiveMergeCursor>(
      std::shared_ptr<const void>(snap), snap->epoch, snap->delta_tuples(),
      kind_, query, num_relations_, /*prune=*/true, std::move(parts)));
}

Status LiveEngine::Apply(const UpdateBatch& batch) {
  if (batch.relations.size() != num_relations_) {
    return Status::InvalidArgument(
        "update batch has " + std::to_string(batch.relations.size()) +
        " relation slices, engine joins " + std::to_string(num_relations_));
  }
  MutexLock writer_lock(writer_mu_);
  const auto cur = Capture();

  // Build the successor state relation by relation; nothing is published
  // until every slice validates, so a failed batch changes nothing.
  std::vector<LiveRelation> next_relations = cur->relations;
  for (size_t j = 0; j < num_relations_; ++j) {
    const RelationUpdate& update = batch.relations[j];
    LiveRelation& lr = next_relations[j];
    const std::string& name = lr.delta->name();

    if (!update.inserts.empty()) {
      for (const Tuple& t : update.inserts) {
        if (lr.delta->Contains(t.id)) {
          if (Deref(lr.delta_tombstones).count(t.id) > 0) {
            return Status::FailedPrecondition(
                "insert of id " + std::to_string(t.id) + " into '" + name +
                "': id sits tombstoned in the delta log; compact before "
                "re-inserting it");
          }
          return Status::InvalidArgument("insert of id " +
                                         std::to_string(t.id) + " into '" +
                                         name + "': id is already live");
        }
        if (lr.base_ids->count(t.id) > 0 &&
            Deref(lr.base_tombstones).count(t.id) == 0) {
          return Status::InvalidArgument("insert of id " +
                                         std::to_string(t.id) + " into '" +
                                         name + "': id is already live");
        }
      }
      auto appended = lr.delta->Append(update.inserts);
      PRJ_RETURN_IF_ERROR(appended.status());
      lr.delta = std::move(*appended);
    }

    if (!update.deletes.empty()) {
      IdSet base_tombs = Deref(lr.base_tombstones);
      IdSet delta_tombs = Deref(lr.delta_tombstones);
      for (const int64_t id : update.deletes) {
        if (lr.delta->Contains(id) && delta_tombs.count(id) == 0) {
          delta_tombs.insert(id);
        } else if (lr.base_ids->count(id) > 0 && base_tombs.count(id) == 0) {
          base_tombs.insert(id);
        } else {
          return Status::NotFound("delete of id " + std::to_string(id) +
                                  " from '" + name + "': id is not live");
        }
      }
      lr.base_tombstones = std::make_shared<const IdSet>(std::move(base_tombs));
      lr.delta_tombstones =
          std::make_shared<const IdSet>(std::move(delta_tombs));
    }
  }

  auto next = std::make_shared<Snapshot>();
  next->epoch = cur->epoch + 1;
  next->base = cur->base;
  next->relations = std::move(next_relations);
  Publish(std::move(next));
  MaybeScheduleCompaction();
  return Status();
}

void LiveEngine::MaybeScheduleCompaction() {
  if (!pool_ || options_.compact_threshold == 0) return;
  const auto snap = Capture();
  if (snap->delta_tuples() + snap->tombstones() <
      options_.compact_threshold) {
    return;
  }
  if (compaction_pending_.exchange(true)) return;
  pool_->Submit([this]() {
    // Background best-effort: a failing rebuild leaves the current
    // snapshot serving correctly, so the error is dropped (a manual
    // Compact() call reports it).
    const Status status = Compact();
    compaction_pending_.store(false);
    // Applies racing the rebuild may have pushed pressure back over the
    // threshold while compaction_pending_ suppressed scheduling; without
    // this recheck the backlog would wait for an Apply that may never
    // come. Only after success -- a failed rebuild leaves pressure
    // intact, and rescheduling on it would spin.
    if (status.ok()) MaybeScheduleCompaction();
  });
}

std::vector<Relation> LiveEngine::MaterializeContent(const Snapshot& snap) {
  std::vector<Relation> relations;
  relations.reserve(snap.relations.size());
  for (const LiveRelation& lr : snap.relations) {
    const std::string& name = lr.delta->name();
    Relation merged(name, lr.delta->dim(), lr.delta->sigma_max());
    const std::vector<Tuple>& base_tuples =
        lr.index ? lr.index->tuples() : lr.snap->tuples();
    const IdSet& base_tombs = Deref(lr.base_tombstones);
    const IdSet& delta_tombs = Deref(lr.delta_tombstones);
    for (const Tuple& t : base_tuples) {
      if (base_tombs.count(t.id) == 0) merged.Add(t);
    }
    for (Tuple& t : lr.delta->Collect()) {
      if (delta_tombs.count(t.id) == 0) merged.Add(std::move(t));
    }
    relations.push_back(std::move(merged));
  }
  return relations;
}

Status LiveEngine::Compact() {
  MutexLock compact_lock(compact_mu_);
  const auto s0 = Capture();
  if (s0->delta_tuples() == 0 && s0->tombstones() == 0) {
    return Status();  // nothing to fold; don't count a no-op rebuild
  }

  // Heavy phase, outside every lock: materialize s0's live content and
  // rebuild the base engine + catalogs from it. Apply calls proceed
  // concurrently; whatever they add past s0 is spliced in below.
  std::vector<size_t> chunk_marks(num_relations_);
  for (size_t j = 0; j < num_relations_; ++j) {
    chunk_marks[j] = s0->relations[j].delta->num_chunks();
  }
  const std::vector<Relation> content = MaterializeContent(*s0);
  auto rebuilt = factory_(content);
  PRJ_RETURN_IF_ERROR(rebuilt.status());
  std::vector<LiveRelation> base_state;
  PRJ_RETURN_IF_ERROR(BuildBaseState(content, &base_state));
  std::shared_ptr<const QueryEngine> new_base = std::move(*rebuilt);

  // Splice phase, serialized against Apply: everything that raced past s0
  // keeps living in the delta layer of the new snapshot. The epoch does
  // NOT change -- logical content is untouched, so epoch-keyed cache
  // entries stay valid and warm across the swap.
  {
    MutexLock writer_lock(writer_mu_);
    const auto cur = Capture();
    auto next = std::make_shared<Snapshot>();
    next->epoch = cur->epoch;
    next->base = std::move(new_base);
    next->relations = std::move(base_state);
    for (size_t j = 0; j < num_relations_; ++j) {
      LiveRelation& nl = next->relations[j];
      const LiveRelation& was = s0->relations[j];
      const LiveRelation& now = cur->relations[j];
      nl.delta = now.delta->SuffixFrom(chunk_marks[j]);
      // Tombstones set since s0 re-target: a victim appended after s0
      // still lives in the new delta suffix; every other victim was
      // folded into the rebuilt base.
      IdSet base_tombs, delta_tombs;
      for (const int64_t id : Deref(now.base_tombstones)) {
        if (Deref(was.base_tombstones).count(id) == 0) base_tombs.insert(id);
      }
      for (const int64_t id : Deref(now.delta_tombstones)) {
        if (Deref(was.delta_tombstones).count(id) > 0) continue;
        if (nl.delta->Contains(id)) {
          delta_tombs.insert(id);
        } else {
          base_tombs.insert(id);
        }
      }
      nl.base_tombstones = std::make_shared<const IdSet>(std::move(base_tombs));
      nl.delta_tombstones =
          std::make_shared<const IdSet>(std::move(delta_tombs));
    }
    Publish(std::move(next));
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return Status();
}

}  // namespace prj
