// Live data over the serving stack: epoch-versioned snapshots, delta
// merge, and background compaction.
//
// LiveEngine decorates any QueryEngine (the monolithic Engine, the
// sharded scatter, anything satisfying the contract) with updates while
// preserving the library's exactness guarantee: every TopK answer is
// bit-identical -- scores, members, tie order -- to a fresh engine built
// from the relations as of the snapshot the query observed.
//
// Design, in one paragraph: the wrapped base engine stays immutable;
// inserts append to per-relation DeltaRelation logs and deletes set
// tombstones (access/delta_relation.h). All versioned state lives in one
// immutable Snapshot published through a shared_ptr swap, so a query
// captures its world in O(1) and is never torn by a concurrent Apply.
// TopK decomposes the live combination space exactly:
//
//     shard_base = combinations whose members are all base tuples
//                  -> answered by the wrapped engine itself (with
//                     geometric over-fetch when tombstones may eat into
//                     its prefix);
//     shard_j    = combinations whose FIRST delta member sits at join
//                  slot j: slots < j stream base only, slot j streams
//                  delta only, slots > j stream the base+delta merge
//                  -> answered by the stateless executor over merged
//                     delta sources, one run per j.
//
// The n+1 shards are disjoint and cover every live combination, each is
// internally answered in the executor's order, and the per-shard top-K
// lists merge through the exact gather (core/gather.h) -- the same
// argument that makes the sharded scatter exact. Delta shards carry
// corner-bound envelopes (base MBR x delta MBR), so shards that cannot
// beat the running K-th score are pruned (ExecStats::delta_shards_pruned).
//
// Epochs: Apply publishes a new snapshot with epoch + 1. Compaction --
// triggered in the background past Options::compact_threshold, or
// manually -- rebuilds the base engine from a captured snapshot's merged
// content OUTSIDE all locks, then splices in whatever Apply calls raced
// past it (delta suffix, new tombstones) and publishes with the epoch
// UNCHANGED: compaction moves tuples between physical homes but does not
// change the logical content, so cache entries keyed by epoch
// (cache/cached_engine.h) stay valid across it. In-flight queries keep
// their captured snapshot alive through the shared_ptr for as long as
// they need it.
#ifndef PRJ_LIVE_LIVE_ENGINE_H_
#define PRJ_LIVE_LIVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "access/delta_relation.h"
#include "access/source.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "common/vec.h"
#include "core/engine.h"
#include "core/query_engine.h"
#include "core/scoring.h"
#include "shard/sharded_engine.h"

namespace prj {

/// One relation's slice of an update batch, by join-order position.
struct RelationUpdate {
  std::vector<Tuple> inserts;
  std::vector<int64_t> deletes;  ///< ids of currently live tuples
};

/// One atomic update across the join: exactly one RelationUpdate per
/// relation in join order (empty slices are fine). Apply admits all of it
/// or none of it, and bumps the epoch once.
struct UpdateBatch {
  std::vector<RelationUpdate> relations;
};

/// Builds the wrapped base engine from materialized relations; called at
/// Create and again at every compaction. The scoring function and any
/// options live in the closure. Must be thread-safe to call (compaction
/// invokes it off-thread) and must yield an engine whose TopK order is
/// the executor's exact order -- Engine and ShardedEngine both qualify.
using BaseEngineFactory =
    std::function<Result<std::unique_ptr<const QueryEngine>>(
        const std::vector<Relation>&)>;

struct LiveEngineOptions {
  /// Catalog choices for the live layer's own base access paths (the
  /// delta shards stream base relations directly, independent of how the
  /// wrapped engine is built): distance backend and paging.
  EngineOptions catalog;
  /// Schedule a background compaction once delta tuples + tombstones
  /// reach this count; 0 disables automatic compaction (Compact() can
  /// still be called manually).
  size_t compact_threshold = 1024;
  /// Threads of the compaction pool (>= 1 when automatic compaction is
  /// enabled; one is enough -- compactions serialize anyway).
  int compaction_threads = 1;
};

/// Live-data counters surfaced through QueryEngine::live_counters().
/// (Declared in core/query_engine.h; this comment is the cross-reference.)

class LiveEngine : public QueryEngine {
 public:
  using Options = LiveEngineOptions;

  /// Validates the seed relations exactly like Engine::Create and builds
  /// epoch 1: base engine from `factory`, empty deltas, no tombstones.
  /// `scoring` must outlive the engine; it must be the same scorer the
  /// factory's engines use, or answers will diverge. Returns a pointer
  /// because the engine owns mutexes and must not move.
  static Result<std::unique_ptr<LiveEngine>> Create(
      const std::vector<Relation>& relations, AccessKind kind,
      const ScoringFunction* scoring, BaseEngineFactory factory,
      Options options = {});

  /// Convenience factories for the two stock backends.
  static BaseEngineFactory MonolithicFactory(AccessKind kind,
                                             const ScoringFunction* scoring,
                                             EngineOptions options = {});
  static BaseEngineFactory ShardedFactory(AccessKind kind,
                                          const ScoringFunction* scoring,
                                          ShardedEngineOptions options = {});

  ~LiveEngine() override;

  /// Exact top-K over the snapshot current at call time: bit-identical to
  /// a fresh engine over that snapshot's merged content. Safe against
  /// concurrent Apply/Compact -- the query's snapshot cannot change under
  /// it. ExecStats reports data_epoch, delta_tuples and
  /// delta_shards_pruned for the snapshot it saw.
  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const override;

  /// Streaming enumeration pinned to the snapshot current at open time:
  /// the cursor holds that snapshot alive, so resuming it across any
  /// number of Apply/Compact calls stays bit-identical to TopK against
  /// the observed epoch -- later epochs are simply never visible to it.
  /// Internally a lazy best-bound-first merge over the tombstone-filtered
  /// base-engine cursor and one executor cursor per non-empty delta
  /// shard (enumeration replaces the one-shot base over-fetch: the filter
  /// just keeps pulling until survivors emerge). Traced requests are
  /// rejected; stats().delta_shards_pruned reports merge parts (base or
  /// delta) not yet opened. Requires the wrapped base engine to support
  /// OpenCursor (both stock factories do).
  Result<std::unique_ptr<ResultCursor>> OpenCursor(
      const QueryRequest& request) const override;

  /// Atomically applies one update batch and publishes epoch + 1.
  /// Validates everything first (dims, score range, insert ids must not
  /// be live, delete ids must be live) and applies nothing on failure.
  /// Re-inserting an id that still sits tombstoned in the delta log is
  /// rejected until a compaction folds the log away (FailedPrecondition).
  /// After Apply returns, every subsequent TopK and every cache lookup
  /// keyed through live_counters().epoch observes the new content.
  Status Apply(const UpdateBatch& batch);

  /// Synchronous compaction: rebuilds the base engine from the current
  /// merged content and resets deltas/tombstones, preserving the epoch.
  /// Heavy work runs outside all locks; Apply calls racing past the
  /// rebuild are spliced in, not lost. Serialized with other compactions.
  Status Compact();

  AccessKind kind() const override { return kind_; }
  int dim() const override { return dim_; }
  size_t num_relations() const override { return num_relations_; }
  /// Wrapped engine's fan-out plus the non-empty delta shards of the
  /// current snapshot.
  size_t fan_out() const override;
  CacheCounters cache_counters() const override;
  LiveCounters live_counters() const override;

  /// Per-relation planning statistics of the CURRENT snapshot: the
  /// wrapped base engine's statistics with each relation's delta log
  /// folded in (MergeRelationStats over the delta tuples). Tombstoned
  /// tuples stay counted on the base side -- statistics are planning
  /// estimates, and deletes only ever make them conservative.
  std::vector<RelationStats> relation_stats() const override;

 private:
  /// One relation's versioned state inside a snapshot.
  struct LiveRelation {
    /// Shared base catalog: exactly one of index/snap set, mirroring
    /// Engine's backend choice.
    std::shared_ptr<const IndexedRelation> index;
    std::shared_ptr<const RelationSnapshot> snap;
    /// Ids present in the base catalog (including tombstoned ones).
    std::shared_ptr<const IdSet> base_ids;
    std::shared_ptr<const DeltaRelation> delta;
    /// Deleted ids, split by where the victim physically lives: base
    /// tombstones filter base streams and base-engine results, delta
    /// tombstones filter delta streams. Never null.
    std::shared_ptr<const IdSet> base_tombstones;
    std::shared_ptr<const IdSet> delta_tombstones;
  };

  /// The immutable world one query executes against.
  struct Snapshot {
    uint64_t epoch = 1;
    std::shared_ptr<const QueryEngine> base;
    std::vector<LiveRelation> relations;
    size_t delta_tuples() const;
    size_t tombstones() const;
  };

  LiveEngine(AccessKind kind, const ScoringFunction* scoring,
             BaseEngineFactory factory, Options options, int dim,
             size_t num_relations);

  std::shared_ptr<const Snapshot> Capture() const;
  void Publish(std::shared_ptr<const Snapshot> next);

  /// Schedules a background compaction when the CURRENT snapshot's
  /// delta+tombstone pressure has reached the threshold and none is in
  /// flight. Called by Apply after publishing, and by the compaction
  /// task itself after a successful fold (pressure re-accumulated during
  /// the rebuild must not wait for the next Apply). Recursion
  /// terminates: once Applies stop, one fold drops pressure below the
  /// threshold.
  void MaybeScheduleCompaction();

  /// Materializes the snapshot's live content (base minus base
  /// tombstones, plus delta minus delta tombstones) as plain relations --
  /// compaction's rebuild input and the reference the live property test
  /// compares against.
  static std::vector<Relation> MaterializeContent(const Snapshot& snap);

  /// Builds per-relation base catalogs + id sets for `relations` under
  /// the configured backend into `out` (delta/tombstone fields reset).
  Status BuildBaseState(const std::vector<Relation>& relations,
                        std::vector<LiveRelation>* out) const;

  /// Fresh base access source for relation `j` of `snap` (not tombstone-
  /// filtered; callers wrap it).
  std::unique_ptr<AccessSource> MakeBaseSource(const Snapshot& snap, size_t j,
                                               const Vec& query) const;

  AccessKind kind_;
  const ScoringFunction* scoring_;
  BaseEngineFactory factory_;
  Options options_;
  int dim_;
  size_t num_relations_;

  mutable Mutex snapshot_mu_;  ///< held for the pointer swap only
  std::shared_ptr<const Snapshot> snapshot_ PRJ_GUARDED_BY(snapshot_mu_);

  /// Phase locks, not data guards: writer_mu_ serializes Apply with the
  /// compaction splice, compact_mu_ serializes whole compactions. All
  /// versioned data still flows through the snapshot_ swap above.
  Mutex writer_mu_ PRJ_ACQUIRED_BEFORE(snapshot_mu_);
  Mutex compact_mu_ PRJ_ACQUIRED_BEFORE(writer_mu_);
  std::atomic<bool> compaction_pending_{false};
  std::atomic<uint64_t> compactions_{0};

  /// Declared last: destroyed first, draining any queued compaction while
  /// the rest of the engine is still alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace prj

#endif  // PRJ_LIVE_LIVE_ENGINE_H_
