#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace prj {
namespace {

// Identifies the current thread as worker tl_index of tl_pool, so Submit
// from inside a task can target the submitter's own deque. Plain
// thread_local pointers: set once per worker thread, read only by that
// thread.
thread_local ThreadPool* tl_pool = nullptr;
thread_local size_t tl_index = 0;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  PRJ_CHECK_GE(num_threads, 1);
  queues_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&ThreadPool::WorkerLoop, this,
                          static_cast<size_t>(i));
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(idle_mu_);
    stopping_ = true;
  }
  idle_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PRJ_CHECK(task != nullptr);
  size_t target;
  if (tl_pool == this) {
    target = tl_index;  // worker submitting follow-up work: own deque
  } else {
    target = next_submit_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  // Account first, publish second: once the task is visible in a deque a
  // worker may claim it and decrement queued_, so the increment must
  // already be in place.
  {
    MutexLock lock(idle_mu_);
    ++queued_;
  }
  {
    WorkerQueue& q = *queues_[target];
    MutexLock lock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  idle_cv_.NotifyOne();
}

bool ThreadPool::TryRunOne(size_t self) {
  std::function<void()> task;
  {
    WorkerQueue& own = *queues_[self];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
    }
  }
  if (task == nullptr) {
    const size_t n = queues_.size();
    for (size_t k = 1; k < n && task == nullptr; ++k) {
      WorkerQueue& victim = *queues_[(self + k) % n];
      MutexLock lock(victim.mu);
      if (!victim.tasks.empty()) {
        // Steal from the back: the owner pops the front, so thief and
        // owner touch opposite ends of a deep backlog.
        task = std::move(victim.tasks.back());
        victim.tasks.pop_back();
        steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (task == nullptr) return false;
  {
    MutexLock lock(idle_mu_);
    --queued_;
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  tl_pool = this;
  tl_index = self;
  for (;;) {
    if (TryRunOne(self)) continue;
    MutexLock lock(idle_mu_);
    while (!stopping_ && queued_ == 0) idle_cv_.Wait(lock);
    // queued_ may already be claimed by a sibling when we wake; the loop
    // re-scans and, finding nothing, waits again.
    if (stopping_ && queued_ == 0) return;
  }
}

}  // namespace prj
