#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace prj {

ThreadPool::ThreadPool(int num_threads) {
  PRJ_CHECK_GE(num_threads, 1);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PRJ_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace prj
