#include "common/vec.h"

#include <cmath>
#include <cstdio>

namespace prj {

Vec& Vec::operator+=(const Vec& o) {
  PRJ_DCHECK_EQ(dim_, o.dim_);
  for (int i = 0; i < dim_; ++i) v_[i] += o.v_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& o) {
  PRJ_DCHECK_EQ(dim_, o.dim_);
  for (int i = 0; i < dim_; ++i) v_[i] -= o.v_[i];
  return *this;
}

Vec& Vec::operator*=(double s) {
  for (int i = 0; i < dim_; ++i) v_[i] *= s;
  return *this;
}

Vec& Vec::operator/=(double s) {
  for (int i = 0; i < dim_; ++i) v_[i] /= s;
  return *this;
}

bool Vec::operator==(const Vec& o) const {
  if (dim_ != o.dim_) return false;
  for (int i = 0; i < dim_; ++i) {
    if (v_[i] != o.v_[i]) return false;
  }
  return true;
}

double Vec::Dot(const Vec& o) const {
  PRJ_DCHECK_EQ(dim_, o.dim_);
  double acc = 0.0;
  for (int i = 0; i < dim_; ++i) acc += v_[i] * o.v_[i];
  return acc;
}

double Vec::SquaredDistance(const Vec& o) const {
  PRJ_DCHECK_EQ(dim_, o.dim_);
  double acc = 0.0;
  for (int i = 0; i < dim_; ++i) {
    const double d = v_[i] - o.v_[i];
    acc += d * d;
  }
  return acc;
}

Vec Vec::Normalized() const {
  const double n = Norm();
  PRJ_CHECK_GT(n, 0.0) << "cannot normalize the zero vector";
  return *this / n;
}

bool Vec::ApproxEquals(const Vec& o, double tol) const {
  if (dim_ != o.dim_) return false;
  for (int i = 0; i < dim_; ++i) {
    if (std::fabs(v_[i] - o.v_[i]) > tol) return false;
  }
  return true;
}

std::string Vec::ToString() const {
  std::string s = "[";
  char buf[32];
  for (int i = 0; i < dim_; ++i) {
    std::snprintf(buf, sizeof(buf), "%.6g", v_[i]);
    if (i > 0) s += ", ";
    s += buf;
  }
  s += "]";
  return s;
}

Vec Mean(const std::vector<Vec>& vs) {
  PRJ_CHECK(!vs.empty());
  Vec acc(vs[0].dim());
  for (const Vec& v : vs) acc += v;
  return acc / static_cast<double>(vs.size());
}

}  // namespace prj
