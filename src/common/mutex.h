// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// Thin, zero-overhead wrappers over std::mutex and
// std::condition_variable that carry the clang Thread Safety Analysis
// capability attributes (common/thread_annotations.h). The standard types
// are invisible to the analysis; these wrappers make every lock in src/ a
// checkable capability, so "which lock guards which state" is a
// machine-verified contract instead of a comment convention:
//
//   prj::Mutex mu_;
//   int value_ PRJ_GUARDED_BY(mu_);   // compile error to touch unlocked
//
// Condition waits: CondVar::Wait(lock) atomically releases the lock's
// mutex, blocks, and reacquires before returning. Deliberately no
// predicate overload -- a predicate lambda is analyzed as a separate
// function and would trip guarded-member checks -- so wait sites spell
// the classic loop where the analysis can see the lock is held:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(lock);
#ifndef PRJ_COMMON_MUTEX_H_
#define PRJ_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace prj {

class CondVar;

/// An annotated std::mutex: a clang TSA capability.
class PRJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PRJ_ACQUIRE() { mu_.lock(); }
  void Unlock() PRJ_RELEASE() { mu_.unlock(); }
  bool TryLock() PRJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex (the std::lock_guard of the wrapper
/// vocabulary, and -- because CondVar::Wait releases/reacquires through
/// it -- also the std::unique_lock).
class PRJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PRJ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PRJ_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Condition variable bound to Mutex/MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex, blocks until notified, and
  /// reacquires the mutex before returning. As far as the static analysis
  /// (and the caller) is concerned the lock is held throughout -- which is
  /// exactly the guarantee on entry and return; spurious wakeups are
  /// handled by the caller's while loop.
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    // The mutex is locked again; ownership stays with `lock`'s scope, not
    // with this temporary.
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace prj

#endif  // PRJ_COMMON_MUTEX_H_
