// Wall-clock timing utilities for the engine's cost accounting
// (total time vs. time in updateBound vs. time in dominance tests,
// as reported in the paper's stacked bar charts, Figure 3(d)-(n)).
#ifndef PRJ_COMMON_TIMER_H_
#define PRJ_COMMON_TIMER_H_

#include <chrono>

namespace prj {

/// Monotonic stopwatch; Elapsed* report time since construction or Reset.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the lifetime of the scope to *sink (seconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace prj

#endif  // PRJ_COMMON_TIMER_H_
