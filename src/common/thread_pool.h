// A small reusable worker pool: N threads over N work-stealing deques.
//
// ShardedEngine (shard/sharded_engine.h) uses it to scatter one query's
// shards concurrently; the pool is deliberately generic so other fan-out
// layers can share the primitive. Tasks are plain std::function<void()>
// thunks: the pool imposes no result plumbing -- callers that need a
// barrier count completions themselves (see the scatter loop for the
// canonical pattern: submit helpers, run the same loop on the calling
// thread, wait for the helpers to drain).
//
// Scheduling: each worker owns a deque (its own mutex, so submissions to
// different workers never contend). A worker drains its own deque from
// the front; when empty it steals from the back of a sibling's. Submit
// from inside a task lands on the submitting worker's own deque (cheap,
// cache-warm); external submissions round-robin across deques. Stealing
// keeps every core busy when one query's shards finish early while
// another query's backlog is still deep -- the concurrent-queries case
// the single shared queue serialized. steals() exposes the migration
// count so tests can prove stealing actually happened.
//
// Semantics (unchanged from the single-queue pool):
//   * Submit never blocks (unbounded deques) and may be called from any
//     thread, including from inside a task;
//   * tasks must not throw -- an escaping exception would terminate the
//     process (same contract as a detached thread body);
//   * the destructor finishes every queued task, then joins. Follow-up
//     work a draining task submits still runs (the submitting task's own
//     worker picks it up) -- so recursive submission must terminate, or
//     the destructor never does. Submitting from outside the pool once
//     destruction has begun is a lifetime bug on the caller.
#ifndef PRJ_COMMON_THREAD_POOL_H_
#define PRJ_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace prj {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1, checked).
  explicit ThreadPool(int num_threads);

  /// Finishes the queued backlog, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task; some worker runs it eventually. Never blocks.
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Tasks executed by a worker other than the one they were queued on.
  /// Pure observability (tests assert stealing occurs under imbalance);
  /// relaxed counter, exact only after the producing work has quiesced.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  // One worker's deque. Own mutex: submissions and steals targeting
  // different workers proceed in parallel. unique_ptr in the vector
  // because the mutex is immovable.
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks PRJ_GUARDED_BY(mu);
  };

  void WorkerLoop(size_t self);
  /// Claims one task -- own deque front first, then steal a sibling's
  /// back -- and runs it. Returns false when every deque was empty.
  bool TryRunOne(size_t self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::atomic<size_t> next_submit_{0};  ///< round-robin for external Submit
  std::atomic<uint64_t> steals_{0};

  // Global idle/shutdown coordination. queued_ counts submitted tasks not
  // yet claimed by any worker; it is incremented *before* the task is
  // published to a deque so a concurrent claim can never underflow it.
  Mutex idle_mu_;
  CondVar idle_cv_;
  size_t queued_ PRJ_GUARDED_BY(idle_mu_) = 0;
  bool stopping_ PRJ_GUARDED_BY(idle_mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace prj

#endif  // PRJ_COMMON_THREAD_POOL_H_
