// A small reusable worker pool: N threads draining one task queue.
//
// ShardedEngine (shard/sharded_engine.h) uses it to scatter one query's
// shards concurrently; the pool is deliberately generic so other fan-out
// layers can share the primitive. Tasks are plain std::function<void()>
// thunks: the pool imposes no result plumbing -- callers that need a
// barrier count completions themselves (see the scatter loop for the
// canonical pattern: submit helpers, run the same loop on the calling
// thread, wait for the helpers to drain).
//
// Semantics:
//   * Submit never blocks (unbounded queue) and may be called from any
//     thread, including from inside a task;
//   * tasks must not throw -- an escaping exception would terminate the
//     process (same contract as a detached thread body);
//   * the destructor finishes every queued task, then joins. Follow-up
//     work a draining task submits still runs (the submitting task's own
//     worker picks it up) -- so recursive submission must terminate, or
//     the destructor never does. Submitting from outside the pool once
//     destruction has begun is a lifetime bug on the caller.
#ifndef PRJ_COMMON_THREAD_POOL_H_
#define PRJ_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prj {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1, checked).
  explicit ThreadPool(int num_threads);

  /// Finishes the queued backlog, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task; some worker runs it eventually. Never blocks.
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;  ///< guarded by mu_
  bool stopping_ = false;                    ///< guarded by mu_
  std::vector<std::thread> threads_;
};

}  // namespace prj

#endif  // PRJ_COMMON_THREAD_POOL_H_
