// Deterministic pseudo-random generation used by workloads and tests.
//
// We implement xoshiro256** (public-domain algorithm by Blackman & Vigna)
// rather than relying on std::mt19937 so that generated datasets are
// bit-identical across standard libraries and platforms; benchmark rows
// must be reproducible from a seed alone.
#ifndef PRJ_COMMON_RANDOM_H_
#define PRJ_COMMON_RANDOM_H_

#include <cstdint>

#include "common/vec.h"

namespace prj {

/// xoshiro256** generator with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be positive.
  uint64_t NextBounded(uint64_t n);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Uniform point in the axis-aligned cube [lo, hi)^dim.
  Vec UniformInCube(int dim, double lo, double hi);

  /// Point from an isotropic Gaussian centered at `center`.
  Vec GaussianAround(const Vec& center, double sigma);

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace prj

#endif  // PRJ_COMMON_RANDOM_H_
