// Compile-time contract for the error-propagation vocabulary types. These
// asserts (plus the explicit instantiations, which force every member of
// Result<T> through the -Wall -Wextra -Werror gate) pin down properties the
// rest of the codebase relies on when returning Status / Result by value.
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "common/vec.h"

namespace prj {

static_assert(std::is_default_constructible_v<Status>);
static_assert(std::is_copy_constructible_v<Status>);
static_assert(std::is_copy_assignable_v<Status>);
static_assert(std::is_nothrow_move_constructible_v<Status>);
static_assert(std::is_nothrow_move_assignable_v<Status>);

// Result<T> is usable by value for small trivials, strings, and containers.
template class Result<int>;
template class Result<std::string>;
template class Result<std::vector<double>>;
template class Result<Vec>;

static_assert(std::is_move_constructible_v<Result<int>>);
static_assert(std::is_move_constructible_v<Result<std::string>>);
static_assert(std::is_move_constructible_v<Result<Vec>>);
static_assert(std::is_copy_constructible_v<Result<std::vector<double>>>);
static_assert(std::is_convertible_v<Status, Result<int>>,
              "an error Status must implicitly convert to any Result<T>");
static_assert(std::is_convertible_v<int, Result<int>>,
              "a value must implicitly convert to its Result<T>");

}  // namespace prj
