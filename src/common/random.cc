#include "common/random.h"

#include <cmath>

namespace prj {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
  has_spare_gaussian_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t n) {
  PRJ_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  while (u1 <= 1e-300) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586476925286766559;
  spare_gaussian_ = mag * std::sin(two_pi * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(two_pi * u2);
}

Vec Rng::UniformInCube(int dim, double lo, double hi) {
  Vec v(dim);
  for (int i = 0; i < dim; ++i) v[i] = Uniform(lo, hi);
  return v;
}

Vec Rng::GaussianAround(const Vec& center, double sigma) {
  Vec v(center.dim());
  for (int i = 0; i < center.dim(); ++i) {
    v[i] = center[i] + sigma * NextGaussian();
  }
  return v;
}

}  // namespace prj
