// Clang Thread Safety Analysis attribute macros.
//
// These macros let the concurrency contracts of the engine stack -- which
// lock guards which state, which functions require or acquire which lock
// -- be written into the declarations themselves and checked at compile
// time by clang's -Wthread-safety analysis. The dynamic tools (the TSan
// CI leg) only validate the interleavings a test happens to run; the
// static analysis proves the lock discipline for every call path, on
// every build, before anything executes.
//
// Under clang the macros expand to the capability attributes; under GCC
// and MSVC (which have no equivalent analysis) they expand to nothing, so
// annotated code compiles everywhere. The annotated prj::Mutex /
// prj::MutexLock / prj::CondVar wrappers live in common/mutex.h; raw
// std::mutex is invisible to the analysis, so all of src/ uses the
// wrappers.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#ifndef PRJ_COMMON_THREAD_ANNOTATIONS_H_
#define PRJ_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PRJ_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PRJ_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" in diagnostics).
#define PRJ_CAPABILITY(x) PRJ_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability.
#define PRJ_SCOPED_CAPABILITY PRJ_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member: may only be read or written while holding `x`.
#define PRJ_GUARDED_BY(x) PRJ_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member: the pointed-to data may only be touched holding `x`
/// (the pointer itself is unguarded).
#define PRJ_PT_GUARDED_BY(x) PRJ_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering declarations: this capability must be acquired before /
/// after the named ones.
#define PRJ_ACQUIRED_BEFORE(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define PRJ_ACQUIRED_AFTER(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function: caller must already hold the capability (exclusively /
/// shared).
#define PRJ_REQUIRES(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define PRJ_REQUIRES_SHARED(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function: acquires the capability and holds it past return.
#define PRJ_ACQUIRE(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define PRJ_ACQUIRE_SHARED(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function: releases a capability the caller held on entry.
#define PRJ_RELEASE(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define PRJ_RELEASE_SHARED(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function: acquires the capability iff it returns `b`.
#define PRJ_TRY_ACQUIRE(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function: must NOT be called holding the capability (deadlock guard
/// for non-reentrant locks).
#define PRJ_EXCLUDES(...) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// In-body assertion that the capability is held (for code paths the
/// analysis cannot follow, e.g. after an adopt).
#define PRJ_ASSERT_CAPABILITY(x) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returning a reference to the capability guarding its result.
#define PRJ_RETURN_CAPABILITY(x) \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the discipline holds anyway.
#define PRJ_NO_THREAD_SAFETY_ANALYSIS \
  PRJ_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // PRJ_COMMON_THREAD_ANNOTATIONS_H_
