// Monotonic bump allocator + a thread-safe pool of reusable arenas.
//
// The R-tree NearestIterator's frontier heap is rebuilt for every query;
// under an engine serving millions of queries that is a malloc/free pair
// per pull-path vector growth, per query, per relation. An Arena turns
// all of those into pointer bumps: allocation is monotonic (deallocate is
// a no-op), and Reset() recycles the memory wholesale -- keeping the
// largest block, so a steady-state query stream reaches a fixed footprint
// and never touches the system allocator again.
//
// ArenaPool is the sharing layer: an Engine owns one pool, each TopK call
// leases an arena for its query sources (RAII Lease returns and resets it
// on destruction), and concurrent queries lease distinct arenas -- an
// Arena itself is single-threaded by design.
#ifndef PRJ_COMMON_ARENA_H_
#define PRJ_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace prj {

/// Monotonic allocation region. Not thread-safe; lease one per query.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Never
  /// freed individually; the memory lives until Reset() or destruction.
  void* Allocate(size_t bytes, size_t align);

  /// Recycles everything in O(blocks): keeps only the largest block so a
  /// warmed arena serves the next query without allocating.
  void Reset();

  /// Bytes of capacity currently held (across all blocks).
  size_t RetainedBytes() const;
  /// Blocks ever allocated from the system since the last Reset...
  /// steady-state is 1 once the largest block covers a whole query.
  size_t BlockCount() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    size_t capacity = 0;
  };

  static constexpr size_t kMinBlockBytes = 4096;

  std::vector<Block> blocks_;
  size_t used_ = 0;  ///< bump offset into blocks_.back()
};

/// Minimal STL allocator over an Arena: vectors and heaps on the query
/// hot path draw from the leased arena instead of the heap. deallocate is
/// a no-op (the arena reclaims in bulk), so containers that grow leave
/// their old buffers as arena garbage until Reset -- fine for per-query
/// lifetimes, wrong for long-lived containers. A null arena degrades to
/// plain heap allocation (with real deallocation), so containers that are
/// arena-backed opportunistically -- GatherHeap when its owner has no
/// pool -- need no second code path.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  // Steal the buffer (and this allocator) on container move/swap instead
  // of element-wise copying into the target's arena.
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(size_t n) {
    if (arena_ == nullptr) {
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, size_t) {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_;
};

/// Thread-safe free list of arenas. Acquire() hands out a warmed arena
/// (or creates one when every arena is leased out, so concurrent queries
/// never contend on arena memory); the RAII Lease resets and returns it.
class ArenaPool {
 public:
  ArenaPool() = default;
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  class Lease {
   public:
    Lease(ArenaPool* pool, std::unique_ptr<Arena> arena)
        : pool_(pool), arena_(std::move(arena)) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->Return(std::move(arena_));
    }
    Lease(Lease&& o) noexcept
        : pool_(std::exchange(o.pool_, nullptr)), arena_(std::move(o.arena_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    Arena* arena() const { return arena_.get(); }

   private:
    ArenaPool* pool_;
    std::unique_ptr<Arena> arena_;
  };

  Lease Acquire();

  /// Arenas ever constructed: stays at the peak number of concurrent
  /// leases -- 1 under a single-threaded query loop, however many
  /// queries ran (the reuse property the hotpath tests pin down).
  size_t arenas_created() const;
  /// Total Acquire() calls.
  uint64_t leases_issued() const;

 private:
  void Return(std::unique_ptr<Arena> arena);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Arena>> free_ PRJ_GUARDED_BY(mu_);
  size_t created_ PRJ_GUARDED_BY(mu_) = 0;
  uint64_t leases_ PRJ_GUARDED_BY(mu_) = 0;
};

}  // namespace prj

#endif  // PRJ_COMMON_ARENA_H_
