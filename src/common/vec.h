// Fixed-capacity feature vector used throughout the library.
//
// The paper evaluates dimensionalities d in {1,2,4,8,16}; tuples carry one
// such vector each, and hot loops (scoring, bounding) touch millions of
// them, so we use inline storage instead of heap-allocated std::vector.
#ifndef PRJ_COMMON_VEC_H_
#define PRJ_COMMON_VEC_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"

namespace prj {

/// Maximum supported feature-space dimensionality (paper max is 16).
inline constexpr int kMaxDim = 16;

/// A dense real-valued vector of dimension <= kMaxDim with inline storage.
class Vec {
 public:
  Vec() : dim_(0) {}
  explicit Vec(int dim, double fill = 0.0) : dim_(dim) {
    PRJ_CHECK(dim >= 0 && dim <= kMaxDim) << "dim=" << dim;
    for (int i = 0; i < dim_; ++i) v_[i] = fill;
  }
  Vec(std::initializer_list<double> init) : dim_(0) {
    PRJ_CHECK_LE(static_cast<int>(init.size()), kMaxDim);
    for (double x : init) v_[dim_++] = x;
  }
  static Vec FromStd(const std::vector<double>& xs) {
    PRJ_CHECK_LE(static_cast<int>(xs.size()), kMaxDim);
    Vec v(static_cast<int>(xs.size()));
    for (int i = 0; i < v.dim_; ++i) v.v_[i] = xs[static_cast<size_t>(i)];
    return v;
  }
  /// Unit vector along coordinate axis `axis`.
  static Vec Basis(int dim, int axis) {
    Vec v(dim);
    PRJ_CHECK(axis >= 0 && axis < dim);
    v[axis] = 1.0;
    return v;
  }

  int dim() const { return dim_; }
  bool empty() const { return dim_ == 0; }

  double& operator[](int i) {
    PRJ_DCHECK(i >= 0 && i < dim_);
    return v_[i];
  }
  double operator[](int i) const {
    PRJ_DCHECK(i >= 0 && i < dim_);
    return v_[i];
  }

  const double* data() const { return v_.data(); }
  double* data() { return v_.data(); }

  Vec& operator+=(const Vec& o);
  Vec& operator-=(const Vec& o);
  Vec& operator*=(double s);
  Vec& operator/=(double s);

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(Vec a, double s) { return a *= s; }
  friend Vec operator*(double s, Vec a) { return a *= s; }
  friend Vec operator/(Vec a, double s) { return a /= s; }

  bool operator==(const Vec& o) const;
  bool operator!=(const Vec& o) const { return !(*this == o); }

  double Dot(const Vec& o) const;
  double SquaredNorm() const { return Dot(*this); }
  double Norm() const { return std::sqrt(SquaredNorm()); }
  double SquaredDistance(const Vec& o) const;
  double Distance(const Vec& o) const { return std::sqrt(SquaredDistance(o)); }

  /// Returns this vector scaled to unit norm; requires Norm() > 0.
  Vec Normalized() const;

  /// True if every component differs from `o` by at most `tol`.
  bool ApproxEquals(const Vec& o, double tol = 1e-9) const;

  std::string ToString() const;
  std::vector<double> ToStd() const {
    return std::vector<double>(v_.begin(), v_.begin() + dim_);
  }

 private:
  std::array<double, kMaxDim> v_;
  int dim_;
};

/// Arithmetic mean of `vs` (all same dimension; `vs` non-empty).
Vec Mean(const std::vector<Vec>& vs);

}  // namespace prj

#endif  // PRJ_COMMON_VEC_H_
