// Lightweight assertion/logging macros in the spirit of the CHECK family
// used by production database engines. A failed PRJ_CHECK aborts the
// process after printing the failing condition and location; PRJ_DCHECK
// compiles away in NDEBUG builds.
#ifndef PRJ_COMMON_LOGGING_H_
#define PRJ_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace prj {
namespace internal {

// Accumulates a streamed message and aborts on destruction.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* cond) {
    stream_ << file << ":" << line << " check failed: " << cond << " ";
  }
  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }
  template <typename T>
  CheckFailure& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace prj

#define PRJ_CHECK(cond)                                           \
  if (cond) {                                                     \
  } else                                                          \
    ::prj::internal::CheckFailure(__FILE__, __LINE__, #cond)

#define PRJ_CHECK_OP(a, op, b) PRJ_CHECK((a)op(b))
#define PRJ_CHECK_EQ(a, b) PRJ_CHECK_OP(a, ==, b)
#define PRJ_CHECK_NE(a, b) PRJ_CHECK_OP(a, !=, b)
#define PRJ_CHECK_LT(a, b) PRJ_CHECK_OP(a, <, b)
#define PRJ_CHECK_LE(a, b) PRJ_CHECK_OP(a, <=, b)
#define PRJ_CHECK_GT(a, b) PRJ_CHECK_OP(a, >, b)
#define PRJ_CHECK_GE(a, b) PRJ_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define PRJ_DCHECK(cond) PRJ_CHECK(true)
#define PRJ_DCHECK_EQ(a, b) PRJ_CHECK(true)
#define PRJ_DCHECK_LE(a, b) PRJ_CHECK(true)
#define PRJ_DCHECK_GE(a, b) PRJ_CHECK(true)
#else
#define PRJ_DCHECK(cond) PRJ_CHECK(cond)
#define PRJ_DCHECK_EQ(a, b) PRJ_CHECK_EQ(a, b)
#define PRJ_DCHECK_LE(a, b) PRJ_CHECK_LE(a, b)
#define PRJ_DCHECK_GE(a, b) PRJ_CHECK_GE(a, b)
#endif

#endif  // PRJ_COMMON_LOGGING_H_
