// Minimal Status / Result<T> error-propagation types, following the
// convention used by storage engines (RocksDB::Status, arrow::Result):
// fallible public APIs return Status or Result instead of throwing.
#ifndef PRJ_COMMON_STATUS_H_
#define PRJ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace prj {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kUnimplemented,
  kInternal,
  kUnavailable,
};

/// Result of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value or an error Status. Dereferencing a failed Result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PRJ_CHECK(!status_.ok()) << "Result built from OK status without value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    PRJ_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  const T& value() const& {
    PRJ_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PRJ_CHECK(ok()) << status_.ToString();
    return std::move(*value_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define PRJ_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::prj::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace prj

#endif  // PRJ_COMMON_STATUS_H_
