#include "common/arena.h"

#include <algorithm>

namespace prj {

void* Arena::Allocate(size_t bytes, size_t align) {
  PRJ_DCHECK(align > 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  if (!blocks_.empty()) {
    const size_t aligned = (used_ + align - 1) & ~(align - 1);
    Block& back = blocks_.back();
    if (aligned + bytes <= back.capacity) {
      used_ = aligned + bytes;
      return back.data.get() + aligned;
    }
  }
  // Doubling growth so a query that outgrows the warm block settles after
  // O(log n) system allocations; `new[]` is suitably aligned for every
  // scalar type the hot path stores (alignof(std::max_align_t)).
  PRJ_CHECK_LE(align, alignof(std::max_align_t));
  const size_t prev = blocks_.empty() ? 0 : blocks_.back().capacity;
  const size_t capacity = std::max({kMinBlockBytes, prev * 2, bytes});
  Block block;
  block.data = std::make_unique<std::byte[]>(capacity);
  block.capacity = capacity;
  blocks_.push_back(std::move(block));
  used_ = bytes;
  return blocks_.back().data.get();
}

void Arena::Reset() {
  if (blocks_.empty()) {
    used_ = 0;
    return;
  }
  size_t largest = 0;
  for (size_t i = 1; i < blocks_.size(); ++i) {
    if (blocks_[i].capacity > blocks_[largest].capacity) largest = i;
  }
  Block keep = std::move(blocks_[largest]);
  blocks_.clear();
  blocks_.push_back(std::move(keep));
  used_ = 0;
}

size_t Arena::RetainedBytes() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

ArenaPool::Lease ArenaPool::Acquire() {
  std::unique_ptr<Arena> arena;
  {
    MutexLock lock(mu_);
    ++leases_;
    if (!free_.empty()) {
      arena = std::move(free_.back());
      free_.pop_back();
    } else {
      ++created_;
    }
  }
  if (arena == nullptr) arena = std::make_unique<Arena>();
  return Lease(this, std::move(arena));
}

void ArenaPool::Return(std::unique_ptr<Arena> arena) {
  arena->Reset();
  MutexLock lock(mu_);
  free_.push_back(std::move(arena));
}

size_t ArenaPool::arenas_created() const {
  MutexLock lock(mu_);
  return created_;
}

uint64_t ArenaPool::leases_issued() const {
  MutexLock lock(mu_);
  return leases_;
}

}  // namespace prj
