// Sharded scatter-gather execution of the ProxRJ operator.
//
// ShardedEngine partitions every input relation into P parts at Create
// time (hash or STR-tile partitioning, access/partition.h) and builds one
// per-shard Engine for every combination of parts -- shard (i_1,...,i_n)
// joins part i_1 of R_1 with part i_2 of R_2 and so on, giving a fan-out
// of P^n engines whose combination spaces partition the full cross
// product R_1 x ... x R_n exactly. Per-partition indexes are built once
// and shared by every shard engine that covers the partition (via
// Engine::FromCatalog), so the data is never indexed twice.
//
// TopK scatters the query to every shard, gathers the per-shard top-K
// lists, and merges them by the executor's exact result order. The merge
// is provably exact:
//
//   1. Every combination of the global top K lives in exactly one shard
//      (the parts are disjoint and cover each relation), and within that
//      shard at most K combinations can precede it -- so the shard's own
//      top-K list contains it. The union of the per-shard lists therefore
//      contains the global top K.
//   2. The executor's output order (TopKBuffer: score descending, ties by
//      lexicographic member positions within the pulled prefixes) is
//      reconstructible from the output tuples alone: position order per
//      relation IS access order, i.e. (distance to q asc, id asc) under
//      distance access and (score desc, id asc) under score access. The
//      gather re-sorts the union with exactly that order and keeps K.
//
// Hence the merged list is bit-identical to the unsharded Engine's answer,
// ties included (property-tested across presets, backends, partitioners
// and adversarial tie-heavy inputs in tests/shard_test.cc).
//
// Stats: the aggregate ExecStats sums work counters (depths, sum_depths,
// combinations_formed, bound_stats) across shards, while the wall-clock
// fields (total_seconds, bound_seconds, dominance_seconds) report the MAX
// across shards -- the makespan of an idealized parallel fan-out -- and
// final_bound the loosest shard's bound; completed is the AND of all
// shards. See AggregateShardStats.
#ifndef PRJ_SHARD_SHARDED_ENGINE_H_
#define PRJ_SHARD_SHARDED_ENGINE_H_

#include <cstdint>
#include <vector>

#include "access/partition.h"
#include "core/engine.h"
#include "core/query_engine.h"

namespace prj {

/// Construction-time choices of a ShardedEngine.
struct ShardedEngineOptions {
  /// Parts each relation is split into; fan-out is parts^num_relations
  /// per-shard engines (Create rejects fan-outs above kMaxFanOut).
  uint32_t partitions_per_relation = 2;
  /// How tuples map to parts (access/partition.h).
  PartitionScheme scheme = PartitionScheme::kHash;
  /// Options for every per-shard Engine (backend, paging).
  EngineOptions engine;
};

/// Accumulates one shard's per-query stats into the scatter-gather
/// aggregate: counters sum, wall-clock fields take the max (an idealized
/// parallel fan-out's makespan), final_bound takes the max (the loosest
/// shard), completed ANDs. `aggregate->depths` must already be sized to
/// the relation count. Exposed for the focused unit test.
void AggregateShardStats(const ExecStats& shard, ExecStats* aggregate);

class ShardedEngine : public QueryEngine {
 public:
  using Options = ShardedEngineOptions;

  /// Hard ceiling on partitions_per_relation^num_relations.
  static constexpr size_t kMaxFanOut = 4096;

  /// Validates the relations exactly like Engine::Create, partitions them,
  /// and assembles the per-shard engines over shared per-partition
  /// catalogs. Shards whose cross product is empty (some part received no
  /// tuples) are skipped -- they cannot contribute combinations.
  /// `scoring` must outlive the engine.
  static Result<ShardedEngine> Create(const std::vector<Relation>& relations,
                                      AccessKind kind,
                                      const ScoringFunction* scoring,
                                      Options options = {});

  ShardedEngine(ShardedEngine&&) = default;
  ShardedEngine& operator=(ShardedEngine&&) = default;

  /// Scatter-gather top-K: bit-identical to the unsharded Engine::TopK on
  /// the same relations (see file comment for the exactness argument).
  /// `options` apply to every shard individually; note that the safety
  /// rails (max_pulls, time_budget_seconds) therefore bound each shard,
  /// not the whole scatter, and that `options.trace` receives the shards'
  /// executions concatenated in shard order -- per-shard trajectory
  /// invariants hold within each segment (depths restart and the bound
  /// jumps back up at every shard boundary), so trace consumers that
  /// assert whole-run invariants should trace the shards individually
  /// via shard(i).TopK instead.
  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const override;

  AccessKind kind() const override { return kind_; }
  int dim() const override { return dim_; }
  size_t num_relations() const override { return num_relations_; }
  /// Number of per-shard engines a query scatters to.
  size_t fan_out() const override { return shards_.size(); }

  size_t num_shards() const { return shards_.size(); }
  const Engine& shard(size_t i) const { return shards_[i]; }
  uint32_t partitions_per_relation() const {
    return options_.partitions_per_relation;
  }
  PartitionScheme scheme() const { return options_.scheme; }

 private:
  ShardedEngine(AccessKind kind, Options options, int dim,
                size_t num_relations)
      : kind_(kind),
        options_(options),
        dim_(dim),
        num_relations_(num_relations) {}

  AccessKind kind_;
  Options options_;
  int dim_;
  size_t num_relations_;
  std::vector<Engine> shards_;
};

}  // namespace prj

#endif  // PRJ_SHARD_SHARDED_ENGINE_H_
