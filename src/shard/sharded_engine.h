// Sharded scatter-gather execution of the ProxRJ operator.
//
// ShardedEngine partitions every input relation into P parts at Create
// time (hash or STR-tile partitioning, access/partition.h) and builds one
// per-shard Engine for every combination of parts -- shard (i_1,...,i_n)
// joins part i_1 of R_1 with part i_2 of R_2 and so on, giving a fan-out
// of P^n engines whose combination spaces partition the full cross
// product R_1 x ... x R_n exactly. Per-partition indexes are built once
// and shared by every shard engine that covers the partition (via
// Engine::FromCatalog), so the data is never indexed twice.
//
// TopK scatters the query over the shards -- sequentially, or across a
// worker pool when Options::scatter_threads > 1 -- visiting them in
// best-bound-first order and merging the per-shard top-K lists through a
// bounded K-heap under the executor's exact result order. The parallel
// scatter is adaptive when pruning is on: the calling thread scouts the
// strongest shard first, and if the threshold it seeds prunes all but a
// couple of the remaining shards, the query finishes inline instead of
// paying pool fan-out for a near-empty slot list (ExecStats::
// scatter_threads reports 1 for that fallback, the worker count
// otherwise). Two levers keep
// the work proportional to the output instead of the fan-out:
//
//   * corner-bound shard pruning: each shard carries an a-priori upper
//     bound -- CornerUpperBound over its partitions' MBRs and per-part
//     score maxima (core/bounds.h) -- on the score of ANY combination it
//     can produce. A shard whose bound cannot beat the running global
//     K-th score is skipped entirely. Visiting shards in descending bound
//     order makes the K-th score tighten as early as possible, so on
//     localized workloads (STR tiles + a clustered query) most shards
//     never run.
//   * parallel scatter: non-pruned shards run concurrently on a pool
//     created at Create time and shared by concurrent queries; the
//     calling thread participates, so progress never depends on pool
//     availability.
//
// The merge is provably exact, with or without pruning and parallelism:
//
//   1. Every combination of the global top K lives in exactly one shard
//      (the parts are disjoint and cover each relation), and within that
//      shard at most K combinations can precede it -- so the shard's own
//      top-K list contains it. The union of the per-shard lists therefore
//      contains the global top K.
//   2. A pruned shard cannot contribute: pruning requires K combinations
//      already gathered with K-th score strictly above the shard's upper
//      bound, so every combination of the shard scores strictly below all
//      K of them -- it can neither displace one nor win a tie. The
//      threshold only tightens over time, so the decision is sound even
//      against a stale value read concurrently.
//   3. The executor's output order (TopKBuffer: score descending, ties by
//      lexicographic member positions within the pulled prefixes) is
//      reconstructible from the output tuples alone: position order per
//      relation IS access order, i.e. (distance to q asc, id asc) under
//      distance access and (score desc, id asc) under score access. The
//      gather keeps the best K of the union under exactly that order --
//      a strict total order, so the kept set and its final sort are
//      independent of arrival order.
//
// Hence the merged list is bit-identical to the unsharded Engine's answer,
// ties included (property-tested across presets, backends, partitioners,
// scatter modes and adversarial tie-heavy inputs in tests/shard_test.cc).
//
// Stats: the aggregate ExecStats sums work counters (depths, sum_depths,
// combinations_formed, bound_stats) across shards. The wall-clock fields
// (total_seconds, bound_seconds, dominance_seconds) SUM across shards on
// the sequential path -- that is the real latency -- and MAX on the
// parallel path (the makespan); scatter_threads records which mode ran.
// final_bound is the loosest shard's bound (a pruned shard contributes
// its static corner bound), completed is the AND of all executed shards,
// and shards_pruned / gather_seconds account for the scatter itself. See
// AggregateShardStats.
#ifndef PRJ_SHARD_SHARDED_ENGINE_H_
#define PRJ_SHARD_SHARDED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "access/partition.h"
#include "common/arena.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/gather.h"
#include "core/query_engine.h"
#include "index/rtree.h"
#include "plan/relation_stats.h"

namespace prj {

/// Construction-time choices of a ShardedEngine.
struct ShardedEngineOptions {
  /// Parts each relation is split into; fan-out is parts^num_relations
  /// per-shard engines (Create rejects fan-outs above kMaxFanOut).
  uint32_t partitions_per_relation = 2;
  /// How tuples map to parts (access/partition.h).
  PartitionScheme scheme = PartitionScheme::kHash;
  /// Options for every per-shard Engine (backend, paging).
  EngineOptions engine;
  /// Threads that scatter one query's shards concurrently; 0 or 1 keeps
  /// the sequential scatter. The pool (scatter_threads - 1 workers; the
  /// calling thread is the remaining one) is created at Create time and
  /// shared by concurrent TopK calls.
  uint32_t scatter_threads = 0;
  /// Skip shards whose corner-bound upper score over their partitions'
  /// MBRs cannot beat the running K-th gathered score. Results are
  /// bit-identical either way; disable only to measure the pruning win.
  bool prune = true;
};

// ScatterMode and AggregateShardStats moved to core/gather.h (included
// above) so the live-data layer can share the scatter accounting; the
// names are unchanged.

class ShardedEngine : public QueryEngine {
 public:
  using Options = ShardedEngineOptions;

  /// Hard ceiling on partitions_per_relation^num_relations.
  static constexpr size_t kMaxFanOut = 4096;

  /// Validates the relations exactly like Engine::Create, partitions them,
  /// and assembles the per-shard engines over shared per-partition
  /// catalogs. Shards whose cross product is empty (some part received no
  /// tuples) are skipped -- they cannot contribute combinations.
  /// `scoring` must outlive the engine.
  static Result<ShardedEngine> Create(const std::vector<Relation>& relations,
                                      AccessKind kind,
                                      const ScoringFunction* scoring,
                                      Options options = {});

  ShardedEngine(ShardedEngine&&) = default;
  ShardedEngine& operator=(ShardedEngine&&) = default;

  /// Scatter-gather top-K: bit-identical to the unsharded Engine::TopK on
  /// the same relations (see file comment for the exactness argument).
  /// `options` apply to every shard individually; note that the safety
  /// rails (max_pulls, time_budget_seconds) therefore bound each shard,
  /// not the whole scatter. A traced query (`options.trace` non-null)
  /// always runs sequentially with pruning off, so the trace receives
  /// every shard's execution concatenated in shard order -- per-shard
  /// trajectory invariants hold within each segment (depths restart and
  /// the bound jumps back up at every shard boundary); trace consumers
  /// that assert whole-run invariants should trace the shards
  /// individually via shard(i).TopK instead.
  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const override;

  /// Streaming enumeration: a lazy best-bound-first merge over per-shard
  /// Engine cursors (GatherMergeCursor). A shard's cursor is opened only
  /// when its corner bound says it could still beat the best pending
  /// head, so paging keeps the pruning win; results are bit-identical to
  /// TopK at every prefix. Traced requests are rejected (the trace
  /// contract needs the sequential one-shot scatter). The engine must
  /// outlive the cursor.
  Result<std::unique_ptr<ResultCursor>> OpenCursor(
      const QueryRequest& request) const override;

  /// The corner-bound upper score of shard `i` for `query`: no
  /// combination the shard can produce scores higher. Drives pruning and
  /// the best-bound-first visit order; exposed for tests and benches.
  double ShardUpperBound(size_t i, const Vec& query) const;

  /// Per-relation planning statistics: the per-partition catalog
  /// statistics merged across each relation's parts at Create
  /// (MergeRelationStats), so the aggregate view matches what an
  /// unsharded engine over the same relations would report -- up to the
  /// merge's histogram resampling, which is fine for planning.
  std::vector<RelationStats> relation_stats() const override {
    return stats_;
  }

  AccessKind kind() const override { return kind_; }
  int dim() const override { return dim_; }
  size_t num_relations() const override { return num_relations_; }
  /// Number of per-shard engines a query scatters to.
  size_t fan_out() const override { return shards_.size(); }

  size_t num_shards() const { return shards_.size(); }
  const Engine& shard(size_t i) const { return shards_[i]; }
  uint32_t partitions_per_relation() const {
    return options_.partitions_per_relation;
  }
  PartitionScheme scheme() const { return options_.scheme; }
  uint32_t scatter_threads() const { return options_.scatter_threads; }

  /// The arena pool behind each query's gather K-heap and per-shard keyed
  /// result buffers (observability for tests: a sequential query loop
  /// must reach a fixed arena count -- the same reuse property as
  /// Engine::arena_pool()).
  const ArenaPool& gather_arena_pool() const { return *gather_pool_; }

 private:
  /// Per-partition envelope metadata the shard bounds are built from.
  struct PartMeta {
    std::optional<Rect> mbr;  ///< nullopt for an empty part
    double score_max = 0.0;   ///< largest score present in the part
  };

  /// Writes shard `i`'s per-relation pruning envelopes (score ceiling +
  /// MBR MINDIST to `query`) into `*envelopes`, resizing it; split out of
  /// ShardUpperBound so the scatter can reuse one scratch buffer across
  /// the whole fan-out.
  void FillEnvelopes(size_t i, const Vec& query,
                     std::vector<RelationEnvelope>* envelopes) const;

  ShardedEngine(AccessKind kind, const ScoringFunction* scoring,
                Options options, int dim, size_t num_relations)
      : kind_(kind),
        scoring_(scoring),
        options_(options),
        dim_(dim),
        num_relations_(num_relations) {}

  AccessKind kind_;
  const ScoringFunction* scoring_;
  Options options_;
  int dim_;
  size_t num_relations_;
  std::vector<Engine> shards_;
  /// Per shard (aligned with shards_), per relation in join order: which
  /// part of the relation the shard joins.
  std::vector<std::vector<uint32_t>> shard_parts_;
  /// Per relation, per part: the pruning envelope.
  std::vector<std::vector<PartMeta>> part_meta_;
  /// Per relation: the parts' catalog statistics merged at Create.
  std::vector<RelationStats> stats_;
  /// Present iff options_.scatter_threads > 1; shared by concurrent
  /// queries.
  std::unique_ptr<ThreadPool> pool_;
  /// Backs each query's gather K-heap and per-slot keyed buffers; behind
  /// a pointer so the engine stays movable (internally locked).
  std::unique_ptr<ArenaPool> gather_pool_;
};

}  // namespace prj

#endif  // PRJ_SHARD_SHARDED_ENGINE_H_
