#include "shard/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/timer.h"
#include "core/bounds.h"
#include "core/executor.h"
#include "core/gather.h"
#include "core/result_cursor.h"

// The gather-order machinery (KeyedCombination, GatherBetter, GatherHeap,
// the GatherPruned slack test) and AggregateShardStats live in
// core/gather.h, shared with the live-data layer.

namespace prj {
namespace {

// Adaptive scatter cutoff: after the scout shard seeds the gather
// threshold, a survivor count at or below this finishes inline on the
// calling thread instead of fanning out helpers. Two shards of work do
// not amortize a round trip through the pool.
constexpr size_t kScatterInlineMax = 2;

/// The cursor ShardedEngine::OpenCursor returns: the lazy streaming merge
/// plus the stat overlay that attributes never-opened shards to
/// shards_pruned (the cursor's pruning win to date) and keeps final_bound
/// admissible over them.
class ShardedCursor : public ResultCursor {
 public:
  ShardedCursor(AccessKind kind, Vec query, size_t num_relations, bool prune,
                std::vector<GatherMergeCursor::Part> parts)
      : merge_(kind, std::move(query), num_relations, prune,
               std::move(parts)) {}

  Result<std::optional<ResultCombination>> Next() override {
    return merge_.Next();
  }
  ExecStats stats() const override {
    ExecStats s = merge_.stats();
    s.shards_pruned = merge_.parts_unopened();
    s.final_bound = std::max(s.final_bound, merge_.max_unopened_bound());
    return s;
  }
  uint64_t emitted() const override { return merge_.emitted(); }

 private:
  GatherMergeCursor merge_;
};

}  // namespace

Result<ShardedEngine> ShardedEngine::Create(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction* scoring, Options options) {
  PRJ_RETURN_IF_ERROR(ValidateEngineInputs(relations, kind, scoring));
  const uint32_t parts = options.partitions_per_relation;
  if (parts < 1) {
    return Status::InvalidArgument("partitions_per_relation must be >= 1");
  }
  size_t fan_out = 1;
  for (size_t j = 0; j < relations.size(); ++j) {
    if (fan_out > kMaxFanOut / parts) {
      return Status::InvalidArgument(
          "shard fan-out " + std::to_string(parts) + "^" +
          std::to_string(relations.size()) + " exceeds the ceiling of " +
          std::to_string(kMaxFanOut));
    }
    fan_out *= parts;
  }
  const int dim = relations.front().dim();

  // Partition each relation and build every per-partition catalog exactly
  // once; the shard engines below share them. The pruning envelopes (MBR
  // + per-part score maximum) come straight off the catalogs: the R-tree
  // root MBR on the index path, the snapshot's precomputed box otherwise.
  const auto partitioner = MakePartitioner(options.scheme);
  const bool use_rtree = kind == AccessKind::kDistance &&
                         options.engine.backend == SourceBackend::kRTree;
  const size_t n = relations.size();
  std::vector<std::vector<std::shared_ptr<const IndexedRelation>>> indexes(n);
  std::vector<std::vector<std::shared_ptr<const RelationSnapshot>>> snaps(n);
  std::vector<std::vector<bool>> part_empty(n);
  ShardedEngine sharded(kind, scoring, options, dim, n);
  sharded.part_meta_.resize(n);
  for (size_t j = 0; j < n; ++j) {
    const auto sub = PartitionRelation(relations[j], *partitioner, parts);
    part_empty[j].reserve(parts);
    sharded.part_meta_[j].reserve(parts);
    for (const Relation& part : sub) {
      part_empty[j].push_back(part.empty());
      PartMeta meta;
      if (use_rtree) {
        auto index = IndexedRelation::Build(part);
        meta = PartMeta{index->mbr(), index->score_max()};
        indexes[j].push_back(std::move(index));
      } else {
        auto snap = RelationSnapshot::Build(part);
        meta = PartMeta{snap->mbr(), snap->score_max()};
        snaps[j].push_back(std::move(snap));
      }
      sharded.part_meta_[j].push_back(std::move(meta));
    }
  }

  // Aggregate planning statistics: each relation's view is its parts'
  // catalog statistics folded together, so decorators above see the whole
  // relation however it was partitioned.
  sharded.stats_.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    RelationStats merged;
    if (use_rtree) {
      for (const auto& part : indexes[j]) {
        merged = MergeRelationStats(merged, part->stats());
      }
    } else {
      for (const auto& part : snaps[j]) {
        merged = MergeRelationStats(merged, part->stats());
      }
    }
    sharded.stats_.push_back(std::move(merged));
  }

  sharded.shards_.reserve(fan_out);
  sharded.shard_parts_.reserve(fan_out);
  // Odometer over the part indices (i_1,...,i_n): one shard engine per
  // combination whose cross product is non-empty.
  std::vector<uint32_t> digits(n, 0);
  for (size_t shard = 0; shard < fan_out; ++shard) {
    bool empty = false;
    for (size_t j = 0; j < n; ++j) empty = empty || part_empty[j][digits[j]];
    if (!empty) {
      std::vector<std::shared_ptr<const IndexedRelation>> shard_indexes;
      std::vector<std::shared_ptr<const RelationSnapshot>> shard_snaps;
      for (size_t j = 0; j < n; ++j) {
        if (use_rtree) {
          shard_indexes.push_back(indexes[j][digits[j]]);
        } else {
          shard_snaps.push_back(snaps[j][digits[j]]);
        }
      }
      auto engine =
          Engine::FromCatalog(kind, scoring, options.engine,
                              std::move(shard_indexes), std::move(shard_snaps));
      PRJ_RETURN_IF_ERROR(engine.status());
      sharded.shards_.push_back(std::move(*engine));
      sharded.shard_parts_.push_back(digits);
    }
    for (size_t j = 0; j < n; ++j) {
      if (++digits[j] < parts) break;
      digits[j] = 0;
    }
  }
  sharded.gather_pool_ = std::make_unique<ArenaPool>();
  if (options.scatter_threads > 1 && sharded.shards_.size() > 1) {
    // The calling thread participates in its own scatter, so the pool
    // only needs the helpers. With 0-1 shards the parallel path can never
    // run -- don't spawn threads that would idle for the engine's life.
    sharded.pool_ = std::make_unique<ThreadPool>(
        static_cast<int>(options.scatter_threads) - 1);
  }
  return sharded;
}

void ShardedEngine::FillEnvelopes(
    size_t i, const Vec& query,
    std::vector<RelationEnvelope>* envelopes) const {
  envelopes->resize(num_relations_);
  const bool euclidean = scoring_->euclidean_metric();
  for (size_t j = 0; j < num_relations_; ++j) {
    const PartMeta& meta = part_meta_[j][shard_parts_[i][j]];
    (*envelopes)[j].score_ceiling = meta.score_max;
    // Distance floor: Euclidean MINDIST from the query to the part's MBR.
    // A non-Euclidean scoring metric keeps the floor at 0 -- still
    // admissible, just loose.
    (*envelopes)[j].min_dist_q =
        euclidean && meta.mbr
            ? std::sqrt(meta.mbr->MinSquaredDistance(query))
            : 0.0;
  }
}

double ShardedEngine::ShardUpperBound(size_t i, const Vec& query) const {
  std::vector<RelationEnvelope> envelopes;
  FillEnvelopes(i, query, &envelopes);
  return CornerUpperBound(*scoring_, envelopes);
}

Result<std::vector<ResultCombination>> ShardedEngine::TopK(
    const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  // Mirror Engine::TopK's contract: fresh stats on every path, request
  // validation before any per-shard work.
  if (stats_out) *stats_out = ExecStats{};
  PRJ_RETURN_IF_ERROR(ValidateOptions(options));
  if (query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(query.dim()));
  }

  ExecStats aggregate;
  aggregate.depths.assign(num_relations_, 0);
  aggregate.completed = true;
  aggregate.final_bound = -std::numeric_limits<double>::infinity();

  if (shards_.empty()) {
    if (stats_out) *stats_out = std::move(aggregate);
    return std::vector<ResultCombination>{};
  }

  // A traced query always runs the plain sequential scatter: the trace
  // contract is every shard's execution, concatenated in shard order --
  // pruning would drop segments and the pool would interleave them.
  // The planner's per-request hints override the construction-time
  // defaults within what exists: prune_hint flips pruning either way,
  // scatter_hint = 1 forces the sequential scatter and larger values cap
  // the parallel width at the configured pool (hints never create
  // threads). Every combination is bit-identical (see file comment).
  const bool traced = options.trace != nullptr;
  const bool prune_configured =
      options.prune_hint != 0 ? options.prune_hint > 0 : options_.prune;
  const bool prune = prune_configured && !traced;
  const bool parallel = pool_ != nullptr && !traced && shards_.size() > 1 &&
                        options.scatter_hint != 1;
  const uint32_t scatter_width =
      options.scatter_hint > 1
          ? std::min(options_.scatter_threads, options.scatter_hint)
          : options_.scatter_threads;
  // Flips to kParallel right before helpers launch (never after: helpers
  // read it through the aggregation lock, the flip is pre-publication).
  ScatterMode mode = ScatterMode::kSequential;

  // Visit shards best-bound-first (ties by shard index): the K-th
  // gathered score tightens as early as possible, so later -- weaker --
  // shards get pruned. Without pruning the visit order cannot affect the
  // result (the K-heap keeps the best K under a strict total order), so
  // unpruned runs skip the bound computation and keep plain shard order.
  struct RankedShard {
    size_t shard;
    double bound;
  };
  std::vector<RankedShard> order;
  order.reserve(shards_.size());
  if (prune) {
    std::vector<RelationEnvelope> envelopes;  // reused across shards
    for (size_t s = 0; s < shards_.size(); ++s) {
      FillEnvelopes(s, query, &envelopes);
      order.push_back({s, CornerUpperBound(*scoring_, envelopes)});
    }
    std::sort(order.begin(), order.end(),
              [](const RankedShard& a, const RankedShard& b) {
                if (a.bound != b.bound) return a.bound > b.bound;
                return a.shard < b.shard;
              });
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) order.push_back({s, 0.0});
  }

  // Shared scatter state. `heap` is a bounded K-heap under the exact
  // gather order (core/gather.h), so peak gather memory is O(K), not
  // O(fan_out x K); `threshold` caches the K-th score for lock-free prune
  // checks -- it only ever tightens, so a stale read is merely
  // conservative.
  const size_t keep = static_cast<size_t>(options.k);
  Mutex mu;
  // The heap's spine lives in a leased arena. The lease is declared
  // before the heap (destroyed after it), and every heap touch -- growth
  // on Offer, the final sort -- happens either under mu or after the
  // scatter joined, so the single-threaded arena only ever sees one
  // thread at a time.
  ArenaPool::Lease gather_lease = gather_pool_->Acquire();
  GatherHeap heap(keep, gather_lease.arena());  // guarded by mu
  Status first_error;                        // guarded by mu
  std::atomic<bool> failed{false};
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> pruned{0};
  std::atomic<double> threshold{-std::numeric_limits<double>::infinity()};

  auto process_slot = [&](size_t slot) {
    const RankedShard& ranked = order[slot];
    if (prune && GatherPruned(ranked.bound,
                              threshold.load(std::memory_order_acquire))) {
      // No combination of this shard can reach the K already gathered
      // -- strictly below on score, so no tie to win either.
      pruned.fetch_add(1, std::memory_order_relaxed);
      MutexLock lock(mu);
      aggregate.final_bound = std::max(aggregate.final_bound, ranked.bound);
      return;
    }
    if (failed.load(std::memory_order_relaxed)) return;
    ExecStats shard_stats;
    auto local = shards_[ranked.shard].TopK(query, options, &shard_stats);
    if (!local.ok()) {
      MutexLock lock(mu);
      if (first_error.ok()) first_error = local.status();
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    // Access keys are query-dependent but shard-local: compute them
    // outside the merge lock, in a buffer on a slot-local arena lease
    // (never the gather arena -- this runs unlocked on worker threads).
    ArenaPool::Lease slot_lease = gather_pool_->Acquire();
    std::vector<KeyedCombination, ArenaAllocator<KeyedCombination>> keyed(
        ArenaAllocator<KeyedCombination>(slot_lease.arena()));
    keyed.reserve(local->size());
    for (ResultCombination& combo : *local) {
      keyed.push_back(MakeKeyed(std::move(combo), kind_, query));
    }
    MutexLock lock(mu);
    const WallTimer gather_timer;
    AggregateShardStats(shard_stats, mode, &aggregate);
    for (KeyedCombination& kc : keyed) {
      heap.Offer(std::move(kc));
    }
    if (heap.full()) {
      threshold.store(heap.kth_score(), std::memory_order_release);
    }
    aggregate.gather_seconds += gather_timer.ElapsedSeconds();
  };

  auto run_shards = [&]() {
    for (;;) {
      const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= order.size()) return;
      if (failed.load(std::memory_order_relaxed)) return;
      process_slot(slot);
    }
  };

  auto run_parallel = [&]() {
    // The pool is shared by concurrent queries, so completion is tracked
    // per scatter: helpers run the same claim loop and count themselves
    // out; the calling thread participates, so progress never depends on
    // the pool being free.
    mode = ScatterMode::kParallel;
    const size_t workers = std::min<size_t>(scatter_width, order.size());
    const size_t helpers = workers - 1;
    Mutex done_mu;
    CondVar done_cv;
    size_t outstanding = helpers;  // guarded by done_mu
    for (size_t h = 0; h < helpers; ++h) {
      pool_->Submit([&]() {
        run_shards();
        // The decrement happens under the lock so the waiter can only
        // observe 0 once this helper is past every touch of the shared
        // scatter state -- after which the caller may safely destroy it.
        MutexLock lock(done_mu);
        if (--outstanding == 0) done_cv.NotifyAll();
      });
    }
    run_shards();
    MutexLock lock(done_mu);
    while (outstanding != 0) done_cv.Wait(lock);
    aggregate.scatter_threads = static_cast<uint32_t>(workers);
  };

  if (parallel && prune) {
    // Adaptive scatter: with best-bound-first pruning, most queries kill
    // all but one or two shards as soon as the strongest shard seeds the
    // gather threshold -- and then fanning helper threads out over a
    // near-empty slot list costs more (submit latency, cold caches, lock
    // traffic) than just finishing inline. Scout the strongest shard on
    // the calling thread, re-count the survivors against the fresh
    // threshold, and only launch helpers when enough work remains.
    const size_t scout = next.fetch_add(1, std::memory_order_relaxed);
    if (scout < order.size()) process_slot(scout);  // mode: kSequential
    const double thr = threshold.load(std::memory_order_acquire);
    size_t survivors = 0;
    for (size_t s = next.load(std::memory_order_relaxed); s < order.size();
         ++s) {
      if (!GatherPruned(order[s].bound, thr)) ++survivors;
    }
    if (survivors <= kScatterInlineMax) {
      run_shards();
      // 1 (not 0) records that the parallel engine *chose* inline:
      // distinguishable from a plain sequential configuration in stats.
      aggregate.scatter_threads = 1;
    } else {
      run_parallel();
    }
  } else if (parallel) {
    // No pruning, so no threshold to scout: every shard must run anyway
    // and the helpers always have work.
    run_parallel();
  } else {
    run_shards();
  }

  if (failed.load(std::memory_order_relaxed)) return first_error;

  // The heap holds exactly the global top K (exactness argument in the
  // file comment); one K log K sort puts it in the executor's order.
  const WallTimer finish_timer;
  std::vector<ResultCombination> merged = heap.Finish();
  aggregate.gather_seconds += finish_timer.ElapsedSeconds();
  aggregate.shards_pruned = pruned.load(std::memory_order_relaxed);
  if (stats_out) *stats_out = std::move(aggregate);
  return merged;
}

Result<std::unique_ptr<ResultCursor>> ShardedEngine::OpenCursor(
    const QueryRequest& request) const {
  PRJ_RETURN_IF_ERROR(ValidateOptions(request.options));
  if (request.query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(request.query.dim()));
  }
  if (request.options.trace != nullptr) {
    return Status::InvalidArgument(
        "traced queries are not supported through sharded cursors; trace "
        "the shards individually or use TopK");
  }
  // One merge part per shard, carrying the same corner bound the one-shot
  // scatter prunes with; the shard's Engine cursor is only opened when
  // the merge proves it could still contribute. The planner's prune_hint
  // overrides the configured default, exactly as in TopK.
  const bool prune = request.options.prune_hint != 0
                         ? request.options.prune_hint > 0
                         : options_.prune;
  std::vector<GatherMergeCursor::Part> parts;
  parts.reserve(shards_.size());
  std::vector<RelationEnvelope> envelopes;
  for (size_t s = 0; s < shards_.size(); ++s) {
    FillEnvelopes(s, request.query, &envelopes);
    const Engine* shard = &shards_[s];
    parts.push_back(GatherMergeCursor::Part{
        CornerUpperBound(*scoring_, envelopes),
        [shard, request]() { return shard->OpenCursor(request); }});
  }
  return std::unique_ptr<ResultCursor>(
      new ShardedCursor(kind_, request.query, num_relations_, prune,
                        std::move(parts)));
}

}  // namespace prj
