#include "shard/sharded_engine.h"

#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <utility>

#include "core/executor.h"

namespace prj {
namespace {

// One gathered combination plus its precomputed access keys: per relation
// in join order, the key a member sorts by within its access stream --
// squared distance to q under distance access (orders identically to
// distance), negated score under score access; ties break by member id.
struct KeyedCombination {
  ResultCombination combo;
  std::vector<double> keys;  ///< ascending = earlier in access order
};

KeyedCombination MakeKeyed(ResultCombination combo, AccessKind kind,
                           const Vec& query) {
  KeyedCombination keyed;
  keyed.keys.reserve(combo.tuples.size());
  for (const Tuple& t : combo.tuples) {
    keyed.keys.push_back(kind == AccessKind::kDistance
                             ? t.x.SquaredDistance(query)
                             : -t.score);
  }
  keyed.combo = std::move(combo);
  return keyed;
}

// The executor's result order, reconstructed from output tuples: score
// descending, ties by the per-relation access keys in join order (id
// breaking key ties). Distinct combinations always differ on some key
// (ids are unique per relation and the parts are disjoint), so this is a
// strict total order.
bool GatherBetter(const KeyedCombination& a, const KeyedCombination& b) {
  if (a.combo.score != b.combo.score) return a.combo.score > b.combo.score;
  for (size_t j = 0; j < a.keys.size(); ++j) {
    if (a.keys[j] != b.keys[j]) return a.keys[j] < b.keys[j];
    const int64_t ida = a.combo.tuples[j].id;
    const int64_t idb = b.combo.tuples[j].id;
    if (ida != idb) return ida < idb;
  }
  return false;
}

}  // namespace

void AggregateShardStats(const ExecStats& shard, ExecStats* aggregate) {
  for (size_t j = 0; j < shard.depths.size() && j < aggregate->depths.size();
       ++j) {
    aggregate->depths[j] += shard.depths[j];
  }
  aggregate->sum_depths += shard.sum_depths;
  aggregate->total_seconds = std::max(aggregate->total_seconds,
                                      shard.total_seconds);
  aggregate->bound_seconds = std::max(aggregate->bound_seconds,
                                      shard.bound_seconds);
  aggregate->dominance_seconds = std::max(aggregate->dominance_seconds,
                                          shard.dominance_seconds);
  aggregate->combinations_formed += shard.combinations_formed;
  aggregate->bound_stats.bound_updates += shard.bound_stats.bound_updates;
  aggregate->bound_stats.qp_solves += shard.bound_stats.qp_solves;
  aggregate->bound_stats.lp_solves += shard.bound_stats.lp_solves;
  aggregate->bound_stats.partials_total += shard.bound_stats.partials_total;
  aggregate->bound_stats.partials_dominated +=
      shard.bound_stats.partials_dominated;
  aggregate->final_bound = std::max(aggregate->final_bound, shard.final_bound);
  aggregate->completed = aggregate->completed && shard.completed;
}

Result<ShardedEngine> ShardedEngine::Create(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction* scoring, Options options) {
  PRJ_RETURN_IF_ERROR(ValidateEngineInputs(relations, kind, scoring));
  const uint32_t parts = options.partitions_per_relation;
  if (parts < 1) {
    return Status::InvalidArgument("partitions_per_relation must be >= 1");
  }
  size_t fan_out = 1;
  for (size_t j = 0; j < relations.size(); ++j) {
    if (fan_out > kMaxFanOut / parts) {
      return Status::InvalidArgument(
          "shard fan-out " + std::to_string(parts) + "^" +
          std::to_string(relations.size()) + " exceeds the ceiling of " +
          std::to_string(kMaxFanOut));
    }
    fan_out *= parts;
  }
  const int dim = relations.front().dim();

  // Partition each relation and build every per-partition catalog exactly
  // once; the shard engines below share them.
  const auto partitioner = MakePartitioner(options.scheme);
  const bool use_rtree = kind == AccessKind::kDistance &&
                         options.engine.backend == SourceBackend::kRTree;
  const size_t n = relations.size();
  std::vector<std::vector<std::shared_ptr<const IndexedRelation>>> indexes(n);
  std::vector<std::vector<std::shared_ptr<const RelationSnapshot>>> snaps(n);
  std::vector<std::vector<bool>> part_empty(n);
  for (size_t j = 0; j < n; ++j) {
    const auto sub = PartitionRelation(relations[j], *partitioner, parts);
    part_empty[j].reserve(parts);
    for (const Relation& part : sub) {
      part_empty[j].push_back(part.empty());
      if (use_rtree) {
        indexes[j].push_back(IndexedRelation::Build(part));
      } else {
        snaps[j].push_back(RelationSnapshot::Build(part));
      }
    }
  }

  ShardedEngine sharded(kind, options, dim, n);
  sharded.shards_.reserve(fan_out);
  // Odometer over the part indices (i_1,...,i_n): one shard engine per
  // combination whose cross product is non-empty.
  std::vector<uint32_t> digits(n, 0);
  for (size_t shard = 0; shard < fan_out; ++shard) {
    bool empty = false;
    for (size_t j = 0; j < n; ++j) empty = empty || part_empty[j][digits[j]];
    if (!empty) {
      std::vector<std::shared_ptr<const IndexedRelation>> shard_indexes;
      std::vector<std::shared_ptr<const RelationSnapshot>> shard_snaps;
      for (size_t j = 0; j < n; ++j) {
        if (use_rtree) {
          shard_indexes.push_back(indexes[j][digits[j]]);
        } else {
          shard_snaps.push_back(snaps[j][digits[j]]);
        }
      }
      auto engine =
          Engine::FromCatalog(kind, scoring, options.engine,
                              std::move(shard_indexes), std::move(shard_snaps));
      PRJ_RETURN_IF_ERROR(engine.status());
      sharded.shards_.push_back(std::move(*engine));
    }
    for (size_t j = 0; j < n; ++j) {
      if (++digits[j] < parts) break;
      digits[j] = 0;
    }
  }
  return sharded;
}

Result<std::vector<ResultCombination>> ShardedEngine::TopK(
    const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  // Mirror Engine::TopK's contract: fresh stats on every path, request
  // validation before any per-shard work.
  if (stats_out) *stats_out = ExecStats{};
  PRJ_RETURN_IF_ERROR(ValidateOptions(options));
  if (query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(query.dim()));
  }

  ExecStats aggregate;
  aggregate.depths.assign(num_relations_, 0);
  aggregate.completed = true;
  aggregate.final_bound = -std::numeric_limits<double>::infinity();

  std::vector<KeyedCombination> gathered;
  for (const Engine& shard : shards_) {
    ExecStats shard_stats;
    auto local = shard.TopK(query, options, &shard_stats);
    PRJ_RETURN_IF_ERROR(local.status());
    AggregateShardStats(shard_stats, &aggregate);
    for (ResultCombination& combo : *local) {
      gathered.push_back(MakeKeyed(std::move(combo), kind_, query));
    }
  }

  // Only the global top K survive: partial_sort is O(N log K) against the
  // full sort's O(N log N) over the per-shard union.
  const size_t keep =
      std::min(gathered.size(), static_cast<size_t>(options.k));
  std::partial_sort(gathered.begin(),
                    gathered.begin() + static_cast<ptrdiff_t>(keep),
                    gathered.end(), GatherBetter);
  gathered.resize(keep);
  std::vector<ResultCombination> merged;
  merged.reserve(gathered.size());
  for (KeyedCombination& keyed : gathered) {
    merged.push_back(std::move(keyed.combo));
  }
  if (stats_out) *stats_out = std::move(aggregate);
  return merged;
}

}  // namespace prj
