#include "plan/planned_engine.h"

#include <limits>
#include <string>
#include <utility>

#include "core/result_cursor.h"

namespace prj {
namespace {

/// Overlays the planner's accounting on the chosen plan's cursor stats.
class PlannedCursor : public ResultCursor {
 public:
  PlannedCursor(std::unique_ptr<ResultCursor> inner, std::string backend,
                double cost_estimate, uint32_t alternatives)
      : inner_(std::move(inner)),
        backend_(std::move(backend)),
        cost_estimate_(cost_estimate),
        alternatives_(alternatives) {}

  Result<std::optional<ResultCombination>> Next() override {
    return inner_->Next();
  }
  ExecStats stats() const override {
    ExecStats s = inner_->stats();
    s.planned_backend = backend_;
    s.plan_cost_estimate = cost_estimate_;
    s.plan_alternatives_considered = alternatives_;
    return s;
  }
  uint64_t emitted() const override { return inner_->emitted(); }

 private:
  std::unique_ptr<ResultCursor> inner_;
  std::string backend_;
  double cost_estimate_;
  uint32_t alternatives_;
};

}  // namespace

Result<PlannedEngine> PlannedEngine::Create(
    const std::vector<Relation>& relations, AccessKind kind,
    const ScoringFunction* scoring, Options options) {
  PRJ_RETURN_IF_ERROR(ValidateEngineInputs(relations, kind, scoring));
  PlannedEngine planned(kind, scoring, std::move(options),
                        relations.front().dim(), relations.size());

  EngineOptions mono;
  mono.block_size = planned.options_.block_size;
  if (kind == AccessKind::kDistance) {
    mono.backend = SourceBackend::kRTree;
    auto rtree = Engine::Create(relations, kind, scoring, mono);
    PRJ_RETURN_IF_ERROR(rtree.status());
    planned.mono_rtree_.emplace(std::move(*rtree));
  }
  mono.backend = SourceBackend::kPresorted;
  auto presorted = Engine::Create(relations, kind, scoring, mono);
  PRJ_RETURN_IF_ERROR(presorted.status());
  planned.mono_presorted_.emplace(std::move(*presorted));

  auto sharded =
      ShardedEngine::Create(relations, kind, scoring, planned.options_.sharded);
  PRJ_RETURN_IF_ERROR(sharded.status());
  planned.sharded_.emplace(std::move(*sharded));

  // The cost model reads the whole-relation statistics off a mono
  // catalog: exact, and shared with relation_stats().
  const Engine& stats_source = planned.mono_rtree_
                                   ? *planned.mono_rtree_
                                   : *planned.mono_presorted_;
  planned.cost_model_ = std::make_unique<CostModel>(
      kind, scoring, stats_source.relation_stats());

  // The candidate roster: backend x scatter width x prune, restricted to
  // what this configuration can actually run (hints never create
  // threads). Plan 0 is always a mono plan -- the traced-query fallback.
  if (planned.mono_rtree_) {
    planned.plans_.push_back({PlanBackend::kMonoRTree, 1, true});
  }
  planned.plans_.push_back({PlanBackend::kMonoPresorted, 1, true});
  planned.plans_.push_back({PlanBackend::kSharded, 1, true});
  const uint32_t width = planned.options_.sharded.scatter_threads;
  if (width > 1) {
    planned.plans_.push_back({PlanBackend::kSharded, width, true});
    planned.plans_.push_back({PlanBackend::kSharded, width, false});
  } else {
    planned.plans_.push_back({PlanBackend::kSharded, 1, false});
  }
  return planned;
}

const QueryEngine* PlannedEngine::EngineFor(const PlanSpec& spec,
                                            ProxRJOptions* options) const {
  switch (spec.backend) {
    case PlanBackend::kMonoRTree:
      return &*mono_rtree_;
    case PlanBackend::kMonoPresorted:
      return &*mono_presorted_;
    case PlanBackend::kSharded:
      options->scatter_hint =
          spec.scatter_threads <= 1 ? 1u : spec.scatter_threads;
      options->prune_hint = spec.prune ? 1 : -1;
      return &*sharded_;
  }
  return &*mono_presorted_;
}

PlanChoice PlannedEngine::ChoosePlan(const Vec& query, int k) const {
  PlanChoice choice;
  choice.depth = cost_model_->EstimateDepth(query, std::max(1, k));

  // Survivor estimate: shards whose a-priori corner bound reaches the
  // estimated K-th score -- the same test the scatter will apply against
  // the real threshold. At least one shard always runs (the scout).
  size_t survivors = 0;
  for (size_t s = 0; s < sharded_->num_shards(); ++s) {
    if (sharded_->ShardUpperBound(s, query) >= choice.depth.kth_score) {
      ++survivors;
    }
  }
  if (survivors == 0 && sharded_->num_shards() > 0) survivors = 1;
  choice.shard_survivors = survivors;

  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < plans_.size(); ++i) {
    const PlanSpec& spec = plans_[i];
    // A no-prune scatter executes every shard, whatever the bounds say.
    const size_t surv = spec.backend == PlanBackend::kSharded
                            ? (spec.prune ? survivors : sharded_->num_shards())
                            : 0;
    const PlanFeatures f = cost_model_->Features(spec, choice.depth, k, surv);
    const double cost =
        CostModel::PredictSeconds(spec, f, options_.coefficients);
    if (cost < best) {
      best = cost;
      choice.plan_index = i;
      choice.cost_estimate = cost;
    }
  }
  return choice;
}

Result<std::vector<ResultCombination>> PlannedEngine::TopK(
    const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  if (stats_out) *stats_out = ExecStats{};
  PRJ_RETURN_IF_ERROR(ValidateOptions(options));
  if (query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(query.dim()));
  }
  if (options.trace != nullptr) {
    // Traces observe one engine's execution; their shape must not flip
    // with a planning decision, so traced queries pin the first mono plan.
    return TopKWithPlan(0, query, options, stats_out);
  }
  const PlanChoice choice = ChoosePlan(query, options.k);
  const PlanSpec& spec = plans_[choice.plan_index];
  ProxRJOptions dispatched = options;
  const QueryEngine* engine = EngineFor(spec, &dispatched);
  auto result = engine->TopK(query, dispatched, stats_out);
  if (stats_out) {
    stats_out->planned_backend = spec.name();
    stats_out->plan_cost_estimate = choice.cost_estimate;
    stats_out->plan_alternatives_considered =
        static_cast<uint32_t>(plans_.size());
  }
  return result;
}

Result<std::vector<ResultCombination>> PlannedEngine::TopKWithPlan(
    size_t plan_index, const Vec& query, const ProxRJOptions& options,
    ExecStats* stats_out) const {
  if (stats_out) *stats_out = ExecStats{};
  if (plan_index >= plans_.size()) {
    return Status::InvalidArgument(
        "plan index " + std::to_string(plan_index) + " out of range (" +
        std::to_string(plans_.size()) + " plans)");
  }
  PRJ_RETURN_IF_ERROR(ValidateOptions(options));
  if (query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(query.dim()));
  }
  const PlanSpec& spec = plans_[plan_index];
  // The forced plan's own estimate, for the accounting fields (estimation
  // touches only statistics, never the access streams, so it is safe
  // under tracing too).
  const CostModel::DepthEstimate depth =
      cost_model_->EstimateDepth(query, std::max(1, options.k));
  size_t surv = 0;
  if (spec.backend == PlanBackend::kSharded) {
    if (spec.prune) {
      for (size_t s = 0; s < sharded_->num_shards(); ++s) {
        if (sharded_->ShardUpperBound(s, query) >= depth.kth_score) ++surv;
      }
      if (surv == 0 && sharded_->num_shards() > 0) surv = 1;
    } else {
      surv = sharded_->num_shards();
    }
  }
  const PlanFeatures f = cost_model_->Features(spec, depth, options.k, surv);
  const double cost = CostModel::PredictSeconds(spec, f, options_.coefficients);

  ProxRJOptions dispatched = options;
  const QueryEngine* engine = EngineFor(spec, &dispatched);
  auto result = engine->TopK(query, dispatched, stats_out);
  if (stats_out) {
    stats_out->planned_backend = spec.name();
    stats_out->plan_cost_estimate = cost;
    stats_out->plan_alternatives_considered = 1;
  }
  return result;
}

Result<std::unique_ptr<ResultCursor>> PlannedEngine::OpenCursor(
    const QueryRequest& request) const {
  PRJ_RETURN_IF_ERROR(ValidateOptions(request.options));
  if (request.query.dim() != dim_) {
    return Status::InvalidArgument(
        "engine serves dim " + std::to_string(dim_) +
        " but the query has dim " + std::to_string(request.query.dim()));
  }
  size_t plan_index = 0;  // traced enumerations pin the mono plan, like TopK
  double cost_estimate = 0.0;
  uint32_t alternatives = 1;
  if (request.options.trace == nullptr) {
    const PlanChoice choice =
        ChoosePlan(request.query, request.options.k);
    plan_index = choice.plan_index;
    cost_estimate = choice.cost_estimate;
    alternatives = static_cast<uint32_t>(plans_.size());
  }
  const PlanSpec& spec = plans_[plan_index];
  QueryRequest dispatched = request;
  const QueryEngine* engine = EngineFor(spec, &dispatched.options);
  auto cursor = engine->OpenCursor(dispatched);
  if (!cursor.ok()) return cursor.status();
  return std::unique_ptr<ResultCursor>(new PlannedCursor(
      std::move(*cursor), spec.name(), cost_estimate, alternatives));
}

}  // namespace prj
