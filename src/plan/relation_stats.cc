#include "plan/relation_stats.h"

#include <algorithm>
#include <cmath>

namespace prj {
namespace {

/// Tile count of a sketch with `grid_dims` gridded dimensions.
size_t TileCount(int grid_dims) {
  size_t n = 1;
  for (int d = 0; d < grid_dims; ++d) n *= RelationStats::kTilesPerDim;
  return n;
}

/// Extent of dimension `d` of `mbr`, floored at a tiny epsilon so tile
/// geometry and densities stay finite on degenerate (all-points-equal)
/// relations.
double Extent(const Rect& mbr, int d) {
  return std::max(mbr.hi[d] - mbr.lo[d], 1e-12);
}

/// Tile index along one gridded dimension for coordinate `x` (clamped).
uint32_t TileIndex(const Rect& mbr, int d, double x) {
  const double rel = (x - mbr.lo[d]) / Extent(mbr, d);
  const double scaled = rel * RelationStats::kTilesPerDim;
  if (scaled <= 0.0) return 0;
  const auto idx = static_cast<uint32_t>(scaled);
  return std::min(idx, RelationStats::kTilesPerDim - 1);
}

/// Volume of the MBR with every dimension's extent epsilon-floored;
/// dimensions beyond the stored Vec never occur (mbr always has full dim).
double FlooredVolume(const Rect& mbr) {
  double v = 1.0;
  for (int d = 0; d < mbr.dim(); ++d) v *= Extent(mbr, d);
  return v;
}

}  // namespace

double RelationStats::ScoreQuantile(double q) const {
  if (score_edges.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Each bucket holds an equal share of the mass; interpolate within it.
  const double pos = q * kScoreBuckets;
  const int bucket = std::min(static_cast<int>(pos), kScoreBuckets - 1);
  const double frac = pos - bucket;
  return score_edges[bucket] +
         frac * (score_edges[bucket + 1] - score_edges[bucket]);
}

double RelationStats::GlobalDensity() const {
  if (empty() || !mbr) return 0.0;
  return static_cast<double>(cardinality) / FlooredVolume(*mbr);
}

double RelationStats::LocalDensity(const Vec& point) const {
  if (empty() || !mbr) return 0.0;
  if (grid_dims <= 0 || tile_counts.empty()) return GlobalDensity();
  size_t tile = 0;
  for (int d = 0; d < grid_dims; ++d) {
    tile = tile * kTilesPerDim + TileIndex(*mbr, d, point[d]);
  }
  // Tile d-volume: the gridded dims contribute extent / kTilesPerDim each,
  // the remaining dims their full extent (uniformity assumption).
  double tile_volume = 1.0;
  for (int d = 0; d < mbr->dim(); ++d) {
    const double extent = Extent(*mbr, d);
    tile_volume *= d < grid_dims ? extent / kTilesPerDim : extent;
  }
  return static_cast<double>(tile_counts[tile]) / tile_volume;
}

RelationStats BuildRelationStats(const std::vector<Tuple>& tuples, int dim,
                                 double sigma_max) {
  RelationStats stats;
  stats.cardinality = tuples.size();
  stats.sigma_max = sigma_max;
  if (tuples.empty()) return stats;

  // Score histogram: equi-depth edges off the sorted score multiset.
  std::vector<double> scores;
  scores.reserve(tuples.size());
  for (const Tuple& t : tuples) scores.push_back(t.score);
  std::sort(scores.begin(), scores.end());
  stats.score_min = scores.front();
  stats.score_max = scores.back();
  stats.score_edges.resize(RelationStats::kScoreBuckets + 1);
  const size_t n = scores.size();
  for (int b = 0; b <= RelationStats::kScoreBuckets; ++b) {
    const size_t pos = std::min(
        n - 1, b * (n - 1) / static_cast<size_t>(RelationStats::kScoreBuckets));
    stats.score_edges[b] = scores[pos];
  }

  // Spatial envelope + density sketch.
  Rect mbr = Rect::ForPoint(tuples.front().x);
  for (const Tuple& t : tuples) mbr.Extend(Rect::ForPoint(t.x));
  stats.mbr = mbr;
  stats.grid_dims = std::min(dim, 2);
  stats.tile_counts.assign(TileCount(stats.grid_dims), 0);
  for (const Tuple& t : tuples) {
    size_t tile = 0;
    for (int d = 0; d < stats.grid_dims; ++d) {
      tile = tile * RelationStats::kTilesPerDim + TileIndex(mbr, d, t.x[d]);
    }
    ++stats.tile_counts[tile];
  }
  return stats;
}

RelationStats MergeRelationStats(const RelationStats& a,
                                 const RelationStats& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  RelationStats merged;
  merged.cardinality = a.cardinality + b.cardinality;
  merged.sigma_max = std::max(a.sigma_max, b.sigma_max);
  merged.score_max = std::max(a.score_max, b.score_max);
  merged.score_min = std::min(a.score_min, b.score_min);

  // Merged equi-depth edges: sample the cardinality-weighted mixture of
  // the two quantile functions. For each target quantile q of the merged
  // distribution, bisect for the score s with weighted_cdf(s) ~= q, where
  // each input's CDF is the inverse of its own (piecewise-linear)
  // quantile function. A dozen bisection steps per edge is plenty for a
  // planning histogram.
  const double wa = static_cast<double>(a.cardinality);
  const double wb = static_cast<double>(b.cardinality);
  auto cdf_of = [](const RelationStats& s, double x) {
    if (x <= s.score_edges.front()) return 0.0;
    if (x >= s.score_edges.back()) return 1.0;
    // Find the bucket containing x; mass is uniform per bucket.
    const auto it = std::upper_bound(s.score_edges.begin(),
                                     s.score_edges.end(), x);
    const int bucket =
        static_cast<int>(it - s.score_edges.begin()) - 1;
    const double lo = s.score_edges[bucket];
    const double hi = s.score_edges[bucket + 1];
    const double inside = hi > lo ? (x - lo) / (hi - lo) : 1.0;
    return (bucket + inside) / RelationStats::kScoreBuckets;
  };
  merged.score_edges.resize(RelationStats::kScoreBuckets + 1);
  for (int e = 0; e <= RelationStats::kScoreBuckets; ++e) {
    const double q = static_cast<double>(e) / RelationStats::kScoreBuckets;
    double lo = merged.score_min, hi = merged.score_max;
    for (int iter = 0; iter < 24; ++iter) {
      const double mid = 0.5 * (lo + hi);
      const double cdf = (wa * cdf_of(a, mid) + wb * cdf_of(b, mid)) /
                         (wa + wb);
      (cdf < q ? lo : hi) = mid;
    }
    merged.score_edges[e] = 0.5 * (lo + hi);
  }
  merged.score_edges.front() = merged.score_min;
  merged.score_edges.back() = merged.score_max;

  // Merged envelope + sketch: extend the MBR, then re-rasterize each
  // input's tiles onto the merged grid (a tile's count lands in the
  // merged tile containing its center -- coarse, and good enough for a
  // density estimate).
  Rect mbr = *a.mbr;
  mbr.Extend(*b.mbr);
  merged.mbr = mbr;
  merged.grid_dims = std::max(a.grid_dims, b.grid_dims);
  merged.tile_counts.assign(TileCount(merged.grid_dims), 0);
  auto splat = [&](const RelationStats& s) {
    if (s.grid_dims <= 0 || s.tile_counts.empty()) return;
    const uint32_t per_dim = RelationStats::kTilesPerDim;
    for (size_t t = 0; t < s.tile_counts.size(); ++t) {
      if (s.tile_counts[t] == 0) continue;
      // Decode the source tile's per-dim indices and compute its center.
      size_t rest = t;
      size_t merged_tile = 0;
      for (int d = 0; d < merged.grid_dims; ++d) {
        // Source index along dim d (0 when the source did not grid d).
        size_t divisor = 1;
        for (int dd = d + 1; dd < s.grid_dims; ++dd) divisor *= per_dim;
        const size_t src_idx = d < s.grid_dims ? rest / divisor : 0;
        if (d < s.grid_dims) rest %= divisor;
        const double extent = std::max(s.mbr->hi[d] - s.mbr->lo[d], 1e-12);
        // Tile center along gridded dims, MBR center along the rest.
        const double center =
            d < s.grid_dims
                ? s.mbr->lo[d] + (static_cast<double>(src_idx) + 0.5) *
                                     (extent / per_dim)
                : s.mbr->lo[d] + 0.5 * extent;
        merged_tile = merged_tile * per_dim + TileIndex(mbr, d, center);
      }
      merged.tile_counts[merged_tile] += s.tile_counts[t];
    }
  };
  splat(a);
  splat(b);
  return merged;
}

}  // namespace prj
