#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/bounds.h"

namespace prj {
namespace {

/// Shortest-format round-trippable rendering of a double for JSON.
std::string FormatDouble(double x) {
  std::ostringstream os;
  os.precision(17);
  os << x;
  return os.str();
}

/// Scans `json` for `"key": [ ... PlanFeatures::kCount numbers ... ]` and
/// fills `out`. A deliberately tiny parser: the file is machine-written by
/// this module and tools/calibrate, so we only accept that shape.
Status ParseCoefficientArray(const std::string& json, const std::string& key,
                             CostCoefficients* out) {
  const std::string quoted = "\"" + key + "\"";
  size_t pos = json.find(quoted);
  if (pos == std::string::npos) {
    return Status::InvalidArgument("plan coefficients: missing key " + key);
  }
  pos = json.find('[', pos + quoted.size());
  if (pos == std::string::npos) {
    return Status::InvalidArgument("plan coefficients: no array for " + key);
  }
  ++pos;
  for (int i = 0; i < PlanFeatures::kCount; ++i) {
    const char* begin = json.c_str() + pos;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) {
      return Status::InvalidArgument("plan coefficients: bad number in " +
                                     key);
    }
    out->v[static_cast<size_t>(i)] = v;
    pos += static_cast<size_t>(end - begin);
    pos = json.find_first_not_of(" \t\r\n", pos);
    if (pos == std::string::npos) {
      return Status::InvalidArgument("plan coefficients: truncated " + key);
    }
    const char expect = i + 1 < PlanFeatures::kCount ? ',' : ']';
    if (json[pos] != expect) {
      return Status::InvalidArgument("plan coefficients: " + key +
                                     " must hold exactly " +
                                     std::to_string(PlanFeatures::kCount) +
                                     " numbers");
    }
    ++pos;
  }
  return Status::OK();
}

void AppendCoefficientArray(std::ostringstream* os, const std::string& key,
                            const CostCoefficients& c) {
  *os << "  \"" << key << "\": [";
  for (int i = 0; i < PlanFeatures::kCount; ++i) {
    if (i) *os << ", ";
    *os << FormatDouble(c.v[static_cast<size_t>(i)]);
  }
  *os << "]";
}

}  // namespace

std::string PlanSpec::name() const {
  switch (backend) {
    case PlanBackend::kMonoRTree:
      return "mono[rtree]";
    case PlanBackend::kMonoPresorted:
      return "mono[presorted]";
    case PlanBackend::kSharded:
      return std::string("sharded[") + (prune ? "prune" : "noprune") +
             ",thr=" + std::to_string(scatter_threads) + "]";
  }
  return "unknown";
}

const CostCoefficients& PlanCoefficients::of(PlanBackend backend) const {
  switch (backend) {
    case PlanBackend::kMonoRTree:
      return mono_rtree;
    case PlanBackend::kMonoPresorted:
      return mono_presorted;
    case PlanBackend::kSharded:
      return sharded;
  }
  return mono_rtree;
}

CostCoefficients& PlanCoefficients::of(PlanBackend backend) {
  return const_cast<CostCoefficients&>(
      static_cast<const PlanCoefficients*>(this)->of(backend));
}

PlanCoefficients PlanCoefficients::Defaults() {
  // Hand-seeded ballpark (seconds): ~100ns per pull, tens of microseconds
  // per shard execution, ~10ns per sorted element. Rankings from these are
  // sane on commodity x86; tools/calibrate replaces them with a real fit.
  PlanCoefficients c;
  c.mono_rtree.v = {2e-5, 0.0, 1e-7, 3e-8, 1.5e-7, 0.0};
  c.mono_presorted.v = {2e-5, 0.0, 1e-7, 8e-9, 1.0e-7, 0.0};
  c.sharded.v = {4e-5, 0.0, 1e-7, 6e-5, 3e-8, 1.2e-7};
  return c;
}

std::string PlanCoefficients::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"features\": " << PlanFeatures::kCount
     << ",\n";
  AppendCoefficientArray(&os, "mono_rtree", mono_rtree);
  os << ",\n";
  AppendCoefficientArray(&os, "mono_presorted", mono_presorted);
  os << ",\n";
  AppendCoefficientArray(&os, "sharded", sharded);
  os << "\n}\n";
  return os.str();
}

Result<PlanCoefficients> PlanCoefficients::FromJson(const std::string& json) {
  PlanCoefficients c;
  PRJ_RETURN_IF_ERROR(ParseCoefficientArray(json, "mono_rtree",
                                            &c.mono_rtree));
  PRJ_RETURN_IF_ERROR(
      ParseCoefficientArray(json, "mono_presorted", &c.mono_presorted));
  PRJ_RETURN_IF_ERROR(ParseCoefficientArray(json, "sharded", &c.sharded));
  return c;
}

Result<PlanCoefficients> PlanCoefficients::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return FromJson(buf.str());
}

Status PlanCoefficients::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << ToJson();
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

CostModel::CostModel(AccessKind kind, const ScoringFunction* scoring,
                     std::vector<RelationStats> stats)
    : kind_(kind), scoring_(scoring), stats_(std::move(stats)) {
  for (const RelationStats& s : stats_) {
    max_cardinality_ =
        std::max(max_cardinality_, static_cast<double>(s.cardinality));
  }
}

double CostModel::RadiusAtDepth(size_t i, const Vec& query, double d) const {
  const RelationStats& s = stats_[i];
  if (s.empty() || !s.mbr) return 0.0;
  // Largest radius we would ever report: the far corner of the envelope.
  double max_sq = 0.0;
  for (int dd = 0; dd < s.mbr->dim(); ++dd) {
    const double far = std::max(std::abs(query[dd] - s.mbr->lo[dd]),
                                std::abs(query[dd] - s.mbr->hi[dd]));
    max_sq += far * far;
  }
  const double max_radius = std::sqrt(max_sq);
  if (d >= static_cast<double>(s.cardinality)) return max_radius;
  double density = s.LocalDensity(query);
  if (density <= 0.0) density = s.GlobalDensity();
  if (density <= 0.0) return max_radius;
  // Invert members-within-radius ~= density * (2r)^dim: the box volume
  // model matches the sketch's tile geometry better than a ball would.
  const int dim = s.mbr->dim();
  const double r = 0.5 * std::pow(d / density, 1.0 / dim);
  return std::min(r, max_radius);
}

double CostModel::BoundAtDepth(const Vec& query, double d) const {
  std::vector<RelationEnvelope> envelopes(stats_.size());
  for (size_t i = 0; i < stats_.size(); ++i) {
    const RelationStats& s = stats_[i];
    RelationEnvelope& e = envelopes[i];
    if (s.empty()) {
      e.score_ceiling = s.sigma_max;
      e.min_dist_q = 0.0;
      continue;
    }
    if (kind_ == AccessKind::kDistance) {
      // Distance streams: after d pulls everything within the frontier
      // radius is seen; unseen tuples score at most the relation max.
      e.score_ceiling = s.score_max;
      e.min_dist_q = RadiusAtDepth(i, query, d);
    } else {
      // Score streams: after d pulls the unseen score ceiling is the
      // (1 - d/N) quantile; unseen tuples can sit anywhere in the MBR.
      const double frac = d / static_cast<double>(s.cardinality);
      e.score_ceiling = s.ScoreQuantile(std::max(0.0, 1.0 - frac));
      e.min_dist_q = s.mbr ? std::sqrt(s.mbr->MinSquaredDistance(query)) : 0.0;
    }
  }
  return CornerUpperBound(*scoring_, envelopes);
}

double CostModel::TypicalScoreAtDepth(const Vec& query, double d) const {
  // Score of a "typical" combination assembled from tuples around depth d:
  // per slot the median-ish score, at the frontier-scale distance from the
  // query and a comparable spread around the centroid.
  std::vector<double> weighted(stats_.size());
  for (size_t i = 0; i < stats_.size(); ++i) {
    const RelationStats& s = stats_[i];
    if (s.empty()) {
      weighted[i] =
          scoring_->ProximityWeightedScore(static_cast<int>(i), s.sigma_max,
                                           0.0, 0.0);
      continue;
    }
    double sigma;
    double dist_q;
    if (kind_ == AccessKind::kDistance) {
      sigma = s.ScoreQuantile(0.5);
      dist_q = RadiusAtDepth(i, query, std::max(1.0, 0.5 * d));
    } else {
      const double frac = 0.5 * d / static_cast<double>(s.cardinality);
      sigma = s.ScoreQuantile(std::max(0.0, 1.0 - frac));
      // A score-ranked member is spatially arbitrary: use the distance to
      // the envelope center as the typical query distance.
      if (s.mbr) {
        const Vec center = (s.mbr->lo + s.mbr->hi) * 0.5;
        dist_q = scoring_->euclidean_metric() ? query.Distance(center)
                                              : scoring_->Distance(query,
                                                                   center);
      } else {
        dist_q = 0.0;
      }
    }
    weighted[i] = scoring_->ProximityWeightedScore(static_cast<int>(i), sigma,
                                                   dist_q, 0.5 * dist_q);
  }
  return scoring_->Aggregate(weighted);
}

CostModel::DepthEstimate CostModel::EstimateDepth(const Vec& query,
                                                  int k) const {
  DepthEstimate est;
  const size_t n = stats_.size();
  if (n == 0 || max_cardinality_ <= 0.0) {
    est.depth = std::max(1, k);
    return est;
  }
  // Roughly k combinations need d^n frontier tuples per relation.
  const double dk = std::max(
      1.0, std::ceil(std::pow(static_cast<double>(std::max(1, k)),
                              1.0 / static_cast<double>(n))));
  est.kth_score = TypicalScoreAtDepth(query, dk);

  // Doubling search for the certifying depth, then a short bisection to
  // tighten inside the last doubling interval.
  double lo = dk;
  double hi = dk;
  while (hi < max_cardinality_ && BoundAtDepth(query, hi) > est.kth_score) {
    lo = hi;
    hi = std::min(2.0 * hi, max_cardinality_);
    if (hi >= max_cardinality_) break;
  }
  if (BoundAtDepth(query, hi) <= est.kth_score) {
    for (int iter = 0; iter < 8; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (BoundAtDepth(query, mid) > est.kth_score ? lo : hi) = mid;
    }
    est.depth = hi;
  } else {
    est.depth = max_cardinality_;  // never certifies: full scan territory
  }
  est.depth = std::clamp(est.depth, 1.0, max_cardinality_);
  return est;
}

PlanFeatures CostModel::Features(const PlanSpec& spec,
                                 const DepthEstimate& estimate, int k,
                                 size_t survivors) const {
  const double n = static_cast<double>(std::max<size_t>(1, stats_.size()));
  double total_cardinality = 0.0;
  for (const RelationStats& s : stats_) {
    total_cardinality += static_cast<double>(s.cardinality);
  }
  const double log_n_avg = std::log2(1.0 + max_cardinality_);
  const double depth = estimate.depth;

  PlanFeatures f;
  f.v[0] = 1.0;
  f.v[1] = depth;
  f.v[2] = static_cast<double>(k);
  switch (spec.backend) {
    case PlanBackend::kMonoRTree:
      // Tree descent / frontier maintenance scales with depth * log N.
      f.v[3] = depth * log_n_avg;
      f.v[4] = n * depth;
      f.v[5] = f.v[4];
      break;
    case PlanBackend::kMonoPresorted:
      // Distance access pays a per-query O(N log N) sort of every
      // relation; score access reads the precomputed score order, so the
      // setup term vanishes.
      f.v[3] = kind_ == AccessKind::kDistance ? total_cardinality * log_n_avg
                                              : 0.0;
      f.v[4] = n * depth;
      f.v[5] = f.v[4];
      break;
    case PlanBackend::kSharded: {
      // Each surviving shard pays fixed execution overhead plus a ~k-pull
      // certification tail on top of its share of the frontier work.
      const double surv = static_cast<double>(survivors);
      f.v[3] = surv;
      f.v[4] = n * depth + surv * static_cast<double>(k);
      const double width =
          static_cast<double>(std::max<uint32_t>(1, spec.scatter_threads));
      f.v[5] = f.v[4] / width;
      break;
    }
  }
  return f;
}

double CostModel::PredictSeconds(const PlanSpec& spec, const PlanFeatures& f,
                                 const PlanCoefficients& coefficients) {
  const CostCoefficients& c = coefficients.of(spec.backend);
  double cost = 0.0;
  for (int i = 0; i < PlanFeatures::kCount; ++i) {
    cost += c.v[static_cast<size_t>(i)] * f.v[static_cast<size_t>(i)];
  }
  return std::max(0.0, cost);
}

}  // namespace prj
