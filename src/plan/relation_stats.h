// Per-relation statistics for adaptive plan selection.
//
// Every execution backend in this stack is bit-identical by construction,
// so picking between them is purely a COST question -- and the cost of a
// proximity rank join depends on where the data sits relative to the
// query (local density decides how deep the distance streams go), how the
// scores are distributed (the histogram decides how fast the bound
// tightens), and how large the relation is (setup costs). RelationStats
// captures exactly those three axes, computed once when an engine ingests
// its relations and exposed through QueryEngine::relation_stats() so
// decorators (live, planned) can read and aggregate them without knowing
// the concrete engine underneath.
//
// Statistics are planning ESTIMATES, never correctness inputs: a stale or
// merged-approximate histogram can only make the planner pick a slower
// plan, and every plan returns the same bits.
#ifndef PRJ_PLAN_RELATION_STATS_H_
#define PRJ_PLAN_RELATION_STATS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "access/relation.h"
#include "common/vec.h"
#include "index/rtree.h"

namespace prj {

/// One relation's planning statistics: cardinality, an equi-depth score
/// histogram, the spatial envelope, and a per-tile point-density sketch
/// over the first (up to) two dimensions.
struct RelationStats {
  /// Buckets of the equi-depth score histogram (score_edges has
  /// kScoreBuckets + 1 entries when non-empty).
  static constexpr int kScoreBuckets = 16;
  /// Tiles per gridded dimension of the density sketch.
  static constexpr uint32_t kTilesPerDim = 8;

  uint64_t cardinality = 0;
  double sigma_max = 1.0;   ///< a-priori score ceiling
  double score_max = 0.0;   ///< largest score present (0 when empty)
  double score_min = 0.0;   ///< smallest score present (0 when empty)
  /// Equi-depth histogram bucket edges, ascending; edge[0] = score_min,
  /// edge[kScoreBuckets] = score_max. Empty for an empty relation.
  std::vector<double> score_edges;
  /// Spatial envelope of the member points; nullopt when empty.
  std::optional<Rect> mbr;
  /// Dimensions the density sketch grids: min(dim, 2); 0 when empty.
  int grid_dims = 0;
  /// Point counts per tile, row-major over the gridded dims
  /// (kTilesPerDim^grid_dims entries). Tiles cover the MBR exactly.
  std::vector<uint32_t> tile_counts;

  bool empty() const { return cardinality == 0; }

  /// Score at quantile `q` in [0, 1] of the equi-depth histogram (q = 1 is
  /// the maximum, q = 0 the minimum), linearly interpolated inside the
  /// bucket. 0 for an empty relation.
  double ScoreQuantile(double q) const;

  /// Estimated point density (tuples per unit d-volume) in the
  /// neighbourhood of `point`: the density of the sketch tile `point`
  /// falls in (clamped into the MBR), assuming uniformity along any
  /// non-gridded dimensions. Falls back to the global density when the
  /// sketch is degenerate; 0 for an empty relation.
  double LocalDensity(const Vec& point) const;

  /// cardinality / MBR volume, with degenerate (zero-extent) dimensions
  /// treated as unit extent so the value stays finite and comparable.
  double GlobalDensity() const;
};

/// Computes the statistics of one relation's tuple set in a single
/// O(N log N) pass (the score sort dominates). `sigma_max` is the
/// relation's a-priori ceiling; `dim` its dimensionality.
RelationStats BuildRelationStats(const std::vector<Tuple>& tuples, int dim,
                                 double sigma_max);

/// Merges two per-relation statistics describing disjoint tuple sets of
/// the SAME relation slot (base + delta, or two partitions): cardinalities
/// add, envelopes extend, the merged equi-depth histogram is re-sampled
/// from the weighted union of the inputs' quantile functions, and the
/// density sketch is re-rasterized onto the merged MBR grid. The result
/// is approximate where the inputs overlap -- fine for planning.
RelationStats MergeRelationStats(const RelationStats& a,
                                 const RelationStats& b);

}  // namespace prj

#endif  // PRJ_PLAN_RELATION_STATS_H_
