// A calibrated linear cost model over exact execution plans.
//
// The planner's candidate plans (plan/planned_engine.h) all return
// bit-identical results, so choosing one is a pure latency prediction
// problem. Following the hyrise JoinProxy recipe, each plan class gets a
// small linear model over query-dependent features; the coefficients are
// fit OFFLINE by tools/calibrate from measured wall times on a generated
// workload and stored in plan_coefficients.json (checked in, loadable at
// runtime, re-fittable on new hardware with one command).
//
// The features come from the per-relation statistics (RelationStats) and
// the same corner-bound geometry the execution layers prune with:
//
//   * estimated access depth -- how deep the sorted streams must go
//     before the bound certifies the top K. Found by a doubling search:
//     depth d is sufficient once the admissible corner bound over the
//     unseen region (score histogram ceiling, frontier radius from the
//     local density sketch) drops to the estimated K-th result score;
//   * pull volume and per-plan setup proxies (per-query sort for the
//     presorted backend, per-shard execution overhead for the scatter);
//   * the shard survivor estimate -- how many shards' corner bounds beat
//     the estimated K-th score, i.e. how much of the fan-out pruning
//     will NOT remove (computed by the planner, which owns the shards).
//
// Everything here is an estimate feeding a prediction; no feature ever
// affects result content.
#ifndef PRJ_PLAN_COST_MODEL_H_
#define PRJ_PLAN_COST_MODEL_H_

#include <array>
#include <string>
#include <vector>

#include "access/source.h"
#include "common/status.h"
#include "common/vec.h"
#include "core/scoring.h"
#include "plan/relation_stats.h"

namespace prj {

/// The plan classes the cost model distinguishes (one coefficient vector
/// each). Mono plans run the monolithic Engine with the named catalog
/// backend; sharded plans run the scatter-gather engine with per-request
/// scatter/prune hints.
enum class PlanBackend { kMonoRTree, kMonoPresorted, kSharded };

/// One candidate plan: a backend class plus the execution knobs the
/// planner may set per request. All plans are exact; only cost differs.
struct PlanSpec {
  PlanBackend backend = PlanBackend::kMonoRTree;
  /// Effective scatter width for sharded plans: 1 = sequential scatter,
  /// > 1 = parallel with up to this many threads. Ignored for mono plans.
  uint32_t scatter_threads = 1;
  /// Corner-bound shard pruning for sharded plans; ignored for mono.
  bool prune = true;

  /// Stable human-readable name, e.g. "sharded[prune,thr=4]"; recorded in
  /// ExecStats::planned_backend so mispredictions are attributable.
  std::string name() const;
};

/// Feature vector of one (plan, query, k) triple. Fixed layout shared by
/// every plan class; per-class coefficients give each slot its own weight
/// (and irrelevant slots a fitted near-zero one).
struct PlanFeatures {
  static constexpr int kCount = 6;
  // [0] intercept (1.0)
  // [1] estimated per-relation access depth
  // [2] k
  // [3] class setup proxy: N*log2(N) per-query sort for mono-presorted,
  //     depth*log2(N) tree descent for mono-rtree, surviving-shard count
  //     (per-shard execution overhead) for sharded
  // [4] estimated total pull volume: n*depth, plus the per-survivor
  //     certification tail (~k each) for sharded plans
  // [5] estimated makespan: pull volume / scatter width
  std::array<double, kCount> v{};
};

/// Coefficients of one plan class: predicted_seconds = dot(coef, features).
struct CostCoefficients {
  std::array<double, PlanFeatures::kCount> v{};
};

/// The full fitted model: one coefficient vector per plan class, JSON
/// round-trippable (tools/calibrate writes, runtime loads).
struct PlanCoefficients {
  CostCoefficients mono_rtree;
  CostCoefficients mono_presorted;
  CostCoefficients sharded;

  const CostCoefficients& of(PlanBackend backend) const;
  CostCoefficients& of(PlanBackend backend);

  /// Built-in defaults: a conservative hand-seeded model (microseconds
  /// per pull / per shard / per sort element on commodity hardware) so a
  /// PlannedEngine works out of the box; re-fit with tools/calibrate for
  /// the deployment machine.
  static PlanCoefficients Defaults();

  /// JSON round trip. The format is the flat object tools/calibrate
  /// writes: {"version": 1, "mono_rtree": [6 numbers], ...}.
  std::string ToJson() const;
  static Result<PlanCoefficients> FromJson(const std::string& json);
  static Result<PlanCoefficients> LoadFile(const std::string& path);
  Status WriteFile(const std::string& path) const;
};

/// The per-engine cost model: per-relation statistics + the scoring
/// function, answering depth/score estimates and plan features.
/// Immutable and thread-safe after construction.
class CostModel {
 public:
  /// `scoring` must outlive the model; `stats` one entry per relation in
  /// join order.
  CostModel(AccessKind kind, const ScoringFunction* scoring,
            std::vector<RelationStats> stats);

  struct DepthEstimate {
    double depth = 1.0;      ///< per-relation access depth
    double kth_score = 0.0;  ///< estimated score of the K-th result
  };

  /// Estimated access depth per relation for a top-k query at `query`:
  /// the smallest depth (doubling search) whose corner bound over the
  /// unseen region falls to the estimated K-th result score. Also returns
  /// that score estimate -- the threshold the planner counts shard
  /// survivors against.
  DepthEstimate EstimateDepth(const Vec& query, int k) const;

  /// Features of `spec` for a top-k query at `query`. `survivors` is the
  /// planner's surviving-shard estimate (pass 0 for mono plans).
  PlanFeatures Features(const PlanSpec& spec, const DepthEstimate& estimate,
                        int k, size_t survivors) const;

  /// dot(coefficients[spec.backend], features), floored at zero (a linear
  /// fit can dip negative outside its training range; a negative latency
  /// prediction would distort plan ranking).
  static double PredictSeconds(const PlanSpec& spec, const PlanFeatures& f,
                               const PlanCoefficients& coefficients);

  const std::vector<RelationStats>& stats() const { return stats_; }

 private:
  /// Admissible-style corner bound over the unseen region at per-relation
  /// depth `d`, and the typical-result score estimate at that depth.
  double BoundAtDepth(const Vec& query, double d) const;
  double TypicalScoreAtDepth(const Vec& query, double d) const;
  /// Frontier radius of relation `i` at depth `d` under its local density.
  double RadiusAtDepth(size_t i, const Vec& query, double d) const;

  AccessKind kind_;
  const ScoringFunction* scoring_;
  std::vector<RelationStats> stats_;
  double max_cardinality_ = 0.0;
};

}  // namespace prj

#endif  // PRJ_PLAN_COST_MODEL_H_
