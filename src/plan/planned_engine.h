// PlannedEngine: adaptive per-query plan selection over the exact stack.
//
// Every backend in this library answers bit-identically, but latency
// differs by orders of magnitude with query locality, k and data shape:
// shard pruning wins ~100x on localized workloads and loses (bound
// computation + scatter overhead) on uniform ones; the R-tree backend has
// O(1) per-query setup while the presorted backend pays an O(N log N)
// sort but cheaper pulls; parallel scatter pays off only when enough
// shards survive pruning. PlannedEngine closes that gap: it owns a small
// roster of candidate plans (mono engines per distance backend plus one
// sharded engine driven through per-request scatter/prune hints), scores
// every candidate with the calibrated CostModel, and dispatches to the
// cheapest -- recording what it predicted in ExecStats so mispredictions
// are measurable after the fact. A wrong pick costs milliseconds, never
// correctness: the planner's whole safety argument is that there is
// nothing to be unsafe about.
//
// The decorator satisfies QueryEngine, so it slots under Server or
// CachedEngine like any other backend; the execution hints it sets are
// excluded from the canonical request key, so cache entries are shared
// across plans -- which is correct precisely because plans are
// bit-identical.
#ifndef PRJ_PLAN_PLANNED_ENGINE_H_
#define PRJ_PLAN_PLANNED_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "core/query_engine.h"
#include "plan/cost_model.h"
#include "plan/relation_stats.h"
#include "shard/sharded_engine.h"

namespace prj {

struct PlannedEngineOptions {
  /// Configuration of the sharded candidate (partitioning, scatter pool).
  /// scatter_threads > 1 adds a parallel-scatter plan to the roster.
  ShardedEngineOptions sharded;
  /// Paging applied to the mono candidates (EngineOptions::block_size).
  size_t block_size = 0;
  /// The fitted cost coefficients; load plan_coefficients.json via
  /// PlanCoefficients::LoadFile for a machine-specific fit, or keep the
  /// built-in defaults.
  PlanCoefficients coefficients = PlanCoefficients::Defaults();
};

/// What ChoosePlan decided for one (query, k): the winning plan plus the
/// estimates it was judged on (exposed for tests, benches, calibration).
struct PlanChoice {
  size_t plan_index = 0;
  double cost_estimate = 0.0;          ///< predicted seconds of the winner
  CostModel::DepthEstimate depth;      ///< shared depth/score estimate
  size_t shard_survivors = 0;          ///< shards predicted to survive
};

class PlannedEngine : public QueryEngine {
 public:
  using Options = PlannedEngineOptions;

  /// Ingests the relations into the full roster (the mono engines and the
  /// sharded engine each build their own catalogs -- the planner trades
  /// construction memory for per-query choice) and builds the cost model
  /// from the catalog statistics. `scoring` must outlive the engine.
  /// Under distance access the roster is {mono R-tree, mono presorted,
  /// sharded sequential, sharded parallel (when configured), sharded
  /// no-prune}; under score access the backends coincide (score streams
  /// always come off the snapshot catalog), so one mono plan serves.
  static Result<PlannedEngine> Create(const std::vector<Relation>& relations,
                                      AccessKind kind,
                                      const ScoringFunction* scoring,
                                      Options options = {});

  PlannedEngine(PlannedEngine&&) = default;
  PlannedEngine& operator=(PlannedEngine&&) = default;

  /// Scores every candidate plan for this request and dispatches to the
  /// predicted-fastest; bit-identical to every other plan (and to an
  /// unplanned Engine) by construction. `stats_out` additionally carries
  /// planned_backend / plan_cost_estimate / plan_alternatives_considered.
  /// Traced queries skip planning and run the first mono plan: a trace is
  /// a per-engine observer, so its shape must not depend on a planner
  /// decision.
  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const override;

  /// Streaming enumeration through the chosen plan's engine; the cursor's
  /// stats() carry the planner fields. Same exactness contract as TopK.
  Result<std::unique_ptr<ResultCursor>> OpenCursor(
      const QueryRequest& request) const override;

  /// Forced execution of plan `plan_index` (tests, benches, calibration):
  /// same dispatch as TopK minus the choice. The planner fields report
  /// the forced plan's own cost estimate.
  Result<std::vector<ResultCombination>> TopKWithPlan(
      size_t plan_index, const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const;

  /// The planning decision for (query, k), without executing anything.
  PlanChoice ChoosePlan(const Vec& query, int k) const;

  size_t num_plans() const { return plans_.size(); }
  const PlanSpec& plan(size_t i) const { return plans_[i]; }
  const CostModel& cost_model() const { return *cost_model_; }

  AccessKind kind() const override { return kind_; }
  int dim() const override { return dim_; }
  size_t num_relations() const override { return num_relations_; }
  /// Capacity fan-out: what the sharded candidate would consult.
  size_t fan_out() const override { return sharded_->fan_out(); }

  /// The cost model's statistics -- identical objects to what the mono
  /// catalogs computed at Create.
  std::vector<RelationStats> relation_stats() const override {
    return cost_model_->stats();
  }

 private:
  PlannedEngine(AccessKind kind, const ScoringFunction* scoring,
                Options options, int dim, size_t num_relations)
      : kind_(kind),
        scoring_(scoring),
        options_(std::move(options)),
        dim_(dim),
        num_relations_(num_relations) {}

  /// The engine a plan dispatches to, plus the per-request hint rewrite
  /// (scatter_hint/prune_hint for sharded plans, nothing for mono).
  const QueryEngine* EngineFor(const PlanSpec& spec,
                               ProxRJOptions* options) const;

  AccessKind kind_;
  const ScoringFunction* scoring_;
  Options options_;
  int dim_;
  size_t num_relations_;
  /// The roster. mono_rtree_ is absent under score access: score streams
  /// come off the presorted snapshot catalog whatever the backend, so the
  /// single mono plan lives in mono_presorted_.
  std::optional<Engine> mono_rtree_;
  std::optional<Engine> mono_presorted_;
  std::optional<ShardedEngine> sharded_;
  std::unique_ptr<CostModel> cost_model_;
  std::vector<PlanSpec> plans_;
};

}  // namespace prj

#endif  // PRJ_PLAN_PLANNED_ENGINE_H_
