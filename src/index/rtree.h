// In-memory R-tree over d-dimensional points.
//
// The paper's operator deliberately assumes *no* index on its inputs --
// relations arrive as streams sorted by distance or score (Def. 2.1, §5).
// The index lives on the data-service side: a provider answering
// "points near q, cheapest first" runs exactly the incremental
// distance-browsing algorithm of Hjaltason & Samet (the paper's ref. [8])
// over an R-tree. This module implements that substrate:
//
//   * Guttman insertion (least-enlargement subtree, quadratic split),
//   * sort-tile-recursive (STR) bulk loading,
//   * axis-aligned box queries,
//   * k-nearest-neighbour queries, and
//   * an incremental NearestIterator streaming points in increasing
//     distance from a query -- the engine behind distance-based access.
//
// Entries are (point, opaque int64 payload id).
#ifndef PRJ_INDEX_RTREE_H_
#define PRJ_INDEX_RTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/arena.h"
#include "common/vec.h"

namespace prj {

/// Axis-aligned bounding rectangle.
struct Rect {
  Vec lo, hi;

  Rect() = default;
  Rect(Vec l, Vec h) : lo(std::move(l)), hi(std::move(h)) {}
  static Rect ForPoint(const Vec& p) { return Rect(p, p); }

  int dim() const { return lo.dim(); }
  double Area() const;
  /// Grows this rectangle to cover `other`.
  void Extend(const Rect& other);
  bool Contains(const Vec& p) const;
  bool ContainsRect(const Rect& r) const;
  bool Intersects(const Rect& r) const;
  /// Smallest squared Euclidean distance from `p` to this rectangle
  /// (0 if contained) -- the MINDIST of the NN literature.
  double MinSquaredDistance(const Vec& p) const;
  /// Area of the union minus own area: Guttman's enlargement measure.
  double Enlargement(const Rect& r) const;
};

/// R-tree over points. Not thread-safe for writes; concurrent reads are
/// safe once construction is done.
class RTree {
 public:
  struct Item {
    Vec point;
    int64_t id;
  };

  /// Default node fan-out M, tuned by sweeping M in {8,16,32,64,128} over
  /// NearestK(q, 10) and NearestK(q, 100) on 100k uniform points in 2 and
  /// 8 dimensions (Release flags): 16 wins every cell -- e.g. 3.4us/query
  /// vs 7.4us at M=64 for d=2, k=10. Early-terminating kNN pays to
  /// batch-score wide nodes whose entries it never consumes; that is the
  /// opposite trade from the long incremental browse streams behind
  /// distance access, which amortize the SoA batch MINDIST kernel over
  /// the whole stream and run ~1.25x faster at fan-out 64 (the tuned
  /// constant in access/source.cc). Query results are bit-identical
  /// across fan-outs either way: the browse order is a strict total order
  /// on (distance, id), independent of tree shape.
  static constexpr int kDefaultFanout = 16;

  /// `max_entries` is the node fan-out M; min occupancy is M * 2/5.
  /// The default suits kNN-style early-terminating queries; pass a wider
  /// fan-out (e.g. 64) for long incremental browse streams -- see
  /// kDefaultFanout.
  explicit RTree(int dim, int max_entries = kDefaultFanout);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  int dim() const { return dim_; }
  size_t size() const { return size_; }

  void Insert(const Vec& point, int64_t id);

  /// Builds a tree from scratch with sort-tile-recursive packing.
  static RTree BulkLoad(int dim, std::vector<Item> items,
                        int max_entries = kDefaultFanout);

  /// Minimum bounding rectangle of every indexed point -- the root node's
  /// MBR -- or nullopt for an empty tree. The sharded engine's
  /// corner-bound shard pruning reads this as the spatial envelope of a
  /// partition (shard/sharded_engine.h).
  std::optional<Rect> RootMbr() const;

  /// All ids whose point lies inside `box` (inclusive).
  std::vector<int64_t> RangeQuery(const Rect& box) const;

  /// The k items nearest to `q` in increasing distance (ties by id).
  std::vector<Item> NearestK(const Vec& q, size_t k) const;

  /// Streams items in increasing distance from a fixed query point.
  ///
  /// The frontier heap lives in an Arena: pass one (via NearestBrowse) to
  /// amortize its memory across repeated queries -- Engine leases arenas
  /// from a per-engine pool for exactly this -- or pass none and the
  /// iterator owns a private arena. Frontier distances are computed by the
  /// batch kernels of index/mbr_kernels.h over each node's SoA entry
  /// block, bit-identical to the scalar Rect::MinSquaredDistance /
  /// Vec::SquaredDistance they replace.
  class NearestIterator {
   public:
    /// Returns the next nearest item, or nullopt when exhausted.
    std::optional<Item> Next();
    /// Copy-free variant of Next(): a pointer into the tree's leaf
    /// storage (stable for the tree's lifetime), or nullptr when
    /// exhausted. The pull hot path -- Next() copies the inline
    /// kMaxDim-double point per call, NextRef() does not.
    const Item* NextRef();
    /// Squared distance the next item will have (peek); infinity if done.
    /// Logically read-only -- the observable stream is unchanged -- so it
    /// is callable through a const iterator (the lazily expanded frontier
    /// heap is an implementation detail, hence mutable). Const here means
    /// non-mutating, not concurrently callable: an iterator is still
    /// single-threaded per-query state, unlike the tree it browses.
    double PeekSquaredDistance() const;

   private:
    friend class RTree;
    // One scored leaf entry; an expanded leaf becomes an arena array of
    // these sorted by (distance, id) -- a "run" -- and the frontier heap
    // holds one cursor per run instead of one entry per item, shrinking
    // the heap by a fanout factor. Items are referenced by pointer: the
    // tree is immutable while browsed, so leaf storage is stable.
    struct RunItem {
      double dist_sq;
      const Item* item;
    };
    struct QueueEntry {
      double dist_sq;       // key: node MINDIST, or the run head's distance
      uint64_t seq;         // node-vs-node tie-break (expansion order)
      const void* node;     // internal node, or nullptr for an item run
      const RunItem* run;   // head of the remaining run, iff node == nullptr
      uint32_t run_len;     // items left in the run
      // Exact-distance ties must stream in id order regardless of tree
      // shape (the access-order contract of Definition 2.1; the sharded
      // gather reconstructs it from output tuples alone): nodes expand
      // before items at the same distance so every tied item surfaces
      // first, and tied items then pop by id. Runs are internally sorted
      // by (distance, id) and compete by their head item, so the merged
      // stream is the same total order. Strict total order on live
      // entries, hence a pop sequence independent of heap layout.
      bool operator>(const QueueEntry& o) const {
        if (dist_sq != o.dist_sq) return dist_sq > o.dist_sq;
        const bool is_item = node == nullptr;
        const bool o_is_item = o.node == nullptr;
        if (is_item != o_is_item) return is_item;  // nodes first
        if (is_item) return run->item->id > o.run->item->id;
        return seq > o.seq;
      }
    };
    NearestIterator(const RTree* tree, Vec q, Arena* arena);
    void ExpandTop() const;
    void PushEntry(const QueueEntry& e) const;
    void PopEntry() const;
    void SiftDownRoot() const;

    const RTree* tree_;
    Vec q_;
    // arena_ points at *owned_arena_ when the caller supplied none;
    // declared before the containers so it outlives their construction.
    std::unique_ptr<Arena> owned_arena_;
    Arena* arena_;
    mutable uint64_t next_seq_ = 0;
    // Explicit binary heap (push_heap/pop_heap) over arena storage, in
    // place of std::priority_queue whose container would sit on the
    // system allocator.
    mutable std::vector<QueueEntry, ArenaAllocator<QueueEntry>> heap_;
    mutable std::vector<double, ArenaAllocator<double>> dist_buf_;
  };

  /// `arena`, when given, backs the iterator's frontier and must outlive
  /// it; callers running many browses should reuse one (see ArenaPool).
  NearestIterator NearestBrowse(const Vec& q, Arena* arena = nullptr) const {
    return NearestIterator(this, q, arena);
  }

  /// Structural invariants: every child MBR is contained in its parent's,
  /// occupancy bounds hold, all leaves at equal depth. Test support.
  bool CheckInvariants() const;
  int Height() const;

 private:
  struct Node;
  friend class NearestIterator;

  void InsertRec(Node* node, const Vec& point, int64_t id,
                 std::unique_ptr<Node>* split_out);
  static std::unique_ptr<Node> BuildStr(int dim, std::vector<Item>* items,
                                        int max_entries);

  int dim_;
  int max_entries_;
  int min_entries_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
};

}  // namespace prj

#endif  // PRJ_INDEX_RTREE_H_
