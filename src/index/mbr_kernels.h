// Branch-lean batch kernels for the R-tree hot path.
//
// Every distance-ordered pull bottoms out in scoring a node's whole child
// set against the query: MINDIST to each child MBR for internal nodes,
// point distance to each entry for leaves. The node stores those
// geometries as structure-of-arrays blocks (per-dimension contiguous
// min/max lanes, rtree.h), so one kernel call scores all children of a
// node in a single pass over dense arrays -- no pointer chasing, no
// per-coordinate branches.
//
// Dispatch is compile-time: the widest ISA the target enables wins
// (AVX2 > SSE2 > scalar), selected by preprocessor checks so there is no
// runtime branch in the hot loop. The CMake option PRJ_SIMD=OFF forces
// the scalar path regardless of target ISA; PRJ_NATIVE=ON compiles with
// -march=native so AVX2 lights up where the host supports it.
//
// Bit-identity contract: every variant computes, per element, the exact
// same IEEE-754 operation sequence --
//     delta_d = max(max(lo_d - q_d, q_d - hi_d), 0)        (MINDIST)
//     delta_d = x_d - q_d                                   (points)
//     out_i   = sum over d ascending of delta_d * delta_d
// with max(a, b) == (a > b ? a : b) (the _mm_max_pd lane rule: returns b
// when unordered), no FMA contraction (the build sets -ffp-contract=off),
// and lanes fully independent. Scalar and SIMD builds therefore return
// bit-identical results; tests/hotpath_test.cc and bench_hotpath verify
// the dispatched kernel against the scalar reference on adversarial
// inputs, and the engine-level property suites verify the whole R-tree
// backend against the presorted backend, which shares none of this code.
#ifndef PRJ_INDEX_MBR_KERNELS_H_
#define PRJ_INDEX_MBR_KERNELS_H_

#include <cstddef>

// PRJ_SIMD_ENABLED is normally injected by CMake (option PRJ_SIMD);
// default to on for out-of-build consumers of the header.
#ifndef PRJ_SIMD_ENABLED
#define PRJ_SIMD_ENABLED 1
#endif

#if PRJ_SIMD_ENABLED && defined(__AVX2__)
#include <immintrin.h>
#define PRJ_MBR_KERNEL_AVX2 1
#elif PRJ_SIMD_ENABLED && (defined(__SSE2__) || defined(_M_X64))
#include <emmintrin.h>
#define PRJ_MBR_KERNEL_SSE2 1
#endif

namespace prj {

/// Name of the instruction set the dispatched kernels compile to, for
/// bench/CI reporting: "avx2", "sse2" or "scalar".
inline const char* MbrKernelIsa() {
#if defined(PRJ_MBR_KERNEL_AVX2)
  return "avx2";
#elif defined(PRJ_MBR_KERNEL_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

/// max(a, b) with the SSE/AVX `max_pd` lane rule -- returns `b` when the
/// comparison is unordered -- so the scalar fallback and the vector paths
/// agree bit for bit even on NaN inputs.
inline double MbrKernelMax(double a, double b) { return a > b ? a : b; }

// ---------------------------------------------------------------------------
// Scalar reference implementations. Also the dispatch fallback and the
// tail handler of the vector paths: each element's computation is lane-
// independent and identical across variants, so mixing vector body and
// scalar tail preserves bit-identity.
// ---------------------------------------------------------------------------

/// MINDIST^2 from query `q` (dim doubles) to `count` boxes stored as
/// per-dimension contiguous lanes: lo[d*count + i] / hi[d*count + i] bound
/// dimension d of box i. Writes count squared distances to `out`.
inline void MinSquaredDistanceBatchScalar(const double* q, int dim,
                                          size_t count, const double* lo,
                                          const double* hi, double* out) {
  for (size_t i = 0; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double* lod = lo + static_cast<size_t>(d) * count;
    const double* hid = hi + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < count; ++i) {
      const double delta =
          MbrKernelMax(MbrKernelMax(lod[i] - qd, qd - hid[i]), 0.0);
      out[i] += delta * delta;
    }
  }
}

/// Squared Euclidean distance from `q` to `count` points stored as
/// per-dimension contiguous lanes xs[d*count + i]. Identical arithmetic
/// (dimension-ascending accumulation) to Vec::SquaredDistance, so the
/// streamed distances match the AoS path bit for bit.
inline void PointSquaredDistanceBatchScalar(const double* q, int dim,
                                            size_t count, const double* xs,
                                            double* out) {
  for (size_t i = 0; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double* xd = xs + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < count; ++i) {
      const double delta = xd[i] - qd;
      out[i] += delta * delta;
    }
  }
}

// ---------------------------------------------------------------------------
// Vector bodies. Same operation sequence as the scalar reference, `W`
// lanes at a time; the remainder runs the scalar element loop.
// ---------------------------------------------------------------------------

#if defined(PRJ_MBR_KERNEL_AVX2)

inline void MinSquaredDistanceBatch(const double* q, int dim, size_t count,
                                    const double* lo, const double* hi,
                                    double* out) {
  constexpr size_t kW = 4;
  const size_t main = count - count % kW;
  const __m256d zero = _mm256_setzero_pd();
  for (size_t i = 0; i < main; i += kW) {
    _mm256_storeu_pd(out + i, zero);
  }
  for (size_t i = main; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const __m256d vq = _mm256_set1_pd(qd);
    const double* lod = lo + static_cast<size_t>(d) * count;
    const double* hid = hi + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < main; i += kW) {
      const __m256d dlo = _mm256_sub_pd(_mm256_loadu_pd(lod + i), vq);
      const __m256d dhi = _mm256_sub_pd(vq, _mm256_loadu_pd(hid + i));
      const __m256d delta = _mm256_max_pd(_mm256_max_pd(dlo, dhi), zero);
      const __m256d acc = _mm256_loadu_pd(out + i);
      _mm256_storeu_pd(out + i,
                       _mm256_add_pd(acc, _mm256_mul_pd(delta, delta)));
    }
    for (size_t i = main; i < count; ++i) {
      const double delta =
          MbrKernelMax(MbrKernelMax(lod[i] - qd, qd - hid[i]), 0.0);
      out[i] += delta * delta;
    }
  }
}

inline void PointSquaredDistanceBatch(const double* q, int dim, size_t count,
                                      const double* xs, double* out) {
  constexpr size_t kW = 4;
  const size_t main = count - count % kW;
  const __m256d zero = _mm256_setzero_pd();
  for (size_t i = 0; i < main; i += kW) {
    _mm256_storeu_pd(out + i, zero);
  }
  for (size_t i = main; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const __m256d vq = _mm256_set1_pd(qd);
    const double* xd = xs + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < main; i += kW) {
      const __m256d delta = _mm256_sub_pd(_mm256_loadu_pd(xd + i), vq);
      const __m256d acc = _mm256_loadu_pd(out + i);
      _mm256_storeu_pd(out + i,
                       _mm256_add_pd(acc, _mm256_mul_pd(delta, delta)));
    }
    for (size_t i = main; i < count; ++i) {
      const double delta = xd[i] - qd;
      out[i] += delta * delta;
    }
  }
}

#elif defined(PRJ_MBR_KERNEL_SSE2)

inline void MinSquaredDistanceBatch(const double* q, int dim, size_t count,
                                    const double* lo, const double* hi,
                                    double* out) {
  constexpr size_t kW = 2;
  const size_t main = count - count % kW;
  const __m128d zero = _mm_setzero_pd();
  for (size_t i = 0; i < main; i += kW) {
    _mm_storeu_pd(out + i, zero);
  }
  for (size_t i = main; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const __m128d vq = _mm_set1_pd(qd);
    const double* lod = lo + static_cast<size_t>(d) * count;
    const double* hid = hi + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < main; i += kW) {
      const __m128d dlo = _mm_sub_pd(_mm_loadu_pd(lod + i), vq);
      const __m128d dhi = _mm_sub_pd(vq, _mm_loadu_pd(hid + i));
      const __m128d delta = _mm_max_pd(_mm_max_pd(dlo, dhi), zero);
      const __m128d acc = _mm_loadu_pd(out + i);
      _mm_storeu_pd(out + i, _mm_add_pd(acc, _mm_mul_pd(delta, delta)));
    }
    for (size_t i = main; i < count; ++i) {
      const double delta =
          MbrKernelMax(MbrKernelMax(lod[i] - qd, qd - hid[i]), 0.0);
      out[i] += delta * delta;
    }
  }
}

inline void PointSquaredDistanceBatch(const double* q, int dim, size_t count,
                                      const double* xs, double* out) {
  constexpr size_t kW = 2;
  const size_t main = count - count % kW;
  const __m128d zero = _mm_setzero_pd();
  for (size_t i = 0; i < main; i += kW) {
    _mm_storeu_pd(out + i, zero);
  }
  for (size_t i = main; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const __m128d vq = _mm_set1_pd(qd);
    const double* xd = xs + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < main; i += kW) {
      const __m128d delta = _mm_sub_pd(_mm_loadu_pd(xd + i), vq);
      const __m128d acc = _mm_loadu_pd(out + i);
      _mm_storeu_pd(out + i, _mm_add_pd(acc, _mm_mul_pd(delta, delta)));
    }
    for (size_t i = main; i < count; ++i) {
      const double delta = xd[i] - qd;
      out[i] += delta * delta;
    }
  }
}

#else

inline void MinSquaredDistanceBatch(const double* q, int dim, size_t count,
                                    const double* lo, const double* hi,
                                    double* out) {
  MinSquaredDistanceBatchScalar(q, dim, count, lo, hi, out);
}

inline void PointSquaredDistanceBatch(const double* q, int dim, size_t count,
                                      const double* xs, double* out) {
  PointSquaredDistanceBatchScalar(q, dim, count, xs, out);
}

#endif

}  // namespace prj

#endif  // PRJ_INDEX_MBR_KERNELS_H_
