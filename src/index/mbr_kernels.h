// Branch-lean batch kernels for the R-tree hot path.
//
// Every distance-ordered pull bottoms out in scoring a node's whole child
// set against the query: MINDIST to each child MBR for internal nodes,
// point distance to each entry for leaves. The node stores those
// geometries as structure-of-arrays blocks (per-dimension contiguous
// min/max lanes, rtree.h), so one kernel call scores all children of a
// node in a single pass over dense arrays -- no pointer chasing, no
// per-coordinate branches.
//
// Dispatch is at runtime: all variants the compiler can emit (scalar
// always; SSE2 and AVX2 on x86-64 via per-function target attributes)
// are compiled into the binary, and the first kernel call resolves a
// function pointer to the widest variant the *running* CPU supports via
// __builtin_cpu_supports. One portable Release binary therefore uses
// AVX2 on machines that have it and falls back below, with no
// per-element runtime branch -- the indirection is one pointer call per
// node batch. The CMake option PRJ_SIMD=OFF removes the vector variants
// entirely and forces the scalar path; non-x86 or non-GNU toolchains get
// scalar automatically.
//
// Bit-identity contract: every variant computes, per element, the exact
// same IEEE-754 operation sequence --
//     delta_d = max(max(lo_d - q_d, q_d - hi_d), 0)        (MINDIST)
//     delta_d = x_d - q_d                                   (points)
//     out_i   = sum over d ascending of delta_d * delta_d
// with max(a, b) == (a > b ? a : b) (the _mm_max_pd lane rule: returns b
// when unordered), no FMA contraction (the build sets -ffp-contract=off),
// and lanes fully independent. Every variant therefore returns
// bit-identical results on every CPU; tests/hotpath_test.cc verifies all
// compiled-in variants pairwise (AvailableMbrKernelVariants) plus the
// dispatched entry points against the scalar reference on adversarial
// inputs, and the engine-level property suites verify the whole R-tree
// backend against the presorted backend, which shares none of this code.
#ifndef PRJ_INDEX_MBR_KERNELS_H_
#define PRJ_INDEX_MBR_KERNELS_H_

#include <cstddef>
#include <vector>

// PRJ_SIMD_ENABLED is normally injected by CMake (option PRJ_SIMD);
// default to on for out-of-build consumers of the header.
#ifndef PRJ_SIMD_ENABLED
#define PRJ_SIMD_ENABLED 1
#endif

// Runtime-dispatched vector variants need x86-64 intrinsics headers, the
// GNU target attribute, and __builtin_cpu_supports.
#if PRJ_SIMD_ENABLED && (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define PRJ_MBR_KERNEL_RUNTIME_DISPATCH 1
#endif

namespace prj {

/// max(a, b) with the SSE/AVX `max_pd` lane rule -- returns `b` when the
/// comparison is unordered -- so the scalar fallback and the vector paths
/// agree bit for bit even on NaN inputs.
inline double MbrKernelMax(double a, double b) { return a > b ? a : b; }

// ---------------------------------------------------------------------------
// Scalar reference implementations. Always compiled, always available:
// the dispatch fallback, the parity baseline, and the tail handler of the
// vector variants -- each element's computation is lane-independent and
// identical across variants, so mixing vector body and scalar tail
// preserves bit-identity.
// ---------------------------------------------------------------------------

/// MINDIST^2 from query `q` (dim doubles) to `count` boxes stored as
/// per-dimension contiguous lanes: lo[d*count + i] / hi[d*count + i] bound
/// dimension d of box i. Writes count squared distances to `out`.
inline void MinSquaredDistanceBatchScalar(const double* q, int dim,
                                          size_t count, const double* lo,
                                          const double* hi, double* out) {
  for (size_t i = 0; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double* lod = lo + static_cast<size_t>(d) * count;
    const double* hid = hi + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < count; ++i) {
      const double delta =
          MbrKernelMax(MbrKernelMax(lod[i] - qd, qd - hid[i]), 0.0);
      out[i] += delta * delta;
    }
  }
}

/// Squared Euclidean distance from `q` to `count` points stored as
/// per-dimension contiguous lanes xs[d*count + i]. Identical arithmetic
/// (dimension-ascending accumulation) to Vec::SquaredDistance, so the
/// streamed distances match the AoS path bit for bit.
inline void PointSquaredDistanceBatchScalar(const double* q, int dim,
                                            size_t count, const double* xs,
                                            double* out) {
  for (size_t i = 0; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const double* xd = xs + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < count; ++i) {
      const double delta = xd[i] - qd;
      out[i] += delta * delta;
    }
  }
}

// ---------------------------------------------------------------------------
// Vector variants. Same operation sequence as the scalar reference, `W`
// lanes at a time; the remainder runs the scalar element loop. AVX2
// carries a per-function target attribute, so one translation unit emits
// every variant regardless of the build's -march; only the resolver may
// hand out a variant the CPU lacks the ISA for.
// ---------------------------------------------------------------------------

#if defined(PRJ_MBR_KERNEL_RUNTIME_DISPATCH)

// x86-64 baseline: SSE2 is architecturally guaranteed, no attribute
// needed (and none wanted -- under PRJ_NATIVE the compiler may VEX-encode
// these 128-bit ops, which changes encodings, never results).
inline void MinSquaredDistanceBatchSse2(const double* q, int dim, size_t count,
                                        const double* lo, const double* hi,
                                        double* out) {
  constexpr size_t kW = 2;
  const size_t main = count - count % kW;
  const __m128d zero = _mm_setzero_pd();
  for (size_t i = 0; i < main; i += kW) {
    _mm_storeu_pd(out + i, zero);
  }
  for (size_t i = main; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const __m128d vq = _mm_set1_pd(qd);
    const double* lod = lo + static_cast<size_t>(d) * count;
    const double* hid = hi + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < main; i += kW) {
      const __m128d dlo = _mm_sub_pd(_mm_loadu_pd(lod + i), vq);
      const __m128d dhi = _mm_sub_pd(vq, _mm_loadu_pd(hid + i));
      const __m128d delta = _mm_max_pd(_mm_max_pd(dlo, dhi), zero);
      const __m128d acc = _mm_loadu_pd(out + i);
      _mm_storeu_pd(out + i, _mm_add_pd(acc, _mm_mul_pd(delta, delta)));
    }
    for (size_t i = main; i < count; ++i) {
      const double delta =
          MbrKernelMax(MbrKernelMax(lod[i] - qd, qd - hid[i]), 0.0);
      out[i] += delta * delta;
    }
  }
}

inline void PointSquaredDistanceBatchSse2(const double* q, int dim,
                                          size_t count, const double* xs,
                                          double* out) {
  constexpr size_t kW = 2;
  const size_t main = count - count % kW;
  const __m128d zero = _mm_setzero_pd();
  for (size_t i = 0; i < main; i += kW) {
    _mm_storeu_pd(out + i, zero);
  }
  for (size_t i = main; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const __m128d vq = _mm_set1_pd(qd);
    const double* xd = xs + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < main; i += kW) {
      const __m128d delta = _mm_sub_pd(_mm_loadu_pd(xd + i), vq);
      const __m128d acc = _mm_loadu_pd(out + i);
      _mm_storeu_pd(out + i, _mm_add_pd(acc, _mm_mul_pd(delta, delta)));
    }
    for (size_t i = main; i < count; ++i) {
      const double delta = xd[i] - qd;
      out[i] += delta * delta;
    }
  }
}

__attribute__((target("avx2"))) inline void MinSquaredDistanceBatchAvx2(
    const double* q, int dim, size_t count, const double* lo, const double* hi,
    double* out) {
  constexpr size_t kW = 4;
  const size_t main = count - count % kW;
  const __m256d zero = _mm256_setzero_pd();
  for (size_t i = 0; i < main; i += kW) {
    _mm256_storeu_pd(out + i, zero);
  }
  for (size_t i = main; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const __m256d vq = _mm256_set1_pd(qd);
    const double* lod = lo + static_cast<size_t>(d) * count;
    const double* hid = hi + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < main; i += kW) {
      const __m256d dlo = _mm256_sub_pd(_mm256_loadu_pd(lod + i), vq);
      const __m256d dhi = _mm256_sub_pd(vq, _mm256_loadu_pd(hid + i));
      const __m256d delta = _mm256_max_pd(_mm256_max_pd(dlo, dhi), zero);
      const __m256d acc = _mm256_loadu_pd(out + i);
      _mm256_storeu_pd(out + i,
                       _mm256_add_pd(acc, _mm256_mul_pd(delta, delta)));
    }
    for (size_t i = main; i < count; ++i) {
      const double delta =
          MbrKernelMax(MbrKernelMax(lod[i] - qd, qd - hid[i]), 0.0);
      out[i] += delta * delta;
    }
  }
}

__attribute__((target("avx2"))) inline void PointSquaredDistanceBatchAvx2(
    const double* q, int dim, size_t count, const double* xs, double* out) {
  constexpr size_t kW = 4;
  const size_t main = count - count % kW;
  const __m256d zero = _mm256_setzero_pd();
  for (size_t i = 0; i < main; i += kW) {
    _mm256_storeu_pd(out + i, zero);
  }
  for (size_t i = main; i < count; ++i) out[i] = 0.0;
  for (int d = 0; d < dim; ++d) {
    const double qd = q[d];
    const __m256d vq = _mm256_set1_pd(qd);
    const double* xd = xs + static_cast<size_t>(d) * count;
    for (size_t i = 0; i < main; i += kW) {
      const __m256d delta = _mm256_sub_pd(_mm256_loadu_pd(xd + i), vq);
      const __m256d acc = _mm256_loadu_pd(out + i);
      _mm256_storeu_pd(out + i,
                       _mm256_add_pd(acc, _mm256_mul_pd(delta, delta)));
    }
    for (size_t i = main; i < count; ++i) {
      const double delta = xd[i] - qd;
      out[i] += delta * delta;
    }
  }
}

#endif  // PRJ_MBR_KERNEL_RUNTIME_DISPATCH

// ---------------------------------------------------------------------------
// Runtime resolution.
// ---------------------------------------------------------------------------

/// One compiled-in kernel implementation: a name ("scalar", "sse2",
/// "avx2") plus the two entry points. Tests iterate these pairwise to
/// prove bit-identity across every variant the binary carries, not just
/// the one the dispatcher happened to pick.
struct MbrKernelVariant {
  const char* name;
  void (*min_squared_distance)(const double* q, int dim, size_t count,
                               const double* lo, const double* hi, double* out);
  void (*point_squared_distance)(const double* q, int dim, size_t count,
                                 const double* xs, double* out);
};

/// Every variant compiled into this binary AND runnable on this CPU,
/// narrowest first (scalar always; then sse2/avx2 as hardware allows).
/// The dispatcher uses the last entry.
inline std::vector<MbrKernelVariant> AvailableMbrKernelVariants() {
  std::vector<MbrKernelVariant> variants;
  variants.push_back({"scalar", &MinSquaredDistanceBatchScalar,
                      &PointSquaredDistanceBatchScalar});
#if defined(PRJ_MBR_KERNEL_RUNTIME_DISPATCH)
  variants.push_back(
      {"sse2", &MinSquaredDistanceBatchSse2, &PointSquaredDistanceBatchSse2});
  if (__builtin_cpu_supports("avx2")) {
    variants.push_back(
        {"avx2", &MinSquaredDistanceBatchAvx2, &PointSquaredDistanceBatchAvx2});
  }
#endif
  return variants;
}

/// The variant the dispatched entry points below call through: the widest
/// runnable one, resolved once per process (thread-safe static init).
inline const MbrKernelVariant& ActiveMbrKernelVariant() {
  static const MbrKernelVariant active = AvailableMbrKernelVariants().back();
  return active;
}

/// Name of the instruction set the dispatched kernels resolved to on this
/// CPU, for bench/CI reporting: "avx2", "sse2" or "scalar".
inline const char* MbrKernelIsa() { return ActiveMbrKernelVariant().name; }

// ---------------------------------------------------------------------------
// Dispatched entry points (the names the R-tree hot path calls). One
// resolved-pointer indirection per node batch; per-element work is
// branch-free.
// ---------------------------------------------------------------------------

inline void MinSquaredDistanceBatch(const double* q, int dim, size_t count,
                                    const double* lo, const double* hi,
                                    double* out) {
  ActiveMbrKernelVariant().min_squared_distance(q, dim, count, lo, hi, out);
}

inline void PointSquaredDistanceBatch(const double* q, int dim, size_t count,
                                      const double* xs, double* out) {
  ActiveMbrKernelVariant().point_squared_distance(q, dim, count, xs, out);
}

}  // namespace prj

#endif  // PRJ_INDEX_MBR_KERNELS_H_
