#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "index/mbr_kernels.h"

namespace prj {

double Rect::Area() const {
  double area = 1.0;
  for (int i = 0; i < dim(); ++i) area *= (hi[i] - lo[i]);
  return area;
}

void Rect::Extend(const Rect& other) {
  PRJ_DCHECK_EQ(dim(), other.dim());
  for (int i = 0; i < dim(); ++i) {
    lo[i] = std::min(lo[i], other.lo[i]);
    hi[i] = std::max(hi[i], other.hi[i]);
  }
}

bool Rect::Contains(const Vec& p) const {
  for (int i = 0; i < dim(); ++i) {
    if (p[i] < lo[i] || p[i] > hi[i]) return false;
  }
  return true;
}

bool Rect::ContainsRect(const Rect& r) const {
  for (int i = 0; i < dim(); ++i) {
    if (r.lo[i] < lo[i] || r.hi[i] > hi[i]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& r) const {
  for (int i = 0; i < dim(); ++i) {
    if (r.hi[i] < lo[i] || r.lo[i] > hi[i]) return false;
  }
  return true;
}

double Rect::MinSquaredDistance(const Vec& p) const {
  double acc = 0.0;
  for (int i = 0; i < dim(); ++i) {
    double d = 0.0;
    if (p[i] < lo[i]) {
      d = lo[i] - p[i];
    } else if (p[i] > hi[i]) {
      d = p[i] - hi[i];
    }
    acc += d * d;
  }
  return acc;
}

double Rect::Enlargement(const Rect& r) const {
  Rect grown = *this;
  grown.Extend(r);
  return grown.Area() - Area();
}

struct RTree::Node {
  bool leaf = true;
  Rect mbr;
  std::vector<std::unique_ptr<Node>> children;
  std::vector<Item> items;
  // SoA mirror of the entry geometry in the batch-kernel layout
  // (index/mbr_kernels.h): leaves hold dim lanes of point coordinates
  // (soa[d*n + i] = items[i].point[d]); internal nodes hold dim lanes of
  // child-MBR lo then dim lanes of hi (soa[(dim+d)*n + i] =
  // children[i]->mbr.hi[d]). Rebuilt by SyncSoa whenever the entry set or
  // a child MBR changes; NearestIterator scores a whole node's children
  // in one kernel call over this block instead of chasing per-child
  // pointers.
  std::vector<double> soa;

  size_t EntryCount() const { return leaf ? items.size() : children.size(); }
  Rect EntryRect(size_t i) const {
    return leaf ? Rect::ForPoint(items[i].point) : children[i]->mbr;
  }
  void RecomputeMbr() {
    const size_t n = EntryCount();
    PRJ_DCHECK(n > 0);
    mbr = EntryRect(0);
    for (size_t i = 1; i < n; ++i) mbr.Extend(EntryRect(i));
  }
  void SyncSoa() {
    const size_t n = EntryCount();
    if (n == 0) {
      soa.clear();
      return;
    }
    if (leaf) {
      const auto dim = static_cast<size_t>(items[0].point.dim());
      soa.resize(dim * n);
      for (size_t d = 0; d < dim; ++d) {
        for (size_t i = 0; i < n; ++i) {
          soa[d * n + i] = items[i].point[static_cast<int>(d)];
        }
      }
    } else {
      const auto dim = static_cast<size_t>(children[0]->mbr.dim());
      soa.resize(2 * dim * n);
      for (size_t d = 0; d < dim; ++d) {
        for (size_t i = 0; i < n; ++i) {
          soa[d * n + i] = children[i]->mbr.lo[static_cast<int>(d)];
          soa[(dim + d) * n + i] = children[i]->mbr.hi[static_cast<int>(d)];
        }
      }
    }
  }
};

namespace {

// Guttman's quadratic split over an abstract entry sequence. `rect_of`
// maps an index to its rectangle. Returns the index partition.
void QuadraticSplitIndices(size_t n, int min_entries,
                           const std::function<Rect(size_t)>& rect_of,
                           std::vector<size_t>* group_a,
                           std::vector<size_t>* group_b) {
  PRJ_CHECK_GE(n, 2u);
  // Seeds: the pair wasting the most area if put together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Rect u = rect_of(i);
      u.Extend(rect_of(j));
      const double waste = u.Area() - rect_of(i).Area() - rect_of(j).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  group_a->assign(1, seed_a);
  group_b->assign(1, seed_b);
  Rect mbr_a = rect_of(seed_a);
  Rect mbr_b = rect_of(seed_b);
  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = n - 2;
  while (remaining > 0) {
    // If one group must absorb all the rest to reach min occupancy, do so.
    if (group_a->size() + remaining == static_cast<size_t>(min_entries)) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group_a->push_back(i);
          assigned[i] = true;
        }
      }
      break;
    }
    if (group_b->size() + remaining == static_cast<size_t>(min_entries)) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group_b->push_back(i);
          assigned[i] = true;
        }
      }
      break;
    }
    // Pick the unassigned entry with the strongest preference.
    size_t best = 0;
    double best_pref = -1.0;
    double best_da = 0.0, best_db = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double da = mbr_a.Enlargement(rect_of(i));
      const double db = mbr_b.Enlargement(rect_of(i));
      const double pref = std::fabs(da - db);
      if (pref > best_pref) {
        best_pref = pref;
        best = i;
        best_da = da;
        best_db = db;
      }
    }
    assigned[best] = true;
    --remaining;
    bool to_a;
    if (best_da != best_db) {
      to_a = best_da < best_db;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      to_a = mbr_a.Area() < mbr_b.Area();
    } else {
      to_a = group_a->size() <= group_b->size();
    }
    if (to_a) {
      group_a->push_back(best);
      mbr_a.Extend(rect_of(best));
    } else {
      group_b->push_back(best);
      mbr_b.Extend(rect_of(best));
    }
  }
}

}  // namespace

RTree::RTree(int dim, int max_entries)
    : dim_(dim),
      max_entries_(max_entries),
      min_entries_(std::max(1, max_entries * 2 / 5)) {
  PRJ_CHECK(dim >= 1 && dim <= kMaxDim);
  PRJ_CHECK_GE(max_entries, 4);
  root_ = std::make_unique<Node>();
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::InsertRec(Node* node, const Vec& point, int64_t id,
                      std::unique_ptr<Node>* split_out) {
  split_out->reset();
  if (node->leaf) {
    node->items.push_back(Item{point, id});
  } else {
    // Guttman ChooseLeaf: least enlargement, ties by least area.
    size_t best = 0;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    const Rect prect = Rect::ForPoint(point);
    for (size_t i = 0; i < node->children.size(); ++i) {
      const double enl = node->children[i]->mbr.Enlargement(prect);
      const double area = node->children[i]->mbr.Area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best_enl = enl;
        best_area = area;
        best = i;
      }
    }
    std::unique_ptr<Node> child_split;
    InsertRec(node->children[best].get(), point, id, &child_split);
    if (child_split) node->children.push_back(std::move(child_split));
  }

  if (node->EntryCount() > static_cast<size_t>(max_entries_)) {
    // Quadratic split.
    const size_t n = node->EntryCount();
    std::vector<size_t> ga, gb;
    QuadraticSplitIndices(
        n, min_entries_, [&](size_t i) { return node->EntryRect(i); }, &ga, &gb);
    auto sibling = std::make_unique<Node>();
    sibling->leaf = node->leaf;
    if (node->leaf) {
      std::vector<Item> keep;
      keep.reserve(ga.size());
      for (size_t i : ga) keep.push_back(std::move(node->items[i]));
      for (size_t i : gb) sibling->items.push_back(std::move(node->items[i]));
      node->items = std::move(keep);
    } else {
      std::vector<std::unique_ptr<Node>> keep;
      keep.reserve(ga.size());
      for (size_t i : ga) keep.push_back(std::move(node->children[i]));
      for (size_t i : gb) sibling->children.push_back(std::move(node->children[i]));
      node->children = std::move(keep);
    }
    node->RecomputeMbr();
    sibling->RecomputeMbr();
    sibling->SyncSoa();
    *split_out = std::move(sibling);
  } else {
    if (node->EntryCount() == 1) {
      node->RecomputeMbr();
    } else {
      node->mbr.Extend(Rect::ForPoint(point));
    }
  }
  // Unconditional: a leaf gained an item, an internal node gained a split
  // sibling, or -- even with an unchanged entry set -- the recursed-into
  // child's MBR may have grown, and the SoA block caches child MBRs.
  node->SyncSoa();
}

void RTree::Insert(const Vec& point, int64_t id) {
  PRJ_CHECK_EQ(point.dim(), dim_);
  std::unique_ptr<Node> split;
  InsertRec(root_.get(), point, id, &split);
  if (split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeMbr();
    new_root->SyncSoa();
    root_ = std::move(new_root);
  }
  ++size_;
}

std::unique_ptr<RTree::Node> RTree::BuildStr(int dim, std::vector<Item>* items,
                                             int max_entries) {
  // Build the leaf level with sort-tile-recursive tiling, then pack parents
  // level by level with the same tiler applied to node MBR centers.
  struct Piece {
    Vec center;
    std::unique_ptr<Node> node;
  };
  // Recursive tiler: partitions [begin, end) into groups of `group_size`
  // by sorting on successive coordinates.
  std::function<void(std::vector<size_t>&, size_t, size_t, int,
                     const std::function<const Vec&(size_t)>&, size_t,
                     std::vector<std::vector<size_t>>*)>
      tile = [&](std::vector<size_t>& idx, size_t begin, size_t end, int axis,
                 const std::function<const Vec&(size_t)>& center_of,
                 size_t group_size, std::vector<std::vector<size_t>>* out) {
        const size_t count = end - begin;
        if (count == 0) return;
        if (axis >= dim - 1 || count <= group_size) {
          std::sort(idx.begin() + static_cast<long>(begin),
                    idx.begin() + static_cast<long>(end), [&](size_t a, size_t b) {
                      const double va = center_of(a)[axis], vb = center_of(b)[axis];
                      if (va != vb) return va < vb;
                      return a < b;
                    });
          // Distribute entries evenly over the groups so no node ends up
          // below the minimum occupancy (a plain "chunks of M" split can
          // leave a tiny remainder group).
          const size_t n_groups = (count + group_size - 1) / group_size;
          const size_t base = count / n_groups;
          const size_t extra = count % n_groups;
          size_t start = begin;
          for (size_t gi = 0; gi < n_groups; ++gi) {
            const size_t sz = base + (gi < extra ? 1 : 0);
            std::vector<size_t> group(
                idx.begin() + static_cast<long>(start),
                idx.begin() + static_cast<long>(start + sz));
            out->push_back(std::move(group));
            start += sz;
          }
          return;
        }
        std::sort(idx.begin() + static_cast<long>(begin),
                  idx.begin() + static_cast<long>(end), [&](size_t a, size_t b) {
                    const double va = center_of(a)[axis], vb = center_of(b)[axis];
                    if (va != vb) return va < vb;
                    return a < b;
                  });
        const size_t groups = (count + group_size - 1) / group_size;
        const int remaining_dims = dim - axis;
        const size_t slabs = static_cast<size_t>(std::ceil(
            std::pow(static_cast<double>(groups), 1.0 / remaining_dims)));
        const size_t per_slab = (count + slabs - 1) / slabs;
        for (size_t s = begin; s < end; s += per_slab) {
          tile(idx, s, std::min(s + per_slab, end), axis + 1, center_of,
               group_size, out);
        }
      };

  auto tile_level = [&](const std::function<const Vec&(size_t)>& center_of,
                        size_t count) {
    std::vector<size_t> idx(count);
    for (size_t i = 0; i < count; ++i) idx[i] = i;
    std::vector<std::vector<size_t>> groups;
    tile(idx, 0, count, 0, center_of, static_cast<size_t>(max_entries), &groups);
    return groups;
  };

  // Leaf level.
  std::vector<Piece> level;
  {
    auto groups = tile_level(
        [&](size_t i) -> const Vec& { return (*items)[i].point; }, items->size());
    for (auto& g : groups) {
      auto node = std::make_unique<Node>();
      node->leaf = true;
      for (size_t i : g) node->items.push_back(std::move((*items)[i]));
      node->RecomputeMbr();
      node->SyncSoa();
      Vec center = node->mbr.lo;
      center += node->mbr.hi;
      center *= 0.5;
      level.push_back(Piece{std::move(center), std::move(node)});
    }
  }
  // Upper levels.
  while (level.size() > 1) {
    auto groups = tile_level(
        [&](size_t i) -> const Vec& { return level[i].center; }, level.size());
    std::vector<Piece> next;
    for (auto& g : groups) {
      auto node = std::make_unique<Node>();
      node->leaf = false;
      for (size_t i : g) node->children.push_back(std::move(level[i].node));
      node->RecomputeMbr();
      node->SyncSoa();
      Vec center = node->mbr.lo;
      center += node->mbr.hi;
      center *= 0.5;
      next.push_back(Piece{std::move(center), std::move(node)});
    }
    level = std::move(next);
  }
  if (level.empty()) {
    auto node = std::make_unique<Node>();
    node->leaf = true;
    return node;
  }
  return std::move(level[0].node);
}

RTree RTree::BulkLoad(int dim, std::vector<Item> items, int max_entries) {
  RTree tree(dim, max_entries);
  for (const Item& it : items) PRJ_CHECK_EQ(it.point.dim(), dim);
  tree.size_ = items.size();
  tree.root_ = BuildStr(dim, &items, max_entries);
  return tree;
}

std::optional<Rect> RTree::RootMbr() const {
  if (size_ == 0) return std::nullopt;
  return root_->mbr;
}

std::vector<int64_t> RTree::RangeQuery(const Rect& box) const {
  std::vector<int64_t> out;
  if (size_ == 0) return out;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->mbr.Intersects(box) && node->EntryCount() > 0) continue;
    if (node->leaf) {
      for (const Item& it : node->items) {
        if (box.Contains(it.point)) out.push_back(it.id);
      }
    } else {
      for (const auto& c : node->children) {
        if (c->mbr.Intersects(box)) stack.push_back(c.get());
      }
    }
  }
  return out;
}

RTree::NearestIterator::NearestIterator(const RTree* tree, Vec q, Arena* arena)
    : tree_(tree),
      q_(std::move(q)),
      owned_arena_(arena == nullptr ? std::make_unique<Arena>() : nullptr),
      arena_(arena == nullptr ? owned_arena_.get() : arena),
      heap_(ArenaAllocator<QueueEntry>(arena_)),
      dist_buf_(ArenaAllocator<double>(arena_)) {
  PRJ_CHECK_EQ(q_.dim(), tree->dim_);
  if (tree->size_ > 0) {
    heap_.reserve(static_cast<size_t>(tree->max_entries_) * 4);
    dist_buf_.reserve(static_cast<size_t>(tree->max_entries_) + 1);
    PushEntry(QueueEntry{tree->root_->mbr.MinSquaredDistance(q_), next_seq_++,
                         tree->root_.get(), nullptr, 0});
  }
}

void RTree::NearestIterator::PushEntry(const QueueEntry& e) const {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
}

void RTree::NearestIterator::PopEntry() const {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
  heap_.pop_back();
}

// Restores the min-heap property after the root entry's key changed in
// place (a run cursor advanced): one sift instead of a pop + push pair.
// Same layout and comparator as the std:: heap ops, so they compose.
void RTree::NearestIterator::SiftDownRoot() const {
  const size_t n = heap_.size();
  QueueEntry e = heap_[0];
  size_t i = 0;
  for (;;) {
    size_t c = 2 * i + 1;
    if (c >= n) break;
    if (c + 1 < n && heap_[c] > heap_[c + 1]) ++c;  // smaller child
    if (!(e > heap_[c])) break;
    heap_[i] = heap_[c];
    i = c;
  }
  heap_[i] = e;
}

void RTree::NearestIterator::ExpandTop() const {
  while (!heap_.empty() && heap_.front().node != nullptr) {
    const Node* node = static_cast<const Node*>(heap_.front().node);
    PopEntry();
    const size_t n = node->EntryCount();
    if (n == 0) continue;
    const int dim = q_.dim();
    dist_buf_.resize(n);
    // One kernel pass scores the whole entry set off the node's SoA
    // block; distances are bit-identical to the per-entry scalar calls
    // this replaces (the dispatch contract in index/mbr_kernels.h), so
    // the stream -- including exact tie handling -- is unchanged.
    if (node->leaf) {
      PointSquaredDistanceBatch(q_.data(), dim, n, node->soa.data(),
                                dist_buf_.data());
      auto* run = static_cast<RunItem*>(
          arena_->Allocate(n * sizeof(RunItem), alignof(RunItem)));
      for (size_t i = 0; i < n; ++i) {
        run[i] = RunItem{dist_buf_[i], &node->items[i]};
      }
      std::sort(run, run + n, [](const RunItem& a, const RunItem& b) {
        if (a.dist_sq != b.dist_sq) return a.dist_sq < b.dist_sq;
        return a.item->id < b.item->id;
      });
      PushEntry(QueueEntry{run[0].dist_sq, 0, nullptr, run,
                           static_cast<uint32_t>(n)});
    } else {
      MinSquaredDistanceBatch(q_.data(), dim, n, node->soa.data(),
                              node->soa.data() + static_cast<size_t>(dim) * n,
                              dist_buf_.data());
      for (size_t i = 0; i < n; ++i) {
        PushEntry(QueueEntry{dist_buf_[i], next_seq_++,
                             node->children[i].get(), nullptr, 0});
      }
    }
  }
}

const RTree::Item* RTree::NearestIterator::NextRef() {
  ExpandTop();
  if (heap_.empty()) return nullptr;
  QueueEntry& top = heap_.front();
  const Item* item = top.run->item;
  if (top.run_len > 1) {
    ++top.run;
    --top.run_len;
    top.dist_sq = top.run->dist_sq;
    SiftDownRoot();
  } else {
    PopEntry();
  }
  return item;
}

std::optional<RTree::Item> RTree::NearestIterator::Next() {
  const Item* item = NextRef();
  if (item == nullptr) return std::nullopt;
  return *item;
}

double RTree::NearestIterator::PeekSquaredDistance() const {
  ExpandTop();
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.front().dist_sq;
}

std::vector<RTree::Item> RTree::NearestK(const Vec& q, size_t k) const {
  NearestIterator it = NearestBrowse(q);
  std::vector<Item> out;
  double last_dist = -1.0;
  // Collect k items plus every exact tie of the k-th distance, then make
  // the result order independent of tree shape by sorting on (distance,
  // id). The tie test is an exact comparison: an absolute epsilon on
  // squared distances would be scale-dependent (inert at large coordinate
  // magnitudes, lumping genuinely distinct neighbours -- potentially the
  // whole tree -- at tiny ones).
  for (;;) {
    const double peek = it.PeekSquaredDistance();
    if (!std::isfinite(peek)) break;
    if (out.size() >= k && peek > last_dist) break;
    auto item = it.Next();
    if (!item) break;
    last_dist = peek;
    out.push_back(*item);
  }
  std::sort(out.begin(), out.end(), [&](const Item& a, const Item& b) {
    const double da = a.point.SquaredDistance(q), db = b.point.SquaredDistance(q);
    if (da != db) return da < db;
    return a.id < b.id;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

namespace {

struct InvariantState {
  int leaf_depth = -1;
  bool ok = true;
};

}  // namespace

int RTree::Height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++h;
    PRJ_CHECK(!node->children.empty());
    node = node->children[0].get();
  }
  return h;
}

bool RTree::CheckInvariants() const {
  InvariantState state;
  std::function<void(const Node*, int, bool)> visit = [&](const Node* node,
                                                          int depth, bool is_root) {
    if (!state.ok) return;
    const size_t n = node->EntryCount();
    if (!is_root) {
      if (n < static_cast<size_t>(min_entries_) ||
          n > static_cast<size_t>(max_entries_)) {
        state.ok = false;
        return;
      }
    } else if (!node->leaf && n < 2) {
      state.ok = false;
      return;
    }
    // SoA mirror coherence: the kernel-facing block must reflect the
    // entry geometry exactly, whatever mutation path produced the node.
    {
      const auto dim = static_cast<size_t>(dim_);
      const size_t want = node->leaf ? dim * n : 2 * dim * n;
      if (node->soa.size() != want) {
        state.ok = false;
        return;
      }
      for (size_t d = 0; d < dim; ++d) {
        for (size_t i = 0; i < n; ++i) {
          const int di = static_cast<int>(d);
          const bool match =
              node->leaf
                  ? node->soa[d * n + i] == node->items[i].point[di]
                  : node->soa[d * n + i] == node->children[i]->mbr.lo[di] &&
                        node->soa[(dim + d) * n + i] ==
                            node->children[i]->mbr.hi[di];
          if (!match) {
            state.ok = false;
            return;
          }
        }
      }
    }
    if (node->leaf) {
      if (state.leaf_depth < 0) state.leaf_depth = depth;
      if (state.leaf_depth != depth) {
        state.ok = false;
        return;
      }
      for (const Item& it : node->items) {
        if (!node->mbr.Contains(it.point)) {
          state.ok = false;
          return;
        }
      }
    } else {
      for (const auto& c : node->children) {
        if (!node->mbr.ContainsRect(c->mbr)) {
          state.ok = false;
          return;
        }
        visit(c.get(), depth + 1, false);
      }
    }
  };
  if (size_ == 0) {
    return root_->leaf && root_->items.empty() && root_->soa.empty();
  }
  visit(root_.get(), 0, true);
  return state.ok;
}

}  // namespace prj
