// Unit and property tests for src/solver: linear algebra, the active-set
// QP, the simplex LP / Farkas feasibility, and the water-filling solver.
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "solver/linalg.h"
#include "solver/lp.h"
#include "solver/qp.h"
#include "solver/waterfill.h"

namespace prj {
namespace {

// ---------------------------------------------------------------------- //
// linalg                                                                  //
// ---------------------------------------------------------------------- //

Matrix RandomSpd(Rng* rng, int n, double diag_boost = 1.0) {
  Matrix a(n, n);
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a(r, c) = rng->Uniform(-1, 1);
  }
  Matrix spd = a.Multiply(a.Transposed());
  for (int i = 0; i < n; ++i) spd(i, i) += diag_boost;
  return spd;
}

TEST(LinalgTest, IdentityProperties) {
  const Matrix id = Matrix::Identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  const std::vector<double> x = {1.0, 2.0, 3.0};
  EXPECT_EQ(id.MultiplyVec(x), x);
}

TEST(LinalgTest, TransposeInvolution) {
  Rng rng(11);
  Matrix a(3, 5);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) a(r, c) = rng.Uniform(-1, 1);
  }
  const Matrix att = a.Transposed().Transposed();
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 5; ++c) EXPECT_EQ(att(r, c), a(r, c));
  }
}

TEST(LinalgTest, CholeskySolvesRandomSpdSystems) {
  Rng rng(12);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(8));
    const Matrix a = RandomSpd(&rng, n);
    std::vector<double> x_true(static_cast<size_t>(n));
    for (double& v : x_true) v = rng.Uniform(-2, 2);
    const std::vector<double> b = a.MultiplyVec(x_true);
    const std::vector<double> x = SolveSPD(a, b);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<size_t>(i)], x_true[static_cast<size_t>(i)], 1e-8);
    }
  }
}

TEST(LinalgTest, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3 and -1
  Matrix l;
  EXPECT_FALSE(CholeskyFactor(a, &l));
}

TEST(LinalgTest, LuSolvesGeneralSystems) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(8));
    Matrix a(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) a(r, c) = rng.Uniform(-3, 3);
    }
    std::vector<double> x_true(static_cast<size_t>(n));
    for (double& v : x_true) v = rng.Uniform(-2, 2);
    const std::vector<double> b = a.MultiplyVec(x_true);
    std::vector<double> x;
    if (!SolveLU(a, b, &x)) continue;  // skip the rare singular draw
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(x[static_cast<size_t>(i)], x_true[static_cast<size_t>(i)], 1e-6);
    }
  }
}

TEST(LinalgTest, LuDetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;
  std::vector<double> x;
  EXPECT_FALSE(SolveLU(a, {1.0, 2.0}, &x));
}

// ---------------------------------------------------------------------- //
// QP                                                                      //
// ---------------------------------------------------------------------- //

QpProblem RandomQp(Rng* rng, int n) {
  QpProblem p;
  p.h = RandomSpd(rng, n, 0.5);
  p.g.resize(static_cast<size_t>(n));
  p.kind.resize(static_cast<size_t>(n));
  p.fixed_value.assign(static_cast<size_t>(n), 0.0);
  p.lower_bound.assign(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < n; ++i) {
    p.g[static_cast<size_t>(i)] = rng->Uniform(-2, 2);
    const double kind_draw = rng->NextDouble();
    if (kind_draw < 0.25) {
      p.kind[static_cast<size_t>(i)] = VarKind::kFree;
    } else if (kind_draw < 0.5) {
      p.kind[static_cast<size_t>(i)] = VarKind::kFixed;
      p.fixed_value[static_cast<size_t>(i)] = rng->Uniform(-1, 1);
    } else {
      p.kind[static_cast<size_t>(i)] = VarKind::kLowerBounded;
      p.lower_bound[static_cast<size_t>(i)] = rng->Uniform(-1, 1);
    }
  }
  return p;
}

TEST(QpTest, UnconstrainedMatchesLinearSolve) {
  Rng rng(21);
  const int n = 4;
  QpProblem p;
  p.h = RandomSpd(&rng, n);
  p.g = {1.0, -2.0, 0.5, 3.0};
  p.kind.assign(static_cast<size_t>(n), VarKind::kFree);
  p.fixed_value.assign(static_cast<size_t>(n), 0.0);
  p.lower_bound.assign(static_cast<size_t>(n), 0.0);
  const QpResult r = SolveQp(p);
  ASSERT_TRUE(r.ok);
  // Optimal x solves H x = -g.
  std::vector<double> neg_g = p.g;
  for (double& v : neg_g) v = -v;
  const std::vector<double> expected = SolveSPD(p.h, neg_g);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.x[static_cast<size_t>(i)], expected[static_cast<size_t>(i)], 1e-8);
  }
  EXPECT_TRUE(CheckKkt(p, r.x));
}

TEST(QpTest, ActiveBoundIsRespected) {
  // min (x-1)^2 ... pushed by bound x >= 2 -> optimum at 2.
  QpProblem p;
  p.h = Matrix(1, 1);
  p.h(0, 0) = 2.0;
  p.g = {-2.0};
  p.kind = {VarKind::kLowerBounded};
  p.fixed_value = {0.0};
  p.lower_bound = {2.0};
  const QpResult r = SolveQp(p);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(QpTest, InactiveBoundIsIgnored) {
  QpProblem p;
  p.h = Matrix(1, 1);
  p.h(0, 0) = 2.0;
  p.g = {-2.0};  // optimum at x = 1
  p.kind = {VarKind::kLowerBounded};
  p.fixed_value = {0.0};
  p.lower_bound = {-5.0};
  const QpResult r = SolveQp(p);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
}

TEST(QpTest, FixedVariablesStayFixed) {
  Rng rng(22);
  QpProblem p = RandomQp(&rng, 5);
  p.kind[2] = VarKind::kFixed;
  p.fixed_value[2] = 0.77;
  const QpResult r = SolveQp(p);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.x[2], 0.77);
}

TEST(QpTest, MatchesEnumerationOracleOnRandomProblems) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.NextBounded(5));
    const QpProblem p = RandomQp(&rng, n);
    const QpResult fast = SolveQp(p);
    const QpResult oracle = SolveQpByEnumeration(p);
    ASSERT_TRUE(fast.ok) << "trial " << trial;
    ASSERT_TRUE(oracle.ok) << "trial " << trial;
    EXPECT_NEAR(fast.objective, oracle.objective, 1e-6) << "trial " << trial;
    EXPECT_TRUE(CheckKkt(p, fast.x)) << "trial " << trial;
  }
}

TEST(QpTest, ObjectiveEvaluation) {
  QpProblem p;
  p.h = Matrix::Identity(2);
  p.g = {1.0, 0.0};
  p.kind.assign(2, VarKind::kFree);
  p.fixed_value.assign(2, 0.0);
  p.lower_bound.assign(2, 0.0);
  // 1/2*(4+1) + 2 = 4.5
  EXPECT_DOUBLE_EQ(QpObjective(p, {2.0, 1.0}), 4.5);
}

TEST(QpTest, KktRejectsInfeasiblePoint) {
  QpProblem p;
  p.h = Matrix::Identity(1);
  p.g = {0.0};
  p.kind = {VarKind::kLowerBounded};
  p.fixed_value = {0.0};
  p.lower_bound = {1.0};
  EXPECT_FALSE(CheckKkt(p, {0.0}));
  EXPECT_TRUE(CheckKkt(p, {1.0}));
}

// ---------------------------------------------------------------------- //
// LP                                                                      //
// ---------------------------------------------------------------------- //

TEST(LpTest, SolvesBasicStandardForm) {
  // min -x1 - 2x2 s.t. x1 + x2 + s = 4, x >= 0: optimum x2 = 4, obj -8.
  Matrix a(1, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(0, 2) = 1.0;
  const LpResult r = SolveStandardForm(a, {4.0}, {-1.0, -2.0, 0.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -8.0, 1e-9);
  EXPECT_NEAR(r.x[1], 4.0, 1e-9);
}

TEST(LpTest, DetectsInfeasibleStandardForm) {
  // x1 + x2 = -1 with x >= 0 is infeasible.
  Matrix a(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  const LpResult r = SolveStandardForm(a, {-1.0}, {0.0, 0.0});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(LpTest, DetectsUnbounded) {
  // min -x1 s.t. x1 - x2 = 0: x1 = x2 -> -inf.
  Matrix a(1, 2);
  a(0, 0) = 1.0;
  a(0, 1) = -1.0;
  const LpResult r = SolveStandardForm(a, {0.0}, {-1.0, 0.0});
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(LpTest, InequalityFormMatchesKnownOptimum) {
  // min -x - y s.t. x <= 2, y <= 3, x + y <= 4 -> optimum -4 at e.g. (2,2)
  Matrix g(3, 2);
  g(0, 0) = 1.0;
  g(1, 1) = 1.0;
  g(2, 0) = 1.0;
  g(2, 1) = 1.0;
  const LpResult r = SolveInequalityForm(g, {2.0, 3.0, 4.0}, {-1.0, -1.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-8);
  EXPECT_NEAR(r.x[0] + r.x[1], 4.0, 1e-8);
}

TEST(LpTest, InequalityFormHandlesNegativeCoordinates) {
  // min x s.t. -x <= 5 (x >= -5): optimum -5.
  Matrix g(1, 1);
  g(0, 0) = -1.0;
  const LpResult r = SolveInequalityForm(g, {5.0}, {1.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], -5.0, 1e-8);
}

TEST(PolyhedronTest, WholeSpaceIsNonempty) {
  Matrix g(0, 2);
  EXPECT_FALSE(PolyhedronIsEmpty(g, {}));
}

TEST(PolyhedronTest, ContradictoryBoundsAreEmpty) {
  // x >= 1 and x <= 0.
  Matrix g(2, 1);
  g(0, 0) = -1.0;  // -x <= -1
  g(1, 0) = 1.0;   //  x <= 0
  EXPECT_TRUE(PolyhedronIsEmpty(g, {-1.0, 0.0}));
}

TEST(PolyhedronTest, TouchingBoundsAreNonempty) {
  // x >= 1 and x <= 1: the point {1}.
  Matrix g(2, 1);
  g(0, 0) = -1.0;
  g(1, 0) = 1.0;
  EXPECT_FALSE(PolyhedronIsEmpty(g, {-1.0, 1.0}));
}

TEST(PolyhedronTest, ZeroRowWithNegativeOffsetIsEmpty) {
  Matrix g(1, 2);  // 0 <= -1
  EXPECT_TRUE(PolyhedronIsEmpty(g, {-1.0}));
}

TEST(PolyhedronTest, RandomPolytopesContainingAKnownPointAreNonempty) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(4));
    const int u = 1 + static_cast<int>(rng.NextBounded(30));
    std::vector<double> point(static_cast<size_t>(d));
    for (double& v : point) v = rng.Uniform(-2, 2);
    Matrix g(u, d);
    std::vector<double> h(static_cast<size_t>(u));
    for (int r = 0; r < u; ++r) {
      double dot = 0.0;
      for (int c = 0; c < d; ++c) {
        g(r, c) = rng.Uniform(-1, 1);
        dot += g(r, c) * point[static_cast<size_t>(c)];
      }
      h[static_cast<size_t>(r)] = dot + rng.Uniform(0.0, 1.0);  // satisfied
    }
    EXPECT_FALSE(PolyhedronIsEmpty(g, h)) << "trial " << trial;
  }
}

TEST(PolyhedronTest, FarkasConstructedSystemsAreEmpty) {
  // Build infeasible systems from a random certificate: pick lambda >= 0,
  // rows G with G^T lambda = 0, and h with h^T lambda < 0.
  Rng rng(32);
  for (int trial = 0; trial < 100; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(3));
    const int u = d + 2 + static_cast<int>(rng.NextBounded(10));
    Matrix g(u, d);
    std::vector<double> lambda(static_cast<size_t>(u));
    for (int r = 0; r < u - 1; ++r) {
      lambda[static_cast<size_t>(r)] = rng.Uniform(0.1, 1.0);
      for (int c = 0; c < d; ++c) g(r, c) = rng.Uniform(-1, 1);
    }
    // Last row cancels the weighted sum of the others (lambda_last = 1).
    lambda[static_cast<size_t>(u - 1)] = 1.0;
    for (int c = 0; c < d; ++c) {
      double acc = 0.0;
      for (int r = 0; r < u - 1; ++r) {
        acc += lambda[static_cast<size_t>(r)] * g(r, c);
      }
      g(u - 1, c) = -acc;
    }
    // h with h^T lambda = -1.
    std::vector<double> h(static_cast<size_t>(u));
    double partial = 0.0;
    for (int r = 0; r < u - 1; ++r) {
      h[static_cast<size_t>(r)] = rng.Uniform(-1, 1);
      partial += lambda[static_cast<size_t>(r)] * h[static_cast<size_t>(r)];
    }
    h[static_cast<size_t>(u - 1)] = (-1.0 - partial) / lambda[static_cast<size_t>(u - 1)];
    EXPECT_TRUE(PolyhedronIsEmpty(g, h)) << "trial " << trial;
  }
}

TEST(PolyhedronTest, AgreesWithInequalityPhase1OnRandomSystems) {
  Rng rng(33);
  int empties = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(3));
    const int u = 2 + static_cast<int>(rng.NextBounded(10));
    Matrix g(u, d);
    std::vector<double> h(static_cast<size_t>(u));
    for (int r = 0; r < u; ++r) {
      for (int c = 0; c < d; ++c) g(r, c) = rng.Uniform(-1, 1);
      h[static_cast<size_t>(r)] = rng.Uniform(-0.4, 0.6);
    }
    // Oracle: phase-1 via the inequality-form solver with zero objective.
    const LpResult oracle =
        SolveInequalityForm(g, h, std::vector<double>(static_cast<size_t>(d), 0.0));
    const bool oracle_empty = oracle.status == LpStatus::kInfeasible;
    empties += oracle_empty;
    EXPECT_EQ(PolyhedronIsEmpty(g, h), oracle_empty) << "trial " << trial;
  }
  EXPECT_GT(empties, 5);  // the draw actually exercises both outcomes
}

// ---------------------------------------------------------------------- //
// Water-filling                                                           //
// ---------------------------------------------------------------------- //

// Oracle: enumerate all active subsets and solve the stationarity system.
WaterfillResult WaterfillByEnumeration(const WaterfillProblem& p) {
  const int k = static_cast<int>(p.deltas.size());
  WaterfillResult best;
  double best_value = -1e300;
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    // Active (at bound) where bit set; the rest share a free value.
    std::vector<double> theta(p.deltas);
    double s_active = 0.0;
    int free_count = 0;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) {
        s_active += p.deltas[static_cast<size_t>(i)];
      } else {
        ++free_count;
      }
    }
    if (free_count > 0) {
      const double denom =
          p.n * (p.wq + p.wmu) - p.wmu * static_cast<double>(free_count);
      if (std::fabs(denom) < 1e-12) continue;
      const double theta_f = p.wmu * (s_active + p.m * p.nu) / denom;
      for (int i = 0; i < k; ++i) {
        if (!(mask & (1u << i))) theta[static_cast<size_t>(i)] = theta_f;
      }
    }
    bool feasible = true;
    for (int i = 0; i < k; ++i) {
      if (theta[static_cast<size_t>(i)] < p.deltas[static_cast<size_t>(i)] - 1e-9) {
        feasible = false;
      }
    }
    if (!feasible) continue;
    const double value = WaterfillObjective(p, theta);
    if (value > best_value) {
      best_value = value;
      best.theta = theta;
      best.value = value;
    }
  }
  return best;
}

TEST(WaterfillTest, PaperTable3EmptyPartial) {
  // M = {}: deltas (1, 2*sqrt(2), 2*sqrt(2)), ws=wq=wmu=1, n=3 -> t = -19.2.
  WaterfillProblem p;
  p.n = 3;
  p.m = 0;
  p.nu = 0.0;
  p.c0 = 0.0;  // all sigma_max = 1
  p.deltas = {1.0, 2.0 * std::sqrt(2.0), 2.0 * std::sqrt(2.0)};
  const WaterfillResult r = SolveWaterfill(p);
  EXPECT_NEAR(r.value, -19.2, 0.05);
  EXPECT_TRUE(CheckWaterfillKkt(p, r.theta));
  // The R1 slot floats above its bound (water-filling), the others clamp.
  EXPECT_GT(r.theta[0], 1.0 + 1e-6);
  EXPECT_NEAR(r.theta[1], 2.0 * std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(r.theta[2], 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(WaterfillTest, UnconstrainedOptimumMatchesClosedForm11) {
  // With all deltas 0 the optimum is theta* = nu*m*wmu/(m*wmu + n*wq)
  // for every unseen slot (paper eq. (11), unconstrained branch).
  WaterfillProblem p;
  p.wq = 2.0;
  p.wmu = 3.0;
  p.n = 4;
  p.m = 2;
  p.nu = 1.7;
  p.c0 = 0.0;
  p.deltas = {0.0, 0.0};
  const WaterfillResult r = SolveWaterfill(p);
  const double expected = p.nu * p.m * p.wmu / (p.m * p.wmu + p.n * p.wq);
  EXPECT_NEAR(r.theta[0], expected, 1e-10);
  EXPECT_NEAR(r.theta[1], expected, 1e-10);
  EXPECT_TRUE(CheckWaterfillKkt(p, r.theta));
}

TEST(WaterfillTest, ClampedBranchOfClosedForm11) {
  // If the unconstrained optimum violates delta, clamp to delta.
  WaterfillProblem p;
  p.wq = 1.0;
  p.wmu = 1.0;
  p.n = 3;
  p.m = 2;
  p.nu = 1.0;  // unconstrained: 2/5 = 0.4
  p.c0 = 0.0;
  p.deltas = {1.0};
  const WaterfillResult r = SolveWaterfill(p);
  EXPECT_NEAR(r.theta[0], 1.0, 1e-12);
  EXPECT_TRUE(CheckWaterfillKkt(p, r.theta));
}

TEST(WaterfillTest, MatchesEnumerationOnRandomProblems) {
  Rng rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    WaterfillProblem p;
    p.n = 2 + static_cast<int>(rng.NextBounded(5));
    p.m = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(p.n)));
    p.wq = rng.NextDouble() < 0.15 ? 0.0 : rng.Uniform(0.1, 3.0);
    p.wmu = rng.NextDouble() < 0.15 ? 0.0 : rng.Uniform(0.1, 3.0);
    p.nu = (p.m == 0) ? 0.0 : rng.Uniform(0.0, 3.0);
    p.c0 = rng.Uniform(-5.0, 5.0);
    const int k = p.n - p.m;
    for (int i = 0; i < k; ++i) p.deltas.push_back(rng.Uniform(0.0, 3.0));
    if (p.wq == 0.0 && p.m == 0) continue;  // degenerate family tested below
    const WaterfillResult fast = SolveWaterfill(p);
    const WaterfillResult oracle = WaterfillByEnumeration(p);
    ASSERT_FALSE(oracle.theta.empty()) << "trial " << trial;
    EXPECT_NEAR(fast.value, oracle.value, 1e-7) << "trial " << trial;
    EXPECT_TRUE(CheckWaterfillKkt(p, fast.theta)) << "trial " << trial;
  }
}

TEST(WaterfillTest, MatchesGenericQpSolver) {
  // Cross-check against the paper's formulation (14)/(30): minimize
  // theta^T H theta with seen values fixed and unseen lower-bounded.
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    WaterfillProblem p;
    p.n = 2 + static_cast<int>(rng.NextBounded(4));
    p.m = static_cast<int>(rng.NextBounded(static_cast<uint64_t>(p.n)));
    p.wq = rng.Uniform(0.1, 2.0);
    p.wmu = rng.Uniform(0.1, 2.0);
    p.nu = (p.m == 0) ? 0.0 : rng.Uniform(0.0, 2.0);
    p.c0 = 0.0;
    const int k = p.n - p.m;
    for (int i = 0; i < k; ++i) p.deltas.push_back(rng.Uniform(0.0, 2.0));
    const WaterfillResult wf = SolveWaterfill(p);

    // Build H = wq*I + wmu*(I - 11^T/n)^T (I - 11^T/n) over all n slots.
    // Seen slots are fixed; under our reduced parameterization every seen
    // tuple projects onto the ray at a common value nu (we model the m seen
    // coordinates as all equal to nu, which realizes the same nu and the
    // same optimizer for the unseen block; constants differ and are ignored).
    const int n = p.n;
    QpProblem qp;
    qp.h = Matrix(n, n);
    for (int r = 0; r < n; ++r) {
      for (int c = 0; c < n; ++c) {
        const double proj = (r == c ? 1.0 : 0.0) - 1.0 / n;
        // (I - 11^T/n) is symmetric idempotent: P^T P = P.
        qp.h(r, c) = 2.0 * (p.wmu * proj + (r == c ? p.wq : 0.0));
      }
    }
    qp.g.assign(static_cast<size_t>(n), 0.0);
    qp.kind.assign(static_cast<size_t>(n), VarKind::kLowerBounded);
    qp.fixed_value.assign(static_cast<size_t>(n), 0.0);
    qp.lower_bound.assign(static_cast<size_t>(n), 0.0);
    for (int i = 0; i < p.m; ++i) {
      qp.kind[static_cast<size_t>(i)] = VarKind::kFixed;
      qp.fixed_value[static_cast<size_t>(i)] = p.nu;
    }
    for (int i = 0; i < k; ++i) {
      qp.lower_bound[static_cast<size_t>(p.m + i)] = p.deltas[static_cast<size_t>(i)];
    }
    const QpResult qr = SolveQp(qp);
    ASSERT_TRUE(qr.ok) << "trial " << trial;
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(qr.x[static_cast<size_t>(p.m + i)],
                  wf.theta[static_cast<size_t>(i)], 1e-6)
          << "trial " << trial << " slot " << i;
    }
  }
}

TEST(WaterfillTest, DegenerateNoQueryWeightNoSeen) {
  WaterfillProblem p;
  p.wq = 0.0;
  p.wmu = 1.0;
  p.n = 3;
  p.m = 0;
  p.nu = 0.0;
  p.c0 = -1.5;
  p.deltas = {0.5, 1.0, 2.0};
  const WaterfillResult r = SolveWaterfill(p);
  // All colocated at the largest delta: mutual distances zero, value C0.
  EXPECT_NEAR(r.value, -1.5, 1e-12);
  for (double t : r.theta) EXPECT_NEAR(t, 2.0, 1e-12);
}

TEST(WaterfillTest, ZeroMuWeightClampsEverything) {
  WaterfillProblem p;
  p.wq = 1.0;
  p.wmu = 0.0;
  p.n = 3;
  p.m = 1;
  p.nu = 5.0;
  p.c0 = 0.0;
  p.deltas = {0.5, 2.0};
  const WaterfillResult r = SolveWaterfill(p);
  EXPECT_NEAR(r.theta[0], 0.5, 1e-12);
  EXPECT_NEAR(r.theta[1], 2.0, 1e-12);
  EXPECT_NEAR(r.value, -(0.25 + 4.0), 1e-12);
}

TEST(WaterfillTest, ValueDecreasesAsConstraintsTighten) {
  Rng rng(43);
  WaterfillProblem p;
  p.n = 3;
  p.m = 1;
  p.nu = 1.0;
  p.c0 = 0.0;
  p.deltas = {0.1, 0.1};
  double prev = SolveWaterfill(p).value;
  for (int step = 0; step < 20; ++step) {
    p.deltas[0] += rng.Uniform(0.0, 0.3);
    p.deltas[1] += rng.Uniform(0.0, 0.3);
    const double cur = SolveWaterfill(p).value;
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

}  // namespace
}  // namespace prj
