// Tests for the bounding schemes of §3 and Appendices B/C, anchored to the
// paper's golden values: the corner bound of Example 3.1 (t_c = -5), the
// tight bound Table 3 (all t(tau) and t_M entries, t = -7), and the
// optimal unseen locations of Example 3.2 / Figure 1(b).
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "access/source.h"
#include "common/random.h"
#include "core/bounds.h"
#include "core/brute_force.h"
#include "core/join_state.h"
#include "core/tight_bound.h"
#include "paper_fixture.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

using testing_fixture::Table1Deltas;
using testing_fixture::Table1Query;
using testing_fixture::Table1Relations;
using testing_fixture::Table1Scoring;
using testing_fixture::Table3Rows;
using testing_fixture::Table3SubsetBounds;

// Drives a JoinState + bounding scheme by pulling from real sources.
class BoundHarness {
 public:
  BoundHarness(const std::vector<Relation>& relations, AccessKind kind,
               const Vec& query)
      : sources_(MakeSources(relations, kind, query)),
        state_(query, kind, sources_) {}

  JoinState& state() { return state_; }

  // Pulls one tuple from relation i and notifies `bound`.
  bool Pull(int i, BoundingScheme* bound) {
    auto t = sources_[static_cast<size_t>(i)]->Next();
    if (!t) {
      state_.MarkExhausted(i);
      bound->OnExhausted(i);
      return false;
    }
    state_.Append(i, std::move(*t));
    bound->OnPull(i);
    return true;
  }

  void PullAllRoundRobin(BoundingScheme* bound) {
    bool progress = true;
    while (progress) {
      progress = false;
      for (int i = 0; i < state_.n(); ++i) {
        if (!state_.rel(i).exhausted) progress |= Pull(i, bound);
      }
    }
  }

 private:
  std::vector<std::unique_ptr<AccessSource>> sources_;
  JoinState state_;
};

std::vector<const Tuple*> Members(const std::vector<Relation>& rels,
                                  uint32_t mask,
                                  const std::vector<uint32_t>& idx) {
  std::vector<const Tuple*> out;
  size_t k = 0;
  for (size_t j = 0; j < rels.size(); ++j) {
    if (mask & (1u << j)) out.push_back(&rels[j].tuple(idx[k++]));
  }
  return out;
}

// ------------------------------ Corner bound --------------------------- //

TEST(CornerBoundTest, Example31CornerIsMinus5) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  BoundHarness h(rels, AccessKind::kDistance, Table1Query());
  CornerBound corner(&h.state(), &scoring);
  // Exactly the Table 1 state: two tuples pulled from each relation.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) h.Pull(i, &corner);
  }
  // t_1 = -5, t_2 = t_3 = -10.25 -> t_c = -5 (Example 3.1).
  EXPECT_NEAR(corner.Potential(0), -5.0, 1e-9);
  EXPECT_NEAR(corner.Potential(1), -10.25, 1e-9);
  EXPECT_NEAR(corner.Potential(2), -10.25, 1e-9);
  EXPECT_NEAR(corner.bound(), -5.0, 1e-9);
}

// The region variant of the corner construction: with every relation's
// envelope at its true score maximum and minimum query distance, no
// combination of tuples drawn from those regions can beat the bound (the
// admissibility the sharded engine's shard pruning rests on).
TEST(CornerBoundTest, CornerUpperBoundDominatesEveryRegionCombination) {
  Rng rng(31);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    const Vec q = rng.UniformInCube(2, -1.0, 1.0);
    // Three "regions" of 6 random tuples each.
    std::vector<std::vector<Tuple>> regions(3);
    std::vector<RelationEnvelope> envelopes(3);
    for (size_t j = 0; j < regions.size(); ++j) {
      double min_dist = std::numeric_limits<double>::infinity();
      for (int t = 0; t < 6; ++t) {
        Tuple tuple;
        tuple.id = t;
        tuple.score = rng.Uniform(0.1, 1.0);
        tuple.x = rng.UniformInCube(2, -2.0, 2.0);
        envelopes[j].score_ceiling =
            std::max(envelopes[j].score_ceiling, tuple.score);
        min_dist = std::min(min_dist, tuple.x.Distance(q));
        regions[j].push_back(std::move(tuple));
      }
      envelopes[j].min_dist_q = min_dist;
    }
    const double bound = CornerUpperBound(scoring, envelopes);
    for (const Tuple& a : regions[0]) {
      for (const Tuple& b : regions[1]) {
        for (const Tuple& c : regions[2]) {
          const double score = scoring.CombinationScore(q, {&a, &b, &c});
          EXPECT_LE(score, bound + 1e-12);
        }
      }
    }
  }
}

TEST(CornerBoundTest, Depth0ConventionGivesMaxPossible) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  BoundHarness h(rels, AccessKind::kDistance, Table1Query());
  CornerBound corner(&h.state(), &scoring);
  // Nothing pulled: all distances 0, all scores sigma_max -> bound = 0.
  EXPECT_NEAR(corner.bound(), 0.0, 1e-12);
}

TEST(CornerBoundTest, NeverBelowTightBound) {
  // The corner bound dominates the tight bound at every step.
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 30;
    spec.density = 30;
    spec.seed = 100 + trial;
    const auto rels = GenerateProblem(2, spec);
    const auto scoring = Table1Scoring();
    const Vec q(2, 0.0);
    BoundHarness hc(rels, AccessKind::kDistance, q);
    BoundHarness ht(rels, AccessKind::kDistance, q);
    CornerBound corner(&hc.state(), &scoring);
    TightBoundDistance tight(&ht.state(), &scoring);
    for (int step = 0; step < 20; ++step) {
      const int i = step % 2;
      hc.Pull(i, &corner);
      ht.Pull(i, &tight);
      EXPECT_GE(corner.bound(), tight.bound() - 1e-9)
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(CornerBoundTest, ScoreAccessFrontier) {
  const auto rels = testing_fixture::TheoremC1Relations(0);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  BoundHarness h(rels, AccessKind::kScore, Vec{0.0});
  CornerBound corner(&h.state(), &scoring);
  h.Pull(0, &corner);
  h.Pull(1, &corner);
  h.Pull(0, &corner);
  h.Pull(1, &corner);
  // p1 = p2 = 2: ts_c = 0 (Theorem C.1's proof: the corner bound is stuck
  // at ln(sigma(R1[1])) + ln(sigma(R2[2])) = 0 with zero distances).
  EXPECT_NEAR(corner.bound(), 0.0, 1e-9);
}

// ------------------------------ Tight bound ---------------------------- //

TEST(TightBoundTest, ReproducesEveryTable3PartialBound) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  const Vec q = Table1Query();
  const std::vector<double> sigma_max = {1.0, 1.0, 1.0};
  const std::vector<double> deltas = Table1Deltas();
  for (const auto& row : Table3Rows()) {
    const auto members = Members(rels, row.mask, row.members);
    const double t = TightPartialBoundDistance(scoring, q, 3, row.mask,
                                               members, sigma_max, deltas);
    EXPECT_NEAR(t, row.t, 0.06)
        << "mask " << row.mask << " members "
        << ::testing::PrintToString(row.members);
  }
}

TEST(TightBoundTest, ClassReproducesTable3SubsetBoundsAndFinalBound) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  BoundHarness h(rels, AccessKind::kDistance, Table1Query());
  TightBoundDistance tight(&h.state(), &scoring);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) h.Pull(i, &tight);
  }
  for (const auto& [mask, t_m] : Table3SubsetBounds()) {
    EXPECT_NEAR(tight.SubsetBound(mask), t_m, 0.06) << "mask " << mask;
  }
  // Example 3.1: the tight bound is -7, so the seen combination with score
  // -7 is provably top-1 while the corner bound (-5) cannot conclude that.
  EXPECT_NEAR(tight.bound(), -7.0, 0.05);
}

TEST(TightBoundTest, Example32PartialTau21) {
  // Partial tau_2^(1): optimal unseen locations y_1* = [sqrt(2)/2]^2,
  // y_3* = [2,2], bound -12.8 (Example 3.2, Figure 1(b)).
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  const Vec q = Table1Query();
  std::vector<Vec> y;
  const double t = TightPartialBoundDistance(
      scoring, q, 3, 0b010, {&rels[1].tuple(0)}, {1.0, 1.0, 1.0},
      Table1Deltas(), nullptr, &y);
  EXPECT_NEAR(t, -12.8, 0.06);
  const double s2 = std::sqrt(2.0) / 2.0;
  EXPECT_TRUE(y[0].ApproxEquals(Vec{s2, s2}, 1e-6)) << y[0].ToString();
  EXPECT_TRUE(y[2].ApproxEquals(Vec{2.0, 2.0}, 1e-6)) << y[2].ToString();
}

TEST(TightBoundTest, Example32PartialTau11Tau31) {
  // Partial tau_1^(1) x tau_3^(1): y_2* = [-2.53, 1.26], bound -16.
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  std::vector<Vec> y;
  std::vector<double> theta;
  const double t = TightPartialBoundDistance(
      scoring, Table1Query(), 3, 0b101,
      {&rels[0].tuple(0), &rels[2].tuple(0)}, {1.0, 1.0, 1.0}, Table1Deltas(),
      &theta, &y);
  EXPECT_NEAR(t, -16.0, 0.05);
  ASSERT_EQ(theta.size(), 1u);
  EXPECT_NEAR(theta[0], 2.0 * std::sqrt(2.0), 1e-9);  // clamped at delta_2
  EXPECT_TRUE(y[1].ApproxEquals(Vec{-2.53, 1.26}, 0.01)) << y[1].ToString();
}

TEST(TightBoundTest, OptimalLocationsAreCollinearWithCentroidRay) {
  // Theorem 3.4: all y_i* lie on the ray from q through the partial
  // centroid.
  Rng rng(72);
  for (int trial = 0; trial < 50; ++trial) {
    const int d = 2 + static_cast<int>(rng.NextBounded(3));
    const SumLogEuclideanScoring scoring(rng.Uniform(0.1, 2.0),
                                         rng.Uniform(0.1, 2.0),
                                         rng.Uniform(0.1, 2.0));
    const Vec q = rng.UniformInCube(d, -1, 1);
    Tuple seen{0, 0.7, rng.UniformInCube(d, -2, 2)};
    const int n = 3;
    std::vector<double> sigma_max(n, 1.0);
    std::vector<double> deltas = {0.0, rng.Uniform(0.0, 2.0),
                                  rng.Uniform(0.0, 2.0)};
    std::vector<Vec> y;
    TightPartialBoundDistance(scoring, q, n, 0b001, {&seen}, sigma_max,
                              deltas, nullptr, &y);
    Vec ray = seen.x - q;
    if (ray.Norm() < 1e-9) continue;
    ray = ray.Normalized();
    for (int j = 1; j < n; ++j) {
      Vec rel = y[static_cast<size_t>(j)] - q;
      const double along = rel.Dot(ray);
      EXPECT_GE(along, -1e-9);
      Vec residual = rel - ray * along;
      EXPECT_LT(residual.Norm(), 1e-7) << "trial " << trial;
    }
  }
}

TEST(TightBoundTest, BoundIsAttainedByReconstruction) {
  // Tightness witness: the bound equals the true aggregate score of the
  // completion built from the optimal locations with the allowed scores.
  Rng rng(73);
  for (int trial = 0; trial < 100; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(4));
    const int n = 2 + static_cast<int>(rng.NextBounded(3));
    const SumLogEuclideanScoring scoring(rng.Uniform(0.0, 2.0),
                                         rng.Uniform(0.1, 2.0),
                                         rng.Uniform(0.1, 2.0));
    const Vec q = rng.UniformInCube(d, -1, 1);
    const uint32_t full = (1u << n) - 1u;
    const uint32_t mask = static_cast<uint32_t>(rng.NextBounded(full));
    std::vector<Tuple> storage;
    storage.reserve(static_cast<size_t>(n));
    std::vector<double> sigma_max(static_cast<size_t>(n), 1.0);
    std::vector<double> deltas(static_cast<size_t>(n), 0.0);
    for (int j = 0; j < n; ++j) {
      deltas[static_cast<size_t>(j)] = rng.Uniform(0.0, 2.0);
      if (mask & (1u << j)) {
        storage.push_back(Tuple{j, rng.Uniform(0.1, 1.0),
                                rng.UniformInCube(d, -2, 2)});
      }
    }
    std::vector<const Tuple*> members;
    for (auto& t : storage) members.push_back(&t);
    std::vector<Vec> y;
    const double t = TightPartialBoundDistance(scoring, q, n, mask, members,
                                               sigma_max, deltas, nullptr, &y);
    const double reconstructed = TightBoundValueByReconstruction(
        scoring, q, n, mask, members, sigma_max, y);
    EXPECT_NEAR(t, reconstructed, 1e-8) << "trial " << trial;
    // And the reconstruction is feasible: every unseen location respects
    // its distance lower bound.
    for (int j = 0; j < n; ++j) {
      if (mask & (1u << j)) continue;
      EXPECT_GE(y[static_cast<size_t>(j)].Distance(q),
                deltas[static_cast<size_t>(j)] - 1e-9);
    }
  }
}

// Index of the `rank`-th tuple of `rel` in distance-from-q order; the
// upper-bound check must enumerate tuples in the same order the sources
// deliver them.
size_t SortedIndex(const Relation& rel, const Vec& q, uint32_t rank) {
  std::vector<size_t> idx(rel.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    const double da = rel.tuple(a).x.SquaredDistance(q);
    const double db = rel.tuple(b).x.SquaredDistance(q);
    if (da != db) return da < db;
    return rel.tuple(a).id < rel.tuple(b).id;
  });
  return idx[rank];
}

TEST(TightBoundTest, UpperBoundsEveryUnseenCombination) {
  // Correctness of updateBound: at every step of a run, the bound covers
  // the score of every cross-product combination using >= 1 unseen tuple.
  Rng rng(74);
  for (int trial = 0; trial < 6; ++trial) {
    SyntheticSpec spec;
    spec.dim = 1 + static_cast<int>(rng.NextBounded(3));
    spec.count = 12;
    spec.density = 20;
    spec.seed = 500 + trial;
    const int n = 2 + static_cast<int>(rng.NextBounded(2));
    const auto rels = GenerateProblem(n, spec);
    const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
    const Vec q(spec.dim, 0.0);
    BoundHarness h(rels, AccessKind::kDistance, q);
    TightBoundDistance tight(&h.state(), &scoring);

    std::vector<uint32_t> pos(static_cast<size_t>(n), 0);
    for (int step = 0; step < 4 * n; ++step) {
      h.Pull(step % n, &tight);
      const double bound = tight.bound();
      // Enumerate the full cross product; check unseen-using combos.
      std::fill(pos.begin(), pos.end(), 0u);
      for (;;) {
        bool uses_unseen = false;
        for (int j = 0; j < n; ++j) {
          if (pos[static_cast<size_t>(j)] >=
              h.state().rel(j).depth()) {
            uses_unseen = true;
          }
        }
        if (uses_unseen) {
          std::vector<const Tuple*> combo;
          for (int j = 0; j < n; ++j) {
            combo.push_back(&rels[static_cast<size_t>(j)].tuple(
                SortedIndex(rels[static_cast<size_t>(j)], q,
                            pos[static_cast<size_t>(j)])));
          }
          EXPECT_GE(bound, scoring.CombinationScore(q, combo) - 1e-9)
              << "trial " << trial << " step " << step;
        }
        int j = 0;
        for (; j < n; ++j) {
          if (++pos[static_cast<size_t>(j)] <
              rels[static_cast<size_t>(j)].size()) {
            break;
          }
          pos[static_cast<size_t>(j)] = 0;
        }
        if (j == n) break;
      }
    }
  }
}

// --------------------------- Score-based tight ------------------------- //

TEST(TightBoundScoreTest, UnconstrainedClosedForm41) {
  // y* = q + (nu - q) * m*wmu / (m*wmu + n*wq) for every unseen slot.
  const SumLogEuclideanScoring scoring(1.0, 2.0, 3.0);
  const Vec q{1.0, -1.0};
  Tuple a{0, 0.8, Vec{3.0, 1.0}};
  Tuple b{1, 0.9, Vec{5.0, 3.0}};
  std::vector<Vec> y;
  TightPartialBoundScore(scoring, q, 4, 0b0011, {&a, &b},
                         {1.0, 1.0, 0.7, 0.6}, &y);
  const Vec nu{4.0, 2.0};  // centroid of a, b
  const double c = 2.0 * 3.0 / (2.0 * 3.0 + 4.0 * 2.0);
  const Vec expected = q + (nu - q) * c;
  EXPECT_TRUE(y[2].ApproxEquals(expected, 1e-9)) << y[2].ToString();
  EXPECT_TRUE(y[3].ApproxEquals(expected, 1e-9));
}

TEST(TightBoundScoreTest, EmptyPartialPlacesUnseenAtQuery) {
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  const Vec q{0.5, 0.5};
  std::vector<Vec> y;
  const double t =
      TightPartialBoundScore(scoring, q, 2, 0, {}, {0.8, 0.5}, &y);
  EXPECT_TRUE(y[0].ApproxEquals(q, 1e-9));
  EXPECT_TRUE(y[1].ApproxEquals(q, 1e-9));
  EXPECT_NEAR(t, std::log(0.8) + std::log(0.5), 1e-9);
}

TEST(TightBoundScoreTest, ClassBoundUpperBoundsBruteForceTop1) {
  const auto rels = testing_fixture::TheoremC1Relations(5);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  const Vec q{0.0};
  BoundHarness h(rels, AccessKind::kScore, q);
  TightBoundScore tight(&h.state(), &scoring);
  const auto top = BruteForceTopK(rels, scoring, q, 1);
  for (int step = 0; step < 4; ++step) {
    h.Pull(step % 2, &tight);
    // While unseen combos include the true best, the bound covers it.
    EXPECT_GE(tight.bound(), -4.0 / 3.0 - 1e-9) << "step " << step;
  }
  ASSERT_EQ(top.size(), 1u);
  EXPECT_NEAR(top[0].score, -4.0 / 3.0, 1e-9);
}

TEST(TightBoundScoreTest, TightBelowCornerUnderScoreAccess) {
  const auto rels = testing_fixture::TheoremC1Relations(8);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  const Vec q{0.0};
  BoundHarness hc(rels, AccessKind::kScore, q);
  BoundHarness ht(rels, AccessKind::kScore, q);
  CornerBound corner(&hc.state(), &scoring);
  TightBoundScore tight(&ht.state(), &scoring);
  for (int step = 0; step < 8; ++step) {
    hc.Pull(step % 2, &corner);
    ht.Pull(step % 2, &tight);
    EXPECT_GE(corner.bound(), tight.bound() - 1e-9) << "step " << step;
  }
}

// Exhaustive reference for the score-access tight bound: recompute
// t_s(tau) for EVERY partial combination of every valid subset, with no
// best-partial shortcut. Validates Algorithm 3's invariance argument.
double ExhaustiveScoreBound(const JoinState& state,
                            const SumLogEuclideanScoring& scoring) {
  const int n = state.n();
  std::vector<double> unseen(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) unseen[static_cast<size_t>(j)] = state.rel(j).last_score();
  double best = -std::numeric_limits<double>::infinity();
  const uint32_t full = (1u << n) - 1u;
  for (uint32_t mask = 0; mask < full; ++mask) {
    bool valid = true;
    std::vector<int> members;
    for (int j = 0; j < n; ++j) {
      if (mask & (1u << j)) {
        members.push_back(j);
        if (state.rel(j).depth() == 0) valid = false;
      } else if (state.rel(j).exhausted) {
        valid = false;
      }
    }
    if (!valid) continue;
    std::vector<uint32_t> idx(members.size(), 0);
    for (;;) {
      std::vector<const Tuple*> tuples;
      for (size_t a = 0; a < members.size(); ++a) {
        tuples.push_back(
            &state.rel(members[a]).seen[idx[a]]);
      }
      best = std::max(best, TightPartialBoundScore(scoring, state.query(), n,
                                                   mask, tuples, unseen));
      size_t a = 0;
      for (; a < members.size(); ++a) {
        if (++idx[a] < state.rel(members[a]).depth()) break;
        idx[a] = 0;
      }
      if (a == members.size()) break;
      if (members.empty()) break;
    }
  }
  return best;
}

TEST(TightBoundScoreTest, SingleBestTrackingMatchesExhaustiveEnumeration) {
  // Algorithm 3 keeps only one partial per subset, justified by the
  // shift-invariance of the within-subset ordering. Verify against the
  // exhaustive maximum at every step on random instances.
  for (uint64_t seed : {301u, 302u, 303u, 304u}) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 15;
    spec.density = 15;
    spec.seed = seed;
    const int n = (seed % 2 == 0) ? 3 : 2;
    const auto rels = GenerateProblem(n, spec);
    const SumLogEuclideanScoring scoring(1.0, 0.7, 1.3);
    BoundHarness h(rels, AccessKind::kScore, Vec(2, 0.0));
    TightBoundScore tight(&h.state(), &scoring);
    for (int step = 0; step < 6 * n; ++step) {
      h.Pull(step % n, &tight);
      EXPECT_NEAR(tight.bound(), ExhaustiveScoreBound(h.state(), scoring),
                  1e-9)
          << "seed " << seed << " step " << step;
    }
  }
}

TEST(TightBoundScoreTest, UpperBoundsEveryUnseenCombinationUnderScoreAccess) {
  for (uint64_t seed : {311u, 312u}) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 10;
    spec.density = 10;
    spec.seed = seed;
    const auto rels = GenerateProblem(2, spec);
    const SumLogEuclideanScoring scoring(1, 1, 1);
    const Vec q(2, 0.0);
    BoundHarness h(rels, AccessKind::kScore, q);
    TightBoundScore tight(&h.state(), &scoring);
    // Score order of each relation, to map prefix ranks to tuples.
    auto by_score = [](const Relation& rel) {
      std::vector<size_t> idx(rel.size());
      for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        if (rel.tuple(a).score != rel.tuple(b).score) {
          return rel.tuple(a).score > rel.tuple(b).score;
        }
        return rel.tuple(a).id < rel.tuple(b).id;
      });
      return idx;
    };
    const auto order1 = by_score(rels[0]);
    const auto order2 = by_score(rels[1]);
    for (int step = 0; step < 8; ++step) {
      h.Pull(step % 2, &tight);
      const double bound = tight.bound();
      for (size_t a = 0; a < rels[0].size(); ++a) {
        for (size_t b = 0; b < rels[1].size(); ++b) {
          const bool unseen =
              a >= h.state().rel(0).depth() || b >= h.state().rel(1).depth();
          if (!unseen) continue;
          const double s = scoring.CombinationScore(
              q, {&rels[0].tuple(order1[a]), &rels[1].tuple(order2[b])});
          EXPECT_GE(bound, s - 1e-9)
              << "seed " << seed << " step " << step << " (" << a << "," << b
              << ")";
        }
      }
    }
  }
}

// ------------------------------ Exhaustion ----------------------------- //

TEST(TightBoundTest, ExhaustedComplementInvalidatesSubsets) {
  // Two tiny relations; exhaust R2 fully. Then no combination can use an
  // unseen tuple of R2 and the bound must come only from M containing R2.
  Relation r1("R1", 1), r2("R2", 1);
  r1.Add(0, 1.0, Vec{0.0});
  r1.Add(1, 1.0, Vec{1.0});
  r2.Add(0, 1.0, Vec{0.5});
  const std::vector<Relation> rels = {r1, r2};
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  BoundHarness h(rels, AccessKind::kDistance, Vec{0.0});
  TightBoundDistance tight(&h.state(), &scoring);
  h.Pull(0, &tight);
  h.Pull(1, &tight);
  EXPECT_TRUE(std::isfinite(tight.bound()));
  h.Pull(1, &tight);  // exhausts R2
  EXPECT_TRUE(h.state().rel(1).exhausted);
  // Potential of exhausted relation is -inf; the remaining bound only
  // covers completions drawing unseen tuples from R1.
  EXPECT_TRUE(std::isinf(tight.Potential(1)));
  EXPECT_LT(tight.Potential(1), 0);
  EXPECT_TRUE(std::isfinite(tight.Potential(0)));
  h.Pull(0, &tight);  // exhausts... not yet: R1 has 2 tuples
  h.Pull(0, &tight);  // now exhausted
  EXPECT_TRUE(std::isinf(tight.bound()));
  EXPECT_LT(tight.bound(), 0);
}

}  // namespace
}  // namespace prj
