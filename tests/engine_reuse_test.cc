// Tests of the reusable Engine front end: N successive TopK calls against
// one shared catalog are bit-identical (scores, member ids, sumDepths) to
// fresh single-shot RunProxRJ calls on the same relations, across all four
// algorithm presets, both access kinds and both distance backends; stats
// never leak across queries; RunBatch matches individual calls and
// isolates per-query failures; and the exhausted-input early-exit path
// (current_bound == -inf) is exercised directly, including under
// BlockedSource paging.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "result_matchers.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

const AlgorithmPreset kAllPresets[] = {kCBRR, kCBPA, kTBRR, kTBPA};

struct BackendCase {
  AccessKind kind;
  SourceBackend backend;
  const char* name;
};

const BackendCase kBackendCases[] = {
    {AccessKind::kDistance, SourceBackend::kPresorted, "distance/presorted"},
    {AccessKind::kDistance, SourceBackend::kRTree, "distance/rtree"},
    {AccessKind::kScore, SourceBackend::kPresorted, "score"},
};

std::vector<Relation> MakeRelations(int n, int count, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = seed;
  return GenerateProblem(n, spec);
}

// Satellite: N successive TopK calls (varying query point, k and preset)
// against one Engine are bit-identical to fresh RunProxRJ calls, and
// consume exactly the same sumDepths, for every kind/backend combination.
TEST(EngineReuseTest, SuccessiveTopKCallsMatchFreshRunProxRJ) {
  const auto rels = MakeRelations(2, 60, /*seed=*/7);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  Rng rng(123);

  for (const BackendCase& bc : kBackendCases) {
    Engine::Options eng_opts;
    eng_opts.backend = bc.backend;
    auto engine = Engine::Create(rels, bc.kind, &scoring, eng_opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    for (int call = 0; call < 12; ++call) {
      const AlgorithmPreset& preset = kAllPresets[call % 4];
      const Vec q = rng.UniformInCube(2, -1.0, 1.0);
      ProxRJOptions opts;
      opts.k = 1 + call % 7;
      opts.Apply(preset);
      opts.backend = bc.backend;

      ExecStats engine_stats;
      auto from_engine = engine->TopK(q, opts, &engine_stats);
      ASSERT_TRUE(from_engine.ok()) << from_engine.status().ToString();

      ExecStats fresh_stats;
      auto fresh = RunProxRJ(rels, bc.kind, scoring, q, opts, &fresh_stats);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

      const std::string label = std::string(bc.name) + " " + preset.name +
                                " call " + std::to_string(call);
      ExpectBitIdentical(*from_engine, *fresh, label);
      EXPECT_EQ(engine_stats.sum_depths, fresh_stats.sum_depths) << label;
      EXPECT_EQ(engine_stats.depths, fresh_stats.depths) << label;
      EXPECT_TRUE(engine_stats.completed) << label;
    }
  }
}

// Three relations stress the subset machinery of the tight bound.
TEST(EngineReuseTest, ThreeWayJoinMatchesBruteForceAcrossQueries) {
  const auto rels = MakeRelations(3, 25, /*seed=*/11);
  const SumLogEuclideanScoring scoring(1.0, 2.0, 0.5);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Rng rng(5);
  for (int call = 0; call < 6; ++call) {
    const Vec q = rng.UniformInCube(2, -0.5, 0.5);
    ProxRJOptions opts;
    opts.k = 5;
    opts.Apply(kAllPresets[call % 4]);
    auto result = engine->TopK(q, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto expected = BruteForceTopK(rels, scoring, q, 5);
    ASSERT_EQ(result->size(), expected.size());
    for (size_t i = 0; i < result->size(); ++i) {
      EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-9)
          << "call " << call << " rank " << i;
    }
  }
}

// Satellite: the executor produces a fresh ExecStats per query, so engine
// reuse cannot accumulate dominance_seconds, bound_stats or depths.
TEST(EngineReuseTest, StatsDoNotLeakAcrossQueries) {
  const auto rels = MakeRelations(2, 120, /*seed=*/19);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const Vec q(2, 0.25);
  ProxRJOptions opts;
  opts.k = 10;
  opts.Apply(kTBPA);
  opts.dominance_period = 1;  // make the dominance sweep run

  ExecStats first;
  ASSERT_TRUE(engine->TopK(q, opts, &first).ok());
  ASSERT_GT(first.bound_stats.lp_solves, 0u);

  for (int repeat = 0; repeat < 3; ++repeat) {
    ExecStats again;
    ASSERT_TRUE(engine->TopK(q, opts, &again).ok());
    EXPECT_EQ(again.sum_depths, first.sum_depths) << repeat;
    EXPECT_EQ(again.depths, first.depths) << repeat;
    EXPECT_EQ(again.combinations_formed, first.combinations_formed) << repeat;
    EXPECT_EQ(again.bound_stats.bound_updates, first.bound_stats.bound_updates)
        << repeat;
    EXPECT_EQ(again.bound_stats.qp_solves, first.bound_stats.qp_solves)
        << repeat;
    EXPECT_EQ(again.bound_stats.lp_solves, first.bound_stats.lp_solves)
        << repeat;
    EXPECT_EQ(again.final_bound, first.final_bound) << repeat;
  }
}

// A stats struct passed in dirty (e.g. reused by a caller's loop) is reset.
TEST(EngineReuseTest, DirtyStatsStructIsReset) {
  const auto rels = MakeRelations(2, 30, /*seed=*/3);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());

  ExecStats stats;
  stats.dominance_seconds = 1e9;
  stats.sum_depths = 123456;
  stats.bound_stats.lp_solves = 77;
  ProxRJOptions opts;
  opts.k = 3;
  ASSERT_TRUE(engine->TopK(Vec(2, 0.0), opts, &stats).ok());
  EXPECT_LT(stats.dominance_seconds, 1.0);
  EXPECT_LT(stats.sum_depths, 123456u);
  EXPECT_EQ(stats.bound_stats.lp_solves, 0u);  // dominance disabled here

  // A failed query must also leave fresh (zeroed) stats, not the previous
  // query's numbers.
  ProxRJOptions bad = opts;
  bad.k = 0;
  EXPECT_FALSE(engine->TopK(Vec(2, 0.0), bad, &stats).ok());
  EXPECT_EQ(stats.sum_depths, 0u);
  EXPECT_EQ(stats.bound_stats.bound_updates, 0u);
}

TEST(EngineBatchTest, RunBatchMatchesIndividualTopK) {
  const auto rels = MakeRelations(2, 50, /*seed=*/29);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());

  Rng rng(77);
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 8; ++i) {
    QueryRequest req;
    req.query = rng.UniformInCube(2, -1.0, 1.0);
    req.options.k = 1 + i;
    req.options.Apply(kAllPresets[i % 4]);
    requests.push_back(std::move(req));
  }

  const auto batch = engine->RunBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status.ToString();
    ExecStats stats;
    auto single = engine->TopK(requests[i].query, requests[i].options, &stats);
    ASSERT_TRUE(single.ok());
    ExpectBitIdentical(batch[i].combinations, *single,
                       "batch entry " + std::to_string(i));
    EXPECT_EQ(batch[i].stats.sum_depths, stats.sum_depths) << i;
  }
}

TEST(EngineBatchTest, PerQueryFailureDoesNotPoisonTheBatch) {
  const auto rels = MakeRelations(2, 20, /*seed=*/31);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());

  std::vector<QueryRequest> requests(3);
  requests[0].query = Vec(2, 0.0);
  requests[0].options.k = 3;
  requests[1].query = Vec(2, 0.0);
  requests[1].options.k = 0;  // invalid
  requests[2].query = Vec{0.0, 0.0, 0.0};  // wrong dimension
  requests[2].options.k = 3;

  const auto batch = engine->RunBatch(requests);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_TRUE(batch[0].ok());
  EXPECT_EQ(batch[0].combinations.size(), 3u);
  EXPECT_EQ(batch[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(batch[1].combinations.empty());
  EXPECT_EQ(batch[2].status.code(), StatusCode::kInvalidArgument);
}

// ------------- exhausted-input early exit (current_bound == -inf) -------- //

// An empty input makes the bound collapse to -inf after its first (failed)
// pull: the run loop must exit through the -inf branch with a complete,
// empty answer -- for every preset, kind and backend.
TEST(ExhaustedInputTest, EmptyRelationExitsEarlyWithMinusInfBound) {
  Relation r1("left", 2);
  for (int i = 0; i < 10; ++i) {
    r1.Add(i, 0.5 + 0.05 * i, Vec{0.1 * i, -0.1 * i});
  }
  Relation r2("right", 2);  // empty
  const SumLogEuclideanScoring scoring(1, 1, 1);

  for (const BackendCase& bc : kBackendCases) {
    Engine::Options eng_opts;
    eng_opts.backend = bc.backend;
    auto engine = Engine::Create({r1, r2}, bc.kind, &scoring, eng_opts);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    for (const AlgorithmPreset& preset : kAllPresets) {
      ProxRJOptions opts;
      opts.k = 5;
      opts.Apply(preset);
      ExecStats stats;
      auto result = engine->TopK(Vec(2, 0.0), opts, &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(result->empty()) << bc.name << " " << preset.name;
      EXPECT_TRUE(stats.completed);
      EXPECT_TRUE(std::isinf(stats.final_bound) && stats.final_bound < 0)
          << bc.name << " " << preset.name << " bound " << stats.final_bound;
      // The tight bound learns from OnExhausted that no combination can
      // complete and exits without draining the non-empty side; the corner
      // bound (whose OnExhausted is a no-op) only collapses once every
      // input is exhausted.
      if (preset.bound == BoundKind::kTight) {
        EXPECT_LT(stats.sum_depths, r1.size()) << bc.name << " "
                                               << preset.name;
      } else {
        EXPECT_LE(stats.sum_depths, r1.size()) << bc.name << " "
                                               << preset.name;
      }
    }
  }
}

// Same early exit through paged access: a BlockedSource over an empty
// inner source delivers an empty first block and must propagate
// exhaustion, not spin.
TEST(ExhaustedInputTest, EmptyRelationUnderBlockedPaging) {
  Relation r1("left", 2);
  for (int i = 0; i < 12; ++i) {
    r1.Add(i, 0.9, Vec{0.05 * i, 0.0});
  }
  Relation r2("right", 2);  // empty
  const SumLogEuclideanScoring scoring(1, 1, 1);

  // Through the Engine's paging option...
  Engine::Options eng_opts;
  eng_opts.block_size = 5;
  auto engine = Engine::Create({r1, r2}, AccessKind::kDistance, &scoring,
                               eng_opts);
  ASSERT_TRUE(engine.ok());
  for (const AlgorithmPreset& preset : kAllPresets) {
    ProxRJOptions opts;
    opts.k = 4;
    opts.Apply(preset);
    ExecStats stats;
    auto result = engine->TopK(Vec(2, 0.0), opts, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->empty()) << preset.name;
    EXPECT_TRUE(stats.completed);
    EXPECT_TRUE(std::isinf(stats.final_bound) && stats.final_bound < 0);
  }

  // ...and through explicitly constructed blocked sources.
  const Vec q(2, 0.0);
  std::vector<std::unique_ptr<AccessSource>> sources;
  sources.push_back(std::make_unique<BlockedSource>(
      std::make_unique<SortedDistanceSource>(r1, q), 3));
  sources.push_back(std::make_unique<BlockedSource>(
      std::make_unique<SortedDistanceSource>(r2, q), 3));
  ProxRJOptions opts;
  opts.k = 4;
  opts.Apply(kTBPA);
  ProxRJ op(std::move(sources), &scoring, q, opts);
  auto result = op.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
  EXPECT_TRUE(op.stats().completed);
}

// K beyond the cross product: every input exhausts mid-run, the bound
// drops to -inf, and the buffer holds exactly the full cross product --
// also under paging, where exhaustion is only visible at block granularity.
TEST(ExhaustedInputTest, KLargerThanCrossProductUnderBlockedPaging) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 4;
  spec.density = 10;
  spec.seed = 13;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  const auto expected = BruteForceTopK(rels, scoring, q, 100);
  ASSERT_EQ(expected.size(), 16u);

  for (size_t block : {1u, 3u, 7u}) {
    Engine::Options eng_opts;
    eng_opts.block_size = block;
    auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring,
                                 eng_opts);
    ASSERT_TRUE(engine.ok());
    for (const AlgorithmPreset& preset : kAllPresets) {
      ProxRJOptions opts;
      opts.k = 100;
      opts.Apply(preset);
      ExecStats stats;
      auto result = engine->TopK(q, opts, &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->size(), 16u) << preset.name << " block " << block;
      for (size_t i = 0; i < result->size(); ++i) {
        EXPECT_NEAR((*result)[i].score, expected[i].score, 1e-9)
            << preset.name << " block " << block << " rank " << i;
      }
      EXPECT_TRUE(stats.completed);
    }
  }
}

// ----------------------- construction validation ------------------------ //

TEST(EngineCreateTest, RejectsBadSetups) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  EXPECT_EQ(Engine::Create({}, AccessKind::kDistance, &scoring)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  Relation a("a", 2);
  a.Add(0, 1.0, Vec{0.5, 0.5});
  Relation b("b", 3);
  b.Add(0, 1.0, Vec{0.5, 0.5, 0.5});
  EXPECT_EQ(Engine::Create({a, b}, AccessKind::kDistance, &scoring)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const SumLogCosineScoring cosine(1, 1, 1, Vec{1.0, 0.0});
  EXPECT_EQ(Engine::Create({a}, AccessKind::kDistance, &cosine)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);

  // Cosine under score access is fine with the corner bound.
  auto engine = Engine::Create({a}, AccessKind::kScore, &cosine);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ProxRJOptions opts;
  opts.k = 1;
  opts.bound = BoundKind::kCorner;
  auto result = engine->TopK(Vec{1.0, 0.0}, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 1u);
}

// Satellite: the R-tree backend is reachable through the plain RunProxRJ
// API via ProxRJOptions::backend and delivers the identical execution.
TEST(SourceBackendTest, RunProxRJRTreeBackendMatchesPresorted) {
  const auto rels = MakeRelations(2, 80, /*seed=*/43);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.1);
  for (const AlgorithmPreset& preset : kAllPresets) {
    ProxRJOptions sorted_opts;
    sorted_opts.k = 8;
    sorted_opts.Apply(preset);
    ExecStats sorted_stats;
    auto sorted = RunProxRJ(rels, AccessKind::kDistance, scoring, q,
                            sorted_opts, &sorted_stats);
    ASSERT_TRUE(sorted.ok());

    ProxRJOptions rtree_opts = sorted_opts;
    rtree_opts.backend = SourceBackend::kRTree;
    ExecStats rtree_stats;
    auto rtree = RunProxRJ(rels, AccessKind::kDistance, scoring, q,
                           rtree_opts, &rtree_stats);
    ASSERT_TRUE(rtree.ok());

    ExpectBitIdentical(*rtree, *sorted, preset.name);
    EXPECT_EQ(rtree_stats.sum_depths, sorted_stats.sum_depths) << preset.name;
  }
}

// The backend option is irrelevant under score access (no R-tree involved).
TEST(SourceBackendTest, BackendIgnoredForScoreAccess) {
  const auto rels = MakeRelations(2, 40, /*seed=*/47);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  ProxRJOptions opts;
  opts.k = 5;
  opts.backend = SourceBackend::kRTree;
  auto result = RunProxRJ(rels, AccessKind::kScore, scoring, q, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 5u);
}

}  // namespace
}  // namespace prj
