// The reusable worker pool behind ShardedEngine's parallel scatter: every
// submitted task runs exactly once, tasks really run concurrently, the
// destructor drains the backlog, and submission is safe from many threads
// at once (this suite runs under the TSan CI job).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace prj {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the backlog before joining
  EXPECT_EQ(runs.load(), 1000);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // Two tasks that rendezvous: only a pool actually running them in
  // parallel lets the first one see the second before its (bounded) wait
  // expires. Declared before the pool so the destructor -- which joins
  // the workers -- fences every task access to them.
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  bool timed_out = false;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 2; ++i) {
      pool.Submit([&] {
        std::unique_lock<std::mutex> lock(mu);
        ++arrived;
        cv.notify_all();
        // Bounded so a sequential-execution regression fails the
        // expectation below instead of hanging the suite.
        if (!cv.wait_for(lock, std::chrono::seconds(30),
                         [&] { return arrived == 2; })) {
          timed_out = true;
        }
      });
    }
  }
  EXPECT_EQ(arrived, 2);
  EXPECT_FALSE(timed_out);
}

TEST(ThreadPoolTest, SubmitFromManyThreadsAndFromTasks) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(3);
    // Tasks may submit follow-up work (the scatter loop never does, but
    // the pool contract allows it).
    std::vector<std::thread> producers;
    producers.reserve(4);
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&pool, &runs] {
        for (int i = 0; i < 50; ++i) {
          pool.Submit([&pool, &runs] {
            runs.fetch_add(1, std::memory_order_relaxed);
            pool.Submit(
                [&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
          });
        }
      });
    }
    for (std::thread& t : producers) t.join();
  }
  EXPECT_EQ(runs.load(), 4 * 50 * 2);
}

TEST(ThreadPoolTest, StealsBacklogOffABlockedWorker) {
  // Submit-from-a-task lands follow-up work on the submitting worker's
  // own deque. Blocking that worker until every follow-up has run forces
  // the siblings to steal all of them -- the imbalance case the
  // per-worker deques exist for. Every task still runs exactly once.
  constexpr int kTasks = 64;
  std::atomic<int> runs{0};
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  uint64_t steals = 0;
  {
    ThreadPool pool(4);
    pool.Submit([&] {
      for (int i = 0; i < kTasks; ++i) {
        pool.Submit([&] {
          if (runs.fetch_add(1, std::memory_order_relaxed) + 1 == kTasks) {
            std::lock_guard<std::mutex> lock(mu);
            done = true;
            cv.notify_all();
          }
        });
      }
      // Hold this worker hostage until its whole backlog has been stolen
      // and run by the other three.
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    steals = pool.steals();
  }
  EXPECT_EQ(runs.load(), kTasks);
  // The owner was blocked for the duration, so at least the first
  // follow-up demonstrably migrated (the counter is relaxed, so no exact
  // equality -- >= 1 is the property: stealing happened).
  EXPECT_GE(steals, 1u);
}

TEST(ThreadPoolTest, ExternalSubmissionsSpreadWithoutSteals) {
  // A lone external producer round-robins across deques, so with as many
  // tasks as workers each deque gets its own and no steal is *required*.
  // (Steals may still happen -- a fast worker can empty its deque and
  // poach -- so only exactness is asserted, not a steal count.)
  std::atomic<int> runs{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadPoolStillDrains) {
  std::atomic<int> runs{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&runs] { runs.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(runs.load(), 20);
}

}  // namespace
}  // namespace prj
