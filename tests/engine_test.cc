// End-to-end tests of the ProxRJ operator (Algorithm 1): all four
// algorithms x both access kinds return exactly the brute-force top-K on
// randomized instances; the instance-optimality counterexamples of
// Theorems 3.1 and C.1 behave as proved; Theorem 3.5 (TBPA never deeper
// than TBRR) holds; dominance and block bound updates do not change
// results; and the failure modes return proper Statuses.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "paper_fixture.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

using testing_fixture::Table1Query;
using testing_fixture::Table1Relations;
using testing_fixture::Table1Scoring;

std::vector<double> Scores(const std::vector<ResultCombination>& rs) {
  std::vector<double> out;
  out.reserve(rs.size());
  for (const auto& r : rs) out.push_back(r.score);
  return out;
}

void ExpectSameScores(const std::vector<ResultCombination>& got,
                      const std::vector<ResultCombination>& expected,
                      const std::string& label) {
  const auto gs = Scores(got);
  const auto es = Scores(expected);
  ASSERT_EQ(gs.size(), es.size()) << label;
  for (size_t i = 0; i < gs.size(); ++i) {
    EXPECT_NEAR(gs[i], es[i], 1e-7) << label << " rank " << i;
  }
}

struct AlgoCase {
  AlgorithmPreset preset;
  AccessKind kind;
};

std::string CaseName(const ::testing::TestParamInfo<AlgoCase>& info) {
  std::string name = info.param.preset.name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name + (info.param.kind == AccessKind::kDistance ? "_dist" : "_score");
}

class AllAlgorithmsTest : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(AllAlgorithmsTest, Table1Top1IsMinus7Combo) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  ProxRJOptions opts;
  opts.k = 1;
  opts.Apply(GetParam().preset);
  ExecStats stats;
  auto result = RunProxRJ(rels, GetParam().kind, scoring, Table1Query(), opts,
                          &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_NEAR((*result)[0].score, -7.0, 0.05);
  EXPECT_EQ((*result)[0].tuples[0].id, 1);  // tau_1^(2)
  EXPECT_EQ((*result)[0].tuples[1].id, 0);  // tau_2^(1)
  EXPECT_EQ((*result)[0].tuples[2].id, 0);  // tau_3^(1)
  EXPECT_TRUE(stats.completed);
}

TEST_P(AllAlgorithmsTest, MatchesBruteForceOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    for (int n : {2, 3}) {
      SyntheticSpec spec;
      spec.dim = 1 + static_cast<int>(seed % 3);
      spec.count = 40;
      spec.density = 40;
      spec.seed = seed;
      const auto rels = GenerateProblem(n, spec);
      const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
      const Vec q(spec.dim, 0.0);
      const int k = 1 + static_cast<int>(seed % 5) * 2;
      const auto expected = BruteForceTopK(rels, scoring, q, k);

      ProxRJOptions opts;
      opts.k = k;
      opts.Apply(GetParam().preset);
      ExecStats stats;
      auto result = RunProxRJ(rels, GetParam().kind, scoring, q, opts, &stats);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_TRUE(stats.completed);
      ExpectSameScores(*result, expected,
                       std::string(GetParam().preset.name) + " seed " +
                           std::to_string(seed) + " n " + std::to_string(n));
    }
  }
}

TEST_P(AllAlgorithmsTest, VaryingWeightsStillCorrect) {
  const double weight_sets[][3] = {
      {1.0, 1.0, 1.0}, {0.0, 1.0, 1.0}, {1.0, 2.0, 0.5},
      {2.0, 0.5, 3.0}, {1.0, 1.0, 0.0},
  };
  for (const auto& w : weight_sets) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 30;
    spec.density = 30;
    spec.seed = 99;
    const auto rels = GenerateProblem(2, spec);
    const SumLogEuclideanScoring scoring(w[0], w[1], w[2]);
    const Vec q(2, 0.0);
    const auto expected = BruteForceTopK(rels, scoring, q, 5);
    ProxRJOptions opts;
    opts.k = 5;
    opts.Apply(GetParam().preset);
    auto result = RunProxRJ(rels, GetParam().kind, scoring, q, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ExpectSameScores(*result, expected,
                     "weights " + std::to_string(w[0]) + "/" +
                         std::to_string(w[1]) + "/" + std::to_string(w[2]));
  }
}

TEST_P(AllAlgorithmsTest, KLargerThanCrossProductReturnsEverything) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 4;
  spec.density = 10;
  spec.seed = 3;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  ProxRJOptions opts;
  opts.k = 100;  // cross product has only 16
  opts.Apply(GetParam().preset);
  ExecStats stats;
  auto result = RunProxRJ(rels, GetParam().kind, scoring, q, opts, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->size(), 16u);
  ExpectSameScores(*result, BruteForceTopK(rels, scoring, q, 100), "all");
}

TEST_P(AllAlgorithmsTest, EmptyRelationYieldsEmptyResult) {
  Relation r1("R1", 2);
  r1.Add(0, 1.0, Vec{0.0, 0.0});
  Relation r2("R2", 2);  // empty
  ProxRJOptions opts;
  opts.k = 3;
  opts.Apply(GetParam().preset);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto result =
      RunProxRJ({r1, r2}, GetParam().kind, scoring, Vec{0.0, 0.0}, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->empty());
}

TEST_P(AllAlgorithmsTest, SingleRelationTopK) {
  // n = 1 degenerates to plain top-k selection by g_1.
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 50;
  spec.density = 50;
  spec.seed = 17;
  const auto rels = GenerateProblem(1, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  ProxRJOptions opts;
  opts.k = 7;
  opts.Apply(GetParam().preset);
  auto result = RunProxRJ(rels, GetParam().kind, scoring, q, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameScores(*result, BruteForceTopK(rels, scoring, q, 7), "n=1");
}

INSTANTIATE_TEST_SUITE_P(
    Presets, AllAlgorithmsTest,
    ::testing::Values(AlgoCase{kCBRR, AccessKind::kDistance},
                      AlgoCase{kCBPA, AccessKind::kDistance},
                      AlgoCase{kTBRR, AccessKind::kDistance},
                      AlgoCase{kTBPA, AccessKind::kDistance},
                      AlgoCase{kCBRR, AccessKind::kScore},
                      AlgoCase{kCBPA, AccessKind::kScore},
                      AlgoCase{kTBRR, AccessKind::kScore},
                      AlgoCase{kTBPA, AccessKind::kScore}),
    CaseName);

// ------------------- Instance-optimality counterexamples --------------- //

TEST(InstanceOptimalityTest, Theorem31TightStopsEarlyCornerDoesNot) {
  // On the Theorem 3.1 instance the tight bound certifies the top-1 at
  // depths (2, 1); the corner bound must keep reading R1 through every
  // filler tuple inside radius sqrt(1.5).
  const int fillers = 25;
  const auto rels = testing_fixture::Theorem31Relations(fillers);
  const auto scoring = testing_fixture::Theorem31Scoring();
  const Vec q{0.0, 0.0};

  ProxRJOptions tb;
  tb.k = 1;
  tb.Apply(kTBRR);
  ExecStats tb_stats;
  auto tb_result = RunProxRJ(rels, AccessKind::kDistance, scoring, q, tb,
                             &tb_stats);
  ASSERT_TRUE(tb_result.ok());
  EXPECT_NEAR((*tb_result)[0].score, -5.5, 1e-9);

  ProxRJOptions cb;
  cb.k = 1;
  cb.Apply(kCBRR);
  ExecStats cb_stats;
  auto cb_result = RunProxRJ(rels, AccessKind::kDistance, scoring, q, cb,
                             &cb_stats);
  ASSERT_TRUE(cb_result.ok());
  EXPECT_NEAR((*cb_result)[0].score, -5.5, 1e-9);

  // Same answer, wildly different I/O: the corner bound reads past every
  // filler while the tight bound needs a handful of accesses.
  EXPECT_GE(cb_stats.depths[0], static_cast<size_t>(fillers));
  EXPECT_LE(tb_stats.sum_depths, 6u);
  EXPECT_GT(cb_stats.sum_depths, 4 * tb_stats.sum_depths);
}

TEST(InstanceOptimalityTest, TheoremC1TightStopsEarlyCornerDoesNot) {
  const int fillers = 30;
  const auto rels = testing_fixture::TheoremC1Relations(fillers);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  const Vec q{0.0};

  ProxRJOptions tb;
  tb.k = 1;
  tb.Apply(kTBRR);
  ExecStats tb_stats;
  auto tb_result =
      RunProxRJ(rels, AccessKind::kScore, scoring, q, tb, &tb_stats);
  ASSERT_TRUE(tb_result.ok());
  EXPECT_NEAR((*tb_result)[0].score, -4.0 / 3.0, 1e-9);

  ProxRJOptions cb;
  cb.k = 1;
  cb.Apply(kCBRR);
  ExecStats cb_stats;
  auto cb_result =
      RunProxRJ(rels, AccessKind::kScore, scoring, q, cb, &cb_stats);
  ASSERT_TRUE(cb_result.ok());
  EXPECT_NEAR((*cb_result)[0].score, -4.0 / 3.0, 1e-9);

  EXPECT_GE(cb_stats.depths[1], static_cast<size_t>(fillers));
  EXPECT_LE(tb_stats.sum_depths, 8u);
}

// ------------------------------ Theorem 3.5 ---------------------------- //

TEST(Theorem35Test, TbpaNeverDeeperThanTbrrPerRelation) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 300;
    spec.density = 50;
    spec.seed = seed * 13;
    for (int n : {2, 3}) {
      const auto rels = GenerateProblem(n, spec, /*skew=*/seed % 2 ? 1.0 : 4.0);
      const SumLogEuclideanScoring scoring(1, 1, 1);
      const Vec q(2, 0.0);
      ProxRJOptions rr;
      rr.k = 10;
      rr.Apply(kTBRR);
      ExecStats rr_stats;
      ASSERT_TRUE(
          RunProxRJ(rels, AccessKind::kDistance, scoring, q, rr, &rr_stats)
              .ok());
      ProxRJOptions pa;
      pa.k = 10;
      pa.Apply(kTBPA);
      ExecStats pa_stats;
      ASSERT_TRUE(
          RunProxRJ(rels, AccessKind::kDistance, scoring, q, pa, &pa_stats)
              .ok());
      for (int i = 0; i < n; ++i) {
        EXPECT_LE(pa_stats.depths[static_cast<size_t>(i)],
                  rr_stats.depths[static_cast<size_t>(i)])
            << "seed " << seed << " n " << n << " relation " << i;
      }
    }
  }
}

// --------------------- Dominance / block-update ablations -------------- //

TEST(AblationTest, DominancePeriodDoesNotChangeResultsOrDepths) {
  for (uint64_t seed = 2; seed <= 5; ++seed) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 200;
    spec.density = 50;
    spec.seed = seed * 7;
    const auto rels = GenerateProblem(2, spec);
    const SumLogEuclideanScoring scoring(1, 1, 1);
    const Vec q(2, 0.0);

    ProxRJOptions base;
    base.k = 10;
    base.Apply(kTBPA);
    ExecStats base_stats;
    auto base_result =
        RunProxRJ(rels, AccessKind::kDistance, scoring, q, base, &base_stats);
    ASSERT_TRUE(base_result.ok());

    for (int period : {1, 4, 16}) {
      ProxRJOptions dom = base;
      dom.dominance_period = period;
      ExecStats dom_stats;
      auto dom_result =
          RunProxRJ(rels, AccessKind::kDistance, scoring, q, dom, &dom_stats);
      ASSERT_TRUE(dom_result.ok());
      ExpectSameScores(*dom_result, *base_result,
                       "dominance period " + std::to_string(period));
      EXPECT_EQ(dom_stats.sum_depths, base_stats.sum_depths)
          << "period " << period << " seed " << seed;
      if (period == 1) {
        EXPECT_GT(dom_stats.bound_stats.lp_solves, 0u);
      }
    }
  }
}

TEST(AblationTest, BlockBoundUpdatesStayCorrectAndReadMore) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 300;
  spec.density = 50;
  spec.seed = 21;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  const auto expected = BruteForceTopK(rels, scoring, q, 10);

  size_t previous_depths = 0;
  for (int period : {1, 4, 16}) {
    ProxRJOptions opts;
    opts.k = 10;
    opts.Apply(kTBRR);
    opts.bound_update_period = period;
    ExecStats stats;
    auto result =
        RunProxRJ(rels, AccessKind::kDistance, scoring, q, opts, &stats);
    ASSERT_TRUE(result.ok());
    ExpectSameScores(*result, expected, "period " + std::to_string(period));
    EXPECT_GE(stats.sum_depths, previous_depths)
        << "coarser updates cannot read less";
    previous_depths = stats.sum_depths;
  }
}

TEST(AblationTest, GenericQpPathGivesIdenticalResultsAndDepths) {
  // The paper's explicit QP route (14)/(30) and the water-filling path are
  // two solvers for the same optimization problem; engine behaviour must
  // be identical (same results, same per-relation depths).
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    SyntheticSpec spec;
    spec.dim = 2;
    spec.count = 200;
    spec.density = 50;
    spec.seed = seed;
    const auto rels = GenerateProblem(2, spec);
    const SumLogEuclideanScoring scoring(1, 1, 1);
    const Vec q(2, 0.0);

    ProxRJOptions wf;
    wf.k = 10;
    wf.Apply(kTBPA);
    ExecStats wf_stats;
    auto wf_result =
        RunProxRJ(rels, AccessKind::kDistance, scoring, q, wf, &wf_stats);
    ASSERT_TRUE(wf_result.ok());

    ProxRJOptions qp = wf;
    qp.use_generic_qp = true;
    ExecStats qp_stats;
    auto qp_result =
        RunProxRJ(rels, AccessKind::kDistance, scoring, q, qp, &qp_stats);
    ASSERT_TRUE(qp_result.ok());

    ExpectSameScores(*qp_result, *wf_result, "seed " + std::to_string(seed));
    EXPECT_EQ(qp_stats.depths, wf_stats.depths) << "seed " << seed;
  }
}

// ------------------------------ Safety rails --------------------------- //

TEST(SafetyRailTest, MaxPullsTripsAndReportsIncomplete) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 500;
  spec.density = 100;
  spec.seed = 5;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  ProxRJOptions opts;
  opts.k = 10;
  opts.Apply(kCBRR);
  opts.max_pulls = 4;
  ExecStats stats;
  auto result =
      RunProxRJ(rels, AccessKind::kDistance, scoring, Vec(2, 0.0), opts, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(stats.completed);
  EXPECT_LE(stats.sum_depths, 4u);
}

// ------------------------------ Validation ----------------------------- //

TEST(ValidationTest, RejectsBadK) {
  ProxRJOptions opts;
  opts.k = 0;
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto result = RunProxRJ(Table1Relations(), AccessKind::kDistance, scoring,
                          Table1Query(), opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, RejectsDimensionMismatch) {
  ProxRJOptions opts;
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto result = RunProxRJ(Table1Relations(), AccessKind::kDistance, scoring,
                          Vec{0.0, 0.0, 0.0}, opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, RejectsMixedAccessKinds) {
  const auto rels = Table1Relations();
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q = Table1Query();
  std::vector<std::unique_ptr<AccessSource>> sources;
  sources.push_back(std::make_unique<SortedDistanceSource>(rels[0], q));
  sources.push_back(std::make_unique<ScoreSource>(rels[1]));
  sources.push_back(std::make_unique<ScoreSource>(rels[2]));
  ProxRJ op(std::move(sources), &scoring, q, ProxRJOptions{});
  auto result = op.Run();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, TightBoundRequiresSumLogEuclidean) {
  const SumLogCosineScoring cosine(1, 1, 1, Vec{1.0, 0.0});
  ProxRJOptions opts;
  opts.bound = BoundKind::kTight;
  auto result = RunProxRJ(Table1Relations(), AccessKind::kScore, cosine,
                          Table1Query(), opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(ValidationTest, DistanceAccessRequiresEuclideanScorer) {
  const SumLogCosineScoring cosine(1, 1, 1, Vec{1.0, 0.0});
  ProxRJOptions opts;
  opts.bound = BoundKind::kCorner;
  auto result = RunProxRJ(Table1Relations(), AccessKind::kDistance, cosine,
                          Table1Query(), opts);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ValidationTest, CosineScorerWorksWithCornerBoundScoreAccess) {
  // The future-work scorer: valid under score access + corner bound.
  Relation r1("docs_a", 3), r2("docs_b", 3);
  Rng rng(91);
  for (int i = 0; i < 25; ++i) {
    Vec v = rng.UniformInCube(3, 0.1, 1.0);
    r1.Add(i, rng.Uniform(0.2, 1.0), v);
    Vec w = rng.UniformInCube(3, 0.1, 1.0);
    r2.Add(i, rng.Uniform(0.2, 1.0), w);
  }
  const Vec q{1.0, 0.5, 0.2};
  const SumLogCosineScoring cosine(1.0, 1.0, 1.0, q);
  ProxRJOptions opts;
  opts.k = 5;
  opts.bound = BoundKind::kCorner;
  opts.pull = PullKind::kRoundRobin;
  auto result = RunProxRJ({r1, r2}, AccessKind::kScore, cosine, q, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSameScores(*result, BruteForceTopK({r1, r2}, cosine, q, 5), "cosine");
}

TEST(ValidationTest, RunIsSingleShot) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const auto rels = Table1Relations();
  const Vec q = Table1Query();
  ProxRJ op(MakeSources(rels, AccessKind::kDistance, q), &scoring, q,
            ProxRJOptions{});
  ASSERT_TRUE(op.Run().ok());
  auto second = op.Run();
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PagedAccessTest, BlockedSourcesThroughTheEngine) {
  // Paged services deliver the same stream; results are identical and the
  // paged deployment pays for whole blocks (depth rounded up per page).
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 200;
  spec.density = 50;
  spec.seed = 41;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  ProxRJOptions opts;
  opts.k = 10;
  opts.Apply(kTBPA);

  ExecStats plain_stats;
  auto plain =
      RunProxRJ(rels, AccessKind::kDistance, scoring, q, opts, &plain_stats);
  ASSERT_TRUE(plain.ok());

  const size_t block = 5;
  std::vector<std::unique_ptr<AccessSource>> sources;
  for (const auto& r : rels) {
    sources.push_back(std::make_unique<BlockedSource>(
        std::make_unique<SortedDistanceSource>(r, q), block));
  }
  ProxRJ paged_op(std::move(sources), &scoring, q, opts);
  auto paged = paged_op.Run();
  ASSERT_TRUE(paged.ok());

  ASSERT_EQ(paged->size(), plain->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_NEAR((*paged)[i].score, (*plain)[i].score, 1e-9);
  }
  // The paged run fetched at least as much, in multiples of the block.
  EXPECT_GE(paged_op.stats().sum_depths, plain_stats.sum_depths);
  for (size_t depth : paged_op.stats().depths) {
    EXPECT_TRUE(depth % block == 0 || depth == 200u) << depth;
  }
}

// --------------------------- R-tree-backed access ---------------------- //

TEST(RTreeAccessTest, SameResultsAsSortedAccess) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 150;
  spec.density = 50;
  spec.seed = 30;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  ProxRJOptions opts;
  opts.k = 10;
  opts.Apply(kTBPA);

  ProxRJ sorted_op(MakeSources(rels, AccessKind::kDistance, q, false),
                   &scoring, q, opts);
  auto sorted_result = sorted_op.Run();
  ASSERT_TRUE(sorted_result.ok());

  ProxRJ rtree_op(MakeSources(rels, AccessKind::kDistance, q, true), &scoring,
                  q, opts);
  auto rtree_result = rtree_op.Run();
  ASSERT_TRUE(rtree_result.ok());

  ExpectSameScores(*rtree_result, *sorted_result, "rtree vs sorted");
  EXPECT_EQ(rtree_op.stats().sum_depths, sorted_op.stats().sum_depths);
}

}  // namespace
}  // namespace prj
