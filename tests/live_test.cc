// Tests for the live-data layer (live/live_engine.h): the bit-identity
// property under inserts/deletes/mixed batches across backends and
// presets (LiveEngine vs a fresh engine over the same logical content),
// Apply atomicity and validation, epoch semantics, manual and automatic
// compaction (epoch preserved, results unchanged), composition with the
// sharded base factory and the cache decorator, and the concurrent
// writers-vs-readers property that every query is exact for the epoch it
// observed -- the suite the TSan CI job runs to certify the snapshot
// machinery.
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cached_engine.h"
#include "common/random.h"
#include "core/engine.h"
#include "live/live_engine.h"
#include "result_matchers.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

const AlgorithmPreset kAllPresets[] = {kCBRR, kCBPA, kTBRR, kTBPA};

struct BackendCase {
  AccessKind kind;
  SourceBackend backend;
  const char* name;
};

const BackendCase kBackendCases[] = {
    {AccessKind::kDistance, SourceBackend::kPresorted, "distance/presorted"},
    {AccessKind::kDistance, SourceBackend::kRTree, "distance/rtree"},
    {AccessKind::kScore, SourceBackend::kPresorted, "score"},
};

std::vector<Relation> MakeRelations(int n, int count, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = seed;
  return GenerateProblem(n, spec);
}

/// Applies `batch` to plain relations the way the live layer promises to:
/// deletes drop live tuples, inserts append. The reference a fresh engine
/// is built from (tuple order inside a relation is irrelevant -- every
/// access order re-sorts).
void ApplyToReference(const UpdateBatch& batch,
                      std::vector<Relation>* relations) {
  ASSERT_EQ(batch.relations.size(), relations->size());
  for (size_t j = 0; j < relations->size(); ++j) {
    const RelationUpdate& update = batch.relations[j];
    const Relation& old = (*relations)[j];
    std::unordered_set<int64_t> dead(update.deletes.begin(),
                                     update.deletes.end());
    Relation next(old.name(), old.dim(), old.sigma_max());
    for (const Tuple& t : old.tuples()) {
      if (dead.count(t.id) == 0) next.Add(t);
    }
    for (const Tuple& t : update.inserts) next.Add(t);
    (*relations)[j] = std::move(next);
  }
}

/// Live options with automatic compaction off: tests drive Compact()
/// explicitly unless they are about the trigger itself.
LiveEngineOptions ManualCompaction() {
  LiveEngineOptions options;
  options.compact_threshold = 0;
  return options;
}

UpdateBatch EmptyBatch(size_t n) {
  UpdateBatch batch;
  batch.relations.resize(n);
  return batch;
}

// ---------------------------- construction ----------------------------- //

TEST(LiveEngineCreateTest, ValidatesLikeEngineCreate) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const auto rels = MakeRelations(2, 20, /*seed=*/1);
  const auto factory =
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring);

  EXPECT_FALSE(
      LiveEngine::Create(rels, AccessKind::kDistance, nullptr, factory).ok());
  EXPECT_FALSE(
      LiveEngine::Create({}, AccessKind::kDistance, &scoring, factory).ok());
  EXPECT_FALSE(LiveEngine::Create(rels, AccessKind::kDistance, &scoring,
                                  BaseEngineFactory{})
                   .ok());

  auto live = LiveEngine::Create(rels, AccessKind::kDistance, &scoring,
                                 factory, ManualCompaction());
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ((*live)->kind(), AccessKind::kDistance);
  EXPECT_EQ((*live)->dim(), 2);
  EXPECT_EQ((*live)->num_relations(), 2u);
  const LiveCounters counters = (*live)->live_counters();
  EXPECT_EQ(counters.epoch, 1u);  // epoch 1 at birth
  EXPECT_EQ(counters.delta_tuples, 0u);
  EXPECT_EQ(counters.tombstones, 0u);
  EXPECT_EQ(counters.compactions, 0u);
}

TEST(LiveEngineTest, RequestValidationMatchesEngine) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const auto rels = MakeRelations(2, 20, /*seed=*/2);
  auto live = LiveEngine::Create(
      rels, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live.ok());
  ProxRJOptions bad;
  bad.k = 0;
  EXPECT_EQ((*live)->TopK(Vec(2, 0.0), bad).status().code(),
            StatusCode::kInvalidArgument);
  ProxRJOptions ok;
  ok.k = 3;
  EXPECT_EQ((*live)->TopK(Vec(3, 0.0), ok).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------- exactness property -------------------------- //

TEST(LiveExactnessTest, NoUpdatesMatchesStaticEngine) {
  const auto rels = MakeRelations(2, 60, /*seed=*/7);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto fresh = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(fresh.ok());
  auto live = LiveEngine::Create(
      rels, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live.ok());

  ProxRJOptions q_opts;
  q_opts.k = 10;
  const Vec q{0.2, -0.1};
  auto expected = fresh->TopK(q, q_opts);
  ExecStats stats;
  auto got = (*live)->TopK(q, q_opts, &stats);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*got, *expected, "no updates");
  EXPECT_EQ(stats.data_epoch, 1u);
  EXPECT_EQ(stats.delta_tuples, 0u);
  EXPECT_EQ(stats.delta_shards_pruned, 0u);
  EXPECT_TRUE(stats.completed);
}

// The tentpole acceptance criterion: after every update batch, every
// query the live engine answers is bit-identical to a fresh engine built
// from the same logical content -- across backends, presets, inserts,
// deletes (of base AND delta tuples), and mixed batches.
TEST(LiveExactnessTest, UpdatesBitIdenticalToFreshEngineAcrossTheGrid) {
  Rng rng(2027);
  for (const BackendCase& bc : kBackendCases) {
    const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
    std::vector<Relation> content = MakeRelations(2, 50, /*seed=*/31);

    Engine::Options eng_opts;
    eng_opts.backend = bc.backend;
    LiveEngineOptions live_opts = ManualCompaction();
    live_opts.catalog = eng_opts;
    auto live = LiveEngine::Create(
        content, bc.kind, &scoring,
        LiveEngine::MonolithicFactory(bc.kind, &scoring, eng_opts), live_opts);
    ASSERT_TRUE(live.ok()) << live.status().ToString();

    // Batch 1: pure inserts. Batch 2: deletes of base tuples. Batch 3:
    // mixed, including deletes of tuples inserted in batch 1 (delta
    // tombstones).
    std::vector<UpdateBatch> batches(3);
    batches[0].relations.resize(2);
    for (int j = 0; j < 2; ++j) {
      for (int i = 0; i < 12; ++i) {
        batches[0].relations[j].inserts.push_back(
            Tuple{1000 + j * 100 + i, 0.05 + 0.07 * i,
                  rng.UniformInCube(2, -0.6, 0.6)});
      }
    }
    batches[1].relations.resize(2);
    for (int j = 0; j < 2; ++j) {
      for (int64_t id : {0, 3, 17, 29}) {
        batches[1].relations[j].deletes.push_back(id);
      }
    }
    batches[2].relations.resize(2);
    for (int j = 0; j < 2; ++j) {
      for (int i = 0; i < 5; ++i) {
        batches[2].relations[j].inserts.push_back(
            Tuple{2000 + j * 100 + i, 0.9 - 0.1 * i,
                  rng.UniformInCube(2, -0.6, 0.6)});
      }
      batches[2].relations[j].deletes = {1000 + j * 100 + 2,
                                         1000 + j * 100 + 7, 11};
    }

    uint64_t expected_epoch = 1;
    for (size_t b = 0; b < batches.size(); ++b) {
      const Status applied = (*live)->Apply(batches[b]);
      ASSERT_TRUE(applied.ok()) << bc.name << ": " << applied.ToString();
      ApplyToReference(batches[b], &content);
      ++expected_epoch;
      EXPECT_EQ((*live)->live_counters().epoch, expected_epoch) << bc.name;

      auto fresh = Engine::Create(content, bc.kind, &scoring, eng_opts);
      ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
      for (const AlgorithmPreset& preset : kAllPresets) {
        const Vec q = rng.UniformInCube(2, -1.0, 1.0);
        ProxRJOptions q_opts;
        q_opts.k = 1 + static_cast<int>(rng.NextBounded(15));
        q_opts.Apply(preset);
        const std::string label = std::string(bc.name) + "/batch" +
                                  std::to_string(b) + "/" + preset.name;
        auto expected = fresh->TopK(q, q_opts);
        ASSERT_TRUE(expected.ok()) << label;
        ExecStats stats;
        auto got = (*live)->TopK(q, q_opts, &stats);
        ASSERT_TRUE(got.ok()) << label;
        ExpectBitIdentical(*got, *expected, label);
        EXPECT_TRUE(stats.completed) << label;
        EXPECT_EQ(stats.data_epoch, expected_epoch) << label;
      }
    }
  }
}

// Paged live access paths (catalog.block_size) stay exact too.
TEST(LiveExactnessTest, BlockedCatalogStaysExact) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  std::vector<Relation> content = MakeRelations(2, 40, /*seed=*/51);
  LiveEngineOptions live_opts = ManualCompaction();
  live_opts.catalog.block_size = 3;
  auto live = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      live_opts);
  ASSERT_TRUE(live.ok());

  UpdateBatch batch = EmptyBatch(2);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 6; ++i) {
      batch.relations[j].inserts.push_back(
          Tuple{900 + j * 10 + i, 0.4 + 0.05 * i, Vec{0.1 * i, -0.1 * j}});
    }
    batch.relations[j].deletes = {5, 6};
  }
  ASSERT_TRUE((*live)->Apply(batch).ok());
  ApplyToReference(batch, &content);
  auto fresh = Engine::Create(content, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(fresh.ok());

  ProxRJOptions q_opts;
  q_opts.k = 9;
  q_opts.Apply(kTBPA);
  auto expected = fresh->TopK(Vec{0.1, 0.2}, q_opts);
  auto got = (*live)->TopK(Vec{0.1, 0.2}, q_opts);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  ExpectBitIdentical(*got, *expected, "blocked live");
}

// K beyond the full live cross product: base over-fetch must exhaust
// cleanly and the merge must still deliver the entire product in order.
TEST(LiveExactnessTest, KLargerThanLiveCrossProduct) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  std::vector<Relation> content = MakeRelations(2, 6, /*seed=*/52);
  auto live = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live.ok());

  UpdateBatch batch = EmptyBatch(2);
  batch.relations[0].inserts = {Tuple{100, 0.5, Vec{0.0, 0.0}}};
  batch.relations[0].deletes = {0, 1};
  batch.relations[1].deletes = {2};
  ASSERT_TRUE((*live)->Apply(batch).ok());
  ApplyToReference(batch, &content);
  auto fresh = Engine::Create(content, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(fresh.ok());

  ProxRJOptions q_opts;
  q_opts.k = 1000;
  auto expected = fresh->TopK(Vec{0.0, 0.0}, q_opts);
  auto got = (*live)->TopK(Vec{0.0, 0.0}, q_opts);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(expected->size(), 25u);  // (6-2+1) x (6-1)
  ExpectBitIdentical(*got, *expected, "exhaustive live");
}

// Regression: heavy deletes can tombstone the ENTIRE top of the base
// order. The over-fetch rail must let want grow to the full base cross
// product (dead combinations included) -- capping it at the live
// combination count stops the loop with fewer than K survivors while the
// live combinations ranked past the prefix are never fetched, silently
// dropping results.
TEST(LiveExactnessTest, HeavyDeletesBeyondLiveCountStayExact) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  std::vector<Relation> content;
  for (int j = 0; j < 2; ++j) {
    Relation r("r" + std::to_string(j), 2, /*sigma_max=*/1.0);
    // Every tuple sits on the query point, so ranking is purely by
    // score: the ids deleted below occupy the whole top of the base
    // order and the one survivor pair ranks dead last.
    r.Add(Tuple{0, 0.9, Vec{0.0, 0.0}});
    r.Add(Tuple{1, 0.8, Vec{0.0, 0.0}});
    r.Add(Tuple{2, 0.1, Vec{0.0, 0.0}});
    content.push_back(std::move(r));
  }
  auto live = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  UpdateBatch batch = EmptyBatch(2);
  batch.relations[0].deletes = {0, 1};
  batch.relations[1].deletes = {0, 1};
  ASSERT_TRUE((*live)->Apply(batch).ok());
  ApplyToReference(batch, &content);
  auto fresh = Engine::Create(content, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(fresh.ok());

  // k = 1 with one live combination ranked 9th of 9 in the unfiltered
  // base order: any prefix sized by the live count (1) misses it.
  ProxRJOptions q_opts;
  q_opts.k = 1;
  auto expected = fresh->TopK(Vec{0.0, 0.0}, q_opts);
  auto got = (*live)->TopK(Vec{0.0, 0.0}, q_opts);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(expected->size(), 1u);
  ASSERT_EQ(got->size(), 1u);
  EXPECT_EQ((*got)[0].tuples[0].id, 2);
  EXPECT_EQ((*got)[0].tuples[1].id, 2);
  ExpectBitIdentical(*got, *expected, "heavy base deletes");
}

// ------------------------ Apply semantics ------------------------------ //

TEST(LiveApplyTest, RejectsBadBatchesAtomically) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const auto rels = MakeRelations(2, 30, /*seed=*/8);
  auto live_or = LiveEngine::Create(
      rels, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live_or.ok());
  LiveEngine& live = **live_or;

  ProxRJOptions q_opts;
  q_opts.k = 5;
  const Vec q{0.0, 0.0};
  auto before = live.TopK(q, q_opts);
  ASSERT_TRUE(before.ok());

  // Wrong slice count.
  EXPECT_EQ(live.Apply(EmptyBatch(1)).code(), StatusCode::kInvalidArgument);
  // Insert of an id that is already live in the base.
  UpdateBatch dup = EmptyBatch(2);
  dup.relations[0].inserts = {Tuple{0, 0.5, Vec{0.0, 0.0}}};
  EXPECT_EQ(live.Apply(dup).code(), StatusCode::kInvalidArgument);
  // Delete of an id that is not live.
  UpdateBatch missing = EmptyBatch(2);
  missing.relations[1].deletes = {424242};
  EXPECT_EQ(live.Apply(missing).code(), StatusCode::kNotFound);
  // A bad second slice must not leak the valid first slice's insert.
  UpdateBatch half = EmptyBatch(2);
  half.relations[0].inserts = {Tuple{777, 0.5, Vec{0.1, 0.1}}};
  half.relations[1].deletes = {424242};
  EXPECT_EQ(live.Apply(half).code(), StatusCode::kNotFound);

  // Nothing was applied: epoch still 1, answers unchanged, and the
  // probe insert from the failed batch is absent (re-inserting it works).
  EXPECT_EQ(live.live_counters().epoch, 1u);
  EXPECT_EQ(live.live_counters().delta_tuples, 0u);
  auto after = live.TopK(q, q_opts);
  ASSERT_TRUE(after.ok());
  ExpectBitIdentical(*after, *before, "after rejected batches");
  UpdateBatch probe = EmptyBatch(2);
  probe.relations[0].inserts = {Tuple{777, 0.5, Vec{0.1, 0.1}}};
  EXPECT_TRUE(live.Apply(probe).ok());
}

TEST(LiveApplyTest, DeleteReinsertLifecycle) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const auto rels = MakeRelations(1, 20, /*seed=*/9);
  auto live_or = LiveEngine::Create(
      rels, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live_or.ok());
  LiveEngine& live = **live_or;

  // Delete a BASE tuple, then re-insert its id: allowed (the new version
  // lives in the delta; the base copy stays hidden by its tombstone).
  UpdateBatch del_base = EmptyBatch(1);
  del_base.relations[0].deletes = {4};
  ASSERT_TRUE(live.Apply(del_base).ok());
  UpdateBatch re_add = EmptyBatch(1);
  re_add.relations[0].inserts = {Tuple{4, 0.33, Vec{0.2, 0.2}}};
  ASSERT_TRUE(live.Apply(re_add).ok());

  // Delete the DELTA version, then re-insert: rejected until compaction
  // folds the log (the delta is append-only; a second id-4 chunk would be
  // ambiguous).
  UpdateBatch del_delta = EmptyBatch(1);
  del_delta.relations[0].deletes = {4};
  ASSERT_TRUE(live.Apply(del_delta).ok());
  EXPECT_EQ(live.Apply(re_add).code(), StatusCode::kFailedPrecondition);

  // After compaction the id is gone from the log and free again.
  ASSERT_TRUE(live.Compact().ok());
  EXPECT_TRUE(live.Apply(re_add).ok());

  // The tuple is visible with its newest attributes.
  ProxRJOptions q_opts;
  q_opts.k = 1000;
  auto all = live.TopK(Vec{0.0, 0.0}, q_opts);
  ASSERT_TRUE(all.ok());
  size_t seen = 0;
  for (const ResultCombination& combo : *all) {
    if (combo.tuples[0].id == 4) {
      ++seen;
      EXPECT_DOUBLE_EQ(combo.tuples[0].score, 0.33);
    }
  }
  EXPECT_EQ(seen, 1u);
}

// ---------------------------- compaction ------------------------------- //

TEST(LiveCompactionTest, CompactPreservesEpochAndAnswers) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  std::vector<Relation> content = MakeRelations(2, 40, /*seed=*/11);
  auto live_or = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live_or.ok());
  LiveEngine& live = **live_or;

  // Nothing to fold: a no-op that does not count.
  ASSERT_TRUE(live.Compact().ok());
  EXPECT_EQ(live.live_counters().compactions, 0u);

  UpdateBatch batch = EmptyBatch(2);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 8; ++i) {
      batch.relations[j].inserts.push_back(
          Tuple{3000 + j * 10 + i, 0.2 + 0.08 * i, Vec{0.15 * i, -0.1 * i}});
    }
    batch.relations[j].deletes = {1, 2};
  }
  ASSERT_TRUE(live.Apply(batch).ok());

  ProxRJOptions q_opts;
  q_opts.k = 12;
  const Vec q{0.3, -0.2};
  auto before = live.TopK(q, q_opts);
  ASSERT_TRUE(before.ok());
  const LiveCounters pre = live.live_counters();
  EXPECT_EQ(pre.epoch, 2u);
  EXPECT_EQ(pre.delta_tuples, 16u);
  EXPECT_EQ(pre.tombstones, 4u);
  EXPECT_GT(live.fan_out(), 1u);  // delta shards visible

  ASSERT_TRUE(live.Compact().ok());
  const LiveCounters post = live.live_counters();
  EXPECT_EQ(post.epoch, 2u);  // logical content unchanged
  EXPECT_EQ(post.delta_tuples, 0u);
  EXPECT_EQ(post.tombstones, 0u);
  EXPECT_EQ(post.compactions, 1u);
  EXPECT_EQ(live.fan_out(), 1u);  // everything folded into the base

  ExecStats stats;
  auto after = live.TopK(q, q_opts, &stats);
  ASSERT_TRUE(after.ok());
  ExpectBitIdentical(*after, *before, "across compaction");
  EXPECT_EQ(stats.data_epoch, 2u);
  EXPECT_EQ(stats.delta_tuples, 0u);
}

TEST(LiveCompactionTest, AutomaticCompactionTriggersPastThreshold) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const auto rels = MakeRelations(1, 30, /*seed=*/13);
  LiveEngineOptions options;
  options.compact_threshold = 6;
  options.compaction_threads = 1;
  auto live_or = LiveEngine::Create(
      rels, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring), options);
  ASSERT_TRUE(live_or.ok());
  LiveEngine& live = **live_or;

  UpdateBatch batch = EmptyBatch(1);
  for (int i = 0; i < 8; ++i) {  // 8 >= threshold 6
    batch.relations[0].inserts.push_back(
        Tuple{5000 + i, 0.5, Vec{0.1 * i, 0.0}});
  }
  ASSERT_TRUE(live.Apply(batch).ok());

  // The background pool picks the compaction up; poll with a deadline.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const LiveCounters counters = live.live_counters();
    if (counters.compactions >= 1 && counters.delta_tuples == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const LiveCounters counters = live.live_counters();
  EXPECT_GE(counters.compactions, 1u);
  EXPECT_EQ(counters.delta_tuples, 0u);
  EXPECT_EQ(counters.epoch, 2u);  // compaction did not bump the epoch
}

// ---------------------------- composition ------------------------------ //

TEST(LiveCompositionTest, ShardedBaseFactoryStaysExact) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  std::vector<Relation> content = MakeRelations(2, 60, /*seed=*/14);
  ShardedEngineOptions sharded_opts;
  sharded_opts.partitions_per_relation = 3;
  auto live = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::ShardedFactory(AccessKind::kDistance, &scoring,
                                 sharded_opts),
      ManualCompaction());
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_GE((*live)->fan_out(), 9u);  // the sharded base shows through

  UpdateBatch batch = EmptyBatch(2);
  for (int j = 0; j < 2; ++j) {
    batch.relations[j].inserts = {
        Tuple{4000 + j, 0.7, Vec{0.2, 0.2}},
        Tuple{4010 + j, 0.3, Vec{-0.4, 0.1}},
    };
    batch.relations[j].deletes = {7};
  }
  ASSERT_TRUE((*live)->Apply(batch).ok());
  ApplyToReference(batch, &content);
  auto fresh = Engine::Create(content, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(fresh.ok());

  Rng rng(15);
  for (int call = 0; call < 4; ++call) {
    const Vec q = rng.UniformInCube(2, -1.0, 1.0);
    ProxRJOptions q_opts;
    q_opts.k = 2 + static_cast<int>(rng.NextBounded(10));
    q_opts.Apply(kAllPresets[call]);
    auto expected = fresh->TopK(q, q_opts);
    auto got = (*live)->TopK(q, q_opts);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    ExpectBitIdentical(*got, *expected, "sharded base");
  }
}

TEST(LiveCompositionTest, CachedLiveNeverServesStaleResults) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  std::vector<Relation> content = MakeRelations(2, 50, /*seed=*/16);
  auto live_or = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live_or.ok());
  LiveEngine& live = **live_or;
  CachedEngine cached(&live);

  ProxRJOptions q_opts;
  q_opts.k = 8;
  const Vec q{0.1, 0.3};

  // Warm the cache at epoch 1.
  auto first = cached.TopK(q, q_opts);
  ASSERT_TRUE(first.ok());
  ExecStats stats;
  auto hit = cached.TopK(q, q_opts, &stats);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(cached.cache().counters().hits, 1u);
  EXPECT_EQ(stats.data_epoch, 1u);
  EXPECT_EQ(stats.sum_depths, 0u);  // a hit pulls nothing
  ExpectBitIdentical(*hit, *first, "epoch 1 hit");

  // Apply: the very next lookup must see the new content, not the warm
  // epoch-1 entry.
  UpdateBatch batch = EmptyBatch(2);
  batch.relations[0].inserts = {Tuple{6000, 0.95, Vec{0.1, 0.3}}};
  batch.relations[1].deletes = {0};
  ASSERT_TRUE(live.Apply(batch).ok());
  ApplyToReference(batch, &content);
  auto fresh = Engine::Create(content, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(fresh.ok());
  auto expected = fresh->TopK(q, q_opts);
  ASSERT_TRUE(expected.ok());

  auto post = cached.TopK(q, q_opts, &stats);
  ASSERT_TRUE(post.ok());
  ExpectBitIdentical(*post, *expected, "post-update miss");
  EXPECT_EQ(stats.data_epoch, 2u);
  EXPECT_EQ(cached.cache().counters().hits, 1u);  // that was a miss

  // The epoch-2 entry serves hits now...
  auto post_hit = cached.TopK(q, q_opts, &stats);
  ASSERT_TRUE(post_hit.ok());
  EXPECT_EQ(cached.cache().counters().hits, 2u);
  ExpectBitIdentical(*post_hit, *expected, "epoch 2 hit");

  // ...and stays warm across compaction, because the epoch is preserved.
  ASSERT_TRUE(live.Compact().ok());
  auto compacted_hit = cached.TopK(q, q_opts, &stats);
  ASSERT_TRUE(compacted_hit.ok());
  EXPECT_EQ(cached.cache().counters().hits, 3u);
  EXPECT_EQ(stats.data_epoch, 2u);
  ExpectBitIdentical(*compacted_hit, *expected, "post-compaction hit");
}

// --------------------- concurrent update property ---------------------- //

// Writers race readers (and background compactions race both): every
// query's result must be bit-identical to a fresh engine built from the
// logical content of the epoch the query reports. Runs under TSan in CI;
// the small compact_threshold keeps compactions happening mid-flight.
TEST(LiveConcurrencyTest, QueriesAreExactForTheEpochTheyObserve) {
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const int kBatches = 12;
  const int kReaders = 4;
  const int kQueriesPerReader = 24;

  std::vector<Relation> seed_content = MakeRelations(2, 40, /*seed=*/17);
  LiveEngineOptions options;
  options.compact_threshold = 10;  // small: compactions race the test
  options.compaction_threads = 1;
  auto live_or = LiveEngine::Create(
      seed_content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring), options);
  ASSERT_TRUE(live_or.ok());
  LiveEngine& live = **live_or;

  // Precompute the batches and the per-epoch reference contents so the
  // verification below is pure lookup. Epoch e = seed + batches[0..e-2].
  Rng rng(18);
  std::vector<UpdateBatch> batches(kBatches);
  std::vector<std::vector<Relation>> content_at_epoch;
  std::vector<Relation> rolling = seed_content;
  content_at_epoch.push_back(rolling);  // index 0 -> epoch 1
  std::vector<std::vector<int64_t>> live_ids(2);
  for (int j = 0; j < 2; ++j) {
    for (const Tuple& t : rolling[j].tuples()) live_ids[j].push_back(t.id);
  }
  int64_t next_id = 100000;  // ids are never reused across batches
  for (int b = 0; b < kBatches; ++b) {
    batches[b].relations.resize(2);
    for (int j = 0; j < 2; ++j) {
      for (int i = 0; i < 3; ++i) {
        const int64_t id = next_id++;
        batches[b].relations[j].inserts.push_back(
            Tuple{id, 0.05 + 0.9 * (static_cast<double>((b * 7 + i * 3) % 10) /
                                    10.0),
                  rng.UniformInCube(2, -0.7, 0.7)});
        live_ids[j].push_back(id);
      }
      // Delete one currently live tuple per relation per batch.
      const size_t pick = rng.NextBounded(live_ids[j].size());
      batches[b].relations[j].deletes.push_back(live_ids[j][pick]);
      live_ids[j].erase(live_ids[j].begin() + static_cast<ptrdiff_t>(pick));
    }
    ApplyToReference(batches[b], &rolling);
    content_at_epoch.push_back(rolling);  // index b+1 -> epoch b+2
  }

  const std::vector<Vec> queries = {Vec{0.0, 0.0}, Vec{0.5, -0.5},
                                    Vec{-0.3, 0.4}};
  struct Observation {
    uint64_t epoch;
    size_t query_index;
    int k;
    std::vector<ResultCombination> result;
  };
  std::vector<std::vector<Observation>> observed(kReaders);
  std::atomic<bool> writer_failed{false};

  std::thread writer([&]() {
    for (const UpdateBatch& batch : batches) {
      if (!live.Apply(batch).ok()) {
        writer_failed.store(true);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r]() {
      Rng reader_rng(100 + static_cast<uint64_t>(r));
      for (int i = 0; i < kQueriesPerReader; ++i) {
        Observation obs;
        obs.query_index = reader_rng.NextBounded(queries.size());
        obs.k = 1 + static_cast<int>(reader_rng.NextBounded(10));
        ProxRJOptions q_opts;
        q_opts.k = obs.k;
        ExecStats stats;
        auto result = live.TopK(queries[obs.query_index], q_opts, &stats);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        obs.epoch = stats.data_epoch;
        obs.result = std::move(*result);
        observed[r].push_back(std::move(obs));
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  ASSERT_FALSE(writer_failed.load());

  // One final observation after the writer finished: deterministically at
  // the last epoch, so the verification below always covers an updated
  // snapshot even if the readers drained before the first Apply landed.
  {
    Observation obs;
    obs.query_index = 0;
    obs.k = 5;
    ProxRJOptions q_opts;
    q_opts.k = obs.k;
    ExecStats stats;
    auto result = live.TopK(queries[0], q_opts, &stats);
    ASSERT_TRUE(result.ok());
    obs.epoch = stats.data_epoch;
    obs.result = std::move(*result);
    observed[0].push_back(std::move(obs));
  }

  // Verify every observation against a fresh engine over the content of
  // the epoch it reports. Engines are built once per (epoch) on demand.
  std::vector<std::unique_ptr<Engine>> reference(content_at_epoch.size());
  uint64_t max_epoch_seen = 0;
  for (int r = 0; r < kReaders; ++r) {
    for (const Observation& obs : observed[r]) {
      ASSERT_GE(obs.epoch, 1u);
      ASSERT_LE(obs.epoch, static_cast<uint64_t>(kBatches) + 1);
      max_epoch_seen = std::max(max_epoch_seen, obs.epoch);
      const size_t idx = static_cast<size_t>(obs.epoch - 1);
      if (!reference[idx]) {
        auto fresh = Engine::Create(content_at_epoch[idx],
                                    AccessKind::kDistance, &scoring);
        ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
        reference[idx] = std::make_unique<Engine>(std::move(*fresh));
      }
      ProxRJOptions q_opts;
      q_opts.k = obs.k;
      auto expected = reference[idx]->TopK(queries[obs.query_index], q_opts);
      ASSERT_TRUE(expected.ok());
      ExpectBitIdentical(obs.result, *expected,
                         "reader " + std::to_string(r) + " epoch " +
                             std::to_string(obs.epoch));
    }
  }
  EXPECT_GT(max_epoch_seen, 1u);  // the race was real: updates were seen
  EXPECT_EQ(live.live_counters().epoch, static_cast<uint64_t>(kBatches) + 1);
}

}  // namespace
}  // namespace prj
