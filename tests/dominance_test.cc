// Tests for the dominance machinery of §3.2.2 / Appendix B.5, anchored to
// Example 3.3 (none of the four partials of PC({2,3}) in Table 1 is
// dominated) plus property tests on crafted geometries.
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dominance.h"
#include "core/scoring.h"
#include "paper_fixture.h"

namespace prj {
namespace {

using testing_fixture::Table1Query;
using testing_fixture::Table1Relations;
using testing_fixture::Table1Scoring;

// Builds the DominanceEntry of a partial combination the same way
// TightBoundDistance does (see DESIGN.md §4.2).
DominanceEntry MakeEntry(const SumLogEuclideanScoring& scoring, const Vec& q,
                         int n, const std::vector<const Tuple*>& members,
                         double unseen_log) {
  const int m = static_cast<int>(members.size());
  DominanceEntry e;
  Vec nu(q.dim());
  double base = 0.0;
  for (const Tuple* t : members) {
    Vec centered = t->x;
    centered -= q;
    nu += centered;
    base += scoring.ws() * std::log(t->score) -
            (scoring.wq() + scoring.wmu()) * centered.SquaredNorm();
  }
  nu /= static_cast<double>(m);
  e.nu_centered = nu;
  e.c = base + unseen_log +
        scoring.wmu() * m * m / static_cast<double>(n) * nu.SquaredNorm();
  return e;
}

TEST(DominanceTest, Example33NoPartialOfPC23IsDominated) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  const Vec q = Table1Query();
  // PC({2,3}): the four pairs from R2 x R3 (mask {2,3}, m = 2, n = 3).
  std::vector<DominanceEntry> entries;
  for (int i2 = 0; i2 < 2; ++i2) {
    for (int i3 = 0; i3 < 2; ++i3) {
      entries.push_back(MakeEntry(
          scoring, q, 3,
          {&rels[1].tuple(static_cast<size_t>(i2)),
           &rels[2].tuple(static_cast<size_t>(i3))},
          /*unseen_log=*/0.0));
    }
  }
  const double b_scale = -1.0 * (3 - 2) * 2.0 / 3.0;  // -wmu*(n-m)*m/n
  std::vector<bool> active(entries.size(), true);
  uint64_t lp = 0;
  for (size_t a = 0; a < entries.size(); ++a) {
    EXPECT_FALSE(PartialIsDominated(a, entries, active, b_scale, &lp))
        << "partial " << a;
  }
  EXPECT_EQ(lp, 4u);
}

TEST(DominanceTest, ResidualSignMatchesDefinition) {
  // Two 1-D partials: alpha with centroid at +1, beta at -1, equal
  // constants. alpha dominates for y >= 0 under b_scale < 0.
  DominanceEntry alpha{Vec{1.0}, 0.0};
  DominanceEntry beta{Vec{-1.0}, 0.0};
  const double b_scale = -0.5;
  EXPECT_GT(DominanceResidual(alpha, beta, b_scale, Vec{2.0}), 0.0);
  EXPECT_LT(DominanceResidual(alpha, beta, b_scale, Vec{-2.0}), 0.0);
  EXPECT_NEAR(DominanceResidual(alpha, beta, b_scale, Vec{0.0}), 0.0, 1e-12);
}

TEST(DominanceTest, StrictlyWorseCloneIsDominated) {
  // Same centroid, strictly smaller constant: dominated everywhere.
  DominanceEntry good{Vec{0.5, -0.5}, 1.0};
  DominanceEntry bad{Vec{0.5, -0.5}, 0.0};
  std::vector<DominanceEntry> entries = {good, bad};
  std::vector<bool> active = {true, true};
  uint64_t lp = 0;
  EXPECT_TRUE(PartialIsDominated(1, entries, active, -0.5, &lp));
  EXPECT_FALSE(PartialIsDominated(0, entries, active, -0.5, &lp));
}

TEST(DominanceTest, MiddleOfThreeCollinearCentroidsCanBeDominated) {
  // 1-D: centroids at -1, 0, +1. With equal constants, the middle one is
  // weakly dominated: at every y one of the extremes matches or beats it
  // (|y - (-1)| or |y - 1| <= |y| on each half-line). The closed-region
  // definition keeps it alive only at the boundary... its region is {0},
  // nonempty, so NOT dominated. Shrink its constant slightly and the
  // region becomes empty.
  std::vector<DominanceEntry> entries = {
      {Vec{-1.0}, 0.0}, {Vec{0.0}, -0.01}, {Vec{1.0}, 0.0}};
  std::vector<bool> active = {true, true, true};
  uint64_t lp = 0;
  EXPECT_TRUE(PartialIsDominated(1, entries, active, -0.5, &lp));
  EXPECT_FALSE(PartialIsDominated(0, entries, active, -0.5, &lp));
  EXPECT_FALSE(PartialIsDominated(2, entries, active, -0.5, &lp));
}

TEST(DominanceTest, SinglePartialNeverDominated) {
  std::vector<DominanceEntry> entries = {{Vec{1.0, 1.0}, 0.0}};
  std::vector<bool> active = {true};
  uint64_t lp = 0;
  EXPECT_FALSE(PartialIsDominated(0, entries, active, -1.0, &lp));
  EXPECT_EQ(lp, 0u);  // no constraints, no LP
}

TEST(DominanceTest, InactiveEntriesAreExcludedFromConstraints) {
  // bad is dominated only by good; once good is inactive, bad survives.
  DominanceEntry good{Vec{0.0}, 1.0};
  DominanceEntry bad{Vec{0.0}, 0.0};
  std::vector<DominanceEntry> entries = {good, bad};
  uint64_t lp = 0;
  std::vector<bool> with_good = {true, true};
  EXPECT_TRUE(PartialIsDominated(1, entries, with_good, -0.5, &lp));
  std::vector<bool> without_good = {false, true};
  EXPECT_FALSE(PartialIsDominated(1, entries, without_good, -0.5, &lp));
}

TEST(DominanceTest, DominatedPartialNeverAttainsTheRegionMax) {
  // Property: if alpha is dominated, then for every y some active beta has
  // U_beta(y) >= U_alpha(y). Verified pointwise on random instances (the
  // quadratic term cancels, so comparing residuals suffices).
  Rng rng(81);
  for (int trial = 0; trial < 100; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(3));
    const size_t count = 3 + rng.NextBounded(6);
    std::vector<DominanceEntry> entries;
    for (size_t i = 0; i < count; ++i) {
      entries.push_back(DominanceEntry{rng.UniformInCube(d, -2, 2),
                                       rng.Uniform(-3, 3)});
    }
    std::vector<bool> active(count, true);
    const double b_scale = -rng.Uniform(0.1, 2.0);
    uint64_t lp = 0;
    for (size_t a = 0; a < count; ++a) {
      if (!PartialIsDominated(a, entries, active, b_scale, &lp)) continue;
      for (int probe = 0; probe < 200; ++probe) {
        const Vec y = rng.UniformInCube(d, -10, 10);
        bool someone_beats = false;
        for (size_t b = 0; b < count; ++b) {
          if (b == a || !active[b]) continue;
          if (DominanceResidual(entries[b], entries[a], b_scale, y) >= -1e-7) {
            someone_beats = true;
            break;
          }
        }
        EXPECT_TRUE(someone_beats)
            << "trial " << trial << " partial " << a << " probe " << probe;
        if (!someone_beats) break;
      }
    }
  }
}

}  // namespace
}  // namespace prj
