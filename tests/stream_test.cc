// Tests for the pipelined ProxRJStream operator and the execution trace:
// the stream must emit exactly the brute-force ranking, lazily, and the
// trace trajectories must obey the algorithm's invariants (the bound never
// rises, the k-th buffered score never falls).
#include <cmath>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/stream.h"
#include "paper_fixture.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

using testing_fixture::Table1Query;
using testing_fixture::Table1Relations;
using testing_fixture::Table1Scoring;

ProxRJStream MakeStream(const std::vector<Relation>& rels, AccessKind kind,
                        const ScoringFunction& scoring, const Vec& q,
                        const AlgorithmPreset& preset) {
  ProxRJStreamOptions opts;
  opts.Apply(preset);
  return ProxRJStream(MakeSources(rels, kind, q), &scoring, q, opts);
}

TEST(StreamTest, EmitsFullCrossProductInOrder) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  const Vec q = Table1Query();
  auto stream = MakeStream(rels, AccessKind::kDistance, scoring, q, kTBPA);
  ASSERT_TRUE(stream.Open().ok());
  const auto expected = BruteForceTopK(rels, scoring, q, 8);
  for (size_t rank = 0; rank < 8; ++rank) {
    auto rc = stream.Next();
    ASSERT_TRUE(rc.has_value()) << "rank " << rank;
    EXPECT_NEAR(rc->score, expected[rank].score, 1e-9) << "rank " << rank;
  }
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_EQ(stream.emitted(), 8u);
}

TEST(StreamTest, MatchesBruteForceOnRandomInstancesAllPresets) {
  for (const auto& preset : {kCBRR, kCBPA, kTBRR, kTBPA}) {
    for (auto kind : {AccessKind::kDistance, AccessKind::kScore}) {
      SyntheticSpec spec;
      spec.dim = 2;
      spec.count = 25;
      spec.density = 25;
      spec.seed = 77;
      const auto rels = GenerateProblem(2, spec);
      const SumLogEuclideanScoring scoring(1, 1, 1);
      const Vec q(2, 0.0);
      auto stream = MakeStream(rels, kind, scoring, q, preset);
      ASSERT_TRUE(stream.Open().ok());
      const auto expected = BruteForceTopK(rels, scoring, q, 20);
      for (size_t rank = 0; rank < expected.size(); ++rank) {
        auto rc = stream.Next();
        ASSERT_TRUE(rc.has_value());
        EXPECT_NEAR(rc->score, expected[rank].score, 1e-9)
            << preset.name << " rank " << rank;
      }
    }
  }
}

TEST(StreamTest, LazinessConsumingFewerResultsReadsLess) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 300;
  spec.density = 50;
  spec.seed = 5;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);

  auto stream = MakeStream(rels, AccessKind::kDistance, scoring, q, kTBPA);
  ASSERT_TRUE(stream.Open().ok());
  ASSERT_TRUE(stream.Next().has_value());
  const size_t depth_after_1 = stream.SumDepths();
  for (int r = 0; r < 30; ++r) ASSERT_TRUE(stream.Next().has_value());
  const size_t depth_after_31 = stream.SumDepths();
  EXPECT_LT(depth_after_1, depth_after_31);
  EXPECT_LT(depth_after_31, 2 * rels[0].size());  // far from exhaustion
}

TEST(StreamTest, StreamDepthsMatchBatchRun) {
  // Consuming r results costs the same input as a batch run with K = r.
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 200;
  spec.density = 50;
  spec.seed = 9;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  const Vec q(2, 0.0);
  for (int r : {1, 5, 20}) {
    auto stream = MakeStream(rels, AccessKind::kDistance, scoring, q, kTBRR);
    ASSERT_TRUE(stream.Open().ok());
    for (int e = 0; e < r; ++e) ASSERT_TRUE(stream.Next().has_value());

    ProxRJOptions batch;
    batch.k = r;
    batch.Apply(kTBRR);
    ExecStats stats;
    ASSERT_TRUE(
        RunProxRJ(rels, AccessKind::kDistance, scoring, q, batch, &stats).ok());
    EXPECT_EQ(stream.SumDepths(), stats.sum_depths) << "r=" << r;
  }
}

TEST(StreamTest, EmptyRelationEmitsNothing) {
  Relation r1("R1", 1);
  r1.Add(0, 1.0, Vec{0.5});
  Relation r2("R2", 1);  // empty
  const SumLogEuclideanScoring scoring(1, 1, 1);
  auto stream =
      MakeStream({r1, r2}, AccessKind::kDistance, scoring, Vec{0.0}, kTBRR);
  ASSERT_TRUE(stream.Open().ok());
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(StreamTest, OpenValidates) {
  const SumLogCosineScoring cosine(1, 1, 1, Vec{1.0, 0.0});
  auto rels = Table1Relations();
  ProxRJStreamOptions opts;  // tight bound by default
  ProxRJStream stream(MakeSources(rels, AccessKind::kScore, Table1Query()),
                      &cosine, Table1Query(), opts);
  const Status st = stream.Open();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnimplemented);
}

TEST(StreamTest, OpenIsSingleShot) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  auto stream = MakeStream(rels, AccessKind::kDistance, scoring,
                           Table1Query(), kTBRR);
  ASSERT_TRUE(stream.Open().ok());
  EXPECT_EQ(stream.Open().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------- Trace --------------------------------- //

TEST(TraceTest, RecordsOneStepPerPull) {
  const auto rels = Table1Relations();
  const auto scoring = Table1Scoring();
  ExecTrace trace;
  ProxRJOptions opts;
  opts.k = 1;
  opts.Apply(kTBRR);
  opts.trace = &trace;
  ExecStats stats;
  ASSERT_TRUE(RunProxRJ(rels, AccessKind::kDistance, scoring, Table1Query(),
                        opts, &stats)
                  .ok());
  EXPECT_EQ(trace.size(), stats.sum_depths);
  for (const TraceStep& step : trace.steps) {
    EXPECT_GE(step.relation, 0);
    EXPECT_LT(step.relation, 3);
    EXPECT_GE(step.depth, 1u);
  }
}

TEST(TraceTest, BoundTrajectoryNeverRises) {
  // Pulling more input can only tighten (lower) a correct upper bound on
  // the unseen combinations -- for every scheme and access kind.
  for (const auto& preset : {kCBRR, kTBRR}) {
    for (auto kind : {AccessKind::kDistance, AccessKind::kScore}) {
      SyntheticSpec spec;
      spec.dim = 2;
      spec.count = 150;
      spec.density = 50;
      spec.seed = 31;
      const auto rels = GenerateProblem(2, spec);
      const SumLogEuclideanScoring scoring(1, 1, 1);
      ExecTrace trace;
      ProxRJOptions opts;
      opts.k = 10;
      opts.Apply(preset);
      opts.trace = &trace;
      ASSERT_TRUE(
          RunProxRJ(rels, kind, scoring, Vec(2, 0.0), opts, nullptr).ok());
      ASSERT_GT(trace.size(), 2u);
      for (size_t s = 1; s < trace.size(); ++s) {
        EXPECT_LE(trace.steps[s].bound, trace.steps[s - 1].bound + 1e-9)
            << preset.name << " step " << s;
      }
    }
  }
}

TEST(TraceTest, KthScoreNeverFallsAndCrossesBoundAtTermination) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 150;
  spec.density = 50;
  spec.seed = 32;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  ExecTrace trace;
  ProxRJOptions opts;
  opts.k = 10;
  opts.Apply(kTBPA);
  opts.trace = &trace;
  ExecStats stats;
  ASSERT_TRUE(RunProxRJ(rels, AccessKind::kDistance, scoring, Vec(2, 0.0),
                        opts, &stats)
                  .ok());
  for (size_t s = 1; s < trace.size(); ++s) {
    EXPECT_GE(trace.steps[s].kth_score, trace.steps[s - 1].kth_score - 1e-12);
  }
  // Terminated via the threshold test: at the last step the k-th score
  // reached the bound.
  ASSERT_TRUE(stats.completed);
  const TraceStep& last = trace.steps.back();
  EXPECT_GE(last.kth_score, last.bound - 1e-6);
  // And one step earlier it had not (otherwise we would have stopped).
  const TraceStep& prev = trace.steps[trace.size() - 2];
  EXPECT_LT(prev.kth_score, prev.bound - 1e-12);
}

TEST(TraceTest, TightBoundTrajectoryBelowCornerTrajectory) {
  // Replay the same pull sequence is not possible across strategies, but
  // under round-robin the pull sequence is identical until one of the two
  // terminates; compare the common prefix pointwise.
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 150;
  spec.density = 50;
  spec.seed = 33;
  const auto rels = GenerateProblem(2, spec);
  const SumLogEuclideanScoring scoring(1, 1, 1);
  ExecTrace corner_trace, tight_trace;
  for (auto [preset, trace] :
       {std::pair{kCBRR, &corner_trace}, std::pair{kTBRR, &tight_trace}}) {
    ProxRJOptions opts;
    opts.k = 10;
    opts.Apply(preset);
    opts.trace = trace;
    ASSERT_TRUE(
        RunProxRJ(rels, AccessKind::kDistance, scoring, Vec(2, 0.0), opts,
                  nullptr)
            .ok());
  }
  const size_t common = std::min(corner_trace.size(), tight_trace.size());
  ASSERT_GT(common, 0u);
  for (size_t s = 0; s < common; ++s) {
    EXPECT_EQ(corner_trace.steps[s].relation, tight_trace.steps[s].relation);
    EXPECT_LE(tight_trace.steps[s].bound, corner_trace.steps[s].bound + 1e-9);
  }
  // The tight bound run terminates no later (that is the whole point).
  EXPECT_LE(tight_trace.size(), corner_trace.size());
}

}  // namespace
}  // namespace prj
