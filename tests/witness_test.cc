// Tests for the LP dual/witness extraction used by the dominance witness
// cache, and for the witness-screening fast path of PartialIsDominated.
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/dominance.h"
#include "solver/lp.h"

namespace prj {
namespace {

TEST(LpDualsTest, DualsReturnedAtOptimality) {
  // min -x1 - 2x2 s.t. x1 + x2 + s = 4: dual of the single row is -2
  // (the objective improves by 2 per unit of b).
  Matrix a(1, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 1.0;
  a(0, 2) = 1.0;
  const LpResult r = SolveStandardForm(a, {4.0}, {-1.0, -2.0, 0.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  ASSERT_EQ(r.duals.size(), 1u);
  EXPECT_NEAR(r.duals[0], -2.0, 1e-9);
}

TEST(LpDualsTest, DualFeasibilityOnRandomProblems) {
  // At optimality the reduced costs c_j - y^T A_j must be >= 0 for every
  // column (weak duality certificate).
  Rng rng(61);
  for (int trial = 0; trial < 60; ++trial) {
    const int rows = 1 + static_cast<int>(rng.NextBounded(4));
    const int cols = rows + 1 + static_cast<int>(rng.NextBounded(8));
    Matrix a(rows, cols);
    std::vector<double> c(static_cast<size_t>(cols));
    for (int j = 0; j < cols; ++j) {
      c[static_cast<size_t>(j)] = rng.Uniform(0.1, 2.0);  // bounded LP
      for (int r = 0; r < rows; ++r) a(r, j) = rng.Uniform(0.0, 1.0);
    }
    std::vector<double> b(static_cast<size_t>(rows));
    for (double& v : b) v = rng.Uniform(0.5, 2.0);
    const LpResult res = SolveStandardForm(a, b, c);
    if (res.status != LpStatus::kOptimal) continue;
    for (int j = 0; j < cols; ++j) {
      double red = c[static_cast<size_t>(j)];
      for (int r = 0; r < rows; ++r) {
        red -= res.duals[static_cast<size_t>(r)] * a(r, j);
      }
      EXPECT_GE(red, -1e-6) << "trial " << trial << " col " << j;
    }
    // Strong duality: y^T b == objective.
    double dual_obj = 0.0;
    for (int r = 0; r < rows; ++r) {
      dual_obj += res.duals[static_cast<size_t>(r)] * b[static_cast<size_t>(r)];
    }
    EXPECT_NEAR(dual_obj, res.objective, 1e-6);
  }
}

TEST(WitnessTest, WitnessSatisfiesAllConstraints) {
  Rng rng(62);
  int nonempty = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(3));
    const int u = 2 + static_cast<int>(rng.NextBounded(12));
    Matrix g(u, d);
    std::vector<double> h(static_cast<size_t>(u));
    for (int r = 0; r < u; ++r) {
      for (int c = 0; c < d; ++c) g(r, c) = rng.Uniform(-1, 1);
      h[static_cast<size_t>(r)] = rng.Uniform(-0.4, 0.8);
    }
    std::vector<double> witness;
    if (PolyhedronIsEmpty(g, h, &witness)) continue;
    ++nonempty;
    ASSERT_EQ(witness.size(), static_cast<size_t>(d));
    for (int r = 0; r < u; ++r) {
      double dot = 0.0;
      for (int c = 0; c < d; ++c) {
        dot += g(r, c) * witness[static_cast<size_t>(c)];
      }
      EXPECT_LE(dot, h[static_cast<size_t>(r)] + 1e-6)
          << "trial " << trial << " row " << r;
    }
  }
  EXPECT_GT(nonempty, 30);  // the draw actually exercises the witness path
}

TEST(WitnessTest, WitnessIsTheMaxMarginPoint) {
  // Box -1 <= x <= 1 in 1-D: the deepest point is 0 with margin 1.
  Matrix g(2, 1);
  g(0, 0) = 1.0;   // x <= 1
  g(1, 0) = -1.0;  // -x <= 1
  std::vector<double> witness;
  ASSERT_FALSE(PolyhedronIsEmpty(g, {1.0, 1.0}, &witness));
  EXPECT_NEAR(witness[0], 0.0, 1e-9);
}

TEST(WitnessScreenTest, CachedWitnessSkipsTheLp) {
  // alpha's region is y <= 0 (vs beta with a larger centroid). With a
  // valid cached witness no LP may run.
  std::vector<DominanceEntry> entries = {{Vec{-1.0}, 0.0}, {Vec{1.0}, 0.0}};
  std::vector<bool> active = {true, true};
  uint64_t lp = 0;
  Vec witness{-5.0};  // deep inside alpha's half-plane
  EXPECT_FALSE(PartialIsDominated(0, entries, active, -0.5, &lp, &witness));
  EXPECT_EQ(lp, 0u);
}

TEST(WitnessScreenTest, StaleWitnessFallsBackToTheLp) {
  // The cached witness lies outside the region after a new beta arrives;
  // the LP must run and refresh it.
  std::vector<DominanceEntry> entries = {{Vec{-1.0}, 0.0}, {Vec{1.0}, 0.0}};
  std::vector<bool> active = {true, true};
  uint64_t lp = 0;
  Vec witness{+5.0};  // on beta's side: stale
  EXPECT_FALSE(PartialIsDominated(0, entries, active, -0.5, &lp, &witness));
  EXPECT_EQ(lp, 1u);
  // The refreshed witness is valid: re-running skips the LP.
  EXPECT_FALSE(PartialIsDominated(0, entries, active, -0.5, &lp, &witness));
  EXPECT_EQ(lp, 1u);
}

TEST(WitnessScreenTest, DominatedDespiteWitnessAttempt) {
  std::vector<DominanceEntry> entries = {{Vec{0.5}, -1.0},  // strictly worse
                                         {Vec{0.5}, 0.0}};
  std::vector<bool> active = {true, true};
  uint64_t lp = 0;
  Vec witness{0.0};
  EXPECT_TRUE(PartialIsDominated(0, entries, active, -0.5, &lp, &witness));
  EXPECT_EQ(lp, 1u);
}

TEST(WitnessScreenTest, ResultsIdenticalWithAndWithoutWitnesses) {
  Rng rng(63);
  for (int trial = 0; trial < 60; ++trial) {
    const int d = 1 + static_cast<int>(rng.NextBounded(3));
    const size_t count = 3 + rng.NextBounded(8);
    std::vector<DominanceEntry> entries;
    for (size_t i = 0; i < count; ++i) {
      entries.push_back(DominanceEntry{rng.UniformInCube(d, -2, 2),
                                       rng.Uniform(-2, 2)});
    }
    std::vector<bool> active(count, true);
    const double b_scale = -rng.Uniform(0.2, 1.5);
    for (size_t a = 0; a < count; ++a) {
      uint64_t lp1 = 0, lp2 = 0;
      Vec witness;
      const bool with = PartialIsDominated(a, entries, active, b_scale, &lp1,
                                           &witness);
      const bool without =
          PartialIsDominated(a, entries, active, b_scale, &lp2, nullptr);
      EXPECT_EQ(with, without) << "trial " << trial << " partial " << a;
    }
  }
}

}  // namespace
}  // namespace prj
