// The query-result cache stack: canonical request key semantics (the one
// request-identity notion), the sharded-lock LRU QueryCache in isolation,
// and the CachedEngine decorator -- hit path bit-identical to recompute,
// counters, eviction, bypass rules, and composition over ShardedEngine.
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cached_engine.h"
#include "cache/query_cache.h"
#include "common/random.h"
#include "core/engine.h"
#include "core/query_engine.h"
#include "core/trace.h"
#include "result_matchers.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

std::vector<Relation> MakeRelations(int n, int count, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = seed;
  return GenerateProblem(n, spec);
}

// ------------------------- canonical request key ------------------------ //

TEST(CanonicalRequestKeyTest, EqualRequestsShareKeyAndFingerprint) {
  QueryRequest a;
  a.query = Vec{0.25, -1.5};
  a.options.k = 7;
  a.options.Apply(kTBPA);
  QueryRequest b = a;
  EXPECT_TRUE(CanonicalRequestEqual(a, b));
  EXPECT_TRUE(CanonicalOptionsEqual(a.options, b.options));
  EXPECT_EQ(CanonicalRequestKey(a), CanonicalRequestKey(b));
  EXPECT_EQ(RequestFingerprint(a), RequestFingerprint(b));
}

TEST(CanonicalRequestKeyTest, EveryResultRelevantFieldSeparatesKeys) {
  QueryRequest base;
  base.query = Vec{0.5, 0.5};
  base.options.k = 5;

  auto differs = [&](auto mutate) {
    QueryRequest other = base;
    mutate(other);
    return !CanonicalRequestEqual(base, other);
  };

  EXPECT_TRUE(differs([](QueryRequest& r) { r.query = Vec{0.5, 0.25}; }));
  EXPECT_TRUE(differs([](QueryRequest& r) { r.query = Vec{0.5}; }));
  EXPECT_TRUE(differs([](QueryRequest& r) { r.options.k = 6; }));
  EXPECT_TRUE(differs([](QueryRequest& r) {
    r.options.bound = BoundKind::kCorner;
  }));
  EXPECT_TRUE(differs([](QueryRequest& r) {
    r.options.pull = PullKind::kRoundRobin;
  }));
  EXPECT_TRUE(differs([](QueryRequest& r) { r.options.dominance_period = 2; }));
  EXPECT_TRUE(differs([](QueryRequest& r) {
    r.options.bound_update_period = 3;
  }));
  EXPECT_TRUE(
      differs([](QueryRequest& r) { r.options.use_generic_qp = true; }));
  EXPECT_TRUE(differs([](QueryRequest& r) { r.options.max_pulls = 100; }));
  EXPECT_TRUE(differs([](QueryRequest& r) {
    r.options.time_budget_seconds = 1.0;
  }));
  EXPECT_TRUE(differs([](QueryRequest& r) { r.options.epsilon = 1e-6; }));
}

TEST(CanonicalRequestKeyTest, IgnoresTraceAndBackendAndNegativeZero) {
  QueryRequest base;
  base.query = Vec{0.0, 1.0};
  base.options.k = 3;

  // The access-path implementation and the trace observer do not change
  // the answer; canonically equal.
  QueryRequest backend = base;
  backend.options.backend = SourceBackend::kRTree;
  EXPECT_TRUE(CanonicalRequestEqual(base, backend));

  ExecTrace trace;
  QueryRequest traced = base;
  traced.options.trace = &trace;
  EXPECT_TRUE(CanonicalRequestEqual(base, traced));

  // The planner's execution hints pick among bit-identical plans, so a
  // planned request and an unplanned one share cache entries.
  QueryRequest hinted = base;
  hinted.options.scatter_hint = 4;
  hinted.options.prune_hint = -1;
  EXPECT_TRUE(CanonicalRequestEqual(base, hinted));
  EXPECT_EQ(CanonicalRequestKey(base), CanonicalRequestKey(hinted));

  // -0.0 == 0.0 and produces the identical execution: one key.
  QueryRequest negzero = base;
  negzero.query = Vec{-0.0, 1.0};
  EXPECT_TRUE(CanonicalRequestEqual(base, negzero));
  negzero.options.time_budget_seconds = -0.0;
  EXPECT_TRUE(CanonicalRequestEqual(base, negzero));
}

TEST(CanonicalRequestKeyTest, DataEpochSeparatesKeys) {
  const Vec q{0.5, 0.5};
  ProxRJOptions options;
  options.k = 5;
  // Epoch 0 is the implicit default: static engines keep their old keys.
  EXPECT_EQ(CanonicalRequestKey(q, options), CanonicalRequestKey(q, options, 0));
  // The same request against different content must not share an entry.
  EXPECT_NE(CanonicalRequestKey(q, options, 1), CanonicalRequestKey(q, options, 2));
  EXPECT_NE(CanonicalRequestKey(q, options, 0), CanonicalRequestKey(q, options, 1));
}

// ------------------------------ QueryCache ------------------------------ //

std::shared_ptr<const QueryCache::Entry> MakeEntry(double score) {
  auto entry = std::make_shared<QueryCache::Entry>();
  ResultCombination rc;
  rc.score = score;
  entry->combinations.push_back(rc);
  return entry;
}

TEST(QueryCacheTest, LookupMissThenInsertThenHit) {
  QueryCache cache(QueryCacheOptions{4, 1});
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);
  cache.Insert("a", 1, MakeEntry(1.0));
  auto hit = cache.Lookup("a", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->combinations.front().score, 1.0);
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(QueryCacheTest, EvictsLeastRecentlyUsed) {
  QueryCache cache(QueryCacheOptions{2, 1});
  cache.Insert("a", 1, MakeEntry(1.0));
  cache.Insert("b", 2, MakeEntry(2.0));
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  ASSERT_NE(cache.Lookup("a", 1), nullptr);
  cache.Insert("c", 3, MakeEntry(3.0));
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.Lookup("b", 2), nullptr);
  EXPECT_NE(cache.Lookup("c", 3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(QueryCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  QueryCache cache(QueryCacheOptions{2, 1});
  cache.Insert("a", 1, MakeEntry(1.0));
  cache.Insert("a", 1, MakeEntry(9.0));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup("a", 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->combinations.front().score, 9.0);
}

TEST(QueryCacheTest, CapacityClampsAndSpreadsAcrossLockShards) {
  // capacity 3 over 8 requested shards: clamped to 3 shards of 1.
  QueryCache cache(QueryCacheOptions{3, 8});
  EXPECT_EQ(cache.capacity(), 3u);
  EXPECT_EQ(cache.lock_shards(), 3u);
  // Zero capacity is clamped to one entry.
  QueryCache tiny(QueryCacheOptions{0, 0});
  EXPECT_EQ(tiny.capacity(), 1u);
  EXPECT_EQ(tiny.lock_shards(), 1u);
  tiny.Insert("a", 1, MakeEntry(1.0));
  tiny.Insert("b", 1, MakeEntry(2.0));
  EXPECT_EQ(tiny.size(), 1u);
}

std::shared_ptr<const QueryCache::Entry> MakeWideEntry(size_t combos,
                                                       size_t members) {
  auto entry = std::make_shared<QueryCache::Entry>();
  for (size_t c = 0; c < combos; ++c) {
    ResultCombination rc;
    rc.score = static_cast<double>(c);
    rc.tuples.resize(members);
    entry->combinations.push_back(std::move(rc));
  }
  return entry;
}

TEST(QueryCacheBytesTest, ApproxBytesTracksInsertsRefreshesAndEvictions) {
  QueryCacheOptions options;
  options.capacity = 64;
  options.lock_shards = 1;
  options.byte_budget = 0;  // isolate the accounting from the budget
  QueryCache cache(options);
  EXPECT_EQ(cache.ApproxBytes(), 0u);

  auto small = MakeWideEntry(1, 2);
  auto big = MakeWideEntry(20, 4);
  const size_t small_bytes = QueryCache::ApproxEntryBytes("a", *small);
  const size_t big_bytes = QueryCache::ApproxEntryBytes("b", *big);
  EXPECT_GT(big_bytes, small_bytes);

  cache.Insert("a", 1, small);
  EXPECT_EQ(cache.ApproxBytes(), small_bytes);
  cache.Insert("b", 2, big);
  EXPECT_EQ(cache.ApproxBytes(), small_bytes + big_bytes);

  // A refresh re-charges the entry at its new size, not additively.
  cache.Insert("a", 1, MakeWideEntry(20, 4));
  EXPECT_EQ(cache.ApproxBytes(),
            QueryCache::ApproxEntryBytes("a", *big) + big_bytes);
}

TEST(QueryCacheBytesTest, ByteBudgetEvictsOldestEvenUnderEntryCapacity) {
  auto entry = MakeWideEntry(10, 3);
  const size_t entry_bytes = QueryCache::ApproxEntryBytes("0", *entry);
  QueryCacheOptions options;
  options.capacity = 100;  // entry count never binds in this test
  options.lock_shards = 1;
  options.byte_budget = 3 * entry_bytes;
  QueryCache cache(options);

  for (int i = 0; i < 8; ++i) {
    cache.Insert(std::to_string(i), 1, MakeWideEntry(10, 3));
    EXPECT_LE(cache.ApproxBytes(), cache.byte_budget());
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.counters().evictions, 5u);
  // The survivors are the most recent inserts; the oldest were evicted.
  EXPECT_EQ(cache.Lookup("0", 1), nullptr);
  EXPECT_NE(cache.Lookup("7", 1), nullptr);
}

TEST(QueryCacheBytesTest, EntryLargerThanTheBudgetIsRefusedOutright) {
  QueryCacheOptions options;
  options.capacity = 8;
  options.lock_shards = 1;
  options.byte_budget = 1;  // nothing real fits
  QueryCache cache(options);
  cache.Insert("huge", 1, MakeWideEntry(50, 4));
  // The cache never holds more than the budget -- the oversized entry was
  // evicted on the spot (and counted), not silently kept.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.ApproxBytes(), 0u);
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(QueryCacheBytesTest, ZeroBudgetDisablesByteAccountingOnly) {
  QueryCacheOptions options;
  options.capacity = 2;
  options.lock_shards = 1;
  options.byte_budget = 0;
  QueryCache cache(options);
  for (int i = 0; i < 5; ++i) {
    cache.Insert(std::to_string(i), 1, MakeWideEntry(50, 4));
  }
  // Entry capacity still binds; bytes are tracked but unbounded.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_GT(cache.ApproxBytes(), 0u);
}

// ----------------------------- CachedEngine ----------------------------- //

class CachedEngineTest : public ::testing::Test {
 protected:
  CachedEngineTest()
      : relations_(MakeRelations(2, 60, /*seed=*/17)),
        scoring_(1.0, 1.0, 1.0),
        engine_(Engine::Create(relations_, AccessKind::kDistance, &scoring_)) {
    EXPECT_TRUE(engine_.ok()) << engine_.status().ToString();
  }

  QueryRequest Request(double x, double y, int k) const {
    QueryRequest req;
    req.query = Vec{x, y};
    req.options.k = k;
    req.options.Apply(kTBPA);
    return req;
  }

  std::vector<Relation> relations_;
  SumLogEuclideanScoring scoring_;
  Result<Engine> engine_;
};

TEST_F(CachedEngineTest, HitPathIsBitIdenticalAndCostsNothing) {
  CachedEngine cached(&*engine_);
  const QueryRequest req = Request(0.3, -0.2, 6);

  ExecStats cold_stats;
  auto cold = cached.TopK(req.query, req.options, &cold_stats);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold_stats.sum_depths, 0u);

  ExecStats hit_stats;
  hit_stats.sum_depths = 999;  // dirty: the hit must reset it
  auto hit = cached.TopK(req.query, req.options, &hit_stats);
  ASSERT_TRUE(hit.ok());
  ExpectBitIdentical(*hit, *cold, "hit vs cold");
  // A hit performs no pulls: zero cost, complete, so aggregate accounting
  // (e.g. ServerStats::sum_depths) stays truthful under caching.
  EXPECT_EQ(hit_stats.sum_depths, 0u);
  EXPECT_EQ(hit_stats.depths, (std::vector<size_t>{0, 0}));
  EXPECT_TRUE(hit_stats.completed);

  // And both match the undecorated engine exactly.
  auto direct = engine_->TopK(req.query, req.options);
  ASSERT_TRUE(direct.ok());
  ExpectBitIdentical(*hit, *direct, "hit vs direct");

  const CacheCounters c = cached.cache_counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
}

TEST_F(CachedEngineTest, DistinctRequestsDoNotCollide) {
  CachedEngine cached(&*engine_);
  const QueryRequest a = Request(0.1, 0.1, 4);
  QueryRequest b = a;
  b.options.k = 5;

  auto ra = cached.TopK(a.query, a.options);
  auto rb = cached.TopK(b.query, b.options);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->size(), 4u);
  EXPECT_EQ(rb->size(), 5u);
  EXPECT_EQ(cached.cache_counters().misses, 2u);
}

TEST_F(CachedEngineTest, EvictionsAreCountedAndEvictedEntriesRecompute) {
  QueryCacheOptions small;
  small.capacity = 2;
  small.lock_shards = 1;
  CachedEngine cached(&*engine_, small);
  for (int i = 0; i < 4; ++i) {
    const QueryRequest req = Request(0.1 * i, 0.0, 3);
    ASSERT_TRUE(cached.TopK(req.query, req.options).ok());
  }
  const CacheCounters c = cached.cache_counters();
  EXPECT_EQ(c.misses, 4u);
  EXPECT_EQ(c.evictions, 2u);
  EXPECT_EQ(cached.cache().size(), 2u);

  // An evicted request recomputes (miss), and is bit-identical again.
  const QueryRequest victim = Request(0.0, 0.0, 3);
  auto again = cached.TopK(victim.query, victim.options);
  ASSERT_TRUE(again.ok());
  auto direct = engine_->TopK(victim.query, victim.options);
  ASSERT_TRUE(direct.ok());
  ExpectBitIdentical(*again, *direct, "evicted recompute");
  EXPECT_EQ(cached.cache_counters().misses, 5u);
}

TEST_F(CachedEngineTest, FailuresAndTracedQueriesBypassTheCache) {
  CachedEngine cached(&*engine_);

  QueryRequest bad = Request(0.0, 0.0, 0);  // invalid k
  EXPECT_FALSE(cached.TopK(bad.query, bad.options).ok());
  EXPECT_FALSE(cached.TopK(bad.query, bad.options).ok());
  // Both lookups missed, nothing was stored.
  EXPECT_EQ(cached.cache_counters().misses, 2u);
  EXPECT_EQ(cached.cache().size(), 0u);

  // Traced queries never touch the cache: the observer must see the run.
  ExecTrace trace;
  QueryRequest traced = Request(0.2, 0.2, 3);
  traced.options.trace = &trace;
  ASSERT_TRUE(cached.TopK(traced.query, traced.options).ok());
  EXPECT_GT(trace.steps.size(), 0u);
  EXPECT_EQ(cached.cache_counters().misses, 2u);  // unchanged
  EXPECT_EQ(cached.cache().size(), 0u);

  trace.steps.clear();
  ASSERT_TRUE(cached.TopK(traced.query, traced.options).ok());
  EXPECT_GT(trace.steps.size(), 0u);  // traced again, not replayed
}

TEST_F(CachedEngineTest, ComposesOverShardedEngineAndForwardsMetadata) {
  ShardedEngineOptions sh_opts;
  sh_opts.partitions_per_relation = 2;
  auto sharded = ShardedEngine::Create(relations_, AccessKind::kDistance,
                                       &scoring_, sh_opts);
  ASSERT_TRUE(sharded.ok());
  CachedEngine cached(&*sharded);

  EXPECT_EQ(cached.kind(), AccessKind::kDistance);
  EXPECT_EQ(cached.dim(), 2);
  EXPECT_EQ(cached.num_relations(), 2u);
  EXPECT_EQ(cached.fan_out(), 4u);  // forwarded through the decorator

  const QueryRequest req = Request(-0.4, 0.6, 5);
  auto cold = cached.TopK(req.query, req.options);
  auto warm = cached.TopK(req.query, req.options);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  ExpectBitIdentical(*warm, *cold, "cached sharded");

  auto unsharded = engine_->TopK(req.query, req.options);
  ASSERT_TRUE(unsharded.ok());
  ExpectBitIdentical(*warm, *unsharded, "cached sharded vs engine");
  EXPECT_EQ(cached.cache_counters().hits, 1u);
}

TEST_F(CachedEngineTest, ConcurrentMixedHitsAndMissesStayExact) {
  CachedEngine cached(&*engine_);
  constexpr int kThreads = 4;
  constexpr int kIters = 24;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(500 + t % 2);  // thread pairs share queries: hits guaranteed
      for (int i = 0; i < kIters; ++i) {
        QueryRequest req;
        req.query = rng.UniformInCube(2, -1.0, 1.0);
        req.options.k = 1 + i % 5;
        auto got = cached.TopK(req.query, req.options);
        auto want = engine_->TopK(req.query, req.options);
        if (!got.ok() || !want.ok() || got->size() != want->size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t r = 0; r < want->size(); ++r) {
          if ((*got)[r].score != (*want)[r].score) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const CacheCounters c = cached.cache_counters();
  EXPECT_EQ(c.hits + c.misses,
            static_cast<uint64_t>(kThreads * kIters));
  EXPECT_GT(c.hits, 0u);
}

}  // namespace
}  // namespace prj
