// Contract-violation (death) tests: programmer errors abort with a clear
// message instead of corrupting state, per the PRJ_CHECK discipline.
#include <gtest/gtest.h>

#include "access/source.h"
#include "common/vec.h"
#include "core/scoring.h"
#include "core/topk.h"
#include "index/rtree.h"
#include "solver/waterfill.h"

namespace prj {
namespace {

using DeathTest = ::testing::Test;

TEST(VecDeathTest, DimensionOverflowAborts) {
  EXPECT_DEATH(Vec v(kMaxDim + 1), "dim");
}

TEST(VecDeathTest, NormalizingZeroVectorAborts) {
  EXPECT_DEATH(Vec(3).Normalized(), "normalize");
}

TEST(VecDeathTest, BasisOutOfRangeAborts) {
  EXPECT_DEATH(Vec::Basis(2, 5), "axis");
}

TEST(ScoringDeathTest, NegativeWeightsAbort) {
  EXPECT_DEATH(SumLogEuclideanScoring(-1.0, 1.0, 1.0), "ws");
}

TEST(TopKDeathTest, ZeroKAborts) { EXPECT_DEATH(TopKBuffer buf(0), "k"); }

TEST(WaterfillDeathTest, BadSubsetSizeAborts) {
  WaterfillProblem p;
  p.n = 2;
  p.m = 2;  // m must be < n
  EXPECT_DEATH(SolveWaterfill(p), "m=");
}

TEST(WaterfillDeathTest, NegativeDeltaAborts) {
  WaterfillProblem p;
  p.n = 2;
  p.m = 0;
  p.deltas = {0.5, -0.1};
  EXPECT_DEATH(SolveWaterfill(p), "check failed");
}

TEST(RTreeDeathTest, WrongDimensionInsertAborts) {
  RTree tree(2);
  EXPECT_DEATH(tree.Insert(Vec{1.0, 2.0, 3.0}, 0), "dim");
}

TEST(RTreeDeathTest, TinyFanoutAborts) {
  EXPECT_DEATH(RTree tree(2, 2), "max_entries");
}

TEST(SourceDeathTest, QueryDimensionMismatchAborts) {
  Relation r("R", 2);
  r.Add(0, 0.5, Vec{1.0, 1.0});
  EXPECT_DEATH(SortedDistanceSource src(r, Vec{1.0}), "dim");
}

}  // namespace
}  // namespace prj
