// Tests for the access layer: relation validation, the ordering guarantees
// of Definition 2.1 for every source type, depth accounting, the blocked
// (paged) decorator, and CSV persistence.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "access/relation.h"
#include "access/source.h"
#include "common/random.h"
#include "core/engine.h"
#include "workload/csv.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

Relation SmallRelation() {
  Relation r("R", 2);
  r.Add(0, 0.9, Vec{3.0, 0.0});
  r.Add(1, 0.5, Vec{1.0, 0.0});
  r.Add(2, 0.7, Vec{2.0, 0.0});
  return r;
}

TEST(RelationTest, ValidatePassesOnGoodData) {
  EXPECT_TRUE(SmallRelation().Validate().ok());
}

TEST(RelationTest, ValidateCatchesDimMismatch) {
  Relation r("R", 2);
  r.Add(0, 0.5, Vec{1.0});
  const Status st = r.Validate();
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, ValidateCatchesNonPositiveScore) {
  Relation r("R", 1);
  r.Add(0, 0.0, Vec{1.0});
  EXPECT_FALSE(r.Validate().ok());
}

TEST(RelationTest, ValidateCatchesScoreAboveCeiling) {
  Relation r("R", 1, /*sigma_max=*/0.5);
  r.Add(0, 0.9, Vec{1.0});
  EXPECT_FALSE(r.Validate().ok());
}

TEST(RelationTest, ValidateCatchesDuplicateIds) {
  Relation r("R", 1);
  r.Add(7, 0.5, Vec{1.0});
  r.Add(7, 0.6, Vec{2.0});
  EXPECT_FALSE(r.Validate().ok());
}

TEST(SortedDistanceSourceTest, StreamsInDistanceOrder) {
  SortedDistanceSource src(SmallRelation(), Vec{0.0, 0.0});
  EXPECT_EQ(src.kind(), AccessKind::kDistance);
  EXPECT_EQ(src.depth(), 0u);
  EXPECT_EQ(src.Next()->id, 1);
  EXPECT_EQ(src.Next()->id, 2);
  EXPECT_EQ(src.Next()->id, 0);
  EXPECT_EQ(src.depth(), 3u);
  EXPECT_FALSE(src.Next().has_value());
  EXPECT_EQ(src.depth(), 3u);  // exhausted pulls do not count
}

TEST(SortedDistanceSourceTest, QueryPositionMatters) {
  SortedDistanceSource src(SmallRelation(), Vec{3.0, 0.0});
  EXPECT_EQ(src.Next()->id, 0);
  EXPECT_EQ(src.Next()->id, 2);
  EXPECT_EQ(src.Next()->id, 1);
}

TEST(SortedDistanceSourceTest, DistanceTiesBrokenById) {
  Relation r("R", 1);
  r.Add(5, 0.5, Vec{1.0});
  r.Add(2, 0.6, Vec{-1.0});  // same distance from 0
  SortedDistanceSource src(r, Vec{0.0});
  EXPECT_EQ(src.Next()->id, 2);
  EXPECT_EQ(src.Next()->id, 5);
}

TEST(ScoreSourceTest, StreamsInScoreOrder) {
  ScoreSource src(SmallRelation());
  EXPECT_EQ(src.kind(), AccessKind::kScore);
  EXPECT_EQ(src.Next()->id, 0);  // 0.9
  EXPECT_EQ(src.Next()->id, 2);  // 0.7
  EXPECT_EQ(src.Next()->id, 1);  // 0.5
  EXPECT_FALSE(src.Next().has_value());
}

TEST(ScoreSourceTest, ScoreTiesBrokenById) {
  Relation r("R", 1);
  r.Add(9, 0.5, Vec{1.0});
  r.Add(3, 0.5, Vec{2.0});
  ScoreSource src(r);
  EXPECT_EQ(src.Next()->id, 3);
  EXPECT_EQ(src.Next()->id, 9);
}

TEST(RTreeDistanceSourceTest, MatchesSortedSourceStream) {
  SyntheticSpec spec;
  spec.dim = 3;
  spec.count = 200;
  spec.density = 30;
  spec.seed = 44;
  const Relation rel = GenerateUniformRelation(spec, "R");
  const Vec q{0.1, -0.2, 0.3};
  SortedDistanceSource sorted(rel, q);
  RTreeDistanceSource rtree(rel, q);
  EXPECT_EQ(rtree.dim(), 3);
  for (int i = 0; i < 200; ++i) {
    auto a = sorted.Next();
    auto b = rtree.Next();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    // Ties may differ in id order between the two implementations, but the
    // distance sequence is identical.
    EXPECT_NEAR(a->x.Distance(q), b->x.Distance(q), 1e-12) << "pos " << i;
  }
  EXPECT_FALSE(sorted.Next().has_value());
  EXPECT_FALSE(rtree.Next().has_value());
}

TEST(SharedIndexSourceTest, ManyQueriesOverOneIndex) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 300;
  spec.density = 50;
  spec.seed = 46;
  const Relation rel = GenerateUniformRelation(spec, "R");
  const auto index = IndexedRelation::Build(rel);
  Rng rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    const Vec q = rng.UniformInCube(2, -1, 1);
    SharedIndexDistanceSource shared(index, q);
    SortedDistanceSource sorted(rel, q);
    for (int i = 0; i < 50; ++i) {
      auto a = shared.Next();
      auto b = sorted.Next();
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_NEAR(a->x.Distance(q), b->x.Distance(q), 1e-12);
    }
    EXPECT_EQ(shared.depth(), 50u);
  }
}

TEST(SharedIndexSourceTest, WorksInsideTheEngine) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = 120;
  spec.density = 60;
  spec.seed = 48;
  const auto rels = GenerateProblem(2, spec);
  std::vector<std::shared_ptr<const IndexedRelation>> indexes;
  for (const auto& r : rels) indexes.push_back(IndexedRelation::Build(r));
  const SumLogEuclideanScoring scoring(1, 1, 1);
  Rng rng(49);
  for (int trial = 0; trial < 3; ++trial) {
    const Vec q = rng.UniformInCube(2, -0.5, 0.5);
    std::vector<std::unique_ptr<AccessSource>> sources;
    for (const auto& idx : indexes) {
      sources.push_back(std::make_unique<SharedIndexDistanceSource>(idx, q));
    }
    ProxRJOptions opts;
    opts.k = 5;
    opts.Apply(kTBPA);
    ProxRJ op(std::move(sources), &scoring, q, opts);
    auto via_index = op.Run();
    ASSERT_TRUE(via_index.ok());

    ExecStats plain_stats;
    auto plain = RunProxRJ(rels, AccessKind::kDistance, scoring, q, opts,
                           &plain_stats);
    ASSERT_TRUE(plain.ok());
    ASSERT_EQ(via_index->size(), plain->size());
    for (size_t i = 0; i < plain->size(); ++i) {
      EXPECT_NEAR((*via_index)[i].score, (*plain)[i].score, 1e-9);
    }
    EXPECT_EQ(op.stats().sum_depths, plain_stats.sum_depths);
  }
}

TEST(BlockedSourceTest, DeliversSameStreamInBlocks) {
  const Relation rel = SmallRelation();
  BlockedSource blocked(std::make_unique<ScoreSource>(rel), 2);
  ScoreSource plain(rel);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(blocked.Next()->id, plain.Next()->id);
  }
  EXPECT_FALSE(blocked.Next().has_value());
}

TEST(BlockedSourceTest, DepthCountsWholeBlocks) {
  const Relation rel = SmallRelation();
  BlockedSource blocked(std::make_unique<ScoreSource>(rel), 2);
  EXPECT_EQ(blocked.depth(), 0u);
  blocked.Next();
  // One consumed, but the page fetched two from the service.
  EXPECT_EQ(blocked.depth(), 2u);
  blocked.Next();
  EXPECT_EQ(blocked.depth(), 2u);
  blocked.Next();
  EXPECT_EQ(blocked.depth(), 3u);  // second (short) page
}

TEST(MakeSourcesTest, BuildsOnePerRelation) {
  SyntheticSpec spec;
  spec.count = 10;
  spec.seed = 1;
  const auto rels = GenerateProblem(3, spec);
  const auto sources = MakeSources(rels, AccessKind::kScore, Vec(2, 0.0));
  ASSERT_EQ(sources.size(), 3u);
  for (const auto& s : sources) EXPECT_EQ(s->kind(), AccessKind::kScore);
}

// --------------------------------- CSV --------------------------------- //

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("prj_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTripPreservesEverything) {
  SyntheticSpec spec;
  spec.dim = 4;
  spec.count = 60;
  spec.seed = 9;
  const Relation rel = GenerateUniformRelation(spec, "R");
  ASSERT_TRUE(SaveRelationCsv(rel, path()).ok());
  auto loaded = LoadRelationCsv(path(), "R");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), rel.size());
  EXPECT_EQ(loaded->dim(), 4);
  for (size_t i = 0; i < rel.size(); ++i) {
    EXPECT_EQ(loaded->tuple(i).id, rel.tuple(i).id);
    EXPECT_DOUBLE_EQ(loaded->tuple(i).score, rel.tuple(i).score);
    EXPECT_TRUE(loaded->tuple(i).x.ApproxEquals(rel.tuple(i).x, 0.0));
  }
}

TEST_F(CsvTest, MissingFileIsIOError) {
  auto loaded = LoadRelationCsv("/nonexistent/file.csv", "R");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, BadHeaderRejected) {
  {
    std::FILE* f = std::fopen(path().c_str(), "w");
    std::fputs("foo,bar,x0\n", f);
    std::fclose(f);
  }
  auto loaded = LoadRelationCsv(path(), "R");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, BadFieldCountRejectedWithLineNumber) {
  {
    std::FILE* f = std::fopen(path().c_str(), "w");
    std::fputs("id,score,x0\n1,0.5,1.0\n2,0.5\n", f);
    std::fclose(f);
  }
  auto loaded = LoadRelationCsv(path(), "R");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 3"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CsvTest, NonNumericFieldRejected) {
  {
    std::FILE* f = std::fopen(path().c_str(), "w");
    std::fputs("id,score,x0\n1,abc,1.0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadRelationCsv(path(), "R").ok());
}

TEST_F(CsvTest, LoadedRelationIsValidated) {
  {
    std::FILE* f = std::fopen(path().c_str(), "w");
    std::fputs("id,score,x0\n1,0.5,1.0\n1,0.6,2.0\n", f);  // duplicate id
    std::fclose(f);
  }
  EXPECT_FALSE(LoadRelationCsv(path(), "R").ok());
}

}  // namespace
}  // namespace prj
