// Cursor-resume exactness property suite for the Any-K streaming path:
// every prefix of Next() pulls is bit-identical to a one-shot TopK of the
// same length, across presets x backends x engine compositions
// (monolithic / sharded / live / cached), with pause/resume exercised at
// adversarial points -- mid-tie, across a concurrent Apply, and after a
// cursor-cache eviction. Plus the QueryCache stampede guard (suite name
// contains "Stampede"; CI runs Cursor|Stampede suites under TSan).
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/cached_engine.h"
#include "common/random.h"
#include "core/brute_force.h"
#include "core/engine.h"
#include "core/query_engine.h"
#include "core/result_cursor.h"
#include "core/trace.h"
#include "live/live_engine.h"
#include "result_matchers.h"
#include "server/server.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

const AlgorithmPreset kAllPresets[] = {kCBRR, kCBPA, kTBRR, kTBPA};

struct BackendCase {
  AccessKind kind;
  SourceBackend backend;
  const char* name;
};

const BackendCase kBackendCases[] = {
    {AccessKind::kDistance, SourceBackend::kPresorted, "distance/presorted"},
    {AccessKind::kDistance, SourceBackend::kRTree, "distance/rtree"},
    {AccessKind::kScore, SourceBackend::kPresorted, "score"},
};

std::vector<Relation> MakeRelations(int n, int count, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = seed;
  return GenerateProblem(n, spec);
}

QueryRequest MakeRequest(double x, double y, int k,
                         const AlgorithmPreset& preset) {
  QueryRequest req;
  req.query = Vec{x, y};
  req.options.k = k;
  req.options.Apply(preset);
  return req;
}

/// THE exactness property. Opens one cursor for `request` against
/// `engine`, pulls `depth` results one Next() at a time, and checks after
/// every pull that the prefix emitted so far is bit-identical to a fresh
/// one-shot TopK of exactly that length. `reference` answers the one-shot
/// calls (usually `engine` itself; the live tests pass a fresh engine
/// over equivalent content).
void ExpectPrefixIdentity(const QueryEngine& engine,
                          const QueryEngine& reference,
                          const QueryRequest& request, int depth,
                          const std::string& label) {
  auto cursor = engine.OpenCursor(request);
  ASSERT_TRUE(cursor.ok()) << label << ": " << cursor.status().ToString();
  std::vector<ResultCombination> prefix;
  for (int i = 0; i < depth; ++i) {
    auto next = (*cursor)->Next();
    ASSERT_TRUE(next.ok()) << label << ": " << next.status().ToString();
    if (!next->has_value()) break;  // cross product exhausted
    prefix.push_back(std::move(**next));

    ProxRJOptions prefix_opts = request.options;
    prefix_opts.k = static_cast<int>(prefix.size());
    auto oneshot = reference.TopK(request.query, prefix_opts);
    ASSERT_TRUE(oneshot.ok()) << label;
    ExpectBitIdentical(prefix, *oneshot,
                       label + "/prefix" + std::to_string(prefix.size()));
  }
  EXPECT_EQ((*cursor)->emitted(), prefix.size()) << label;
}

// ------------------- monolithic Engine, full grid ---------------------- //

struct CursorGridCase {
  BackendCase backend;
  AlgorithmPreset preset;
};

void PrintTo(const CursorGridCase& c, std::ostream* os) {
  *os << c.backend.name << "_" << c.preset.name;
}

class CursorGridTest : public ::testing::TestWithParam<CursorGridCase> {};

TEST_P(CursorGridTest, EveryPrefixMatchesOneShotTopK) {
  const CursorGridCase& c = GetParam();
  const auto rels = MakeRelations(2, 50, /*seed=*/31);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  EngineOptions eng_opts;
  eng_opts.backend = c.backend.backend;
  auto engine = Engine::Create(rels, c.backend.kind, &scoring, eng_opts);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    const Vec q = rng.UniformInCube(2, -1.0, 1.0);
    const QueryRequest req = MakeRequest(q[0], q[1], 4, c.preset);
    ExpectPrefixIdentity(*engine, *engine, req, 12,
                         std::string(c.backend.name) + "/" + c.preset.name +
                             "/trial" + std::to_string(trial));
  }
}

std::vector<CursorGridCase> MakeCursorGrid() {
  std::vector<CursorGridCase> cases;
  for (const BackendCase& backend : kBackendCases) {
    for (const AlgorithmPreset& preset : kAllPresets) {
      cases.push_back(CursorGridCase{backend, preset});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, CursorGridTest,
                         ::testing::ValuesIn(MakeCursorGrid()));

// ----------------------- cursor API properties ------------------------- //

TEST(CursorExactnessTest, NextBatchEqualsRepeatedNext) {
  const auto rels = MakeRelations(2, 40, /*seed=*/5);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  const QueryRequest req = MakeRequest(0.2, -0.3, 5, kTBPA);

  auto singles = engine->OpenCursor(req);
  auto batches = engine->OpenCursor(req);
  ASSERT_TRUE(singles.ok() && batches.ok());
  std::vector<ResultCombination> via_next;
  for (int i = 0; i < 14; ++i) {
    auto next = (*singles)->Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    via_next.push_back(std::move(**next));
  }
  std::vector<ResultCombination> via_batch;
  for (size_t n : {size_t{1}, size_t{4}, size_t{9}}) {
    auto batch = (*batches)->NextBatch(n);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->size(), n);
    for (auto& combo : *batch) via_batch.push_back(std::move(combo));
  }
  ExpectBitIdentical(via_batch, via_next, "NextBatch vs Next");
  EXPECT_EQ((*batches)->emitted(), 14u);
}

TEST(CursorExactnessTest, DrainsTheWholeCrossProductInBruteForceOrder) {
  // k never caps a cursor: drained to the end it must enumerate every
  // combination, in the global order the brute-force oracle defines.
  const auto rels = MakeRelations(2, 12, /*seed=*/9);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  const Vec q{0.1, 0.1};
  const size_t all = rels[0].size() * rels[1].size();
  const auto expected =
      BruteForceTopK(rels, scoring, q, static_cast<int>(all));

  QueryRequest req = MakeRequest(q[0], q[1], 3, kTBPA);
  auto cursor = engine->OpenCursor(req);
  ASSERT_TRUE(cursor.ok());
  auto drained = (*cursor)->NextBatch(all + 10);  // over-ask: ends cleanly
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->size(), all);
  for (size_t i = 0; i < all; ++i) {
    EXPECT_DOUBLE_EQ((*drained)[i].score, expected[i].score) << "rank " << i;
  }
  auto after_end = (*cursor)->Next();
  ASSERT_TRUE(after_end.ok());
  EXPECT_FALSE(after_end->has_value());
  EXPECT_TRUE((*cursor)->stats().completed);
}

TEST(CursorExactnessTest, MidTiePauseResumeStaysDeterministic) {
  // Geometry fully degenerate: every tuple at the same point, scores
  // colliding in pairs -- the result order is decided by tie-breaking
  // alone. Pausing anywhere inside a tie group and resuming must continue
  // the exact deterministic order.
  Relation r1("R1", 2), r2("R2", 2);
  for (int i = 0; i < 6; ++i) {
    r1.Add(i, 0.25 + 0.25 * (i / 2), Vec{1.0, 1.0});  // pairs of equal scores
    r2.Add(i, 0.75 - 0.25 * (i / 2), Vec{1.0, 1.0});
  }
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create({r1, r2}, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  for (const AlgorithmPreset& preset : kAllPresets) {
    const QueryRequest req = MakeRequest(0.0, 0.0, 2, preset);
    ExpectPrefixIdentity(*engine, *engine, req, 36, preset.name);
  }
}

TEST(CursorExactnessTest, MaxPullsRailMirrorsTheOneShotExecutor) {
  // A tripped safety rail stops pulling for good; the cursor then drains
  // its uncertified candidates exactly like the one-shot executor returns
  // its buffer.
  const auto rels = MakeRelations(2, 40, /*seed=*/21);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  QueryRequest req = MakeRequest(0.0, 0.0, 8, kTBPA);
  req.options.max_pulls = 10;

  ExecStats oneshot_stats;
  auto oneshot = engine->TopK(req.query, req.options, &oneshot_stats);
  ASSERT_TRUE(oneshot.ok());
  ASSERT_FALSE(oneshot_stats.completed);

  auto cursor = engine->OpenCursor(req);
  ASSERT_TRUE(cursor.ok());
  auto drained = (*cursor)->NextBatch(oneshot->size());
  ASSERT_TRUE(drained.ok());
  ExpectBitIdentical(*drained, *oneshot, "rail-tripped drain");
  EXPECT_FALSE((*cursor)->stats().completed);
  EXPECT_EQ((*cursor)->stats().sum_depths, oneshot_stats.sum_depths);
}

// --------------------------- ShardedEngine ----------------------------- //

TEST(ShardedCursorTest, PrefixIdentityAcrossPartitionersAndPruning) {
  const auto rels = MakeRelations(2, 40, /*seed=*/13);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto reference = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(reference.ok());
  for (PartitionScheme scheme :
       {PartitionScheme::kHash, PartitionScheme::kStrTile}) {
    for (bool prune : {true, false}) {
      ShardedEngineOptions opts;
      opts.partitions_per_relation = 3;
      opts.scheme = scheme;
      opts.prune = prune;
      auto sharded =
          ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      const std::string label =
          std::string(scheme == PartitionScheme::kHash ? "hash" : "strtile") +
          (prune ? "/prune" : "/noprune");
      for (const AlgorithmPreset& preset : kAllPresets) {
        const QueryRequest req = MakeRequest(0.3, 0.4, 4, preset);
        ExpectPrefixIdentity(*sharded, *reference, req, 10,
                             label + "/" + preset.name);
      }
    }
  }
}

TEST(ShardedCursorTest, LazyMergeOpensOnlyCompetitiveShards) {
  // With spatial partitioning and a query in one corner, a shallow drain
  // must leave far-away shards unopened -- the streaming analogue of
  // corner-bound shard pruning, surfaced through stats().shards_pruned.
  const auto rels = MakeRelations(2, 60, /*seed=*/29);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  ShardedEngineOptions opts;
  opts.partitions_per_relation = 3;
  opts.scheme = PartitionScheme::kStrTile;
  auto sharded =
      ShardedEngine::Create(rels, AccessKind::kDistance, &scoring, opts);
  ASSERT_TRUE(sharded.ok());

  QueryRequest req = MakeRequest(0.9, 0.9, 1, kTBPA);
  auto cursor = sharded->OpenCursor(req);
  ASSERT_TRUE(cursor.ok());
  auto first = (*cursor)->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  const ExecStats shallow = (*cursor)->stats();
  EXPECT_GT(shallow.shards_pruned, 0u)
      << "a 1-deep pull should not have opened all " << sharded->fan_out()
      << " shards";

  // Draining deeper can only open more; the counter never goes up.
  auto more = (*cursor)->NextBatch(20);
  ASSERT_TRUE(more.ok());
  EXPECT_LE((*cursor)->stats().shards_pruned, shallow.shards_pruned);
}

// ----------------------------- LiveEngine ------------------------------ //

LiveEngineOptions ManualCompaction() {
  LiveEngineOptions options;
  options.compact_threshold = 0;
  return options;
}

/// Inserts 8 fresh tuples per relation and deletes the two given ids
/// (relative to relation index j so the two relations diverge).
UpdateBatch MakeBatch(int n, Rng* rng, int64_t id_base, int64_t del_a,
                      int64_t del_b) {
  UpdateBatch batch;
  batch.relations.resize(n);
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < 8; ++i) {
      batch.relations[j].inserts.push_back(
          Tuple{id_base + j * 100 + i, 0.1 + 0.1 * i,
                rng->UniformInCube(2, -0.6, 0.6)});
    }
    // Delete ids >= 1000 refer to an earlier batch's inserts, which are
    // striped per relation (j * 100); base ids just diverge by j.
    auto in_relation = [j](int64_t id) {
      return id >= 1000 ? id + j * 100 : id + j;
    };
    batch.relations[j].deletes = {in_relation(del_a), in_relation(del_b)};
  }
  return batch;
}

TEST(LiveCursorTest, CursorPinsItsEpochAcrossConcurrentApply) {
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto content = MakeRelations(2, 40, /*seed=*/41);
  auto live = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  // Reference for the pre-update content: a plain engine over the seed.
  auto before = Engine::Create(content, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(before.ok());

  const QueryRequest req = MakeRequest(0.1, -0.2, 4, kTBPA);
  auto cursor = (*live)->OpenCursor(req);
  ASSERT_TRUE(cursor.ok());
  std::vector<ResultCombination> prefix;
  for (int i = 0; i < 3; ++i) {
    auto next = (*cursor)->Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    prefix.push_back(std::move(**next));
  }
  const uint64_t pinned_epoch = (*cursor)->stats().data_epoch;
  EXPECT_EQ(pinned_epoch, 1u);

  // Mutate the engine mid-enumeration. The open cursor must not notice.
  Rng rng(55);
  ASSERT_TRUE((*live)->Apply(MakeBatch(2, &rng, 1000, 3, 11)).ok());
  EXPECT_EQ((*live)->live_counters().epoch, 2u);

  for (int i = 0; i < 5; ++i) {
    auto next = (*cursor)->Next();
    ASSERT_TRUE(next.ok());
    ASSERT_TRUE(next->has_value());
    prefix.push_back(std::move(**next));
  }
  EXPECT_EQ((*cursor)->stats().data_epoch, pinned_epoch);
  ProxRJOptions old_opts = req.options;
  old_opts.k = static_cast<int>(prefix.size());
  auto old_answer = before->TopK(req.query, old_opts);
  ASSERT_TRUE(old_answer.ok());
  ExpectBitIdentical(prefix, *old_answer, "resumed across Apply");

  // A cursor opened NOW sees the post-update world.
  auto fresh = (*live)->OpenCursor(req);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->stats().data_epoch, 2u);
  auto fresh_first = (*fresh)->Next();
  ASSERT_TRUE(fresh_first.ok());
  ASSERT_TRUE(fresh_first->has_value());
  ProxRJOptions one = req.options;
  one.k = 1;
  auto live_top1 = (*live)->TopK(req.query, one);
  ASSERT_TRUE(live_top1.ok());
  ExpectBitIdentical({**fresh_first}, *live_top1, "post-Apply open");
}

TEST(LiveCursorTest, PrefixIdentityWithDeltasAndTombstones) {
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto content = MakeRelations(2, 40, /*seed=*/43);
  auto live = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live.ok());
  Rng rng(77);
  // Batch 1 deletes base tuples; batch 2 deletes a batch-1 insert (a
  // delta tombstone) plus another base tuple.
  ASSERT_TRUE((*live)->Apply(MakeBatch(2, &rng, 1000, 3, 11)).ok());
  ASSERT_TRUE((*live)->Apply(MakeBatch(2, &rng, 2000, 1002, 17)).ok());

  for (const AlgorithmPreset& preset : kAllPresets) {
    const QueryRequest req = MakeRequest(-0.2, 0.3, 4, preset);
    // The live engine itself answers the one-shot reference calls: cursor
    // vs TopK over the same snapshot (both see epoch 3).
    ExpectPrefixIdentity(**live, **live, req, 10, preset.name);
  }
}

TEST(LiveCursorTest, TracedRequestsAreRejected) {
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto content = MakeRelations(2, 20, /*seed=*/47);
  auto live = LiveEngine::Create(
      content, AccessKind::kDistance, &scoring,
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &scoring),
      ManualCompaction());
  ASSERT_TRUE(live.ok());
  ExecTrace trace;
  QueryRequest traced = MakeRequest(0.0, 0.0, 3, kTBPA);
  traced.options.trace = &trace;
  EXPECT_EQ((*live)->OpenCursor(traced).status().code(),
            StatusCode::kInvalidArgument);
}

// ------------------------- CachedEngine cursors ------------------------ //

TEST(CachedCursorTest, SmallKEnumerationServesLargerKByResuming) {
  const auto rels = MakeRelations(2, 50, /*seed=*/51);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  CachedEngine cached(&*engine);

  // First consumer: K=10.
  QueryRequest small = MakeRequest(0.2, 0.1, 10, kTBPA);
  auto first = cached.OpenCursor(small);
  ASSERT_TRUE(first.ok());
  auto page1 = (*first)->NextBatch(10);
  ASSERT_TRUE(page1.ok());
  ASSERT_EQ(page1->size(), 10u);
  const uint64_t paid_depths = (*first)->stats().sum_depths;
  EXPECT_GT(paid_depths, 0u);
  EXPECT_EQ(cached.cursor_cache().counters().misses, 1u);

  // Second consumer: same query, K=50. The enumeration key is
  // k-independent, so this HITS and resumes the cached stream: the first
  // 10 results replay at zero pull cost, only ranks 11..50 execute.
  QueryRequest big = small;
  big.options.k = 50;
  auto second = cached.OpenCursor(big);
  ASSERT_TRUE(second.ok());
  auto all50 = (*second)->NextBatch(50);
  ASSERT_TRUE(all50.ok());
  ASSERT_EQ(all50->size(), 50u);
  EXPECT_EQ(cached.cursor_cache().counters().hits, 1u);

  const ExecStats resumed = (*second)->stats();
  EXPECT_EQ(resumed.cursor_partial_hits, 10u);  // replayed prefix
  EXPECT_EQ(resumed.cursor_resumes, 40u);       // freshly enumerated tail

  ProxRJOptions oneshot_opts = big.options;
  auto oneshot = engine->TopK(big.query, oneshot_opts);
  ASSERT_TRUE(oneshot.ok());
  ExpectBitIdentical(*all50, *oneshot, "cache-resumed 50");

  // Third consumer re-drains fully materialized state: pure replay, not a
  // single new pull on the shared enumeration.
  auto third = cached.OpenCursor(big);
  ASSERT_TRUE(third.ok());
  auto replay = (*third)->NextBatch(50);
  ASSERT_TRUE(replay.ok());
  ExpectBitIdentical(*replay, *oneshot, "pure replay");
  EXPECT_EQ((*third)->stats().cursor_partial_hits, 50u);
  EXPECT_EQ((*third)->stats().cursor_resumes, 0u);
  EXPECT_EQ((*third)->stats().sum_depths, resumed.sum_depths)
      << "replay must not advance the underlying enumeration";
}

TEST(CachedCursorTest, EvictedEnumerationsRecomputeExactly) {
  const auto rels = MakeRelations(2, 40, /*seed=*/53);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  CursorCacheOptions tiny;
  tiny.capacity = 1;
  tiny.lock_shards = 1;
  CachedEngine cached(&*engine, QueryCacheOptions{}, tiny);

  const QueryRequest a = MakeRequest(0.1, 0.1, 5, kTBPA);
  const QueryRequest b = MakeRequest(-0.4, 0.6, 5, kTBPA);

  auto view_a = cached.OpenCursor(a);
  ASSERT_TRUE(view_a.ok());
  auto first_half = (*view_a)->NextBatch(5);
  ASSERT_TRUE(first_half.ok());

  // B evicts A's enumeration (capacity 1).
  ASSERT_TRUE(cached.OpenCursor(b).ok());
  EXPECT_GT(cached.cursor_cache().counters().evictions, 0u);

  // The evicted view stays alive and exact (shared_ptr keeps the entry).
  auto second_half = (*view_a)->NextBatch(5);
  ASSERT_TRUE(second_half.ok());
  std::vector<ResultCombination> both;
  for (auto& combo : *first_half) both.push_back(std::move(combo));
  for (auto& combo : *second_half) both.push_back(std::move(combo));
  ProxRJOptions ten = a.options;
  ten.k = 10;
  auto expected = engine->TopK(a.query, ten);
  ASSERT_TRUE(expected.ok());
  ExpectBitIdentical(both, *expected, "post-eviction resume");

  // Re-opening A after eviction is a miss that recomputes from scratch,
  // bit-identically.
  auto reopened = cached.OpenCursor(a);
  ASSERT_TRUE(reopened.ok());
  auto again = (*reopened)->NextBatch(10);
  ASSERT_TRUE(again.ok());
  ExpectBitIdentical(*again, *expected, "post-eviction reopen");
}

TEST(CachedCursorTest, TraceAndTimeBudgetBypassTheCursorCache) {
  const auto rels = MakeRelations(2, 30, /*seed=*/57);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  CachedEngine cached(&*engine);

  ExecTrace trace;
  QueryRequest traced = MakeRequest(0.0, 0.0, 3, kTBPA);
  traced.options.trace = &trace;
  ASSERT_TRUE(cached.OpenCursor(traced).ok());

  QueryRequest budgeted = MakeRequest(0.0, 0.0, 3, kTBPA);
  budgeted.options.time_budget_seconds = 30.0;
  ASSERT_TRUE(cached.OpenCursor(budgeted).ok());

  const CacheCounters counters = cached.cursor_cache().counters();
  EXPECT_EQ(counters.hits + counters.misses, 0u)
      << "bypassed requests must not touch the cursor cache";
}

TEST(CachedCursorTest, ConcurrentOpensShareOneEnumeration) {
  // N threads race OpenCursor on one cold key and each drains K results.
  // All must get the exact answer; the cache must converge to one shared
  // entry (TSan-run: suite name matches the CI Cursor regex).
  const auto rels = MakeRelations(2, 40, /*seed=*/59);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  CachedEngine cached(&*engine);
  const QueryRequest req = MakeRequest(0.3, -0.1, 8, kTBPA);
  auto expected = engine->TopK(req.query, req.options);
  ASSERT_TRUE(expected.ok());

  constexpr int kThreads = 8;
  std::vector<std::vector<ResultCombination>> got(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto cursor = cached.OpenCursor(req);
      if (!cursor.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto drained = (*cursor)->NextBatch(8);
      if (!drained.ok()) {
        failures.fetch_add(1);
        return;
      }
      got[t] = std::move(*drained);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    ExpectBitIdentical(got[t], *expected, "thread " + std::to_string(t));
  }
  EXPECT_EQ(cached.cursor_cache().size(), 1u);
}

/// QueryEngine decorator counting the OpenCursor calls that reach the
/// inner engine: the handoff test's whole point is that a herd of views
/// shares ONE underlying enumeration.
class CountingCursorEngine : public QueryEngine {
 public:
  explicit CountingCursorEngine(const QueryEngine* inner) : inner_(inner) {}

  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const override {
    return inner_->TopK(query, options, stats_out);
  }
  Result<std::unique_ptr<ResultCursor>> OpenCursor(
      const QueryRequest& request) const override {
    open_cursors_.fetch_add(1, std::memory_order_relaxed);
    return inner_->OpenCursor(request);
  }
  AccessKind kind() const override { return inner_->kind(); }
  int dim() const override { return inner_->dim(); }
  size_t num_relations() const override { return inner_->num_relations(); }

  uint64_t open_cursors() const {
    return open_cursors_.load(std::memory_order_relaxed);
  }

 private:
  const QueryEngine* inner_;
  mutable std::atomic<uint64_t> open_cursors_{0};
};

TEST(CursorCacheHandoffTest, LeaderWaiterHandoffStaysExactAndExecutesOnce) {
  // Regression for the trickiest annotated invariant of the cursor cache
  // (cache/cursor_cache.cc, CursorCacheEntry): prefix / finished / failed
  // may only change under the entry mutex, and every pull hands the
  // leader role to whichever view is past the shared prefix while the
  // rest replay it. A broken handoff shows up as a torn prefix (wrong
  // results), a second execution (inner OpenCursor count > 1), or a data
  // race on the CI TSan leg (suite name matches the Cursor regex).
  const auto rels = MakeRelations(2, 40, /*seed=*/61);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  CountingCursorEngine counting(&*engine);
  CachedEngine cached(&counting);
  const QueryRequest req = MakeRequest(0.2, 0.15, 12, kTBPA);
  auto expected = engine->TopK(req.query, req.options);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 12u);

  // Seed the cache with a 3-result prefix so every racing view starts in
  // replay and crosses into resume -- the handoff's hard case.
  {
    auto warm = cached.OpenCursor(req);
    ASSERT_TRUE(warm.ok());
    auto prefix = (*warm)->NextBatch(3);
    ASSERT_TRUE(prefix.ok());
    ASSERT_EQ(prefix->size(), 3u);
  }

  constexpr int kThreads = 8;
  constexpr int kWant = 12;
  std::vector<std::vector<ResultCombination>> got(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto cursor = cached.OpenCursor(req);
      if (!cursor.ok()) {
        failures.fetch_add(1);
        return;
      }
      // Single-result pulls: each one is a fresh leader/waiter handoff on
      // the shared entry, interleaving replays with extensions.
      for (int i = 0; i < kWant; ++i) {
        auto next = (*cursor)->Next();
        if (!next.ok() || !next->has_value()) {
          failures.fetch_add(1);
          return;
        }
        got[t].push_back(**next);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    ExpectBitIdentical(got[t], *expected, "view " + std::to_string(t));
  }
  // One execution total: the warm-up opened the only inner cursor; every
  // racing view replayed or resumed it.
  EXPECT_EQ(counting.open_cursors(), 1u);
  EXPECT_EQ(cached.cursor_cache().size(), 1u);
}

// -------------------------- stampede guard ----------------------------- //

/// QueryEngine decorator that counts TopK executions reaching the inner
/// engine -- the stampede guard's whole job is keeping this at 1 for a
/// herd of identical cold-key requests.
class CountingEngine : public QueryEngine {
 public:
  explicit CountingEngine(const QueryEngine* inner) : inner_(inner) {}

  Result<std::vector<ResultCombination>> TopK(
      const Vec& query, const ProxRJOptions& options,
      ExecStats* stats_out = nullptr) const override {
    executions_.fetch_add(1, std::memory_order_relaxed);
    return inner_->TopK(query, options, stats_out);
  }
  AccessKind kind() const override { return inner_->kind(); }
  int dim() const override { return inner_->dim(); }
  size_t num_relations() const override { return inner_->num_relations(); }

  uint64_t executions() const {
    return executions_.load(std::memory_order_relaxed);
  }

 private:
  const QueryEngine* inner_;
  mutable std::atomic<uint64_t> executions_{0};
};

TEST(StampedeTest, ColdKeyHerdExecutesOnce) {
  const auto rels = MakeRelations(2, 60, /*seed=*/61);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  const CountingEngine counting(&*engine);
  CachedEngine cached(&counting);

  const QueryRequest req = MakeRequest(0.4, 0.2, 6, kTBPA);
  auto expected = engine->TopK(req.query, req.options);
  ASSERT_TRUE(expected.ok());

  constexpr int kThreads = 12;
  std::vector<std::vector<ResultCombination>> got(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = cached.TopK(req.query, req.options);
      if (!result.ok()) {
        failures.fetch_add(1);
        return;
      }
      got[t] = std::move(*result);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(counting.executions(), 1u)
      << "concurrent identical cold-key requests must coalesce behind one "
         "leader";
  for (int t = 0; t < kThreads; ++t) {
    ExpectBitIdentical(got[t], *expected, "thread " + std::to_string(t));
  }
  const CacheCounters counters = cached.cache_counters();
  // One miss (the leader); every other thread either coalesced behind the
  // flight or arrived after Publish and hit the LRU directly.
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(StampedeTest, AbortedLeaderWakesWaitersWhoRecompute) {
  // An uncacheable execution (max_pulls rail trips, completed = false)
  // makes the leader AbortLead: waiters must wake, recompute on their
  // own, and nobody deadlocks. Executions land between 1 (nobody
  // coalesced before the abort) and kThreads.
  const auto rels = MakeRelations(2, 60, /*seed=*/67);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  const CountingEngine counting(&*engine);
  CachedEngine cached(&counting);

  QueryRequest req = MakeRequest(0.1, 0.3, 6, kTBPA);
  req.options.max_pulls = 5;  // rail-tripped: never cacheable
  auto expected = engine->TopK(req.query, req.options);
  ASSERT_TRUE(expected.ok());

  constexpr int kThreads = 8;
  std::vector<std::vector<ResultCombination>> got(kThreads);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto result = cached.TopK(req.query, req.options);
      if (!result.ok()) {
        failures.fetch_add(1);
        return;
      }
      got[t] = std::move(*result);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(counting.executions(), 1u);
  EXPECT_LE(counting.executions(), static_cast<uint64_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    ExpectBitIdentical(got[t], *expected, "thread " + std::to_string(t));
  }
  EXPECT_EQ(cached.cache_counters().hits, 0u)
      << "an uncacheable request must never be served from cache";
}

// ------------------------ server paging/streaming ---------------------- //

TEST(CursorPagingTest, PagesConcatenateToTheOneShotAnswer) {
  const auto rels = MakeRelations(2, 50, /*seed=*/71);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  ServerOptions server_opts;
  server_opts.num_workers = 2;
  Server server(&*engine, server_opts);

  const QueryRequest page_req = MakeRequest(0.2, 0.2, 5, kTBPA);
  std::vector<ResultCombination> paged;
  std::string token;
  uint64_t marginal_total = 0;
  for (int page = 0; page < 4; ++page) {
    auto result = server.SubmitPage(page_req, token).get();
    ASSERT_TRUE(result.result.status.ok()) << "page " << page;
    EXPECT_EQ(result.page_start, static_cast<uint64_t>(page) * 5);
    ASSERT_EQ(result.result.combinations.size(), 5u);
    for (auto& combo : result.result.combinations) {
      paged.push_back(std::move(combo));
    }
    marginal_total += result.page_cost_depths;
    // Marginal costs sum to the cumulative accounting the result carries.
    EXPECT_EQ(marginal_total, result.result.stats.sum_depths);
    token = result.next_page_token;
    ASSERT_FALSE(token.empty());
  }
  ProxRJOptions twenty = page_req.options;
  twenty.k = 20;
  auto oneshot = engine->TopK(page_req.query, twenty);
  ASSERT_TRUE(oneshot.ok());
  ExpectBitIdentical(paged, *oneshot, "4 pages of 5");

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.pages_served, 4u);
  EXPECT_EQ(stats.sum_depths, marginal_total)
      << "the server charges pages their marginal cost, not cumulative";
}

TEST(CursorPagingTest, StaleAndReplayedTokensAreServedExactly) {
  const auto rels = MakeRelations(2, 50, /*seed=*/73);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  ServerOptions server_opts;
  server_opts.num_workers = 1;
  Server server(&*engine, server_opts);

  const QueryRequest req = MakeRequest(-0.3, 0.5, 6, kTBPA);
  auto page1 = server.SubmitPage(req).get();
  ASSERT_TRUE(page1.result.status.ok());
  auto page2 = server.SubmitPage(req, page1.next_page_token).get();
  ASSERT_TRUE(page2.result.status.ok());

  // Replay page 1's token: the session advanced past it, so the server
  // reopens and skips -- same content, bit for bit.
  auto replay = server.SubmitPage(req, page1.next_page_token).get();
  ASSERT_TRUE(replay.result.status.ok());
  ExpectBitIdentical(replay.result.combinations, page2.result.combinations,
                     "replayed token");
  EXPECT_EQ(replay.page_start, page2.page_start);

  // A token whose request does not match its session is refused.
  QueryRequest other = MakeRequest(0.9, 0.9, 6, kTBPA);
  auto mismatched = server.SubmitPage(other, page1.next_page_token).get();
  EXPECT_EQ(mismatched.result.status.code(), StatusCode::kInvalidArgument);

  // Garbage tokens are refused, not crashed on.
  auto garbage = server.SubmitPage(req, "pg:not-a-number").get();
  EXPECT_EQ(garbage.result.status.code(), StatusCode::kInvalidArgument);
}

TEST(CursorPagingTest, SessionRegistryEvictsUnderPressureAndStaysExact) {
  // ServerOptions::max_page_sessions bounds the cursor-session registry;
  // pushing more concurrent enumerations than the cap evicts LRU sessions
  // without ever invalidating their tokens.
  const auto rels = MakeRelations(2, 50, /*seed=*/89);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  ServerOptions server_opts;
  server_opts.num_workers = 1;
  server_opts.max_page_sessions = 2;
  Server server(&*engine, server_opts);

  constexpr int kEnumerations = 6;
  std::vector<QueryRequest> reqs;
  std::vector<std::string> tokens;
  for (int i = 0; i < kEnumerations; ++i) {
    reqs.push_back(MakeRequest(-0.5 + 0.2 * i, 0.3, 4, kTBPA));
    auto page = server.SubmitPage(reqs.back()).get();
    ASSERT_TRUE(page.result.status.ok()) << "enumeration " << i;
    ASSERT_FALSE(page.next_page_token.empty());
    tokens.push_back(page.next_page_token);
    // The registry never exceeds the configured cap, however many
    // enumerations are in flight.
    EXPECT_LE(server.live_page_sessions(), server_opts.max_page_sessions);
  }
  EXPECT_EQ(server.live_page_sessions(), server_opts.max_page_sessions);

  // Enumeration 0's session was evicted long ago; its token still serves
  // page 2 exactly (the server reopens a cursor and skips to the offset).
  auto page2 = server.SubmitPage(reqs[0], tokens[0]).get();
  ASSERT_TRUE(page2.result.status.ok());
  EXPECT_EQ(page2.page_start, 4u);
  ProxRJOptions eight = reqs[0].options;
  eight.k = 8;
  auto oneshot = engine->TopK(reqs[0].query, eight);
  ASSERT_TRUE(oneshot.ok());
  const std::vector<ResultCombination> tail(oneshot->begin() + 4,
                                            oneshot->end());
  ExpectBitIdentical(page2.result.combinations, tail, "evicted-token page 2");
}

TEST(CursorPagingTest, CursorlessEnginesFallBackToDeepTopK) {
  // An engine that only implements TopK still pages exactly, via the
  // TopK(offset + k) fallback and its id-0 tokens.
  const auto rels = MakeRelations(2, 40, /*seed=*/79);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  const CountingEngine cursorless(&*engine);  // no OpenCursor override
  ServerOptions server_opts;
  server_opts.num_workers = 1;
  Server server(&cursorless, server_opts);

  const QueryRequest req = MakeRequest(0.0, 0.4, 4, kTBPA);
  std::vector<ResultCombination> paged;
  std::string token;
  for (int page = 0; page < 3; ++page) {
    auto result = server.SubmitPage(req, token).get();
    ASSERT_TRUE(result.result.status.ok()) << "page " << page;
    for (auto& combo : result.result.combinations) {
      paged.push_back(std::move(combo));
    }
    token = result.next_page_token;
    ASSERT_FALSE(token.empty());
  }
  ProxRJOptions twelve = req.options;
  twelve.k = 12;
  auto oneshot = engine->TopK(req.query, twelve);
  ASSERT_TRUE(oneshot.ok());
  ExpectBitIdentical(paged, *oneshot, "fallback pages");
}

TEST(CursorStreamingTest, CallbacksArriveInRankOrderWithTheExactResults) {
  const auto rels = MakeRelations(2, 50, /*seed=*/83);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok());
  ServerOptions server_opts;
  server_opts.num_workers = 2;
  Server server(&*engine, server_opts);

  const QueryRequest req = MakeRequest(0.5, -0.5, 9, kTBPA);
  std::vector<uint64_t> ranks;
  std::vector<ResultCombination> streamed;
  auto future = server.SubmitStream(
      req, [&](uint64_t rank, const ResultCombination& combination) {
        ranks.push_back(rank);
        streamed.push_back(combination);
      });
  const QueryResult outcome = future.get();
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_TRUE(outcome.combinations.empty())
      << "streamed results travel through the callback, not the future";

  ASSERT_EQ(ranks.size(), 9u);
  for (uint64_t i = 0; i < ranks.size(); ++i) EXPECT_EQ(ranks[i], i);
  auto oneshot = engine->TopK(req.query, req.options);
  ASSERT_TRUE(oneshot.ok());
  ExpectBitIdentical(streamed, *oneshot, "streamed");
  EXPECT_EQ(server.Stats().streamed_results, 9u);
}

}  // namespace
}  // namespace prj
