// Units for the hot-path microarchitecture layer: batch MBR kernels
// (bit-identical to their scalar reference on adversarial inputs), the
// Arena / ArenaPool allocator behind the browse frontier, frontier-arena
// reuse across repeated Engine::TopK calls, and SoA coherence of
// insert-built R-trees. The concurrency cases run under the TSan CI job.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/random.h"
#include "core/engine.h"
#include "core/scoring.h"
#include "index/mbr_kernels.h"
#include "index/rtree.h"

namespace prj {
namespace {

// ----------------------------- MBR kernels ----------------------------- //

// Bitwise equality: the contract is exact IEEE agreement, not closeness.
void ExpectBitEqual(const std::vector<double>& got,
                    const std::vector<double>& want, const char* label) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    uint64_t gb, wb;
    std::memcpy(&gb, &got[i], sizeof(gb));
    std::memcpy(&wb, &want[i], sizeof(wb));
    EXPECT_EQ(gb, wb) << label << " lane " << i << ": " << got[i] << " vs "
                      << want[i];
  }
}

TEST(MbrKernelTest, DispatchedMinDistMatchesScalarOnRandomBoxes) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    const int dim = 1 + static_cast<int>(rng.NextBounded(8));
    // Sweep counts across every SIMD tail length.
    const size_t count = 1 + rng.NextBounded(13);
    std::vector<double> q(static_cast<size_t>(dim));
    std::vector<double> lo(static_cast<size_t>(dim) * count);
    std::vector<double> hi(static_cast<size_t>(dim) * count);
    for (auto& v : q) v = rng.Uniform(-10.0, 10.0);
    for (size_t d = 0; d < static_cast<size_t>(dim); ++d) {
      for (size_t i = 0; i < count; ++i) {
        const double a = rng.Uniform(-10.0, 10.0);
        const double b = rng.Uniform(-10.0, 10.0);
        lo[d * count + i] = std::min(a, b);
        hi[d * count + i] = std::max(a, b);
      }
    }
    std::vector<double> got(count), want(count);
    MinSquaredDistanceBatch(q.data(), dim, count, lo.data(), hi.data(),
                            got.data());
    MinSquaredDistanceBatchScalar(q.data(), dim, count, lo.data(), hi.data(),
                                  want.data());
    ExpectBitEqual(got, want, "mindist");
  }
}

TEST(MbrKernelTest, DispatchedPointDistMatchesScalarAndVec) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const int dim = 1 + static_cast<int>(rng.NextBounded(8));
    const size_t count = 1 + rng.NextBounded(13);
    std::vector<double> qbuf(static_cast<size_t>(dim));
    for (auto& v : qbuf) v = rng.Uniform(-5.0, 5.0);
    std::vector<double> xs(static_cast<size_t>(dim) * count);
    std::vector<Vec> points(count, Vec(dim));
    for (size_t i = 0; i < count; ++i) {
      for (int d = 0; d < dim; ++d) {
        const double v = rng.Uniform(-5.0, 5.0);
        xs[static_cast<size_t>(d) * count + i] = v;
        points[i][d] = v;
      }
    }
    std::vector<double> got(count), want(count);
    PointSquaredDistanceBatch(qbuf.data(), dim, count, xs.data(), got.data());
    PointSquaredDistanceBatchScalar(qbuf.data(), dim, count, xs.data(),
                                    want.data());
    ExpectBitEqual(got, want, "pointdist");
    // And both match the AoS scalar path the engine's exactness contract
    // is anchored to -- bit for bit, not approximately.
    Vec q(dim);
    for (int d = 0; d < dim; ++d) q[d] = qbuf[static_cast<size_t>(d)];
    for (size_t i = 0; i < count; ++i) {
      uint64_t gb, vb;
      const double vec_dist = points[i].SquaredDistance(q);
      std::memcpy(&gb, &got[i], sizeof(gb));
      std::memcpy(&vb, &vec_dist, sizeof(vb));
      EXPECT_EQ(gb, vb) << "vs Vec::SquaredDistance, lane " << i;
    }
  }
}

TEST(MbrKernelTest, DegenerateInputsStayBitIdentical) {
  // Point boxes (lo == hi), query on a face, infinities, NaN: the max_pd
  // lane rule (return b when unordered) is baked into MbrKernelMax, so
  // even unordered comparisons agree across variants.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const int dim = 2;
  const size_t count = 5;
  const std::vector<double> q = {0.0, 1.0};
  // Layout: lo[d*count + i].
  const std::vector<double> lo = {/* d0 */ 0.0, -1.0, -inf, nan, 1.0,
                                  /* d1 */ 1.0, 2.0, 0.0, 0.0, nan};
  const std::vector<double> hi = {/* d0 */ 0.0, 1.0, inf, nan, 2.0,
                                  /* d1 */ 1.0, 3.0, 0.0, 1.0, nan};
  std::vector<double> got(count), want(count);
  MinSquaredDistanceBatch(q.data(), dim, count, lo.data(), hi.data(),
                          got.data());
  MinSquaredDistanceBatchScalar(q.data(), dim, count, lo.data(), hi.data(),
                                want.data());
  ExpectBitEqual(got, want, "degenerate");
  // Sanity on the ordinary lanes: lane 0 contains q entirely (0); lane 2
  // contains q in d0 but its d1 slab [0,0] is 1 below q's 1.0.
  EXPECT_EQ(want[0], 0.0);
  EXPECT_EQ(want[2], 1.0);
}

TEST(MbrKernelTest, ReportsAnIsa) {
  const std::string isa = MbrKernelIsa();
  EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "scalar") << isa;
}

TEST(MbrKernelTest, RuntimeDispatchResolvesWidestAvailableVariant) {
  const auto variants = AvailableMbrKernelVariants();
  ASSERT_FALSE(variants.empty());
  EXPECT_STREQ(variants.front().name, "scalar");
  // The dispatched entry points run the last (widest) runnable variant.
  EXPECT_STREQ(MbrKernelIsa(), variants.back().name);
#if defined(PRJ_MBR_KERNEL_RUNTIME_DISPATCH)
  // With SIMD compiled in, at least the x86-64 baseline joins the roster.
  ASSERT_GE(variants.size(), 2u);
  EXPECT_STREQ(variants[1].name, "sse2");
#else
  // PRJ_SIMD=OFF (or a non-x86 target): scalar is the whole roster.
  EXPECT_EQ(variants.size(), 1u);
#endif
}

TEST(MbrKernelTest, AllRunnableVariantsAreBitIdenticalPairwise) {
  // The dispatch satellite's load-bearing property: whichever variant the
  // host resolves, the answer is the same bit pattern. Exercise every
  // compiled-in, runnable variant (not just the dispatched one) across
  // dims and every SIMD tail length, on finite and adversarial inputs.
  const auto variants = AvailableMbrKernelVariants();
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Rng rng(90210);
  for (int trial = 0; trial < 60; ++trial) {
    const int dim = 1 + static_cast<int>(rng.NextBounded(8));
    const size_t count = 1 + rng.NextBounded(13);
    std::vector<double> q(static_cast<size_t>(dim));
    std::vector<double> lo(static_cast<size_t>(dim) * count);
    std::vector<double> hi(static_cast<size_t>(dim) * count);
    for (auto& v : q) v = rng.Uniform(-10.0, 10.0);
    for (size_t d = 0; d < static_cast<size_t>(dim); ++d) {
      for (size_t i = 0; i < count; ++i) {
        double a = rng.Uniform(-10.0, 10.0);
        double b = rng.Uniform(-10.0, 10.0);
        // Sprinkle in the unordered/overflow lanes the max_pd rule covers.
        const uint64_t spice = rng.NextBounded(20);
        if (spice == 0) a = nan;
        if (spice == 1) b = inf;
        if (spice == 2) a = b;  // degenerate point box
        lo[d * count + i] = std::min(a, b);
        hi[d * count + i] = std::max(a, b);
      }
    }
    std::vector<double> want_box(count), want_pt(count);
    variants[0].min_squared_distance(q.data(), dim, count, lo.data(),
                                     hi.data(), want_box.data());
    variants[0].point_squared_distance(q.data(), dim, count, lo.data(),
                                       want_pt.data());
    for (size_t v = 1; v < variants.size(); ++v) {
      std::vector<double> got(count);
      variants[v].min_squared_distance(q.data(), dim, count, lo.data(),
                                       hi.data(), got.data());
      ExpectBitEqual(got, want_box, variants[v].name);
      variants[v].point_squared_distance(q.data(), dim, count, lo.data(),
                                         got.data());
      ExpectBitEqual(got, want_pt, variants[v].name);
    }
  }
}

// -------------------------------- Arena -------------------------------- //

TEST(ArenaTest, AllocationsAreAlignedAndDistinct) {
  Arena arena;
  for (size_t align : {1u, 2u, 4u, 8u, 16u}) {
    void* p = arena.Allocate(3, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
  }
  // Two allocations never alias (monotonic bump).
  char* a = static_cast<char*>(arena.Allocate(16, 8));
  char* b = static_cast<char*>(arena.Allocate(16, 8));
  EXPECT_GE(b, a + 16);
}

TEST(ArenaTest, ResetKeepsOnlyTheLargestBlock) {
  Arena arena;
  arena.Allocate(100, 8);     // first (minimum-size) block
  arena.Allocate(100000, 8);  // forces a much larger block
  EXPECT_GE(arena.BlockCount(), 2u);
  arena.Reset();
  EXPECT_EQ(arena.BlockCount(), 1u);
  EXPECT_GE(arena.RetainedBytes(), 100000u);  // the largest one survived
  // Steady state: the same workload now fits the kept block -- no new
  // system allocation.
  arena.Allocate(100, 8);
  arena.Allocate(100000 - 200, 8);
  EXPECT_EQ(arena.BlockCount(), 1u);
}

TEST(ArenaTest, BacksStlContainersViaArenaAllocator) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<size_t>(i)], i);
  EXPECT_GT(arena.RetainedBytes(), 0u);
}

TEST(ArenaPoolTest, SequentialLeasesReuseOneArena) {
  ArenaPool pool;
  for (int i = 0; i < 10; ++i) {
    ArenaPool::Lease lease = pool.Acquire();
    lease.arena()->Allocate(512, 8);
  }
  EXPECT_EQ(pool.arenas_created(), 1u);
  EXPECT_EQ(pool.leases_issued(), 10u);
}

TEST(ArenaPoolTest, OverlappingLeasesGetDistinctArenas) {
  ArenaPool pool;
  ArenaPool::Lease a = pool.Acquire();
  ArenaPool::Lease b = pool.Acquire();
  EXPECT_NE(a.arena(), b.arena());
  EXPECT_EQ(pool.arenas_created(), 2u);
}

TEST(ArenaPoolTest, ReturnedArenasComeBackWarmed) {
  ArenaPool pool;
  {
    ArenaPool::Lease lease = pool.Acquire();
    lease.arena()->Allocate(50000, 8);
  }
  ArenaPool::Lease again = pool.Acquire();
  // Reset on return kept the big block: the next query starts warm.
  EXPECT_EQ(again.arena()->BlockCount(), 1u);
  EXPECT_GE(again.arena()->RetainedBytes(), 50000u);
  EXPECT_EQ(pool.arenas_created(), 1u);
}

TEST(ArenaPoolTest, ConcurrentAcquireIsSafe) {
  ArenaPool pool;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < 50; ++i) {
        ArenaPool::Lease lease = pool.Acquire();
        lease.arena()->Allocate(256, 8);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(pool.leases_issued(), 200u);
  // Never more arenas than the peak number of concurrent leases.
  EXPECT_LE(pool.arenas_created(), 4u);
  EXPECT_GE(pool.arenas_created(), 1u);
}

// ------------------------ Engine frontier reuse ------------------------ //

std::vector<Relation> SmallRelations(int n, int tuples, uint64_t seed) {
  Rng rng(seed);
  std::vector<Relation> rels;
  rels.reserve(static_cast<size_t>(n));
  for (int j = 0; j < n; ++j) {
    Relation r("R" + std::to_string(j), 2, 1.0);
    for (int i = 0; i < tuples; ++i) {
      r.Add(i, 0.1 + 0.9 * rng.NextDouble(),
            Vec{rng.Uniform(-1, 1), rng.Uniform(-1, 1)});
    }
    rels.push_back(std::move(r));
  }
  return rels;
}

TEST(FrontierArenaTest, SequentialTopKLoopLeasesOneArena) {
  const auto rels = SmallRelations(2, 60, 11);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Rng rng(5);
  ProxRJOptions opts;
  opts.k = 5;
  for (int i = 0; i < 16; ++i) {
    auto res = engine->TopK(rng.UniformInCube(2, -1, 1), opts);
    ASSERT_TRUE(res.ok());
  }
  // The whole loop ran on one recycled arena: queries after the first
  // never touched the system allocator for their frontiers.
  EXPECT_EQ(engine->arena_pool().arenas_created(), 1u);
  EXPECT_EQ(engine->arena_pool().leases_issued(), 16u);
}

TEST(FrontierArenaTest, ConcurrentTopKLeasesDistinctArenas) {
  const auto rels = SmallRelations(2, 60, 13);
  const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &scoring);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      ProxRJOptions opts;
      opts.k = 5;
      for (int i = 0; i < kQueriesPerThread; ++i) {
        auto res = engine->TopK(rng.UniformInCube(2, -1, 1), opts);
        ASSERT_TRUE(res.ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(engine->arena_pool().leases_issued(),
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
  EXPECT_LE(engine->arena_pool().arenas_created(),
            static_cast<size_t>(kThreads));
}

// ------------------------- R-tree SoA coherence ------------------------ //

TEST(RTreeSoaTest, InsertBuiltTreeStaysCoherentAndStreamsExactly) {
  // Small fan-out forces many splits and parent-MBR growth -- every SoA
  // resync site fires. CheckInvariants contains the bitwise SoA-vs-AoS
  // coherence check.
  Rng rng(321);
  RTree tree(2, /*max_entries=*/4);
  std::vector<RTree::Item> items;
  for (int i = 0; i < 500; ++i) {
    const Vec p = rng.UniformInCube(2, -1, 1);
    tree.Insert(p, i);
    items.push_back(RTree::Item{p, i});
  }
  ASSERT_TRUE(tree.CheckInvariants());

  const Vec q{0.2, -0.3};
  std::vector<std::pair<double, int64_t>> want;
  want.reserve(items.size());
  for (const auto& it : items) {
    want.push_back({it.point.SquaredDistance(q), it.id});
  }
  std::sort(want.begin(), want.end());
  auto browse = tree.NearestBrowse(q);
  for (const auto& [dist, id] : want) {
    const RTree::Item* got = browse.NextRef();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->id, id);
    EXPECT_EQ(got->point.SquaredDistance(q), dist);
  }
  EXPECT_EQ(browse.NextRef(), nullptr);
}

TEST(RTreeSoaTest, NextAndNextRefAndExternalArenaAgree) {
  Rng rng(9);
  std::vector<RTree::Item> items;
  for (int i = 0; i < 300; ++i) {
    items.push_back(RTree::Item{rng.UniformInCube(3, -2, 2), i});
  }
  const RTree tree = RTree::BulkLoad(3, items, 8);
  const Vec q{0.0, 0.5, -0.5};
  Arena arena;
  auto by_next = tree.NearestBrowse(q);
  auto by_ref = tree.NearestBrowse(q, &arena);
  for (;;) {
    auto a = by_next.Next();
    const RTree::Item* b = by_ref.NextRef();
    if (!a) {
      EXPECT_EQ(b, nullptr);
      break;
    }
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->id, b->id);
    EXPECT_EQ(a->point, b->point);
  }
  EXPECT_GT(arena.RetainedBytes(), 0u);
}

}  // namespace
}  // namespace prj
