// Unit tests for src/common: Vec math, Status/Result, Rng, timers.
#include <cmath>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"
#include "common/vec.h"

namespace prj {
namespace {

TEST(VecTest, ConstructionAndAccess) {
  Vec v(3);
  EXPECT_EQ(v.dim(), 3);
  EXPECT_EQ(v[0], 0.0);
  Vec w{1.0, 2.0, 3.0};
  EXPECT_EQ(w.dim(), 3);
  EXPECT_EQ(w[1], 2.0);
  Vec filled(2, 5.0);
  EXPECT_EQ(filled[0], 5.0);
  EXPECT_EQ(filled[1], 5.0);
}

TEST(VecTest, FromStdRoundTrip) {
  std::vector<double> xs = {0.5, -1.5, 2.25};
  Vec v = Vec::FromStd(xs);
  EXPECT_EQ(v.ToStd(), xs);
}

TEST(VecTest, Basis) {
  Vec e1 = Vec::Basis(4, 1);
  EXPECT_EQ(e1[0], 0.0);
  EXPECT_EQ(e1[1], 1.0);
  EXPECT_DOUBLE_EQ(e1.Norm(), 1.0);
}

TEST(VecTest, Arithmetic) {
  Vec a{1.0, 2.0};
  Vec b{3.0, -1.0};
  EXPECT_EQ((a + b), (Vec{4.0, 1.0}));
  EXPECT_EQ((a - b), (Vec{-2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Vec{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Vec{2.0, 4.0}));
  EXPECT_EQ((a / 2.0), (Vec{0.5, 1.0}));
}

TEST(VecTest, DotAndNorms) {
  Vec a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  Vec b{0.0, 0.0};
  EXPECT_DOUBLE_EQ(a.Distance(b), 5.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistance(b), 25.0);
}

TEST(VecTest, Normalized) {
  Vec a{0.0, 3.0};
  EXPECT_TRUE(a.Normalized().ApproxEquals(Vec{0.0, 1.0}));
}

TEST(VecTest, ApproxEquals) {
  Vec a{1.0, 2.0};
  Vec b{1.0 + 1e-12, 2.0 - 1e-12};
  EXPECT_TRUE(a.ApproxEquals(b));
  EXPECT_FALSE(a.ApproxEquals(Vec{1.0, 2.1}));
  EXPECT_FALSE(a.ApproxEquals(Vec{1.0}));
}

TEST(VecTest, MeanOfVectors) {
  const Vec m = Mean({Vec{0.0, 0.0}, Vec{2.0, 4.0}});
  EXPECT_TRUE(m.ApproxEquals(Vec{1.0, 2.0}));
}

TEST(VecTest, ToStringIsReadable) {
  EXPECT_EQ((Vec{1.0, -0.5}).ToString(), "[1, -0.5]");
}

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
  for (uint64_t v : seen) EXPECT_LT(v, 7u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(6);
  double sum = 0.0, sum_sq = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.05);
}

TEST(RngTest, UniformInCubeBounds) {
  Rng rng(8);
  const Vec v = rng.UniformInCube(5, -1.5, 1.5);
  EXPECT_EQ(v.dim(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(v[i], -1.5);
    EXPECT_LT(v[i], 1.5);
  }
}

TEST(RngTest, GaussianAroundCenters) {
  Rng rng(9);
  Vec center{10.0, -10.0};
  Vec acc(2);
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) acc += rng.GaussianAround(center, 0.5);
  acc /= trials;
  EXPECT_NEAR(acc[0], 10.0, 0.1);
  EXPECT_NEAR(acc[1], -10.0, 0.1);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.ElapsedMillis(), 5.0);
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 5.0);
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double sink = 0.0;
  {
    ScopedTimer timer(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double first = sink;
  EXPECT_GT(first, 0.0);
  {
    ScopedTimer timer(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(sink, first);
}

}  // namespace
}  // namespace prj
