// The adaptive plan-selection layer (src/plan/): relation-statistics
// units, cost-model estimates, coefficient JSON round trips, per-request
// execution hints, and the PlannedEngine exactness property -- the
// planner and every forced plan bit-identical to an unplanned Engine
// across presets x access kinds x partitioners x adversarial tie-heavy
// data -- plus the misprediction-accounting fields that make a wrong
// pick measurable after the fact.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "access/partition.h"
#include "cache/cached_engine.h"
#include "common/random.h"
#include "core/engine.h"
#include "core/trace.h"
#include "live/live_engine.h"
#include "plan/cost_model.h"
#include "plan/planned_engine.h"
#include "plan/relation_stats.h"
#include "result_matchers.h"
#include "shard/sharded_engine.h"
#include "workload/synthetic.h"

namespace prj {
namespace {

const AlgorithmPreset kAllPresets[] = {kCBRR, kCBPA, kTBRR, kTBPA};

const SumLogEuclideanScoring& Scoring() {
  static const SumLogEuclideanScoring scoring(1.0, 1.0, 1.0);
  return scoring;
}

std::vector<Relation> MakeRelations(int n, int count, uint64_t seed) {
  SyntheticSpec spec;
  spec.dim = 2;
  spec.count = count;
  spec.density = 50;
  spec.seed = seed;
  return GenerateProblem(n, spec);
}

/// Adversarial tie factory (shared idiom with shard_test): scores from a
/// 4-value grid and coordinates on a coarse lattice, so many distinct
/// combinations share exact aggregate scores and exact distances -- every
/// plan must still reproduce the unplanned tie order.
std::vector<Relation> MakeTieHeavyRelations(int n, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Relation> rels;
  for (int r = 0; r < n; ++r) {
    Relation rel("tie" + std::to_string(r), 2);
    for (int i = 0; i < count; ++i) {
      const double score = 0.25 * (1 + static_cast<int>(rng.NextBounded(4)));
      const Vec x{static_cast<double>(rng.NextBounded(4)),
                  static_cast<double>(rng.NextBounded(4))};
      rel.Add(i, score, x);
    }
    rels.push_back(std::move(rel));
  }
  return rels;
}

/// A localized / shifted / far query mix around the data of `rels[0]`:
/// exercises both the shard-pruning-wins and the pruning-overhead-loses
/// regimes the planner arbitrates between.
std::vector<Vec> MakeQueries(const std::vector<Relation>& rels, int count,
                             uint64_t seed) {
  Rng rng(seed);
  const auto& tuples = rels[0].tuples();
  std::vector<Vec> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Vec q = tuples[rng.NextBounded(tuples.size())].x;
    if (i % 3 == 1) {
      for (int d = 0; d < q.dim(); ++d) q[d] += rng.Uniform(-0.5, 0.5);
    } else if (i % 3 == 2) {
      for (int d = 0; d < q.dim(); ++d) q[d] += 5.0;
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

// --------------------------- relation stats ---------------------------- //

TEST(PlanStatsTest, BuildComputesCardinalityQuantilesAndDensity) {
  const auto rels = MakeRelations(1, 200, /*seed=*/5);
  const RelationStats stats =
      BuildRelationStats(rels[0].tuples(), rels[0].dim(), rels[0].sigma_max());

  EXPECT_FALSE(stats.empty());
  EXPECT_EQ(stats.cardinality, 200u);
  EXPECT_EQ(stats.sigma_max, rels[0].sigma_max());
  ASSERT_EQ(stats.score_edges.size(),
            static_cast<size_t>(RelationStats::kScoreBuckets) + 1);
  EXPECT_TRUE(std::is_sorted(stats.score_edges.begin(),
                             stats.score_edges.end()));
  EXPECT_DOUBLE_EQ(stats.score_edges.front(), stats.score_min);
  EXPECT_DOUBLE_EQ(stats.score_edges.back(), stats.score_max);
  EXPECT_DOUBLE_EQ(stats.ScoreQuantile(0.0), stats.score_min);
  EXPECT_DOUBLE_EQ(stats.ScoreQuantile(1.0), stats.score_max);
  double prev = stats.ScoreQuantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double s = stats.ScoreQuantile(q);
    EXPECT_GE(s, prev) << "quantile " << q;
    prev = s;
  }

  ASSERT_TRUE(stats.mbr.has_value());
  EXPECT_EQ(stats.grid_dims, 2);
  ASSERT_EQ(stats.tile_counts.size(),
            static_cast<size_t>(RelationStats::kTilesPerDim) *
                RelationStats::kTilesPerDim);
  uint64_t tiled = 0;
  for (uint32_t c : stats.tile_counts) tiled += c;
  EXPECT_EQ(tiled, stats.cardinality);
  EXPECT_GT(stats.GlobalDensity(), 0.0);
  EXPECT_GT(stats.LocalDensity(rels[0].tuples()[7].x), 0.0);
}

TEST(PlanStatsTest, EmptyRelationIsDegenerateButSafe) {
  const RelationStats stats = BuildRelationStats({}, 2, 1.0);
  EXPECT_TRUE(stats.empty());
  EXPECT_TRUE(stats.score_edges.empty());
  EXPECT_FALSE(stats.mbr.has_value());
  EXPECT_DOUBLE_EQ(stats.ScoreQuantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(stats.LocalDensity(Vec{0.0, 0.0}), 0.0);
}

TEST(PlanStatsTest, MergeAddsCardinalityAndExtendsEnvelope) {
  const auto rels = MakeRelations(1, 240, /*seed=*/6);
  const auto& tuples = rels[0].tuples();
  const std::vector<Tuple> lo(tuples.begin(), tuples.begin() + 90);
  const std::vector<Tuple> hi(tuples.begin() + 90, tuples.end());
  const double sigma = rels[0].sigma_max();

  const RelationStats whole = BuildRelationStats(tuples, 2, sigma);
  const RelationStats merged = MergeRelationStats(
      BuildRelationStats(lo, 2, sigma), BuildRelationStats(hi, 2, sigma));

  EXPECT_EQ(merged.cardinality, whole.cardinality);
  EXPECT_DOUBLE_EQ(merged.score_min, whole.score_min);
  EXPECT_DOUBLE_EQ(merged.score_max, whole.score_max);
  ASSERT_TRUE(merged.mbr.has_value());
  for (int d = 0; d < 2; ++d) {
    EXPECT_DOUBLE_EQ(merged.mbr->lo[d], whole.mbr->lo[d]) << "dim " << d;
    EXPECT_DOUBLE_EQ(merged.mbr->hi[d], whole.mbr->hi[d]) << "dim " << d;
  }
  // The merged histogram is approximate where the halves overlap, but it
  // must stay a valid quantile function over the union's score range.
  EXPECT_TRUE(std::is_sorted(merged.score_edges.begin(),
                             merged.score_edges.end()));
  for (double q = 0.0; q <= 1.0; q += 0.25) {
    EXPECT_GE(merged.ScoreQuantile(q), whole.score_min);
    EXPECT_LE(merged.ScoreQuantile(q), whole.score_max);
  }
  uint64_t tiled = 0;
  for (uint32_t c : merged.tile_counts) tiled += c;
  EXPECT_EQ(tiled, merged.cardinality);
  // Merging an empty side is the identity on the non-empty one.
  const RelationStats id =
      MergeRelationStats(whole, BuildRelationStats({}, 2, sigma));
  EXPECT_EQ(id.cardinality, whole.cardinality);
  EXPECT_DOUBLE_EQ(id.score_max, whole.score_max);
}

// ----------------------------- cost model ------------------------------ //

TEST(PlanCostModelTest, DepthEstimateIsMonotoneInK) {
  const auto rels = MakeRelations(2, 300, /*seed=*/8);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &Scoring());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const CostModel model(AccessKind::kDistance, &Scoring(),
                        engine->relation_stats());

  const Vec query = rels[0].tuples()[3].x;
  double prev_depth = 0.0;
  double prev_kth = std::numeric_limits<double>::infinity();
  for (int k : {1, 2, 4, 8, 16, 32, 64}) {
    const CostModel::DepthEstimate e = model.EstimateDepth(query, k);
    EXPECT_TRUE(std::isfinite(e.depth)) << "k=" << k;
    EXPECT_TRUE(std::isfinite(e.kth_score)) << "k=" << k;
    EXPECT_GE(e.depth, 1.0) << "k=" << k;
    // Certifying more results can only require deeper streams, and the
    // K-th best score can only fall as K grows.
    EXPECT_GE(e.depth, prev_depth) << "k=" << k;
    EXPECT_LE(e.kth_score, prev_kth) << "k=" << k;
    prev_depth = e.depth;
    prev_kth = e.kth_score;
  }
}

TEST(PlanCostModelTest, PredictSecondsFloorsNegativeFitsAtZero) {
  const auto rels = MakeRelations(2, 60, /*seed=*/9);
  auto engine = Engine::Create(rels, AccessKind::kDistance, &Scoring());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const CostModel model(AccessKind::kDistance, &Scoring(),
                        engine->relation_stats());
  const PlanSpec spec;  // mono R-tree
  const CostModel::DepthEstimate e =
      model.EstimateDepth(rels[0].tuples()[0].x, 5);
  const PlanFeatures f = model.Features(spec, e, 5, /*survivors=*/0);
  EXPECT_DOUBLE_EQ(f.v[0], 1.0);  // intercept

  EXPECT_GE(CostModel::PredictSeconds(spec, f, PlanCoefficients::Defaults()),
            0.0);
  PlanCoefficients negative;  // a fit gone wrong must not rank below zero
  negative.of(spec.backend).v.fill(-1.0);
  EXPECT_DOUBLE_EQ(CostModel::PredictSeconds(spec, f, negative), 0.0);
}

// ------------------------- coefficient round trip ----------------------- //

TEST(PlanCoefficientsTest, JsonRoundTripIsExact) {
  PlanCoefficients original = PlanCoefficients::Defaults();
  original.mono_rtree.v[1] = 1.25e-7;
  original.mono_presorted.v[3] = 3.5e-9;
  original.sharded.v[5] = 0.0625;

  auto parsed = PlanCoefficients::FromJson(original.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (PlanBackend backend :
       {PlanBackend::kMonoRTree, PlanBackend::kMonoPresorted,
        PlanBackend::kSharded}) {
    for (int i = 0; i < PlanFeatures::kCount; ++i) {
      EXPECT_DOUBLE_EQ(parsed->of(backend).v[static_cast<size_t>(i)],
                       original.of(backend).v[static_cast<size_t>(i)])
          << "backend " << static_cast<int>(backend) << " coef " << i;
    }
  }
}

TEST(PlanCoefficientsTest, RejectsMalformedJson) {
  EXPECT_FALSE(PlanCoefficients::FromJson("not json at all").ok());
  EXPECT_FALSE(PlanCoefficients::FromJson("{\"version\": 1}").ok());
  // A truncated coefficient array must not silently zero-fill.
  std::string truncated = PlanCoefficients::Defaults().ToJson();
  const size_t open = truncated.find("\"mono_rtree\": [");
  ASSERT_NE(open, std::string::npos);
  const size_t first_comma = truncated.find(',', open);
  const size_t close = truncated.find(']', open);
  ASSERT_NE(first_comma, std::string::npos);
  ASSERT_LT(first_comma, close);
  truncated.erase(first_comma, close - first_comma);
  EXPECT_FALSE(PlanCoefficients::FromJson(truncated).ok());
}

TEST(PlanCoefficientsTest, LoadFileReportsMissingPath) {
  auto loaded =
      PlanCoefficients::LoadFile("definitely/not/a/real/coefficients.json");
  EXPECT_FALSE(loaded.ok());
}

// --------------------------- execution hints --------------------------- //

TEST(PlanHintTest, HintsNeverChangeAnswersAndControlPruning) {
  const auto rels = MakeRelations(2, 150, /*seed=*/12);
  auto reference = Engine::Create(rels, AccessKind::kDistance, &Scoring());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  ShardedEngineOptions sharded_options;
  sharded_options.partitions_per_relation = 3;
  sharded_options.scatter_threads = 2;
  sharded_options.prune = true;
  auto sharded = ShardedEngine::Create(rels, AccessKind::kDistance, &Scoring(),
                                       sharded_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  const auto queries = MakeQueries(rels, 4, /*seed=*/13);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    ProxRJOptions options;
    options.k = 6;
    options.Apply(kTBPA);
    auto want = reference->TopK(queries[qi], options);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    uint64_t pruned_default = 0;
    for (uint32_t scatter_hint : {0u, 1u, 4u}) {
      for (int prune_hint : {-1, 0, 1}) {
        ProxRJOptions hinted = options;
        hinted.scatter_hint = scatter_hint;
        hinted.prune_hint = static_cast<int8_t>(prune_hint);
        ExecStats stats;
        auto got = sharded->TopK(queries[qi], hinted, &stats);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ExpectBitIdentical(*got, *want,
                           "query " + std::to_string(qi) + " scatter_hint=" +
                               std::to_string(scatter_hint) +
                               " prune_hint=" + std::to_string(prune_hint));
        if (prune_hint < 0) {
          EXPECT_EQ(stats.shards_pruned, 0u)
              << "prune forced off must not skip shards";
        }
        if (scatter_hint == 0 && prune_hint == 0) {
          pruned_default = stats.shards_pruned;
        }
      }
    }
    // Forcing pruning on can never prune less than the default
    // configuration of this engine (which already prunes).
    ProxRJOptions force_on = options;
    force_on.prune_hint = 1;
    ExecStats stats;
    auto got = sharded->TopK(queries[qi], force_on, &stats);
    ASSERT_TRUE(got.ok());
    EXPECT_GE(stats.shards_pruned, pruned_default);
  }
}

// ------------------------- planner exactness grid ----------------------- //

TEST(PlannedEngineTest, BitIdenticalToUnplannedAcrossGrid) {
  for (bool tie_heavy : {false, true}) {
    const auto rels = tie_heavy ? MakeTieHeavyRelations(2, 90, /*seed=*/7)
                                : MakeRelations(2, 90, /*seed=*/11);
    for (PartitionScheme scheme :
         {PartitionScheme::kHash, PartitionScheme::kStrTile}) {
      for (AccessKind kind : {AccessKind::kDistance, AccessKind::kScore}) {
        auto reference = Engine::Create(rels, kind, &Scoring());
        ASSERT_TRUE(reference.ok()) << reference.status().ToString();

        PlannedEngineOptions options;
        options.sharded.partitions_per_relation = 2;
        options.sharded.scheme = scheme;
        options.sharded.scatter_threads = 2;
        auto planned = PlannedEngine::Create(rels, kind, &Scoring(), options);
        ASSERT_TRUE(planned.ok()) << planned.status().ToString();
        // Distance rosters carry both mono backends; score access has one
        // mono plan (the backends coincide) plus the sharded variants.
        EXPECT_GE(planned->num_plans(),
                  kind == AccessKind::kDistance ? 4u : 3u);

        const auto queries = MakeQueries(rels, 3, /*seed=*/29);
        for (const AlgorithmPreset& preset : kAllPresets) {
          for (int k : {1, 7}) {
            ProxRJOptions topk_options;
            topk_options.k = k;
            topk_options.Apply(preset);
            for (size_t qi = 0; qi < queries.size(); ++qi) {
              const std::string label =
                  std::string(tie_heavy ? "tie" : "uniform") + "/" +
                  (scheme == PartitionScheme::kHash ? "hash" : "str-tile") +
                  "/" + (kind == AccessKind::kDistance ? "dist" : "score") +
                  "/" + preset.name + "/k=" + std::to_string(k) + "/q" +
                  std::to_string(qi);
              auto want = reference->TopK(queries[qi], topk_options);
              ASSERT_TRUE(want.ok()) << label << ": " << want.status().ToString();
              auto got = planned->TopK(queries[qi], topk_options);
              ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
              ExpectBitIdentical(*got, *want, label + "/planner");
              for (size_t p = 0; p < planned->num_plans(); ++p) {
                auto forced =
                    planned->TopKWithPlan(p, queries[qi], topk_options);
                ASSERT_TRUE(forced.ok())
                    << label << ": " << forced.status().ToString();
                ExpectBitIdentical(*forced, *want,
                                   label + "/" + planned->plan(p).name());
              }
            }
          }
        }
      }
    }
  }
}

// ------------------------ misprediction accounting ---------------------- //

TEST(PlannedEngineTest, RecordsPlanAccountingOnEveryPath) {
  const auto rels = MakeRelations(2, 120, /*seed=*/17);
  PlannedEngineOptions options;
  options.sharded.partitions_per_relation = 2;
  options.sharded.scatter_threads = 2;
  auto planned =
      PlannedEngine::Create(rels, AccessKind::kDistance, &Scoring(), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const size_t num_plans = planned->num_plans();
  ASSERT_GE(num_plans, 2u);

  const auto queries = MakeQueries(rels, 5, /*seed=*/18);
  ProxRJOptions topk_options;
  topk_options.k = 8;
  topk_options.Apply(kTBPA);

  for (const Vec& query : queries) {
    // The planner's own pick: backend name from the roster, a positive
    // estimate, every alternative scored.
    const PlanChoice choice = planned->ChoosePlan(query, topk_options.k);
    ASSERT_LT(choice.plan_index, num_plans);
    EXPECT_GT(choice.cost_estimate, 0.0);
    EXPECT_GE(choice.depth.depth, 1.0);

    ExecStats stats;
    auto got = planned->TopK(query, topk_options, &stats);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(stats.planned_backend, planned->plan(choice.plan_index).name());
    EXPECT_DOUBLE_EQ(stats.plan_cost_estimate, choice.cost_estimate);
    EXPECT_EQ(stats.plan_alternatives_considered,
              static_cast<uint32_t>(num_plans));

    // Forcing the worst-estimate plan stays exact and reports itself as a
    // single considered alternative with its own (positive) estimate.
    size_t worst = 0;
    double worst_cost = -1.0;
    for (size_t p = 0; p < num_plans; ++p) {
      ExecStats forced_stats;
      auto forced = planned->TopKWithPlan(p, query, topk_options, &forced_stats);
      ASSERT_TRUE(forced.ok()) << forced.status().ToString();
      EXPECT_EQ(forced_stats.planned_backend, planned->plan(p).name());
      EXPECT_GT(forced_stats.plan_cost_estimate, 0.0);
      EXPECT_EQ(forced_stats.plan_alternatives_considered, 1u);
      ExpectBitIdentical(*forced, *got, "forced " + planned->plan(p).name());
      if (forced_stats.plan_cost_estimate > worst_cost) {
        worst_cost = forced_stats.plan_cost_estimate;
        worst = p;
      }
    }
    EXPECT_GE(worst_cost, choice.cost_estimate);
    (void)worst;
  }
}

TEST(PlannedEngineTest, TracedQueriesPinTheFirstMonoPlan) {
  const auto rels = MakeRelations(2, 80, /*seed=*/21);
  PlannedEngineOptions options;
  options.sharded.partitions_per_relation = 2;
  auto planned =
      PlannedEngine::Create(rels, AccessKind::kDistance, &Scoring(), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  ProxRJOptions topk_options;
  topk_options.k = 5;
  topk_options.Apply(kCBRR);
  const Vec query = rels[0].tuples()[2].x;
  auto want = planned->TopK(query, topk_options);
  ASSERT_TRUE(want.ok());

  ExecTrace trace;
  topk_options.trace = &trace;
  ExecStats stats;
  auto traced = planned->TopK(query, topk_options, &stats);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ExpectBitIdentical(*traced, *want, "traced");
  // A trace observes one engine's execution, so its shape must not flip
  // with a planning decision: traced queries always run plan 0.
  EXPECT_EQ(stats.planned_backend, planned->plan(0).name());
  EXPECT_EQ(stats.plan_alternatives_considered, 1u);
}

TEST(PlannedEngineTest, OutOfRangePlanIndexIsRejected) {
  const auto rels = MakeRelations(2, 40, /*seed=*/22);
  auto planned =
      PlannedEngine::Create(rels, AccessKind::kDistance, &Scoring());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  ProxRJOptions topk_options;
  topk_options.k = 3;
  auto got = planned->TopKWithPlan(planned->num_plans(),
                                   rels[0].tuples()[0].x, topk_options);
  EXPECT_FALSE(got.ok());
}

TEST(PlannedEngineTest, CursorCarriesPlannerFieldsAndStaysExact) {
  const auto rels = MakeRelations(2, 100, /*seed=*/23);
  PlannedEngineOptions options;
  options.sharded.partitions_per_relation = 2;
  auto planned =
      PlannedEngine::Create(rels, AccessKind::kDistance, &Scoring(), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  QueryRequest request;
  request.query = rels[0].tuples()[9].x;
  request.options.k = 6;
  request.options.Apply(kTBPA);
  auto want = planned->TopK(request.query, request.options);
  ASSERT_TRUE(want.ok());

  auto cursor = planned->OpenCursor(request);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto prefix = (*cursor)->NextBatch(6);
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  ExpectBitIdentical(*prefix, *want, "cursor prefix");

  const ExecStats stats = (*cursor)->stats();
  EXPECT_FALSE(stats.planned_backend.empty());
  EXPECT_GT(stats.plan_cost_estimate, 0.0);
  EXPECT_EQ(stats.plan_alternatives_considered,
            static_cast<uint32_t>(planned->num_plans()));
}

TEST(PlannedEngineTest, ConcurrentPlannedQueriesStayExact) {
  const auto rels = MakeRelations(2, 130, /*seed=*/25);
  auto reference = Engine::Create(rels, AccessKind::kDistance, &Scoring());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  PlannedEngineOptions options;
  options.sharded.partitions_per_relation = 2;
  options.sharded.scatter_threads = 2;
  auto planned =
      PlannedEngine::Create(rels, AccessKind::kDistance, &Scoring(), options);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  const auto queries = MakeQueries(rels, 12, /*seed=*/26);
  ProxRJOptions topk_options;
  topk_options.k = 5;
  topk_options.Apply(kTBPA);
  std::vector<std::vector<ResultCombination>> expected;
  for (const Vec& query : queries) {
    auto want = reference->TopK(query, topk_options);
    ASSERT_TRUE(want.ok());
    expected.push_back(std::move(*want));
  }

  constexpr int kThreads = 4;
  std::atomic<int> divergences{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t qi = static_cast<size_t>(t) % queries.size(), n = 0;
           n < queries.size();
           qi = (qi + 1) % queries.size(), ++n) {
        ExecStats stats;
        auto got = planned->TopK(queries[qi], topk_options, &stats);
        if (!got.ok() || !BitIdenticalResults(*got, expected[qi]) ||
            stats.planned_backend.empty()) {
          divergences.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(divergences.load(), 0);
}

// ------------------------- statistics plumbing -------------------------- //

TEST(PlanPlumbingTest, EnginesExposeAndDecoratorsForwardStatistics) {
  const auto rels = MakeRelations(2, 70, /*seed=*/31);

  auto engine = Engine::Create(rels, AccessKind::kDistance, &Scoring());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const auto mono_stats = engine->relation_stats();
  ASSERT_EQ(mono_stats.size(), 2u);
  for (const RelationStats& s : mono_stats) {
    EXPECT_EQ(s.cardinality, 70u);
    EXPECT_TRUE(s.mbr.has_value());
  }

  // The sharded decorator merges its partitions back into per-relation
  // statistics: same cardinality as the unsharded catalog.
  ShardedEngineOptions sharded_options;
  sharded_options.partitions_per_relation = 3;
  auto sharded = ShardedEngine::Create(rels, AccessKind::kDistance, &Scoring(),
                                       sharded_options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  const auto sharded_stats = sharded->relation_stats();
  ASSERT_EQ(sharded_stats.size(), 2u);
  for (size_t i = 0; i < sharded_stats.size(); ++i) {
    EXPECT_EQ(sharded_stats[i].cardinality, mono_stats[i].cardinality);
  }

  // The cache decorator forwards verbatim.
  const CachedEngine cached(&*engine);
  const auto cached_stats = cached.relation_stats();
  ASSERT_EQ(cached_stats.size(), mono_stats.size());
  for (size_t i = 0; i < cached_stats.size(); ++i) {
    EXPECT_EQ(cached_stats[i].cardinality, mono_stats[i].cardinality);
    EXPECT_DOUBLE_EQ(cached_stats[i].score_max, mono_stats[i].score_max);
  }

  // The planner re-exposes the cost model's statistics.
  auto planned =
      PlannedEngine::Create(rels, AccessKind::kDistance, &Scoring());
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const auto planned_stats = planned->relation_stats();
  ASSERT_EQ(planned_stats.size(), 2u);
  EXPECT_EQ(planned_stats[0].cardinality, 70u);
}

TEST(PlanPlumbingTest, LiveEngineFoldsDeltaStatistics) {
  const auto rels = MakeRelations(2, 40, /*seed=*/33);
  LiveEngineOptions live_options;
  live_options.compact_threshold = 0;  // manual compaction only
  auto live = LiveEngine::Create(
      rels, AccessKind::kDistance, &Scoring(),
      LiveEngine::MonolithicFactory(AccessKind::kDistance, &Scoring()),
      live_options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  const auto before = (*live)->relation_stats();
  ASSERT_EQ(before.size(), 2u);
  EXPECT_EQ(before[0].cardinality, 40u);
  EXPECT_EQ(before[1].cardinality, 40u);

  UpdateBatch batch;
  batch.relations.resize(2);
  for (int i = 0; i < 6; ++i) {
    batch.relations[0].inserts.push_back(
        Tuple{1000 + i, 0.4 + 0.05 * i, Vec{0.1 * i, -0.2}});
  }
  ASSERT_TRUE((*live)->Apply(batch).ok());

  const auto after = (*live)->relation_stats();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].cardinality, 46u);  // delta folded into relation 0
  EXPECT_EQ(after[1].cardinality, 40u);  // untouched relation unchanged
}

}  // namespace
}  // namespace prj
